//! Quickstart: simulate one mask clip rigorously, train a tiny SDM-PEB on
//! it, and compare the prediction against the rigorous inhibitor field.
//!
//! ```sh
//! cargo run --release -p sdm-peb --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_litho::{Grid, LithoFlow, MaskConfig};
use sdm_peb::{
    nrmse, rmse, LabelTransform, PebLoss, PebPredictor, SdmPeb, SdmPebConfig, TrainConfig, Trainer,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Rigorous physics: mask → aerial image → photoacid → PEB bake.
    let grid = Grid::small(); // 32×32×8 voxels, 80 nm resist
    let clip = MaskConfig::demo(grid.nx).generate(7)?;
    let flow = LithoFlow::new(grid);
    println!("running rigorous simulation on clip seed {} …", clip.seed);
    let sim = flow.run(&clip)?;
    println!(
        "  rigorous PEB solve took {:.2?}; {} contacts, {} opened",
        sim.peb_elapsed,
        sim.cds.len(),
        sim.cds.iter().filter(|c| c.open).count()
    );

    // 2. Supervised pair in the paper's label space Y = −ln(−ln I / kc),
    //    standardised for stable small-budget training (the benchmark
    //    harness does the same via `peb_data::LabelStats`).
    let label = LabelTransform::paper();
    let raw_target = label.encode(&sim.inhibitor);
    let (mean, std) = (raw_target.mean(), {
        let m = raw_target.mean();
        (raw_target.map(|v| (v - m) * (v - m)).mean())
            .sqrt()
            .max(1e-6)
    });
    let target = raw_target.map(|v| (v - mean) / std);

    // 3. A tiny SDM-PEB, trained on this one clip (overfit on purpose —
    //    this is a smoke demo, not an experiment; see the bench harness
    //    for the real protocol).
    let mut rng = StdRng::seed_from_u64(0);
    let model = SdmPeb::new(SdmPebConfig::tiny((grid.nz, grid.ny, grid.nx)), &mut rng);
    println!(
        "training SDM-PEB ({} parameters) for 30 epochs …",
        peb_nn::Parameterized::parameter_count(&model)
    );
    let mut cfg = TrainConfig::quick(30);
    cfg.loss = PebLoss::paper();
    cfg.accumulate = 1;
    let report = Trainer::new(cfg)
        .fit(&model, &[(sim.acid0.clone(), target.clone())])
        .expect("training");
    println!(
        "  loss {:.1} → {:.1} in {:.2?}",
        report.epoch_losses[0], report.final_loss, report.elapsed
    );

    // 4. Predict, destandardise and compare in inhibitor space.
    let predicted = label.decode(&model.predict(&sim.acid0).map(|v| v * std + mean));
    println!("inhibitor RMSE  : {:.4}", rmse(&predicted, &sim.inhibitor));
    println!(
        "inhibitor NRMSE : {:.2}%",
        nrmse(&predicted, &sim.inhibitor) * 100.0
    );

    // 5. Push the prediction through development and compare CDs.
    let (_, _, cds) = flow.develop(&predicted, &clip)?;
    for (p, t) in cds.iter().zip(&sim.cds).take(3) {
        println!(
            "contact at {:?}: predicted CDx {:.1} nm vs rigorous {:.1} nm",
            t.centre, p.cd_x_nm, t.cd_x_nm
        );
    }
    Ok(())
}
