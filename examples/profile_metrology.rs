//! Resist-profile metrology: top/bottom CDs, CD ratio and sidewall angle
//! for every printed contact, plus a development-time sweep — the kind of
//! process-window exploration the rigorous substrate supports beyond the
//! paper's headline metrics.
//!
//! ```sh
//! cargo run --release -p sdm-peb --example profile_metrology
//! ```

use peb_litho::{
    developed_fraction, measure_contact_profiles, resist_profile_obj, solve_eikonal_fim,
    EikonalConfig, Grid, LithoFlow, MaskConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::small();
    let clip = MaskConfig::demo(grid.nx).generate(21)?;
    let flow = LithoFlow::new(grid);
    println!("rigorous simulation of clip seed {}…", clip.seed);
    let sim = flow.run(&clip)?;

    // Cross-check the two eikonal solvers on real development-rate data.
    let fim = solve_eikonal_fim(&grid, &sim.rate, EikonalConfig::default())?;
    let mut max_rel = 0f32;
    for (a, b) in sim.arrival.data().iter().zip(fim.data()) {
        if a.is_finite() && b.is_finite() && *a < 1e5 {
            max_rel = max_rel.max((a - b).abs() / a.abs().max(1.0));
        }
    }
    println!("fast-sweeping vs fast-iterative arrival agreement: {max_rel:.4} max rel diff");

    // Vertical profile metrics per contact.
    println!(
        "\nper-contact vertical profiles at t_dev = {} s:",
        flow.mack.duration
    );
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>11} {:>8}",
        "contact", "top/nm", "bottom/nm", "ratio", "sidewall/°", "through"
    );
    let profiles =
        measure_contact_profiles(&grid, &sim.arrival, flow.mack.duration, &clip.contacts)?;
    for (i, p) in profiles.iter().enumerate() {
        println!(
            "{:<10} {:>8.1} {:>10.1} {:>9.2} {:>11.1} {:>8}",
            format!("#{i}"),
            p.top_cd_nm,
            p.bottom_cd_nm,
            p.cd_ratio,
            p.sidewall_angle_deg,
            p.through
        );
    }

    // Export the final 3-D profile as an OBJ mesh for any viewer.
    let obj = resist_profile_obj(&grid, &sim.arrival, flow.mack.duration)?;
    std::fs::create_dir_all("target/figures")?;
    std::fs::write("target/figures/resist_profile.obj", &obj)?;
    println!(
        "\nwrote target/figures/resist_profile.obj ({} faces)",
        obj.lines().filter(|l| l.starts_with("f ")).count()
    );

    // Development-time process window.
    println!("\ndeveloped volume fraction vs development time:");
    for t in (0..=6).map(|i| i as f32 * 10.0) {
        let f = developed_fraction(&sim.arrival, t) * 100.0;
        println!(
            "  t = {t:>4.0} s: {f:>5.1}%  {}",
            "#".repeat(f as usize / 2)
        );
    }
    Ok(())
}
