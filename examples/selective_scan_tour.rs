//! A tour of the spatial-depthwise Mamba machinery: the selective-scan
//! recurrence, the three PEB scan orderings, and a full SDM unit.
//!
//! ```sh
//! cargo run --release -p sdm-peb --example selective_scan_tour
//! ```

use peb_mamba::{selective_scan, ScanDirection, ScanOrder, SdmUnit, SdmUnitConfig};
use peb_tensor::{Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The raw recurrence: an impulse decaying through the state.
    let l = 10usize;
    let mut u = Tensor::zeros(&[l, 1]);
    u.set(&[0, 0], 1.0);
    let delta = Tensor::full(&[l, 1], 0.4);
    let a = Tensor::from_vec(vec![-1.0], &[1, 1]).unwrap();
    let b = Tensor::ones(&[l, 1]);
    let c = Tensor::ones(&[l, 1]);
    let d = Tensor::zeros(&[1]);
    let y = selective_scan(
        &Var::constant(u),
        &Var::constant(delta),
        &Var::constant(a),
        &Var::constant(b),
        &Var::constant(c),
        &Var::constant(d),
    );
    println!("impulse response of the SSM (A = −1, Δ = 0.4):");
    for (t, v) in y.value().data().iter().enumerate() {
        println!(
            "  t={t}: {v:+.4}  {}",
            "▇".repeat((v.abs() * 40.0) as usize)
        );
    }

    // 2. The three scan orderings on a small (D=2, H=2, W=3) volume.
    println!("\nscan orderings over a 2×2×3 volume (canonical token ids):");
    for dir in ScanDirection::ALL {
        let order = ScanOrder::new(dir, (2, 2, 3));
        println!("  {dir:?}: {:?}", order.indices);
    }

    // 3. A full SDM unit: gradient flows through every parameter.
    let mut rng = StdRng::seed_from_u64(1);
    let unit = SdmUnit::new(SdmUnitConfig::new(8, 16, 4), &mut rng);
    let x = Var::constant(Tensor::randn(&[2 * 4 * 4, 8], &mut rng));
    let out = unit.forward(&x, (2, 4, 4));
    out.square().sum().backward();
    let params = peb_nn::Parameterized::parameters(&unit);
    let with_grads = params.iter().filter(|p| p.grad().is_some()).count();
    println!(
        "\nSDM unit: {} tokens → {} tokens, {} parameters, {}/{} with gradients",
        x.shape()[0],
        out.shape()[0],
        peb_nn::Parameterized::parameter_count(&unit),
        with_grads,
        params.len()
    );
}
