//! The complete rigorous lithography chain, stage by stage, with ASCII
//! visualisation — the paper's Fig. 1 flow: mask → aerial image →
//! photoacid → PEB → development rate → resist profile → CD metrology.
//!
//! ```sh
//! cargo run --release -p sdm-peb --example full_litho_flow
//! ```

use peb_litho::{developed_fraction, ClipStyle, Grid, LithoFlow, MaskConfig};
use peb_tensor::Tensor;

/// Minimal ASCII heatmap for `[H, W]` tensors.
fn heatmap(field: &Tensor) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let (h, w) = (field.shape()[0], field.shape()[1]);
    let (lo, hi) = (field.min_value(), field.max_value());
    let span = (hi - lo).max(1e-12);
    let mut out = String::new();
    for y in 0..h {
        for x in 0..w {
            let t = (field.get(&[y, x]) - lo) / span;
            out.push(RAMP[(t * 9.0).round() as usize % 10] as char);
        }
        out.push('\n');
    }
    out
}

fn layer(vol: &Tensor, k: usize) -> Tensor {
    let s = vol.shape().to_vec();
    vol.slice_axis(0, k, k + 1)
        .and_then(|t| t.reshape(&[s[1], s[2]]))
        .expect("layer extraction")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::small();
    let mut mask_cfg = MaskConfig::demo(grid.nx);
    mask_cfg.style = ClipStyle::Staggered;
    let clip = mask_cfg.generate(11)?;
    println!(
        "== mask clip ({} contacts, {:?}) ==",
        clip.contacts.len(),
        clip.style
    );
    print!("{}", heatmap(&clip.pattern));

    let flow = LithoFlow::new(grid);
    let sim = flow.run(&clip)?;

    println!("\n== aerial image, top layer ==");
    print!("{}", heatmap(&layer(&sim.aerial, 0)));
    println!("\n== initial photoacid [A]₀, top layer (Dill model) ==");
    print!("{}", heatmap(&layer(&sim.acid0, 0)));
    println!("\n== final inhibitor [I] after the bake, bottom layer ==");
    print!("{}", heatmap(&layer(&sim.inhibitor, grid.nz - 1)));

    println!("\n== development (Mack + eikonal) ==");
    println!(
        "rate range: {:.4} … {:.1} nm/s",
        sim.rate.min_value(),
        sim.rate.max_value()
    );
    for t in [10.0f32, 30.0, 60.0] {
        println!(
            "developed volume fraction after {t:>4.0} s: {:.1}%",
            developed_fraction(&sim.arrival, t) * 100.0
        );
    }

    println!("\n== CD metrology at the bottom layer ==");
    println!(
        "{:<12} {:>9} {:>9} {:>7}",
        "centre", "CDx/nm", "CDy/nm", "open"
    );
    for cd in &sim.cds {
        println!(
            "{:<12} {:>9.1} {:>9.1} {:>7}",
            format!("{:?}", cd.centre),
            cd.cd_x_nm,
            cd.cd_y_nm,
            cd.open
        );
    }
    println!(
        "\nrigorous runtime: PEB {:.2?}, full chain {:.2?}",
        sim.peb_elapsed, sim.total_elapsed
    );
    Ok(())
}
