//! Trains SDM-PEB and the DeepCNN baseline on a small generated dataset
//! and compares them — a miniature of the paper's Table II protocol.
//!
//! ```sh
//! cargo run --release -p sdm-peb --example train_and_compare
//! ```

use peb_baselines::{DeepCnn, DeepCnnConfig};
use peb_data::{augment_with_flips, Dataset, DatasetConfig, LabelStats};
use peb_litho::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{nrmse, LabelTransform, PebPredictor, SdmPeb, SdmPebConfig, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A very small dataset so the example finishes in ~2 minutes.
    let grid = Grid::small();
    let cfg = DatasetConfig::for_grid(grid, 4, 2);
    println!("generating 4+2 clips with the rigorous simulator…");
    let dataset = Dataset::generate(&cfg)?;
    let stats = LabelStats::from_dataset(&dataset);
    let pairs: Vec<_> = augment_with_flips(&dataset.training_pairs())
        .into_iter()
        .map(|(a, l)| (a, stats.normalize(&l)))
        .collect();
    println!("training on {} augmented pairs", pairs.len());

    let dims = (grid.nz, grid.ny, grid.nx);
    let mut rng = StdRng::seed_from_u64(3);
    let sdm = SdmPeb::new(SdmPebConfig::for_grid(dims), &mut rng);
    let cnn = DeepCnn::new(DeepCnnConfig::for_grid(dims), &mut rng);

    let label = LabelTransform::paper();
    let trainer = Trainer::new(TrainConfig::quick(15));
    for (name, model) in [("SDM-PEB", &sdm as &dyn PebPredictor), ("DeepCNN", &cnn)] {
        let report = trainer.fit(model, &pairs).expect("training");
        let mut err = 0.0;
        for s in &dataset.test {
            let pred = label.decode(&stats.denormalize(&model.predict(&s.acid0)));
            err += nrmse(&pred, &s.inhibitor) * 100.0;
        }
        println!(
            "{name:<8}: loss {:>8.1} → {:>7.1}, test inhibitor NRMSE {:.2}% ({:.1?})",
            report.epoch_losses[0],
            report.final_loss,
            err / dataset.test.len() as f32,
            report.elapsed,
        );
    }
    println!("\n(at this toy budget the ranking is noisy; run the peb-bench");
    println!(" table2 binary for the full Table II protocol)");
    Ok(())
}
