//! Inverse lithography (ILT) with a surrogate model and a recorded
//! gradient plan.
//!
//! The inner loop of ILT asks: *which photoacid distribution makes the
//! baked inhibitor field match a target pattern?* With SDM-PEB as a
//! differentiable surrogate for the bake, each iteration is one
//! forward + backward sweep at a fixed mask geometry — exactly the
//! fixed-structure workload `GradPlan` is built for. We record the
//! iteration once, then replay both sweeps of the tape through a
//! statically planned arena: no pool traffic, no allocation, no shape
//! checks, bitwise identical to the eager loop.
//!
//! ```sh
//! cargo run --release -p sdm-peb --example ilt
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_tensor::{Tensor, Var};
use sdm_peb::{GradPlan, PebPredictor, SdmPeb, SdmPebConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = (4usize, 32usize, 32usize);
    let mut rng = StdRng::seed_from_u64(11);
    let model = SdmPeb::new(SdmPebConfig::tiny(dims), &mut rng);

    // A self-consistent inverse problem: pick a "true" photoacid field,
    // run it through the surrogate to get the target inhibitor pattern,
    // then recover the field from a corrupted initial guess. (A real ILT
    // flow would use a trained surrogate and a drawn target layout; the
    // optimisation mechanics are identical.)
    let shape = [dims.0, dims.1, dims.2];
    let truth = Tensor::rand_uniform(&shape, 0.1, 0.9, &mut rng);
    let target = model.predict(&truth);
    let noisy = Tensor::rand_uniform(&shape, -0.25, 0.25, &mut rng);
    let init = truth
        .zip_map(&noisy, |t, n| (t + n).clamp(0.0, 1.0))
        .expect("same shape");

    // The mask is a `Var::parameter` so `backward()` deposits a gradient
    // on it; model parameters stay frozen (their grads are zeroed, never
    // applied).
    let mask = Var::parameter(init);
    let params = {
        use peb_nn::Parameterized;
        model.parameters()
    };

    // One canonical gradient window: forward from the mask, scalar
    // objective, backward, clone the mask gradient, then zero *every*
    // gradient so each iteration repeats the same None → Some
    // accumulation pattern (and therefore the same checkout stream).
    let iteration = || {
        let y = model.forward_var(&mask);
        let obj = y.sub(&Var::constant(target.clone())).square().mean();
        obj.backward();
        let grad = mask.grad().expect("mask gradient after backward");
        mask.zero_grad();
        for p in &params {
            p.zero_grad();
        }
        let loss = obj.value().item();
        (loss, grad)
    };

    println!(
        "recording gradient plan at {}×{}×{} …",
        dims.0, dims.1, dims.2
    );
    let (plan, (loss0, grad0)) = GradPlan::record(iteration);
    println!(
        "  plan: {} ops, {} planned checkouts into {} regions, arena {:.1} KiB (logical {:.1} KiB)",
        plan.plan().ops().len(),
        plan.plan().planned_allocs(),
        plan.plan().region_count(),
        plan.plan().arena_bytes() as f64 / 1024.0,
        plan.plan().logical_bytes() as f64 / 1024.0,
    );

    let lr = 4.0f32;
    apply_step(&mask, &grad0, lr);
    println!("iter  0  objective {loss0:.6}  (recorded)");

    let steps = 12;
    for it in 1..=steps {
        let ((loss, grad), outcome) = plan.step(iteration);
        assert!(
            !outcome.diverged,
            "fixed-geometry ILT window must replay cleanly: {outcome:?}"
        );
        apply_step(&mask, &grad, lr);
        if it % 3 == 0 || it == steps {
            println!(
                "iter {it:2}  objective {loss:.6}  (replayed: {} arena / {} pool checkouts)",
                outcome.served, outcome.escaped
            );
        }
    }

    let recovered = mask.value_clone();
    let err = recovered
        .zip_map(&truth, |a, b| (a - b) * (a - b))
        .expect("same shape")
        .mean()
        .sqrt();
    println!(
        "done: {} replayed iterations, mask RMSE vs truth {err:.4}",
        plan.plan().completed_replays()
    );
    Ok(())
}

/// Projected gradient-descent update: step against the surrogate
/// gradient, then clamp back into the physical exposure range.
fn apply_step(mask: &Var, grad: &Tensor, lr: f32) {
    let updated = mask
        .value_clone()
        .zip_map(grad, |v, g| (v - lr * g).clamp(0.0, 1.0))
        .expect("gradient matches mask shape");
    mask.set_value(updated);
}
