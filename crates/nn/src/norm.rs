//! Layer normalisation.

use peb_tensor::{Tensor, Var};

use crate::Parameterized;

/// Layer normalisation over the trailing feature axis of `[L, C]`
/// sequences, with learned scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer with unit scale and zero shift.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Var::parameter(Tensor::ones(&[dim])),
            beta: Var::parameter(Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalises `[L, C]` per token over the feature axis.
    ///
    /// # Panics
    ///
    /// Panics if the trailing axis of `x` is not the configured dimension.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        assert_eq!(
            *shape.last().expect("rank >= 1"),
            self.dim,
            "LayerNorm dimension mismatch"
        );
        let axis = shape.len() - 1;
        let mut keep = shape.clone();
        keep[axis] = 1;
        let mu = x.mean_axis(axis).reshape(&keep);
        let centred = x.sub(&mu);
        let var = centred.square().mean_axis(axis).reshape(&keep);
        let inv_std = var.add_scalar(self.eps).sqrt();
        centred.div(&inv_std).mul(&self.gamma).add(&self.beta)
    }
}

impl Parameterized for LayerNorm {
    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_standardised() {
        let mut rng = StdRng::seed_from_u64(15);
        let ln = LayerNorm::new(8);
        let x = Var::constant(
            Tensor::randn(&[4, 8], &mut rng)
                .mul_scalar(3.0)
                .add_scalar(5.0),
        );
        let y = ln.forward(&x).value_clone();
        for row in 0..4 {
            let r = y.slice_axis(0, row, row + 1).unwrap();
            assert!(r.mean().abs() < 1e-4, "row mean {}", r.mean());
            let var = r.map(|v| v * v).mean() - r.mean() * r.mean();
            assert!((var - 1.0).abs() < 1e-2, "row var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let ln = LayerNorm::new(4);
        ln.gamma.set_value(Tensor::full(&[4], 2.0));
        ln.beta.set_value(Tensor::full(&[4], 1.0));
        let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap());
        let y = ln.forward(&x).value_clone();
        assert!((y.mean() - 1.0).abs() < 1e-4); // beta shifts the mean
    }

    #[test]
    fn gradcheck_through_norm() {
        let mut rng = StdRng::seed_from_u64(16);
        let ln = LayerNorm::new(5);
        let x0 = Tensor::randn(&[3, 5], &mut rng);
        let w = Tensor::randn(&[3, 5], &mut rng);
        let r = check_gradients(
            &Var::parameter(x0),
            |v| ln.forward(v).weighted_sum(&w),
            1e-2,
        );
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    fn works_on_higher_rank() {
        let ln = LayerNorm::new(4);
        let x = Var::constant(Tensor::ones(&[2, 3, 4]));
        assert_eq!(ln.forward(&x).shape(), vec![2, 3, 4]);
    }
}
