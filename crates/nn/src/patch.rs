//! Depthwise overlapped patch embedding / merging (paper Fig. 3).
//!
//! Downsamples the spatial (x–y) axes of a `[C, D, H, W]` volume with an
//! overlapping strided convolution (kernel > stride) while keeping the
//! depth resolution intact — every depth level is embedded independently
//! with shared weights. Overlap preserves local continuity at patch
//! boundaries, which the paper contrasts with non-overlapped merging.

use rand::Rng;

use peb_tensor::Var;

use crate::{Conv2d, Parameterized};

/// Overlapped patch embedding applied per depth level.
#[derive(Debug, Clone)]
pub struct OverlappedPatchEmbed {
    proj: Conv2d,
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
}

impl OverlappedPatchEmbed {
    /// Creates an embedding with `kernel > stride` (overlapping) or
    /// `kernel == stride` (the non-overlapped ablation).
    ///
    /// Padding is `kernel / 2` so the output extent is `ceil(H / stride)`
    /// for overlapped configurations.
    ///
    /// # Panics
    ///
    /// Panics if `kernel < stride` (patches would skip pixels).
    pub fn new(cin: usize, cout: usize, kernel: usize, stride: usize, rng: &mut impl Rng) -> Self {
        assert!(
            kernel >= stride,
            "kernel {kernel} must cover stride {stride}"
        );
        let pad = if kernel > stride { kernel / 2 } else { 0 };
        OverlappedPatchEmbed {
            proj: Conv2d::new(cin, cout, kernel, stride, pad, true, rng),
            cin,
            cout,
            kernel,
            stride,
        }
    }

    /// Whether patches overlap.
    pub fn is_overlapped(&self) -> bool {
        self.kernel > self.stride
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.cout
    }

    /// Embeds `[C, D, H, W]` into `[C', D, H', W']` (depth preserved).
    ///
    /// # Panics
    ///
    /// Panics on a channel mismatch.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "patch embed expects [C, D, H, W]");
        assert_eq!(shape[0], self.cin, "patch embed channel mismatch");
        let d = shape[1];
        let mut slices = Vec::with_capacity(d);
        for k in 0..d {
            // [C, 1, H, W] -> [C, H, W] -> conv -> [C', H', W'] -> [C', 1, H', W']
            let slice = x
                .slice_axis(1, k, k + 1)
                .reshape(&[shape[0], shape[2], shape[3]]);
            let emb = self.proj.forward(&slice);
            let es = emb.shape();
            slices.push(emb.reshape(&[es[0], 1, es[1], es[2]]));
        }
        let refs: Vec<&Var> = slices.iter().collect();
        Var::concat(&refs, 1)
    }
}

impl Parameterized for OverlappedPatchEmbed {
    fn parameters(&self) -> Vec<Var> {
        self.proj.parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn downsamples_space_preserves_depth() {
        let mut rng = StdRng::seed_from_u64(22);
        let embed = OverlappedPatchEmbed::new(1, 8, 7, 4, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 5, 16, 16]));
        let y = embed.forward(&x);
        assert_eq!(y.shape(), vec![8, 5, 4, 4]);
        assert!(embed.is_overlapped());
    }

    #[test]
    fn non_overlapped_variant() {
        let mut rng = StdRng::seed_from_u64(23);
        let embed = OverlappedPatchEmbed::new(2, 4, 2, 2, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 3, 8, 8]));
        assert_eq!(embed.forward(&x).shape(), vec![4, 3, 4, 4]);
        assert!(!embed.is_overlapped());
    }

    #[test]
    fn depth_levels_share_weights() {
        let mut rng = StdRng::seed_from_u64(24);
        let embed = OverlappedPatchEmbed::new(1, 2, 3, 2, &mut rng);
        // Identical content at two depth levels embeds identically.
        let mut x = Tensor::zeros(&[1, 2, 8, 8]);
        for y in 0..8 {
            for xx in 0..8 {
                let v = ((y * 8 + xx) % 5) as f32;
                x.set(&[0, 0, y, xx], v);
                x.set(&[0, 1, y, xx], v);
            }
        }
        let out = embed.forward(&Var::constant(x)).value_clone();
        let d0 = out.slice_axis(1, 0, 1).unwrap();
        let d1 = out.slice_axis(1, 1, 2).unwrap();
        assert!(d0.approx_eq(&d1, 1e-6));
    }

    #[test]
    fn gradients_flow_to_projection() {
        let mut rng = StdRng::seed_from_u64(25);
        let embed = OverlappedPatchEmbed::new(1, 2, 3, 2, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 2, 4, 4]));
        embed.forward(&x).square().sum().backward();
        for p in embed.parameters() {
            assert!(p.grad().is_some());
        }
    }
}
