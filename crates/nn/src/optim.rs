//! Optimisers and the paper's learning-rate schedule.

use std::collections::HashMap;

use peb_tensor::{Tensor, Var, VarId};

/// Common optimiser interface.
pub trait Optimizer {
    /// Applies one update using the gradients currently stored on
    /// `params`, then leaves the gradients untouched (call
    /// [`Optimizer::zero_grad`] when the accumulation window ends).
    fn step(&mut self, params: &[Var]);

    /// Clears gradients on `params`.
    fn zero_grad(&mut self, params: &[Var]) {
        for p in params {
            p.zero_grad();
        }
    }

    /// Updates the learning rate (driven by a schedule).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Portable snapshot of an optimiser's internal state, keyed by
/// *parameter order* rather than by runtime [`VarId`] (ids are not stable
/// across processes, so checkpoints store slots aligned with
/// `Parameterized::parameters()`).
///
/// `None` slots mean the optimiser has not touched that parameter yet;
/// restoring them leaves the lazy-init behaviour identical to a fresh
/// run, which is what makes checkpoint/resume bitwise-faithful.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimState {
    /// Step counter (Adam bias correction; 0 for SGD).
    pub t: u64,
    /// First moments (Adam) or momentum velocity (SGD), per parameter.
    pub m: Vec<Option<Tensor>>,
    /// Second moments (Adam; empty slots for SGD), per parameter.
    pub v: Vec<Option<Tensor>>,
}

/// Plain SGD with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<VarId, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Exports the momentum state in `params` order.
    pub fn export_state(&self, params: &[Var]) -> OptimState {
        OptimState {
            t: 0,
            m: params
                .iter()
                .map(|p| self.velocity.get(&p.id()).cloned())
                .collect(),
            v: params.iter().map(|_| None).collect(),
        }
    }

    /// Restores state exported by [`Sgd::export_state`], re-keying the
    /// slots onto the current [`VarId`]s of `params`.
    pub fn restore_state(&mut self, params: &[Var], state: &OptimState) {
        self.velocity.clear();
        for (p, slot) in params.iter().zip(&state.m) {
            if let Some(t) = slot {
                self.velocity.insert(p.id(), t.clone());
            }
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[Var]) {
        let _span = peb_obs::span("optim.step");
        peb_obs::count(peb_obs::Counter::OptimSteps, 1);
        for p in params {
            let Some(g) = p.grad() else { continue };
            // Update state and parameter in place through the vectorized
            // `peb-simd` kernels (one pooled clone of the parameter
            // instead of a temporary per arithmetic op); the per-element
            // expressions match the tensor-op formulation bit for bit.
            let mut new = p.value_clone();
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                peb_simd::optim::sgd_momentum(v.data_mut(), g.data(), self.momentum);
                peb_simd::optim::sgd_apply(new.data_mut(), v.data(), self.lr);
            } else {
                peb_simd::optim::sgd_apply(new.data_mut(), g.data(), self.lr);
            }
            p.set_value(new);
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: HashMap<VarId, Tensor>,
    v: HashMap<VarId, Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Exports step counter and moments in `params` order.
    pub fn export_state(&self, params: &[Var]) -> OptimState {
        OptimState {
            t: self.t as u64,
            m: params
                .iter()
                .map(|p| self.m.get(&p.id()).cloned())
                .collect(),
            v: params
                .iter()
                .map(|p| self.v.get(&p.id()).cloned())
                .collect(),
        }
    }

    /// Restores state exported by [`Adam::export_state`], re-keying the
    /// slots onto the current [`VarId`]s of `params`. The restored
    /// trajectory is bitwise identical to the exporting run's.
    pub fn restore_state(&mut self, params: &[Var], state: &OptimState) {
        self.t = state.t as i32;
        self.m.clear();
        self.v.clear();
        for (p, slot) in params.iter().zip(&state.m) {
            if let Some(t) = slot {
                self.m.insert(p.id(), t.clone());
            }
        }
        for (p, slot) in params.iter().zip(&state.v) {
            if let Some(t) = slot {
                self.v.insert(p.id(), t.clone());
            }
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Var]) {
        let _span = peb_obs::span("optim.step");
        peb_obs::count(peb_obs::Counter::OptimSteps, 1);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for p in params {
            let Some(g) = p.grad() else { continue };
            // Moments and the parameter update run in place through the
            // vectorized `peb-simd` kernels (one pooled clone of the
            // parameter instead of ~6 temporaries per step); the
            // per-element expressions keep the exact operation order of
            // the tensor-op formulation, so results are bit-identical.
            let m = self
                .m
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            let v = self
                .v
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            peb_simd::optim::adam_moments(
                m.data_mut(),
                v.data_mut(),
                g.data(),
                self.beta1,
                self.beta2,
            );
            let (inv_bc1, inv_bc2) = (1.0 / bc1, 1.0 / bc2);
            let mut new = p.value_clone();
            peb_simd::optim::adam_apply(
                new.data_mut(),
                m.data(),
                v.data(),
                inv_bc1,
                inv_bc2,
                self.eps,
                self.lr,
            );
            p.set_value(new);
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Step-decay schedule: `lr = base · γ^(epoch / step)`.
///
/// The paper trains with base 0.03, step size 100, decay factor 0.7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Epochs between decays.
    pub step_size: usize,
    /// Multiplicative decay per step.
    pub gamma: f32,
}

impl StepDecay {
    /// The paper's schedule (0.03, step 100, γ = 0.7).
    pub fn paper() -> Self {
        StepDecay {
            base_lr: 0.03,
            step_size: 100,
            gamma: 0.7,
        }
    }

    /// Learning rate at `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Var {
        Var::parameter(Tensor::scalar(x0))
    }

    #[test]
    fn sgd_descends_quadratic() {
        let p = quadratic_param(5.0);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..50 {
            opt.zero_grad(std::slice::from_ref(&p));
            let loss = p.square();
            loss.backward();
            opt.step(std::slice::from_ref(&p));
        }
        assert!(p.value().item().abs() < 0.1);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f32| {
            let p = quadratic_param(5.0);
            let mut opt = Sgd::new(0.02, mom);
            for _ in 0..30 {
                opt.zero_grad(std::slice::from_ref(&p));
                p.square().backward();
                opt.step(std::slice::from_ref(&p));
            }
            let v = p.value().item().abs();
            v
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_descends_poorly_scaled_quadratic() {
        // f(x, y) = x² + 100 y²; Adam's per-coordinate scaling handles the
        // conditioning.
        let p = Var::parameter(Tensor::from_vec(vec![3.0, 3.0], &[2]).unwrap());
        let scale = Tensor::from_vec(vec![1.0, 100.0], &[2]).unwrap();
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            opt.zero_grad(std::slice::from_ref(&p));
            p.square().weighted_sum(&scale).backward();
            opt.step(std::slice::from_ref(&p));
        }
        assert!(
            p.value().data().iter().all(|v| v.abs() < 0.05),
            "{:?}",
            p.value()
        );
    }

    #[test]
    fn step_skips_params_without_grad() {
        let p = quadratic_param(1.0);
        let mut opt = Adam::new(0.1);
        opt.step(std::slice::from_ref(&p)); // no backward happened
        assert_eq!(p.value().item(), 1.0);
    }

    #[test]
    fn gradient_accumulation_equals_sum() {
        // Two backward passes before one step behave like a summed batch.
        let p = quadratic_param(2.0);
        let mut opt = Sgd::new(0.1, 0.0);
        p.mul_scalar(3.0).backward();
        p.mul_scalar(1.0).backward();
        opt.step(std::slice::from_ref(&p));
        // grad = 3 + 1 = 4 ⇒ new value 2 − 0.4.
        assert!((p.value().item() - 1.6).abs() < 1e-6);
    }

    #[test]
    fn adam_state_roundtrip_continues_bitwise() {
        // Two optimisers: one runs 20 steps straight; the other exports
        // after 10, restores into a fresh instance, and runs 10 more.
        // Trajectories must agree to the bit.
        let run_steps = |p: &Var, opt: &mut Adam, n: usize| {
            for _ in 0..n {
                opt.zero_grad(std::slice::from_ref(p));
                p.square().mean().backward();
                opt.step(std::slice::from_ref(p));
            }
        };
        let a = Var::parameter(Tensor::from_vec(vec![3.0, -2.0], &[2]).unwrap());
        let b = Var::parameter(Tensor::from_vec(vec![3.0, -2.0], &[2]).unwrap());
        let mut opt_a = Adam::new(0.05);
        let mut opt_b = Adam::new(0.05);
        run_steps(&a, &mut opt_a, 20);
        run_steps(&b, &mut opt_b, 10);
        let state = opt_b.export_state(std::slice::from_ref(&b));
        let mut resumed = Adam::new(0.05);
        resumed.restore_state(std::slice::from_ref(&b), &state);
        run_steps(&b, &mut resumed, 10);
        for (x, y) in a.value().data().iter().zip(b.value().data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sgd_state_roundtrip_continues_bitwise() {
        let run_steps = |p: &Var, opt: &mut Sgd, n: usize| {
            for _ in 0..n {
                opt.zero_grad(std::slice::from_ref(p));
                p.square().backward();
                opt.step(std::slice::from_ref(p));
            }
        };
        let a = quadratic_param(4.0);
        let b = quadratic_param(4.0);
        let mut opt_a = Sgd::new(0.02, 0.9);
        let mut opt_b = Sgd::new(0.02, 0.9);
        run_steps(&a, &mut opt_a, 16);
        run_steps(&b, &mut opt_b, 7);
        let state = opt_b.export_state(std::slice::from_ref(&b));
        let mut resumed = Sgd::new(0.02, 0.9);
        resumed.restore_state(std::slice::from_ref(&b), &state);
        run_steps(&b, &mut resumed, 9);
        assert_eq!(a.value().item().to_bits(), b.value().item().to_bits());
    }

    #[test]
    fn untouched_params_export_empty_slots() {
        let p = quadratic_param(1.0);
        let opt = Adam::new(0.1);
        let state = opt.export_state(std::slice::from_ref(&p));
        assert_eq!(state.t, 0);
        assert_eq!(state.m, vec![None]);
        assert_eq!(state.v, vec![None]);
    }

    #[test]
    fn paper_schedule_decays() {
        let s = StepDecay::paper();
        assert_eq!(s.lr_at(0), 0.03);
        assert_eq!(s.lr_at(99), 0.03);
        assert!((s.lr_at(100) - 0.021).abs() < 1e-6);
        assert!((s.lr_at(450) - 0.03 * 0.7f32.powi(4)).abs() < 1e-6);
    }
}
