//! Fully connected layer.

use rand::Rng;

use peb_tensor::{Tensor, Var};

use crate::init::lecun_uniform;
use crate::Parameterized;

/// A dense affine map applied to the trailing feature axis.
///
/// Weights are stored `[in, out]`, so the forward pass is a plain
/// `x · W (+ b)` on `[L, in]` sequences.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Var,
    bias: Option<Var>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer with LeCun-uniform (variance-preserving) weights.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut impl Rng) -> Self {
        let weight = Var::parameter(lecun_uniform(
            &[in_features, out_features],
            in_features,
            rng,
        ));
        let bias = bias.then(|| Var::parameter(Tensor::zeros(&[out_features])));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer to a `[L, in]` sequence, producing `[L, out]`.
    ///
    /// # Panics
    ///
    /// Panics if the trailing axis of `x` is not `in_features`.
    pub fn forward(&self, x: &Var) -> Var {
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }
}

impl Parameterized for Linear {
    fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(4, 3, true, &mut rng);
        let x = Var::constant(Tensor::ones(&[5, 4]));
        let y = layer.forward(&x);
        assert_eq!(y.shape(), vec![5, 3]);
        assert_eq!(layer.parameters().len(), 2);
        assert_eq!(layer.parameter_count(), 4 * 3 + 3);
        let no_bias = Linear::new(4, 3, false, &mut rng);
        assert_eq!(no_bias.parameters().len(), 1);
    }

    #[test]
    fn gradients_reach_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(2, 2, true, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 2]));
        layer.forward(&x).sum().backward();
        for p in layer.parameters() {
            let g = p.grad().expect("gradient");
            assert!(g.data().iter().any(|v| *v != 0.0) || g.len() == 2);
        }
    }

    #[test]
    fn zero_bias_at_init() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Linear::new(3, 3, true, &mut rng);
        let x = Var::constant(Tensor::zeros(&[1, 3]));
        assert_eq!(layer.forward(&x).value().data(), &[0.0, 0.0, 0.0]);
    }
}
