//! Weight initialisation.

use rand::Rng;

use peb_tensor::Tensor;

/// Kaiming/He uniform bound `√(6 / fan_in)` (gain for rectifier-family
/// activations).
pub fn kaiming_bound(fan_in: usize) -> f32 {
    (6.0 / fan_in.max(1) as f32).sqrt()
}

/// Kaiming-uniform tensor for a weight of the given shape and fan-in.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let b = kaiming_bound(fan_in);
    Tensor::rand_uniform(shape, -b, b, rng)
}

/// LeCun/Xavier-style uniform bound `√(3 / fan_in)` — unit output
/// variance for layers *not* followed by a rectifier.
///
/// Deep stacks of attention/SSM projections initialised with the
/// rectifier gain (√2 per layer) blow up multiplicatively; gain-free
/// layers use this bound instead.
pub fn lecun_bound(fan_in: usize) -> f32 {
    (3.0 / fan_in.max(1) as f32).sqrt()
}

/// LeCun-uniform tensor for a weight of the given shape and fan-in.
pub fn lecun_uniform(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let b = lecun_bound(fan_in);
    Tensor::rand_uniform(shape, -b, b, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bound_shrinks_with_fan_in() {
        assert!(kaiming_bound(64) < kaiming_bound(4));
        assert!(kaiming_bound(0).is_finite());
    }

    #[test]
    fn values_respect_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_uniform(&[32, 32], 32, &mut rng);
        let b = kaiming_bound(32);
        assert!(w.max_value() <= b && w.min_value() >= -b);
        // Not degenerate.
        assert!(w.max_value() > 0.0 && w.min_value() < 0.0);
    }
}
