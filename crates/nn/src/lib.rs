//! Neural-network building blocks on the `peb-tensor` autograd engine.
//!
//! Everything the SDM-PEB model and its baselines need: linear layers,
//! dense and depthwise convolutions (2-D and 3-D), transposed convolutions
//! for the decoder, layer normalisation, the reduction-ratio efficient
//! self-attention of the paper's Eq. 15, overlapped patch embedding
//! (Fig. 3), MLP blocks, and SGD/Adam optimisers with the paper's
//! step-decay schedule.
//!
//! # Conventions
//!
//! * Volumes are `[C, D, H, W]`; token sequences are `[L, C]`.
//! * There is no batch axis — training accumulates gradients over clips
//!   exactly as the paper does ("batch size of 8 by accumulating
//!   gradients over 8 clips").
//! * Every layer exposes `parameters()` for the optimiser.
//!
//! # Example
//!
//! ```
//! use peb_nn::{Linear, Adam, Optimizer, Parameterized};
//! use peb_tensor::{Tensor, Var};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let layer = Linear::new(4, 2, true, &mut rng);
//! let mut opt = Adam::new(1e-2);
//! let x = Var::constant(Tensor::ones(&[3, 4]));
//! let loss = layer.forward(&x).square().mean();
//! loss.backward();
//! opt.step(&layer.parameters());
//! ```

mod attention;
mod conv;
mod init;
mod linear;
mod mlp;
mod norm;
mod optim;
mod patch;

pub use attention::EfficientSelfAttention;
pub use conv::{Conv2d, Conv3d, ConvTranspose2d, DwConv3d};
pub use init::{kaiming_bound, kaiming_uniform, lecun_bound, lecun_uniform};
pub use linear::Linear;
pub use mlp::{Mlp, MlpAct};
pub use norm::LayerNorm;
pub use optim::{Adam, OptimState, Optimizer, Sgd, StepDecay};
pub use patch::OverlappedPatchEmbed;

use peb_tensor::Var;

/// Anything that owns trainable parameters.
pub trait Parameterized {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Var>;

    /// Total number of scalar weights.
    fn parameter_count(&self) -> usize {
        self.parameters().iter().map(|p| p.value().len()).sum()
    }
}
