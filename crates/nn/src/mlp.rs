//! Two-layer MLP (feed-forward network) block.

use rand::Rng;

use peb_tensor::Var;

use crate::{Linear, Parameterized};

/// Activation used between the two projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlpAct {
    /// GELU (transformer default).
    Gelu,
    /// SiLU (SDM-unit convention).
    Silu,
    /// Leaky ReLU with slope 0.01.
    LeakyRelu,
}

/// `Linear → activation → Linear` feed-forward block on `[L, C]`.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    act: MlpAct,
}

impl Mlp {
    /// Creates a block with the given hidden width and GELU activation.
    pub fn new(dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Self::with_activation(dim, hidden, dim, MlpAct::Gelu, rng)
    }

    /// Full-control constructor.
    pub fn with_activation(
        dim_in: usize,
        hidden: usize,
        dim_out: usize,
        act: MlpAct,
        rng: &mut impl Rng,
    ) -> Self {
        Mlp {
            fc1: Linear::new(dim_in, hidden, true, rng),
            fc2: Linear::new(hidden, dim_out, true, rng),
            act,
        }
    }

    /// Applies the block to `[L, C_in]`, producing `[L, C_out]`.
    pub fn forward(&self, x: &Var) -> Var {
        let h = self.fc1.forward(x);
        let h = match self.act {
            MlpAct::Gelu => h.gelu(),
            MlpAct::Silu => h.silu(),
            MlpAct::LeakyRelu => h.leaky_relu(0.01),
        };
        self.fc2.forward(&h)
    }
}

impl Parameterized for Mlp {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.fc1.parameters();
        p.extend(self.fc2.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(26);
        let mlp = Mlp::with_activation(4, 16, 2, MlpAct::Silu, &mut rng);
        let x = Var::constant(Tensor::ones(&[3, 4]));
        assert_eq!(mlp.forward(&x).shape(), vec![3, 2]);
        assert_eq!(mlp.parameters().len(), 4);
    }

    #[test]
    fn nonlinearity_present() {
        // f(2x) != 2 f(x) for a nonlinear block (bias-free check at two
        // scales would still catch pure linearity with bias).
        let mut rng = StdRng::seed_from_u64(27);
        let mlp = Mlp::new(3, 8, &mut rng);
        let x = Tensor::randn(&[2, 3], &mut rng);
        let y1 = mlp.forward(&Var::constant(x.clone())).value_clone();
        let y2 = mlp.forward(&Var::constant(x.mul_scalar(2.0))).value_clone();
        assert!(y2.max_abs_diff(&y1.mul_scalar(2.0)) > 1e-4);
    }
}
