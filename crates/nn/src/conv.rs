//! Convolution layers: dense 2-D/3-D (im2col + GEMM), depthwise 3-D, and
//! transposed 2-D for the decoder.
//!
//! All convolutions are implemented as custom autograd operations with
//! analytic backward passes; the gradient-check tests at the bottom verify
//! them against finite differences.

use rand::Rng;

use peb_tensor::{Tensor, Var};

use crate::init::kaiming_uniform;
use crate::Parameterized;

// ---------------------------------------------------------------------------
// Raw im2col machinery (2-D)
// ---------------------------------------------------------------------------

fn out_extent(n: usize, k: usize, stride: usize, pad: usize) -> usize {
    (n + 2 * pad).saturating_sub(k) / stride + 1
}

/// Unfolds `[Cin, H, W]` into a `[Cin·kh·kw, Ho·Wo]` patch matrix.
///
/// Channels unfold in parallel: each channel owns a disjoint `kh·kw·Ho·Wo`
/// block of the patch matrix, so the result is thread-count independent.
fn im2col2(input: &Tensor, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
    let (cin, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (ho, wo) = (
        out_extent(h, kh, stride, pad),
        out_extent(w, kw, stride, pad),
    );
    let src = input.data();
    let cols = ho * wo;
    let per_c = kh * kw * cols;
    peb_obs::optrace::note("conv.im2col", || {
        format!("cin={cin} hw={h}x{w} k={kh}x{kw} stride={stride} pad={pad} cols={cols}")
    });
    // Pooled patch matrix: `zeros` checks the (large) buffer out of the
    // thread-local pool instead of allocating it on every forward and
    // backward pass.
    let mut out = Tensor::zeros(&[cin * kh * kw, cols]);
    peb_par::parallel_chunks_mut_cost(out.data_mut(), per_c, 4, |offset, chunk| {
        let c = offset / per_c;
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ky * kw + kx) * cols;
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for ox in 0..wo {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            src[(c * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        chunk[row + oy * wo + ox] = v;
                    }
                }
            }
        }
    });
    peb_obs::count(peb_obs::Counter::Im2colBytes, 4 * (cin * per_c) as u64);
    out
}

/// Adjoint of [`im2col2`]: folds a patch matrix back into `[Cin, H, W]`,
/// accumulating overlaps.
#[allow(clippy::too_many_arguments)]
fn col2im2(
    cols_t: &Tensor,
    cin: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (ho, wo) = (
        out_extent(h, kh, stride, pad),
        out_extent(w, kw, stride, pad),
    );
    let src = cols_t.data();
    let mut out = Tensor::zeros(&[cin, h, w]);
    let cols = ho * wo;
    let per_c = h * w;
    peb_obs::count(peb_obs::Counter::Im2colBytes, 4 * cols_t.len() as u64);
    // Overlap accumulation stays sequential *within* a channel, and
    // channels scatter into disjoint `[h·w]` planes — deterministic.
    peb_par::parallel_chunks_mut_cost(
        out.data_mut(),
        per_c,
        4 * (kh * kw) as u64,
        |offset, dst| {
            let c = offset / per_c;
            for ky in 0..kh {
                for kx in 0..kw {
                    let row = ((c * kh + ky) * kw + kx) * cols;
                    for oy in 0..ho {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..wo {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dst[iy as usize * w + ix as usize] += src[row + oy * wo + ox];
                        }
                    }
                }
            }
        },
    );
    out
}

// ---------------------------------------------------------------------------
// Raw im2col machinery (3-D)
// ---------------------------------------------------------------------------

/// Unfolds `[Cin, D, H, W]` into `[Cin·kd·kh·kw, Do·Ho·Wo]`.
#[allow(clippy::too_many_arguments)]
fn im2col3(
    input: &Tensor,
    kd: usize,
    kh: usize,
    kw: usize,
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
) -> Tensor {
    let s = input.shape();
    let dd = out_extent(s[1], kd, stride.0, pad.0);
    im2col3_range(input, kd, kh, kw, stride, pad, 0, dd)
}

/// Unfolds the output-depth slab `[oz0, oz1)` of `[Cin, D, H, W]` into
/// `[Cin·kd·kh·kw, (oz1−oz0)·Ho·Wo]` — the corresponding column block of
/// the full [`im2col3`] matrix, filled with identical per-element loads.
#[allow(clippy::too_many_arguments)]
fn im2col3_range(
    input: &Tensor,
    kd: usize,
    kh: usize,
    kw: usize,
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
    oz0: usize,
    oz1: usize,
) -> Tensor {
    let s = input.shape();
    let (cin, d, h, w) = (s[0], s[1], s[2], s[3]);
    let (hh, ww) = (
        out_extent(h, kh, stride.1, pad.1),
        out_extent(w, kw, stride.2, pad.2),
    );
    let src = input.data();
    let cols = (oz1 - oz0) * hh * ww;
    let per_c = kd * kh * kw * cols;
    peb_obs::optrace::note("conv.im2col3", || {
        format!("cin={cin} dhw={d}x{h}x{w} k={kd}x{kh}x{kw} oz={oz0}..{oz1} cols={cols}")
    });
    // Pooled patch matrix, as in `im2col2`.
    let mut out = Tensor::zeros(&[cin * kd * kh * kw, cols]);
    peb_par::parallel_chunks_mut_cost(out.data_mut(), per_c, 4, |offset, chunk| {
        let c = offset / per_c;
        for kz in 0..kd {
            for ky in 0..kh {
                for kx in 0..kw {
                    let row = ((kz * kh + ky) * kw + kx) * cols;
                    let mut col = 0usize;
                    for oz in oz0..oz1 {
                        let iz = (oz * stride.0 + kz) as isize - pad.0 as isize;
                        for oy in 0..hh {
                            let iy = (oy * stride.1 + ky) as isize - pad.1 as isize;
                            for ox in 0..ww {
                                let ix = (ox * stride.2 + kx) as isize - pad.2 as isize;
                                let v = if iz >= 0
                                    && iz < d as isize
                                    && iy >= 0
                                    && iy < h as isize
                                    && ix >= 0
                                    && ix < w as isize
                                {
                                    src[((c * d + iz as usize) * h + iy as usize) * w + ix as usize]
                                } else {
                                    0.0
                                };
                                chunk[row + col] = v;
                                col += 1;
                            }
                        }
                    }
                }
            }
        }
    });
    peb_obs::count(peb_obs::Counter::Im2colBytes, 4 * (cin * per_c) as u64);
    out
}

/// Adjoint of [`im2col3`].
#[allow(clippy::too_many_arguments)]
fn col2im3(
    cols_t: &Tensor,
    cin: usize,
    d: usize,
    h: usize,
    w: usize,
    kd: usize,
    kh: usize,
    kw: usize,
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
) -> Tensor {
    let (dd, hh, ww) = (
        out_extent(d, kd, stride.0, pad.0),
        out_extent(h, kh, stride.1, pad.1),
        out_extent(w, kw, stride.2, pad.2),
    );
    let src = cols_t.data();
    let mut out = Tensor::zeros(&[cin, d, h, w]);
    let cols = dd * hh * ww;
    let per_c = d * h * w;
    peb_obs::count(peb_obs::Counter::Im2colBytes, 4 * cols_t.len() as u64);
    peb_par::parallel_chunks_mut_cost(
        out.data_mut(),
        per_c,
        4 * (kd * kh * kw) as u64,
        |offset, dst| {
            let c = offset / per_c;
            for kz in 0..kd {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let row = (((c * kd + kz) * kh + ky) * kw + kx) * cols;
                        let mut col = 0usize;
                        for oz in 0..dd {
                            let iz = (oz * stride.0 + kz) as isize - pad.0 as isize;
                            for oy in 0..hh {
                                let iy = (oy * stride.1 + ky) as isize - pad.1 as isize;
                                for ox in 0..ww {
                                    let ix = (ox * stride.2 + kx) as isize - pad.2 as isize;
                                    if iz >= 0
                                        && iz < d as isize
                                        && iy >= 0
                                        && iy < h as isize
                                        && ix >= 0
                                        && ix < w as isize
                                    {
                                        dst[(iz as usize * h + iy as usize) * w + ix as usize] +=
                                            src[row + col];
                                    }
                                    col += 1;
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    out
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// Dense 2-D convolution on `[Cin, H, W]` volumes.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Var, // [Cout, Cin·kh·kw] (GEMM layout)
    bias: Option<Var>,
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates a square-kernel layer.
    pub fn new(
        cin: usize,
        cout: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = cin * kernel * kernel;
        let weight = Var::parameter(kaiming_uniform(&[cout, fan_in], fan_in, rng));
        let bias = bias.then(|| Var::parameter(Tensor::zeros(&[cout])));
        Conv2d {
            weight,
            bias,
            cin,
            cout,
            kernel,
            stride,
            pad,
        }
    }

    /// Output spatial extents for an input of `(h, w)`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            out_extent(h, self.kernel, self.stride, self.pad),
            out_extent(w, self.kernel, self.stride, self.pad),
        )
    }

    /// Applies the convolution to `[Cin, H, W]`, producing `[Cout, Ho, Wo]`.
    ///
    /// # Panics
    ///
    /// Panics if the channel count mismatches.
    pub fn forward(&self, x: &Var) -> Var {
        let xs = x.shape();
        assert_eq!(xs[0], self.cin, "Conv2d expects {} channels", self.cin);
        let (h, w) = (xs[1], xs[2]);
        let (ho, wo) = self.output_hw(h, w);
        let (k, stride, pad, cin, cout) = (self.kernel, self.stride, self.pad, self.cin, self.cout);
        let _span = peb_obs::span("conv.conv2d_fwd");
        let col = im2col2(&x.value(), k, k, stride, pad);
        let mut out = self.weight.value().matmul(&col).expect("conv2d gemm");
        if let Some(b) = &self.bias {
            let bv = b.value();
            let data = out.data_mut();
            for c in 0..cout {
                let bias_c = bv.data()[c];
                for v in &mut data[c * ho * wo..(c + 1) * ho * wo] {
                    *v += bias_c;
                }
            }
        }
        let out = out.reshape(&[cout, ho, wo]).expect("conv2d reshape");
        let xc = x.clone();
        let wc = self.weight.clone();
        let has_bias = self.bias.is_some();
        let mut parents = vec![x.clone(), self.weight.clone()];
        if let Some(b) = &self.bias {
            parents.push(b.clone());
        }
        Var::from_op(out, parents, move |g| {
            let _span = peb_obs::span("conv.conv2d_bwd");
            let gm = g.reshape(&[cout, ho * wo]).expect("conv2d grad reshape");
            let col = im2col2(&xc.value(), k, k, stride, pad);
            // dW = G · colᵀ ; dX = col2im(Wᵀ · G) ; db = Σ_spatial G.
            let dw = gm.matmul(&col.transpose2()).expect("conv2d dw");
            let dcol = wc.value().transpose2().matmul(&gm).expect("conv2d dcol");
            let dx = col2im2(&dcol, cin, h, w, k, k, stride, pad);
            let mut grads = vec![Some(dx), Some(dw)];
            if has_bias {
                let db = gm.sum_axis(1).expect("conv2d db");
                grads.push(Some(db));
            }
            grads
        })
    }
}

impl Parameterized for Conv2d {
    fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

// ---------------------------------------------------------------------------
// Conv3d
// ---------------------------------------------------------------------------

/// Dense 3-D convolution on `[Cin, D, H, W]` volumes, with independent
/// stride/padding per axis.
#[derive(Debug, Clone)]
pub struct Conv3d {
    weight: Var, // [Cout, Cin·kd·kh·kw]
    bias: Option<Var>,
    cin: usize,
    cout: usize,
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
}

impl Conv3d {
    /// Creates a layer with per-axis kernel/stride/padding.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cin: usize,
        cout: usize,
        kernel: (usize, usize, usize),
        stride: (usize, usize, usize),
        pad: (usize, usize, usize),
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = cin * kernel.0 * kernel.1 * kernel.2;
        let weight = Var::parameter(kaiming_uniform(&[cout, fan_in], fan_in, rng));
        let bias = bias.then(|| Var::parameter(Tensor::zeros(&[cout])));
        Conv3d {
            weight,
            bias,
            cin,
            cout,
            kernel,
            stride,
            pad,
        }
    }

    /// Cubic-kernel, stride-1, same-padding convenience constructor.
    pub fn same(cin: usize, cout: usize, k: usize, rng: &mut impl Rng) -> Self {
        let p = k / 2;
        Self::new(cin, cout, (k, k, k), (1, 1, 1), (p, p, p), true, rng)
    }

    /// Output extents for an input of `(d, h, w)`.
    pub fn output_dhw(&self, d: usize, h: usize, w: usize) -> (usize, usize, usize) {
        (
            out_extent(d, self.kernel.0, self.stride.0, self.pad.0),
            out_extent(h, self.kernel.1, self.stride.1, self.pad.1),
            out_extent(w, self.kernel.2, self.stride.2, self.pad.2),
        )
    }

    /// Applies the convolution to `[Cin, D, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if the channel count mismatches.
    pub fn forward(&self, x: &Var) -> Var {
        let xs = x.shape();
        assert_eq!(xs[0], self.cin, "Conv3d expects {} channels", self.cin);
        let (d, h, w) = (xs[1], xs[2], xs[3]);
        let (dd, hh, ww) = self.output_dhw(d, h, w);
        let (kd, kh, kw) = self.kernel;
        let (stride, pad, cin, cout) = (self.stride, self.pad, self.cin, self.cout);
        let _span = peb_obs::span("conv.conv3d_fwd");
        let xv = x.value();
        let wv = self.weight.value();
        // Depth-slab tiling: build the patch matrix and run the GEMM one
        // output-depth slab at a time so the per-slab working set (patch
        // columns + output columns) stays cache-resident instead of
        // streaming the full `Do·Ho·Wo` column space per pass. Bitwise
        // identical to the untiled path: patch fill is pure per-element,
        // and GEMM accumulation order per output element depends only on
        // the K blocking, never on how columns are partitioned. Only the
        // forward tiles — the backward `dw` GEMM and `col2im3` accumulate
        // *across* columns, where slab splits would change bracketing.
        let col_rows = cin * kd * kh * kw;
        let plane = hh * ww;
        let bytes_per_oz = (col_rows + cout) * plane * 4;
        let mut out = match peb_pool::tile::slab_items(bytes_per_oz, dd) {
            Some(sd) if sd < dd => {
                let cols = dd * plane;
                let mut out = Tensor::zeros(&[cout, cols]);
                let mut d0 = 0usize;
                while d0 < dd {
                    let d1 = (d0 + sd).min(dd);
                    let slab = im2col3_range(&xv, kd, kh, kw, stride, pad, d0, d1);
                    let part = wv.matmul(&slab).expect("conv3d gemm slab");
                    let pdata = part.data();
                    let pcols = (d1 - d0) * plane;
                    let odata = out.data_mut();
                    for c in 0..cout {
                        odata[c * cols + d0 * plane..c * cols + d1 * plane]
                            .copy_from_slice(&pdata[c * pcols..(c + 1) * pcols]);
                    }
                    peb_obs::count(peb_obs::Counter::SlabPasses, 1);
                    d0 = d1;
                }
                out
            }
            _ => {
                let col = im2col3(&xv, kd, kh, kw, stride, pad);
                wv.matmul(&col).expect("conv3d gemm")
            }
        };
        drop(xv);
        if let Some(b) = &self.bias {
            let bv = b.value();
            let spatial = dd * hh * ww;
            let data = out.data_mut();
            for c in 0..cout {
                let bias_c = bv.data()[c];
                for v in &mut data[c * spatial..(c + 1) * spatial] {
                    *v += bias_c;
                }
            }
        }
        let out = out.reshape(&[cout, dd, hh, ww]).expect("conv3d reshape");
        let xc = x.clone();
        let wc = self.weight.clone();
        let has_bias = self.bias.is_some();
        let mut parents = vec![x.clone(), self.weight.clone()];
        if let Some(b) = &self.bias {
            parents.push(b.clone());
        }
        Var::from_op(out, parents, move |g| {
            let _span = peb_obs::span("conv.conv3d_bwd");
            let gm = g
                .reshape(&[cout, dd * hh * ww])
                .expect("conv3d grad reshape");
            let col = im2col3(&xc.value(), kd, kh, kw, stride, pad);
            let dw = gm.matmul(&col.transpose2()).expect("conv3d dw");
            let dcol = wc.value().transpose2().matmul(&gm).expect("conv3d dcol");
            let dx = col2im3(&dcol, cin, d, h, w, kd, kh, kw, stride, pad);
            let mut grads = vec![Some(dx), Some(dw)];
            if has_bias {
                grads.push(Some(gm.sum_axis(1).expect("conv3d db")));
            }
            grads
        })
    }
}

impl Parameterized for Conv3d {
    fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

// ---------------------------------------------------------------------------
// Depthwise Conv3d
// ---------------------------------------------------------------------------

/// Depthwise 3-D convolution (groups = channels), stride 1, same padding.
///
/// This is the `DW-Conv3D` block of the paper's Fig. 2/Fig. 5(a): a cheap
/// local refinement applied channel by channel.
#[derive(Debug, Clone)]
pub struct DwConv3d {
    weight: Var, // [C, k, k, k]
    bias: Var,   // [C]
    channels: usize,
    kernel: usize,
}

impl DwConv3d {
    /// Creates a depthwise layer with a cubic kernel (odd `k`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is even (same-padding needs odd kernels).
    pub fn new(channels: usize, kernel: usize, rng: &mut impl Rng) -> Self {
        assert!(kernel % 2 == 1, "DwConv3d requires an odd kernel");
        let fan_in = kernel * kernel * kernel;
        let weight = Var::parameter(kaiming_uniform(
            &[channels, kernel, kernel, kernel],
            fan_in,
            rng,
        ));
        let bias = Var::parameter(Tensor::zeros(&[channels]));
        DwConv3d {
            weight,
            bias,
            channels,
            kernel,
        }
    }

    /// Applies the layer to `[C, D, H, W]`, preserving the shape.
    ///
    /// # Panics
    ///
    /// Panics if the channel count mismatches.
    pub fn forward(&self, x: &Var) -> Var {
        let xs = x.shape();
        assert_eq!(
            xs[0], self.channels,
            "DwConv3d expects {} channels",
            self.channels
        );
        let (c, d, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        let k = self.kernel;
        let p = k / 2;
        let out = dw3_forward(&x.value(), &self.weight.value(), &self.bias.value(), k, p);
        let xc = x.clone();
        let wc = self.weight.clone();
        Var::from_op(
            out,
            vec![x.clone(), self.weight.clone(), self.bias.clone()],
            move |g| {
                let (dx, dw) = dw3_backward(&xc.value(), &wc.value(), g, k, p);
                // Bias gradient: sum of g per channel.
                let mut db = Tensor::zeros(&[c]);
                let spatial = d * h * w;
                for ci in 0..c {
                    db.data_mut()[ci] = g.data()[ci * spatial..(ci + 1) * spatial]
                        .iter()
                        .map(|&v| v as f64)
                        .sum::<f64>() as f32;
                }
                vec![Some(dx), Some(dw), Some(db)]
            },
        )
    }
}

impl Parameterized for DwConv3d {
    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

fn dw3_forward(x: &Tensor, w: &Tensor, b: &Tensor, k: usize, p: usize) -> Tensor {
    let _span = peb_obs::span("conv.dw3_fwd");
    let s = x.shape();
    let (c, d, h, wd) = (s[0], s[1], s[2], s[3]);
    let mut out = Tensor::zeros(s);
    let xd = x.data();
    let wdat = w.data();
    let per_c = d * h * wd;
    let _ = c;
    // Depthwise by definition: channel `ci` reads and writes only its own
    // plane, so channels fan out with no cross-talk.
    peb_par::parallel_chunks_mut_cost(
        out.data_mut(),
        per_c,
        2 * (k * k * k) as u64,
        |offset, od| {
            let ci = offset / per_c;
            let wbase = ci * k * k * k;
            for z in 0..d {
                for y in 0..h {
                    for xx in 0..wd {
                        let mut acc = b.data()[ci];
                        for kz in 0..k {
                            let iz = z as isize + kz as isize - p as isize;
                            if iz < 0 || iz >= d as isize {
                                continue;
                            }
                            for ky in 0..k {
                                let iy = y as isize + ky as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = xx as isize + kx as isize - p as isize;
                                    if ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    acc += wdat[wbase + (kz * k + ky) * k + kx]
                                        * xd[((ci * d + iz as usize) * h + iy as usize) * wd
                                            + ix as usize];
                                }
                            }
                        }
                        od[(z * h + y) * wd + xx] = acc;
                    }
                }
            }
        },
    );
    out
}

fn dw3_backward(x: &Tensor, w: &Tensor, g: &Tensor, k: usize, p: usize) -> (Tensor, Tensor) {
    let _span = peb_obs::span("conv.dw3_bwd");
    let s = x.shape();
    let (c, d, h, wd) = (s[0], s[1], s[2], s[3]);
    let mut dx = Tensor::zeros(s);
    let mut dw = Tensor::zeros(w.shape());
    let xd = x.data();
    let wdat = w.data();
    let gd = g.data();
    let per_c = d * h * wd;
    let _ = c;
    // dX: channel ci's gradient scatters only into its own plane.
    peb_par::parallel_chunks_mut_cost(
        dx.data_mut(),
        per_c,
        2 * (k * k * k) as u64,
        |offset, dxd| {
            let ci = offset / per_c;
            let wbase = ci * k * k * k;
            for z in 0..d {
                for y in 0..h {
                    for xx in 0..wd {
                        let gv = gd[((ci * d + z) * h + y) * wd + xx];
                        if gv == 0.0 {
                            continue;
                        }
                        for kz in 0..k {
                            let iz = z as isize + kz as isize - p as isize;
                            if iz < 0 || iz >= d as isize {
                                continue;
                            }
                            for ky in 0..k {
                                let iy = y as isize + ky as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = xx as isize + kx as isize - p as isize;
                                    if ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    dxd[(iz as usize * h + iy as usize) * wd + ix as usize] +=
                                        gv * wdat[wbase + (kz * k + ky) * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    // dW: each channel accumulates its own k³ taps, in the sequential
    // spatial order (accumulation order is thread-count independent).
    peb_par::parallel_chunks_mut_cost(
        dw.data_mut(),
        k * k * k,
        2 * (d * h * wd) as u64,
        |offset, dwd| {
            let ci = offset / (k * k * k);
            for z in 0..d {
                for y in 0..h {
                    for xx in 0..wd {
                        let gv = gd[((ci * d + z) * h + y) * wd + xx];
                        if gv == 0.0 {
                            continue;
                        }
                        for kz in 0..k {
                            let iz = z as isize + kz as isize - p as isize;
                            if iz < 0 || iz >= d as isize {
                                continue;
                            }
                            for ky in 0..k {
                                let iy = y as isize + ky as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = xx as isize + kx as isize - p as isize;
                                    if ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    dwd[(kz * k + ky) * k + kx] += gv
                                        * xd[((ci * d + iz as usize) * h + iy as usize) * wd
                                            + ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    (dx, dw)
}

// ---------------------------------------------------------------------------
// ConvTranspose2d
// ---------------------------------------------------------------------------

/// Transposed 2-D convolution (decoder upsampling).
///
/// Weight layout `[Cin, Cout, k, k]`; output extent
/// `(n − 1)·stride + k − 2·pad`.
#[derive(Debug, Clone)]
pub struct ConvTranspose2d {
    weight: Var,
    bias: Var,
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl ConvTranspose2d {
    /// Creates a layer.
    pub fn new(
        cin: usize,
        cout: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = cin * kernel * kernel;
        let weight = Var::parameter(kaiming_uniform(&[cin, cout, kernel, kernel], fan_in, rng));
        let bias = Var::parameter(Tensor::zeros(&[cout]));
        ConvTranspose2d {
            weight,
            bias,
            cin,
            cout,
            kernel,
            stride,
            pad,
        }
    }

    /// Output extents for an input of `(h, w)`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - 1) * self.stride + self.kernel - 2 * self.pad,
            (w - 1) * self.stride + self.kernel - 2 * self.pad,
        )
    }

    /// Applies the layer to `[Cin, H, W]`, producing `[Cout, Ho, Wo]`.
    ///
    /// # Panics
    ///
    /// Panics if the channel count mismatches.
    pub fn forward(&self, x: &Var) -> Var {
        let xs = x.shape();
        assert_eq!(
            xs[0], self.cin,
            "ConvTranspose2d expects {} channels",
            self.cin
        );
        let (h, w) = (xs[1], xs[2]);
        let (ho, wo) = self.output_hw(h, w);
        let (k, stride, pad, cin, cout) = (self.kernel, self.stride, self.pad, self.cin, self.cout);
        let out = convt2_forward(
            &x.value(),
            &self.weight.value(),
            &self.bias.value(),
            ho,
            wo,
            k,
            stride,
            pad,
        );
        let xc = x.clone();
        let wc = self.weight.clone();
        Var::from_op(
            out,
            vec![x.clone(), self.weight.clone(), self.bias.clone()],
            move |g| {
                let (dx, dw) = convt2_backward(&xc.value(), &wc.value(), g, k, stride, pad);
                let mut db = Tensor::zeros(&[cout]);
                let spatial = ho * wo;
                for co in 0..cout {
                    db.data_mut()[co] = g.data()[co * spatial..(co + 1) * spatial]
                        .iter()
                        .map(|&v| v as f64)
                        .sum::<f64>() as f32;
                }
                let _ = cin;
                vec![Some(dx), Some(dw), Some(db)]
            },
        )
    }
}

impl Parameterized for ConvTranspose2d {
    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// GEMM formulation of the transposed convolution: `col = Wᵀ·x` followed
/// by a strided [`col2im2`] scatter. Identical math to the direct scatter
/// loops, ~an order of magnitude faster on decoder-sized tensors.
#[allow(clippy::too_many_arguments)]
fn convt2_forward(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    ho: usize,
    wo: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let _span = peb_obs::span("conv.convt2_fwd");
    let (cin, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let cout = w.shape()[1];
    // W [cin, cout·k·k] → transpose → [cout·k·k, cin]; x as [cin, H·W].
    let wmat = w
        .reshape(&[cin, cout * k * k])
        .expect("convt weight mat")
        .transpose2();
    let xmat = x.reshape(&[cin, h * wd]).expect("convt input mat");
    let col = wmat.matmul(&xmat).expect("convt gemm");
    let mut out = col2im2(&col, cout, ho, wo, k, k, stride, pad);
    let od = out.data_mut();
    for (co, &bias_c) in b.data().iter().enumerate() {
        for v in &mut od[co * ho * wo..(co + 1) * ho * wo] {
            *v += bias_c;
        }
    }
    out
}

fn convt2_backward(
    x: &Tensor,
    w: &Tensor,
    g: &Tensor,
    k: usize,
    stride: usize,
    pad: usize,
) -> (Tensor, Tensor) {
    let _span = peb_obs::span("conv.convt2_bwd");
    let (cin, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let cout = w.shape()[1];
    // dX = W_mat · im2col(dY); dW = im2col(dY) · Xᵀ (transposed back).
    let gcol = im2col2(g, k, k, stride, pad); // [cout·k·k, H·W]
    let wmat = w.reshape(&[cin, cout * k * k]).expect("convt weight mat");
    let dx = wmat
        .matmul(&gcol)
        .expect("convt dx gemm")
        .reshape(&[cin, h, wd])
        .expect("convt dx reshape");
    let xmat = x.reshape(&[cin, h * wd]).expect("convt x mat");
    let dw = gcol
        .matmul(&xmat.transpose2())
        .expect("convt dw gemm")
        .transpose2()
        .reshape(w.shape())
        .expect("convt dw reshape");
    (dx, dw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv2d_identity_kernel() {
        let mut rng = StdRng::seed_from_u64(5);
        let conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng);
        conv.weight.set_value(Tensor::ones(&[1, 1]));
        let x = Var::constant(Tensor::from_fn(&[1, 4, 4], |i| i as f32));
        let y = conv.forward(&x);
        assert!(y.value().approx_eq(&x.value(), 1e-6));
    }

    #[test]
    fn conv2d_shapes_with_stride_and_pad() {
        let mut rng = StdRng::seed_from_u64(6);
        let conv = Conv2d::new(2, 3, 3, 2, 1, true, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 8, 8]));
        assert_eq!(conv.forward(&x).shape(), vec![3, 4, 4]);
    }

    #[test]
    fn conv2d_matches_direct_computation() {
        let mut rng = StdRng::seed_from_u64(7);
        let conv = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng);
        let x = Var::constant(Tensor::randn(&[1, 5, 5], &mut rng));
        let y = conv.forward(&x);
        // Direct correlation at a middle pixel.
        let wv = conv.weight.value_clone();
        let xv = x.value_clone();
        let mut expect = 0f32;
        for ky in 0..3usize {
            for kx in 0..3usize {
                expect += wv.data()[ky * 3 + kx] * xv.get(&[0, 1 + ky, 1 + kx]);
            }
        }
        assert!((y.value().get(&[0, 2, 2]) - expect).abs() < 1e-4);
    }

    #[test]
    fn conv3d_tiled_forward_is_bitwise_identical_to_untiled() {
        let mut rng = StdRng::seed_from_u64(42);
        let conv = Conv3d::new(3, 5, (3, 3, 3), (1, 1, 1), (1, 1, 1), true, &mut rng);
        let x = Var::constant(Tensor::randn(&[3, 12, 10, 10], &mut rng));
        // Tiny target → one output plane per slab.
        peb_pool::tile::set_tile_bytes(Some(1));
        let tiled = conv.forward(&x).value_clone();
        peb_pool::tile::set_tile_bytes(None);
        let untiled = conv.forward(&x).value_clone();
        peb_pool::tile::set_tile_bytes(Some(peb_pool::tile::DEFAULT_TILE_BYTES));
        assert_eq!(tiled.shape(), untiled.shape());
        for (a, b) in tiled.data().iter().zip(untiled.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn conv2d_gradcheck() {
        let mut rng = StdRng::seed_from_u64(8);
        let conv = Conv2d::new(2, 2, 3, 2, 1, true, &mut rng);
        let x0 = Tensor::randn(&[2, 5, 5], &mut rng);
        let r = check_gradients(
            &Var::parameter(x0),
            |v| conv.forward(v).square().sum(),
            1e-2,
        );
        assert!(r.ok(3e-2), "input grad: {r:?}");
        // Weight gradient.
        let x = Var::constant(Tensor::randn(&[2, 5, 5], &mut rng));
        let w0 = conv.weight.value_clone();
        let r = check_gradients(
            &Var::parameter(w0.clone()),
            |wv| {
                conv.weight.set_value(wv.value_clone());
                let out = conv.forward(&x).square().sum();
                // Route gradient through the actual weight parameter by
                // rebuilding: from_op parents reference conv.weight, so copy
                // the computed gradient over.
                out
            },
            1e-2,
        );
        // The closure above can't rebind parents; instead check weight grad
        // directly against numeric differentiation of the loss in w:
        let numeric = peb_tensor::numeric_gradient(
            &w0,
            |wv| {
                conv.weight.set_value(wv.value_clone());
                conv.forward(&x).square().sum()
            },
            1e-2,
        );
        conv.weight.set_value(w0);
        conv.weight.zero_grad();
        conv.forward(&x).square().sum().backward();
        let analytic = conv.weight.grad().unwrap();
        let mut max_rel = 0f32;
        for (a, n) in analytic.data().iter().zip(numeric.data()) {
            max_rel = max_rel.max((a - n).abs() / 1f32.max(a.abs()).max(n.abs()));
        }
        assert!(max_rel < 3e-2, "weight grad rel err {max_rel}");
        let _ = r;
    }

    #[test]
    fn conv3d_shapes_and_gradcheck() {
        let mut rng = StdRng::seed_from_u64(9);
        let conv = Conv3d::new(2, 3, (3, 3, 3), (1, 2, 2), (1, 1, 1), true, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 4, 6, 6]));
        assert_eq!(conv.forward(&x).shape(), vec![3, 4, 3, 3]);
        let x0 = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let small = Conv3d::same(2, 2, 3, &mut rng);
        let r = check_gradients(
            &Var::parameter(x0),
            |v| small.forward(v).square().sum(),
            1e-2,
        );
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    fn dwconv3d_preserves_shape_and_gradchecks() {
        let mut rng = StdRng::seed_from_u64(10);
        let dw = DwConv3d::new(3, 3, &mut rng);
        let x = Var::constant(Tensor::randn(&[3, 3, 4, 4], &mut rng));
        assert_eq!(dw.forward(&x).shape(), vec![3, 3, 4, 4]);
        let x0 = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let dw2 = DwConv3d::new(2, 3, &mut rng);
        let r = check_gradients(&Var::parameter(x0), |v| dw2.forward(v).square().sum(), 1e-2);
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    fn dwconv3d_channels_are_independent() {
        let mut rng = StdRng::seed_from_u64(11);
        let dw = DwConv3d::new(2, 3, &mut rng);
        // Zeroing channel 1's input only changes channel 1's output.
        let x_full = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        let mut x_zeroed = x_full.clone();
        for v in &mut x_zeroed.data_mut()[2 * 4 * 4..] {
            *v = 0.0;
        }
        let y_full = dw.forward(&Var::constant(x_full)).value_clone();
        let y_zero = dw.forward(&Var::constant(x_zeroed)).value_clone();
        let c0_full = y_full.slice_axis(0, 0, 1).unwrap();
        let c0_zero = y_zero.slice_axis(0, 0, 1).unwrap();
        assert!(c0_full.approx_eq(&c0_zero, 1e-6));
    }

    #[test]
    fn convtranspose_upsamples() {
        let mut rng = StdRng::seed_from_u64(12);
        let up = ConvTranspose2d::new(2, 3, 4, 2, 1, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 5, 5]));
        assert_eq!(up.forward(&x).shape(), vec![3, 10, 10]);
    }

    #[test]
    fn convtranspose_gradcheck() {
        let mut rng = StdRng::seed_from_u64(13);
        let up = ConvTranspose2d::new(2, 2, 3, 2, 1, &mut rng);
        let x0 = Tensor::randn(&[2, 3, 3], &mut rng);
        let r = check_gradients(&Var::parameter(x0), |v| up.forward(v).square().sum(), 1e-2);
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    fn convtranspose_is_conv_adjoint() {
        // <conv(x), y> == <x, convT(y)> when sharing the same weight.
        let mut rng = StdRng::seed_from_u64(14);
        let k = 3;
        let stride = 2;
        let pad = 1;
        let conv = Conv2d::new(1, 1, k, stride, pad, false, &mut rng);
        let x = Tensor::randn(&[1, 7, 7], &mut rng);
        let cy = conv.forward(&Var::constant(x.clone())).value_clone();
        let y = Tensor::randn(cy.shape(), &mut rng);
        let lhs: f32 = cy.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        // Build a transpose layer sharing the weight (reshaped to
        // [Cin=1, Cout=1, k, k]).
        let up = ConvTranspose2d::new(1, 1, k, stride, pad, &mut rng);
        up.bias.set_value(Tensor::zeros(&[1]));
        up.weight
            .set_value(conv.weight.value().reshape(&[1, 1, k, k]).unwrap());
        let ty = up.forward(&Var::constant(y)).value_clone();
        // Output of convT on a 4×4 input is 7×7 here, matching x.
        let rhs: f32 = x.data().iter().zip(ty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
