//! Efficient spatial self-attention with sequence reduction (paper Eq. 15).
//!
//! Standard multi-head attention is `O(L²)`; PEB inputs are large, so the
//! key/value sequence is shortened by a reduction ratio `r`:
//! `K̂ = Reshape(L/r, C·r)(K)`, `K = Linear_{C·r → C}(K̂)`, dropping the
//! complexity to `O(L²/r)` — the SegFormer/PVT trick the paper adopts.

use rand::Rng;

use peb_tensor::Var;

use crate::{Linear, Parameterized};

/// Multi-head self-attention with spatial sequence reduction.
#[derive(Debug, Clone)]
pub struct EfficientSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    reduce: Option<Linear>,
    dim: usize,
    heads: usize,
    reduction: usize,
}

impl EfficientSelfAttention {
    /// Creates an attention block.
    ///
    /// # Panics
    ///
    /// Panics unless `dim` is divisible by `heads` and `reduction ≥ 1`.
    pub fn new(dim: usize, heads: usize, reduction: usize, rng: &mut impl Rng) -> Self {
        assert!(
            dim.is_multiple_of(heads),
            "dim {dim} not divisible by heads {heads}"
        );
        assert!(reduction >= 1, "reduction must be >= 1");
        let reduce = (reduction > 1).then(|| Linear::new(dim * reduction, dim, true, rng));
        EfficientSelfAttention {
            wq: Linear::new(dim, dim, true, rng),
            wk: Linear::new(dim, dim, true, rng),
            wv: Linear::new(dim, dim, true, rng),
            wo: Linear::new(dim, dim, true, rng),
            reduce,
            dim,
            heads,
            reduction,
        }
    }

    /// The configured reduction ratio `r`.
    pub fn reduction(&self) -> usize {
        self.reduction
    }

    /// Applies self-attention to an `[L, C]` sequence.
    ///
    /// # Panics
    ///
    /// Panics if `L` is not divisible by the reduction ratio or `C` is not
    /// the configured dimension.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        assert_eq!(shape.len(), 2, "attention expects [L, C]");
        let (l, c) = (shape[0], shape[1]);
        assert_eq!(c, self.dim, "attention dim mismatch");
        assert!(
            l % self.reduction == 0,
            "sequence length {l} not divisible by reduction {}",
            self.reduction
        );
        let q = self.wq.forward(x); // [L, C]
                                    // Sequence reduction (Eq. 15): fold r consecutive tokens into the
                                    // channel axis, then project back to C.
        let kv_in = match &self.reduce {
            Some(proj) => {
                let folded = x.reshape(&[l / self.reduction, c * self.reduction]);
                proj.forward(&folded) // [L/r, C]
            }
            None => x.clone(),
        };
        let k = self.wk.forward(&kv_in); // [Lr, C]
        let v = self.wv.forward(&kv_in); // [Lr, C]
        let lr = l / self.reduction;
        let dh = self.dim / self.heads;
        // Split heads: [L, C] -> [h, L, dh].
        let qh = q.reshape(&[l, self.heads, dh]).permute(&[1, 0, 2]);
        let kh = k.reshape(&[lr, self.heads, dh]).permute(&[1, 2, 0]); // [h, dh, Lr]
        let vh = v.reshape(&[lr, self.heads, dh]).permute(&[1, 0, 2]); // [h, Lr, dh]
        let scale = 1.0 / (dh as f32).sqrt();
        let scores = qh.bmm(&kh).mul_scalar(scale); // [h, L, Lr]
        let attn = scores.softmax(2);
        let ctx = attn.bmm(&vh); // [h, L, dh]
        let merged = ctx.permute(&[1, 0, 2]).reshape(&[l, self.dim]);
        self.wo.forward(&merged)
    }
}

impl Parameterized for EfficientSelfAttention {
    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.wq.parameters());
        p.extend(self.wk.parameters());
        p.extend(self.wv.parameters());
        p.extend(self.wo.parameters());
        if let Some(r) = &self.reduce {
            p.extend(r.parameters());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::{check_gradients, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_with_and_without_reduction() {
        let mut rng = StdRng::seed_from_u64(17);
        let x = Var::constant(Tensor::randn(&[16, 8], &mut rng));
        for r in [1usize, 4] {
            let attn = EfficientSelfAttention::new(8, 2, r, &mut rng);
            assert_eq!(attn.forward(&x).shape(), vec![16, 8]);
        }
    }

    #[test]
    fn reduction_shrinks_parameter_of_kv_path_not_output() {
        let mut rng = StdRng::seed_from_u64(18);
        let plain = EfficientSelfAttention::new(8, 2, 1, &mut rng);
        let reduced = EfficientSelfAttention::new(8, 2, 4, &mut rng);
        // Reduced variant has an extra projection.
        assert!(reduced.parameter_count() > plain.parameter_count());
    }

    #[test]
    fn attention_mixes_information_across_tokens() {
        let mut rng = StdRng::seed_from_u64(19);
        let attn = EfficientSelfAttention::new(4, 1, 1, &mut rng);
        // Two inputs differing only in token 0 must differ in token 3's
        // output (global mixing).
        let mut a = Tensor::randn(&[4, 4], &mut rng);
        let b = {
            let mut b = a.clone();
            b.data_mut()[0] += 1.0;
            b
        };
        let ya = attn.forward(&Var::constant(a.clone())).value_clone();
        let yb = attn.forward(&Var::constant(b)).value_clone();
        let row3_a = ya.slice_axis(0, 3, 4).unwrap();
        let row3_b = yb.slice_axis(0, 3, 4).unwrap();
        assert!(row3_a.max_abs_diff(&row3_b) > 1e-6);
        a.data_mut()[0] += 0.0;
    }

    #[test]
    fn gradcheck_small_attention() {
        let mut rng = StdRng::seed_from_u64(20);
        let attn = EfficientSelfAttention::new(4, 2, 2, &mut rng);
        let x0 = Tensor::randn(&[4, 4], &mut rng);
        let r = check_gradients(
            &Var::parameter(x0),
            |v| attn.forward(v).square().sum(),
            1e-2,
        );
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_sequence_length() {
        let mut rng = StdRng::seed_from_u64(21);
        let attn = EfficientSelfAttention::new(4, 1, 4, &mut rng);
        let x = Var::constant(Tensor::ones(&[6, 4])); // 6 % 4 != 0
        attn.forward(&x);
    }
}
