//! Pins the tiled-forward / untiled-backward round trip: the depth-slab
//! tiled `Conv3d` forward pass feeds an *untiled* backward pass, and the
//! resulting gradients must be bitwise identical to the fully untiled
//! path — plus a numeric gradcheck run entirely under aggressive tiling.
//!
//! This is the contract peb-serve's batched inference and the trainer
//! both rely on: tiling is a memory optimisation, never a numerics
//! change, in either direction of the graph.

use peb_nn::{Conv3d, Parameterized};
use peb_tensor::{check_gradients, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Loss digest + input gradient digest + one digest per parameter
/// gradient, for one forward/backward run at the given tile setting.
fn run(conv: &Conv3d, x0: &Tensor, tile: Option<usize>) -> Vec<u64> {
    peb_pool::tile::set_tile_bytes(tile);
    for p in conv.parameters() {
        p.zero_grad();
    }
    let x = Var::parameter(x0.clone());
    let loss = conv.forward(&x).square().sum();
    loss.backward();
    let mut digests = vec![
        loss.value().bit_digest(),
        x.grad().expect("input grad").bit_digest(),
    ];
    for p in conv.parameters() {
        digests.push(p.grad().expect("param grad").bit_digest());
    }
    peb_pool::tile::set_tile_bytes(Some(peb_pool::tile::DEFAULT_TILE_BYTES));
    digests
}

#[test]
fn tiled_forward_untiled_backward_matches_fully_untiled_bitwise() {
    let mut rng = StdRng::seed_from_u64(4242);
    let conv = Conv3d::new(2, 3, (3, 3, 3), (1, 1, 1), (1, 1, 1), true, &mut rng);
    let x0 = Tensor::randn(&[2, 10, 8, 8], &mut rng);

    // Fully untiled reference.
    let reference = run(&conv, &x0, None);
    // Tile target of 1 byte → one output depth-plane per slab, the most
    // aggressive tiling possible; the backward pass stays untiled by
    // construction (col2im over the full volume).
    let tiled = run(&conv, &x0, Some(1));
    assert_eq!(
        tiled, reference,
        "gradients through a tiled forward must match the untiled path bitwise"
    );
    // An intermediate slab size must agree too (different tile boundary
    // placement, same bits).
    let mid = run(&conv, &x0, Some(64 * 1024));
    assert_eq!(mid, reference, "intermediate tile size diverged");
}

#[test]
fn conv3d_gradcheck_under_aggressive_tiling() {
    let mut rng = StdRng::seed_from_u64(77);
    let conv = Conv3d::new(2, 2, (3, 3, 3), (1, 2, 2), (1, 1, 1), true, &mut rng);
    let x0 = Tensor::randn(&[2, 6, 7, 7], &mut rng);
    peb_pool::tile::set_tile_bytes(Some(1));
    let r = check_gradients(
        &Var::parameter(x0),
        |v| conv.forward(v).square().sum(),
        1e-2,
    );
    peb_pool::tile::set_tile_bytes(Some(peb_pool::tile::DEFAULT_TILE_BYTES));
    assert!(r.ok(3e-2), "tiled-forward gradcheck failed: {r:?}");
}
