//! Property-based tests for the neural-network layers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_nn::{Conv2d, EfficientSelfAttention, LayerNorm, Linear};
use peb_tensor::{Tensor, Var};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_is_linear(seed in 0u64..500, alpha in -2.0f32..2.0) {
        // f(αx + y) = α f(x) + f(y) for a bias-free layer.
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(4, 3, false, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let y = Tensor::randn(&[2, 4], &mut rng);
        let lhs = layer
            .forward(&Var::constant(x.mul_scalar(alpha).add_t(&y).unwrap()))
            .value_clone();
        let rhs = layer
            .forward(&Var::constant(x))
            .value_clone()
            .mul_scalar(alpha)
            .add_t(&layer.forward(&Var::constant(y)).value_clone())
            .unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn conv_is_translation_equivariant_in_the_interior(seed in 0u64..500) {
        // Shifting the input shifts the output (away from borders),
        // stride 1, same padding.
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng);
        let mut x = Tensor::zeros(&[1, 9, 9]);
        x.set(&[0, 3, 3], 1.0);
        let y1 = conv.forward(&Var::constant(x)).value_clone();
        let mut xs = Tensor::zeros(&[1, 9, 9]);
        xs.set(&[0, 4, 5], 1.0);
        let y2 = conv.forward(&Var::constant(xs)).value_clone();
        for dy in 0..3usize {
            for dx in 0..3usize {
                let a = y1.get(&[0, 2 + dy, 2 + dx]);
                let b = y2.get(&[0, 3 + dy, 4 + dx]);
                prop_assert!((a - b).abs() < 1e-5, "impulse response shifted");
            }
        }
    }

    #[test]
    fn layernorm_is_invariant_to_input_affine(
        seed in 0u64..500,
        scale in 0.5f32..4.0,
        shift in -5.0f32..5.0,
    ) {
        // LayerNorm(a·x + b) == LayerNorm(x) for per-token affine maps.
        let mut rng = StdRng::seed_from_u64(seed);
        let ln = LayerNorm::new(6);
        let x = Tensor::randn(&[3, 6], &mut rng);
        let y1 = ln.forward(&Var::constant(x.clone())).value_clone();
        let y2 = ln
            .forward(&Var::constant(x.mul_scalar(scale).add_scalar(shift)))
            .value_clone();
        prop_assert!(y1.max_abs_diff(&y2) < 1e-3);
    }

    #[test]
    fn attention_is_permutation_equivariant_without_reduction(seed in 0u64..500) {
        // With r = 1 self-attention commutes with token permutations.
        let mut rng = StdRng::seed_from_u64(seed);
        let attn = EfficientSelfAttention::new(4, 2, 1, &mut rng);
        let x = Tensor::randn(&[5, 4], &mut rng);
        let y = attn.forward(&Var::constant(x.clone())).value_clone();
        // Rotate tokens by 2.
        let rot = |t: &Tensor| {
            Tensor::from_fn(&[5, 4], |i| {
                let (row, col) = (i / 4, i % 4);
                t.get(&[(row + 2) % 5, col])
            })
        };
        let y_rot_in = attn.forward(&Var::constant(rot(&x))).value_clone();
        prop_assert!(y_rot_in.max_abs_diff(&rot(&y)) < 1e-4);
    }

    #[test]
    fn adam_never_moves_parameters_without_gradients(seed in 0u64..500) {
        use peb_nn::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Var::parameter(Tensor::randn(&[4], &mut rng));
        let before = p.value_clone();
        let mut opt = Adam::new(0.1);
        opt.step(std::slice::from_ref(&p));
        prop_assert!(p.value_clone().approx_eq(&before, 0.0));
    }
}
