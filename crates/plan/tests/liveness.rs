//! Property test for the liveness-analysis safety invariant: the
//! planner must never assign two simultaneously-live checkouts to the
//! same arena region, must size every region to its largest occupant,
//! and must never place a never-freed (escaping) checkout in a region.

use std::any::TypeId;
use std::collections::HashMap;

use peb_plan::{AllocEvent, Event, MemPlan, Placement, Trace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random well-formed event stream: every `Free` names a live alloc,
/// no alloc is freed twice, some allocs are deliberately left live.
fn random_trace(seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_events = rng.gen_range(1..120usize);
    let mut events = Vec::new();
    let mut live: Vec<u32> = Vec::new();
    let mut next = 0u32;
    for _ in 0..n_events {
        let do_free = !live.is_empty() && rng.gen_range(0..100u32) < 45;
        if do_free {
            let i = rng.gen_range(0..live.len());
            events.push(Event::Free {
                alloc: live.swap_remove(i),
            });
        } else {
            let (elem_bytes, ty) = if rng.gen_range(0..3u32) == 0 {
                (2usize, TypeId::of::<u16>())
            } else {
                (4usize, TypeId::of::<f32>())
            };
            events.push(Event::Alloc(AllocEvent {
                elems: rng.gen_range(1..50_000usize),
                elem_bytes,
                ty,
            }));
            live.push(next);
            next += 1;
        }
    }
    Trace { events }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_two_live_checkouts_share_a_region(seed in 0u64..1_000_000) {
        let trace = random_trace(seed);
        let plan = MemPlan::from_trace(&trace);

        prop_assert_eq!(plan.allocs.len(), trace.alloc_count());

        // Which allocs are freed inside the window?
        let mut freed = vec![false; plan.allocs.len()];
        for e in &trace.events {
            if let Event::Free { alloc } = e {
                freed[*alloc as usize] = true;
            }
        }

        // Simulate: region -> currently-live alloc id.
        let mut occupied: HashMap<u32, u32> = HashMap::new();
        let mut cursor = 0u32;
        for e in &trace.events {
            match e {
                Event::Alloc(ev) => {
                    let id = cursor;
                    cursor += 1;
                    let (rec_ev, placement) = plan.allocs[id as usize];
                    prop_assert_eq!(rec_ev, *ev, "plan preserves event order");
                    match placement {
                        Placement::Escape => {
                            prop_assert!(
                                !freed[id as usize],
                                "only never-freed checkouts may escape"
                            );
                        }
                        Placement::Region(r) => {
                            prop_assert!(
                                freed[id as usize],
                                "escaping checkouts must not be region-placed"
                            );
                            let spec = plan.regions[r as usize];
                            prop_assert!(
                                spec.cap_elems >= ev.elems,
                                "region must fit its occupant"
                            );
                            prop_assert_eq!(spec.ty, ev.ty, "regions never mix element types");
                            if let Some(&other) = occupied.get(&r) {
                                prop_assert!(
                                    false,
                                    "allocs {} and {} live in region {} simultaneously",
                                    other,
                                    id,
                                    r
                                );
                            }
                            occupied.insert(r, id);
                        }
                    }
                }
                Event::Free { alloc } => {
                    if let (_, Placement::Region(r)) = plan.allocs[*alloc as usize] {
                        prop_assert_eq!(occupied.remove(&r), Some(*alloc));
                    }
                }
            }
        }

        // Aliasing must never lose bytes: the arena is at most the
        // no-reuse footprint, and exactly covers each region's max.
        prop_assert!(plan.arena_bytes() <= plan.logical_bytes().max(plan.arena_bytes()));
    }
}
