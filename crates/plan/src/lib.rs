//! Record-and-replay execution plans for fixed-structure computations.
//!
//! `peb-plan` is the driver over the two lower-level mechanisms this
//! workspace already has:
//!
//! * `peb_pool::arena` — records the pool-checkout stream of one run,
//!   liveness-analyses it into an aliased arena ([`MemPlan`]), and
//!   serves replays from that arena with zero pool traffic and zero
//!   heap allocation;
//! * `peb_obs::optrace` — captures the flat op list (GEMM /
//!   conv-im2col / scan / ADI / stencil / fused-chain / FFT-line
//!   stages with resolved shapes and tile sizes) that the recorded run
//!   actually dispatched.
//!
//! [`Plan::record`] runs a closure **twice**: once un-recorded to warm
//! every latch the computation consults (SIMD dispatch level, tile
//! geometry, FFT plan caches, pool buckets), then once under a
//! recording window. The second run's checkout stream becomes the
//! memory plan; its op stream becomes the plan's op list.
//! [`Plan::replay`] re-executes the same closure with the arena
//! installed — the computation runs exactly the same kernel code as
//! eager execution, so results are **bitwise identical by
//! construction**; only the provenance of intermediate buffers changes.
//!
//! # Determinism prerequisites
//!
//! A plan is valid for a closure whose checkout stream is a pure
//! function of latched state: fixed input shape, fixed precision, fixed
//! dispatch level, fixed thread count. All SDM-PEB inference paths
//! satisfy this (the workspace's bitwise-determinism contract). If the
//! stream ever diverges — a different shape, a precision change — the
//! replay falls back to the ordinary pool mid-run and completes with
//! correct eager semantics; [`Plan::diverged_replays`] exposes the
//! count so callers re-record.
//!
//! # `PEB_PLAN` escape hatch
//!
//! `PEB_PLAN=off` (or `0`/`false`) disables replay: [`Plan::replay`]
//! runs the closure eagerly with no arena. The latch is read once, like
//! `PEB_POOL`/`PEB_TRACE`; tests override it with [`set_enabled`].
//!
//! # Threading
//!
//! A [`Plan`] is deliberately `!Send`: the arena it owns serves
//! checkouts on the thread that recorded them (pool checkouts are
//! thread-local, and worker threads inside `peb-par` regions keep
//! using their own warm pools). Build and replay plans on the thread
//! that owns the computation — the serve engine's model-owner thread,
//! or an ILT driver loop.

use std::cell::Cell;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, Ordering};

pub use peb_obs::optrace::OpDesc;
pub use peb_pool::arena::{
    AllocEvent, Event, MemPlan, Placement, RegionSpec, ReplayOutcome, Trace,
};

use peb_pool::arena::{self, Arena};

const ENABLED_UNINIT: u8 = u8::MAX;
static ENABLED: AtomicU8 = AtomicU8::new(ENABLED_UNINIT);

/// Whether plan replay is active, reading `PEB_PLAN` on first call.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = !matches!(
        std::env::var("PEB_PLAN").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    );
    ENABLED.store(on as u8, Ordering::Relaxed);
    on
}

/// Overrides the `PEB_PLAN` latch (tests, benches).
pub fn set_enabled(on: bool) {
    ENABLED.store(on as u8, Ordering::Relaxed);
}

/// A recorded execution plan: the op list of one computation plus the
/// pre-sized, aliased arena its intermediates replay into.
pub struct Plan {
    mem: Rc<MemPlan>,
    arena: Rc<RefCell<Arena>>,
    ops: Vec<OpDesc>,
    replays: Cell<u64>,
    diverged: Cell<u64>,
}

impl Plan {
    /// Records `f` into a plan. `f` runs **twice** — an un-recorded
    /// warmup (latching SIMD/tile/FFT/pool state) and the recorded run
    /// whose result is returned — so it must be a pure computation:
    /// same checkout stream every invocation at fixed latched state.
    pub fn record<R>(mut f: impl FnMut() -> R) -> (Plan, R) {
        let _warm = f();
        peb_obs::optrace::begin();
        arena::begin_record();
        let out = f();
        let trace = arena::end_record();
        let ops = peb_obs::optrace::finish();
        let mem = Rc::new(MemPlan::from_trace(&trace));
        let arena = Rc::new(RefCell::new(Arena::for_plan(Rc::clone(&mem))));
        (
            Plan {
                mem,
                arena,
                ops,
                replays: Cell::new(0),
                diverged: Cell::new(0),
            },
            out,
        )
    }

    /// Re-executes `f` with the plan's arena installed. Bitwise
    /// identical to eager execution (same kernels run; only buffer
    /// provenance differs). Under `PEB_PLAN=off` this is a plain eager
    /// call. Returns the closure's result and what the replay did.
    pub fn replay<R>(&self, f: impl FnOnce() -> R) -> (R, ReplayOutcome) {
        if !enabled() {
            let out = f();
            return (
                out,
                ReplayOutcome {
                    complete: false,
                    served: 0,
                    escaped: 0,
                    diverged: false,
                },
            );
        }
        arena::begin_replay(&self.arena);
        let out = f();
        let outcome = arena::end_replay();
        if outcome.complete {
            self.replays.set(self.replays.get() + 1);
            peb_obs::count(peb_obs::Counter::PlanReplays, 1);
        } else {
            self.diverged.set(self.diverged.get() + 1);
        }
        (out, outcome)
    }

    /// The flat op list captured while recording, in dispatch order.
    pub fn ops(&self) -> &[OpDesc] {
        &self.ops
    }

    /// The memory plan (placements + region table).
    pub fn mem(&self) -> &MemPlan {
        &self.mem
    }

    /// Arena footprint in bytes (what replays actually touch).
    pub fn arena_bytes(&self) -> usize {
        self.arena.borrow().allocated_bytes()
    }

    /// Bytes the planned intermediates would occupy without aliasing.
    pub fn logical_bytes(&self) -> usize {
        self.mem.logical_bytes()
    }

    /// Number of arena regions (aliased slabs).
    pub fn region_count(&self) -> usize {
        self.mem.regions.len()
    }

    /// Checkouts served from the arena per complete replay.
    pub fn planned_allocs(&self) -> usize {
        self.mem.region_allocs()
    }

    /// Completed (non-diverged) replays of this plan.
    pub fn completed_replays(&self) -> u64 {
        self.replays.get()
    }

    /// Replays that diverged from the recorded stream and fell back to
    /// the pool. Non-zero means the plan is stale for its call site.
    pub fn diverged_replays(&self) -> u64 {
        self.diverged.get()
    }

    /// Renders the op list as one line per op (`kind detail`), for
    /// debugging and the bench report.
    pub fn describe_ops(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(op.kind);
            if !op.detail.is_empty() {
                out.push(' ');
                out.push_str(&op.detail);
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("ops", &self.ops.len())
            .field("regions", &self.region_count())
            .field("planned_allocs", &self.planned_allocs())
            .field("arena_bytes", &self.arena_bytes())
            .field("logical_bytes", &self.logical_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The `PEB_PLAN` latch is process-global; serialise tests that
    /// flip or depend on it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A deterministic "computation": a chain of pooled intermediates
    /// with one escaping output, shaped like a small forward pass.
    fn fake_forward(n: usize) -> Vec<f32> {
        let (mut a, _) = peb_pool::take_zeroed::<f32>(n);
        for (i, x) in a.iter_mut().enumerate() {
            *x = i as f32;
        }
        let (mut b, _) = peb_pool::take_zeroed::<f32>(n * 2);
        for (i, x) in b.iter_mut().enumerate() {
            *x = a[i % n] * 0.5;
        }
        peb_pool::recycle(a);
        let (mut out, _) = peb_pool::take_zeroed::<f32>(n);
        for (i, x) in out.iter_mut().enumerate() {
            *x = b[i] + b[i + n];
        }
        peb_pool::recycle(b);
        out
    }

    #[test]
    fn record_then_replay_is_bitwise_identical_and_allocation_free() {
        let _g = lock();
        peb_pool::set_enabled(true);
        set_enabled(true);
        let (plan, eager) = Plan::record(|| fake_forward(64));
        assert!(plan.planned_allocs() >= 2, "{plan:?}");
        assert!(plan.arena_bytes() > 0);
        for _ in 0..3 {
            let (replayed, outcome) = plan.replay(|| fake_forward(64));
            assert!(outcome.complete, "{outcome:?}");
            assert_eq!(outcome.served as usize, plan.planned_allocs());
            assert_eq!(replayed, eager, "replay must be bitwise identical");
            peb_pool::recycle(replayed);
        }
        assert_eq!(plan.completed_replays(), 3);
        assert_eq!(plan.diverged_replays(), 0);
        peb_pool::recycle(eager);
    }

    #[test]
    fn divergent_replay_still_computes_correctly() {
        let _g = lock();
        peb_pool::set_enabled(true);
        set_enabled(true);
        let (plan, _r) = Plan::record(|| fake_forward(64));
        // Different shape than recorded: diverges, result still right.
        let (replayed, outcome) = plan.replay(|| fake_forward(32));
        assert!(outcome.diverged);
        let eager = fake_forward(32);
        assert_eq!(replayed, eager);
        assert_eq!(plan.diverged_replays(), 1);
    }

    #[test]
    fn latch_off_runs_eagerly() {
        let _g = lock();
        peb_pool::set_enabled(true);
        set_enabled(true);
        let (plan, eager) = Plan::record(|| fake_forward(16));
        set_enabled(false);
        let (replayed, outcome) = plan.replay(|| fake_forward(16));
        assert!(!outcome.complete && outcome.served == 0);
        assert_eq!(replayed, eager);
        set_enabled(true);
    }

    #[test]
    fn op_capture_lands_in_the_plan() {
        let _g = lock();
        peb_pool::set_enabled(true);
        let (plan, _r) = Plan::record(|| {
            peb_obs::optrace::note("gemm", || "m=8 k=8 n=8".to_string());
            fake_forward(8)
        });
        assert_eq!(plan.ops().len(), 1);
        assert_eq!(plan.ops()[0].kind, "gemm");
        assert!(plan.describe_ops().contains("gemm m=8 k=8 n=8"));
    }
}
