//! Thread-local, size-bucketed scratch-buffer pool.
//!
//! Every hot path in the workspace (GEMM panels, im2col workspaces, ADI
//! line scratch, selective-scan lane state, FFT line buffers) used to
//! allocate fresh `Vec`s on every call. This crate recycles those
//! buffers: a checkout pops a previously-returned buffer of sufficient
//! capacity from a power-of-two size bucket, and a return pushes the
//! buffer back for the next caller on the same thread.
//!
//! # Determinism contract
//!
//! Pooling must never change a single bit of any result, at any thread
//! count. Two properties guarantee that:
//!
//! * every checkout hands back a buffer that is **zeroed**
//!   ([`take_zeroed`]) or **empty** ([`take_cleared`], [`take_copy`]) —
//!   recycled garbage is never observable;
//! * the pools are **thread-local** with no cross-thread stealing, so
//!   which buffer a thread reuses cannot depend on scheduling. (The
//!   `peb-par` workers are long-lived, so their pools stay warm across
//!   parallel regions.)
//!
//! # `PEB_POOL` escape hatch
//!
//! Setting `PEB_POOL=off` (or `0`) disables recycling: every checkout
//! allocates fresh storage and every return is dropped, reproducing the
//! pre-pool allocation behaviour exactly. The variable is read once and
//! latched, like `PEB_TRACE`; tests can bypass it with [`set_enabled`].
//!
//! # Observability
//!
//! Checkouts count [`peb_obs::Counter::PoolHits`] /
//! [`peb_obs::Counter::PoolMisses`] (only while tracing is enabled, like
//! every other counter). Callers that account their storage — the tensor
//! crate's `tensor_allocs` — use the `bool` returned by the `take_*`
//! functions: `true` means fresh heap storage was allocated.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU8, Ordering};

pub mod arena;
pub mod tile;

/// Largest pooled buffer: `2^MAX_BUCKET` elements. Checkouts above this
/// always allocate fresh and returns above it are dropped. Sized to
/// cover the 512×512×80 "paper-shape" volumes (≈21 M elements) exercised
/// by `bench_e2e`.
const MAX_BUCKET: usize = 26;

/// Retained bytes per bucket. Depth is the budget divided by the bucket's
/// maximum buffer size, so small buckets hold thousands of buffers (an
/// autograd graph keeps that many same-sized activations live at once and
/// drops them together at step end) while large buckets keep only a few.
const BUCKET_BYTE_BUDGET: usize = 64 << 20;

/// Floor on retained buffers per bucket. An autograd graph at the
/// 512×512×80 paper shape drops dozens of same-sized full-volume
/// activations (~84 MB each) at the end of every step; if the bucket is
/// shallower than that working set, each drop munmaps the pages and the
/// next checkout page-faults freshly kernel-zeroed ones — measured at
/// over 80% of total CPU in system time. Depth must cover the graph's
/// same-size churn, so the floor is sized to it rather than to a byte
/// budget. Retained memory stays bounded by what the workload actually
/// cycled, never beyond its own previous peak.
const MIN_PER_BUCKET: usize = 48;

/// Ceiling on retained buffers per bucket, bounding the tiny-buffer
/// bookkeeping.
const MAX_PER_BUCKET: usize = 8192;

/// Element types the pool can hold: plain-old-data with a zero default
/// (`f32`, the fft crate's `Complex`, …). The `Default` value is what
/// [`take_zeroed`] fills with.
///
/// Each implementor owns a dedicated `thread_local!` bucket array —
/// declared by [`impl_poolable!`] — so the checkout hot path is a direct
/// TLS access with no type-map lookup or dynamic dispatch. Downstream
/// crates pool their own element types with
/// `peb_pool::impl_poolable!(MyType);`.
pub trait Poolable: Copy + Default + 'static {
    /// Runs `f` on the calling thread's buckets for this element type.
    /// Returns `None` during thread-local teardown.
    #[doc(hidden)]
    fn with_buckets<R>(f: impl FnOnce(&mut Buckets<Self>) -> R) -> Option<R>;
}

/// Declares the thread-local bucket storage that makes a plain-old-data
/// (`Copy + Default + 'static`) element type poolable. Invoke once per
/// type, in the crate that owns the type (or here for primitives).
#[macro_export]
macro_rules! impl_poolable {
    ($ty:ty) => {
        impl $crate::Poolable for $ty {
            fn with_buckets<R>(f: impl FnOnce(&mut $crate::Buckets<Self>) -> R) -> Option<R> {
                ::std::thread_local! {
                    static POOL: ::std::cell::RefCell<$crate::Buckets<$ty>> =
                        ::std::cell::RefCell::new($crate::Buckets::new());
                }
                POOL.try_with(|p| f(&mut p.borrow_mut())).ok()
            }
        }
    };
}

impl_poolable!(f32);
impl_poolable!(f64);
impl_poolable!(u64);
impl_poolable!(u32);
impl_poolable!(u16);
impl_poolable!(i8);
impl_poolable!(usize);

const ENABLED_UNINIT: u8 = u8::MAX;
static ENABLED: AtomicU8 = AtomicU8::new(ENABLED_UNINIT);

/// Whether pooling is active, reading `PEB_POOL` on first call.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = !matches!(
        std::env::var("PEB_POOL").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    );
    ENABLED.store(on as u8, Ordering::Relaxed);
    on
}

/// Overrides the `PEB_POOL` latch. Used by differential tests and the
/// pool benchmark to compare pooled against unpooled execution in one
/// process. Disabling does not flush already-pooled buffers; they are
/// simply not handed out until re-enabled.
pub fn set_enabled(on: bool) {
    ENABLED.store(on as u8, Ordering::Relaxed);
}

/// Per-type bucket array: `buckets[b]` holds returned buffers whose
/// capacity `c` satisfies `2^b ≤ c < 2^(b+1)`, so any buffer popped from
/// bucket `b` can serve a checkout of up to `2^b` elements. Public only
/// for the [`impl_poolable!`] macro.
#[doc(hidden)]
pub struct Buckets<T> {
    buckets: [Vec<Vec<T>>; MAX_BUCKET + 1],
}

impl<T> Buckets<T> {
    /// Empty bucket array (one slot per power-of-two size class).
    #[doc(hidden)]
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Buckets {
            buckets: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// Smallest `b` with `2^b ≥ len` (`len ≥ 1`).
fn bucket_for_len(len: usize) -> usize {
    usize::BITS as usize - (len - 1).leading_zeros() as usize
}

/// Largest `b` with `2^b ≤ cap` (`cap ≥ 1`).
fn bucket_for_cap(cap: usize) -> usize {
    usize::BITS as usize - 1 - cap.leading_zeros() as usize
}

fn bucket_depth<T>(b: usize) -> usize {
    // Buffers in bucket `b` have capacity < 2^(b+1).
    let max_bytes = (1usize << (b + 1)) * std::mem::size_of::<T>().max(1);
    (BUCKET_BYTE_BUDGET / max_bytes).clamp(MIN_PER_BUCKET, MAX_PER_BUCKET)
}

/// Pops a recycled buffer with capacity ≥ `len`, or allocates one.
/// The returned vector is always empty (`len() == 0`); the flag is
/// `true` when fresh heap storage was allocated.
fn take_raw<T: Poolable>(len: usize) -> (Vec<T>, bool) {
    if len == 0 {
        return (Vec::new(), false);
    }
    if arena::active() && !peb_par::in_parallel() {
        // A record or replay session is open on this thread. Replay
        // serves the checkout from its planned arena region; record
        // (and replay fall-through: escapes, divergence) takes the
        // normal path below and logs the event. Checkouts made while
        // executing a parallel chunk body stay on the ordinary pool
        // path: chunk claiming is dynamic, so which chunks (and hence
        // which allocations) land on the recording thread is not
        // reproducible across runs.
        if let Some(v) = arena::replay_checkout::<T>(len) {
            return (v, false);
        }
        let out = take_raw_pooled::<T>(len);
        arena::record_checkout::<T>(&out.0, len);
        return out;
    }
    take_raw_pooled(len)
}

/// The ordinary (non-arena) checkout path.
fn take_raw_pooled<T: Poolable>(len: usize) -> (Vec<T>, bool) {
    if !enabled() {
        return (Vec::with_capacity(len), true);
    }
    let b = bucket_for_len(len);
    if b > MAX_BUCKET {
        return (Vec::with_capacity(len), true);
    }
    let reused = T::with_buckets(|bk| bk.buckets[b].pop()).flatten();
    match reused {
        Some(v) => {
            debug_assert!(v.is_empty() && v.capacity() >= len);
            peb_obs::count(peb_obs::Counter::PoolHits, 1);
            (v, false)
        }
        None => {
            peb_obs::count(peb_obs::Counter::PoolMisses, 1);
            // Round fresh capacity up to the bucket size so the buffer
            // lands back in bucket `b` when recycled.
            (Vec::with_capacity(len.next_power_of_two()), true)
        }
    }
}

/// Checks out a buffer of exactly `len` elements, all `T::default()`
/// (zero for the numeric types used here). Returns `(buffer, fresh)`
/// where `fresh` is `true` when heap storage was allocated.
pub fn take_zeroed<T: Poolable>(len: usize) -> (Vec<T>, bool) {
    let (mut v, fresh) = take_raw(len);
    v.resize(len, T::default());
    (v, fresh)
}

/// Checks out an **empty** buffer with capacity ≥ `cap`, for callers
/// that fill every element themselves (`push` / `extend`). Returns
/// `(buffer, fresh)`.
pub fn take_cleared<T: Poolable>(cap: usize) -> (Vec<T>, bool) {
    take_raw(cap)
}

/// Checks out a buffer holding a copy of `src` (no intermediate
/// zero-fill). Returns `(buffer, fresh)`.
pub fn take_copy<T: Poolable>(src: &[T]) -> (Vec<T>, bool) {
    let (mut v, fresh) = take_raw(src.len());
    v.extend_from_slice(src);
    (v, fresh)
}

/// Returns a buffer to the current thread's pool. Contents are
/// discarded; over-full and over-size buckets drop the buffer instead.
/// Zero-capacity vectors (e.g. after `mem::take`) are ignored.
pub fn recycle<T: Poolable>(mut v: Vec<T>) {
    let cap = v.capacity();
    if cap == 0 {
        return;
    }
    if arena::active() && !peb_par::in_parallel() && arena::intercept_recycle(&mut v) {
        // Returned to its arena region (replay); nothing for the pool.
        return;
    }
    if !enabled() {
        return;
    }
    let b = bucket_for_cap(cap);
    if b > MAX_BUCKET {
        return;
    }
    v.clear();
    let _ = T::with_buckets(|bk| {
        let slot = &mut bk.buckets[b];
        if slot.len() < bucket_depth::<T>(b) {
            slot.push(v);
        }
    });
}

/// RAII checkout: a pooled `Vec<T>` that recycles itself on drop. Used
/// for function-local scratch (ADI lines, scan lane state, FFT line
/// buffers) where threading an explicit `recycle` through every return
/// path would be noise.
pub struct PoolBuf<T: Poolable> {
    buf: Vec<T>,
}

impl<T: Poolable> PoolBuf<T> {
    /// Checkout of `len` elements, all `T::default()`.
    pub fn zeroed(len: usize) -> Self {
        PoolBuf {
            buf: take_zeroed(len).0,
        }
    }

    /// Empty checkout with capacity ≥ `cap`.
    pub fn cleared(cap: usize) -> Self {
        PoolBuf {
            buf: take_cleared(cap).0,
        }
    }

    /// Checkout holding a copy of `src`.
    pub fn copy_of(src: &[T]) -> Self {
        PoolBuf {
            buf: take_copy(src).0,
        }
    }
}

impl<T: Poolable> Deref for PoolBuf<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: Poolable> DerefMut for PoolBuf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: Poolable> Drop for PoolBuf<T> {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The enabled latch is process-global; serialise tests that flip it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_maths() {
        assert_eq!(bucket_for_len(1), 0);
        assert_eq!(bucket_for_len(2), 1);
        assert_eq!(bucket_for_len(3), 2);
        assert_eq!(bucket_for_len(4), 2);
        assert_eq!(bucket_for_len(5), 3);
        assert_eq!(bucket_for_cap(1), 0);
        assert_eq!(bucket_for_cap(4), 2);
        assert_eq!(bucket_for_cap(7), 2);
        assert_eq!(bucket_for_cap(8), 3);
    }

    #[test]
    fn bucket_reuse_returns_the_same_storage() {
        let _g = lock();
        set_enabled(true);
        let (v, _) = take_zeroed::<f32>(1000);
        let ptr = v.as_ptr();
        let cap = v.capacity();
        recycle(v);
        // Any length that maps to the same bucket reuses the storage.
        let (v2, fresh) = take_zeroed::<f32>(600);
        assert!(!fresh, "second checkout must be served from the pool");
        assert_eq!(v2.as_ptr(), ptr);
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.len(), 600);
    }

    #[test]
    fn zero_on_checkout_hides_recycled_garbage() {
        let _g = lock();
        set_enabled(true);
        let (mut v, _) = take_zeroed::<f32>(256);
        for x in v.iter_mut() {
            *x = f32::NAN;
        }
        recycle(v);
        let (v2, _) = take_zeroed::<f32>(256);
        assert!(v2.iter().all(|&x| x == 0.0), "checkout must be zeroed");
        let (v3, _) = take_cleared::<f32>(256);
        assert!(v3.is_empty(), "cleared checkout must be empty");
    }

    #[test]
    fn take_copy_matches_source() {
        let _g = lock();
        set_enabled(true);
        let src: Vec<f32> = (0..77).map(|i| i as f32).collect();
        let (v, _) = take_copy(&src);
        assert_eq!(v, src);
    }

    #[test]
    fn cross_thread_pools_are_isolated() {
        let _g = lock();
        set_enabled(true);
        let (v, _) = take_zeroed::<f32>(512);
        let ptr = v.as_ptr() as usize;
        recycle(v);
        let other = std::thread::spawn(move || {
            // A different thread must not see this thread's buffer.
            let (v2, fresh) = take_zeroed::<f32>(512);
            (v2.as_ptr() as usize, fresh)
        })
        .join()
        .unwrap();
        assert_ne!(other.0, ptr, "pools must be thread-local");
        // This thread still has its buffer.
        let (v3, fresh) = take_zeroed::<f32>(512);
        assert!(!fresh);
        assert_eq!(v3.as_ptr() as usize, ptr);
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let _g = lock();
        set_enabled(false);
        let (v, fresh) = take_zeroed::<f32>(128);
        assert!(fresh);
        recycle(v); // dropped, not pooled
        let (_, fresh2) = take_zeroed::<f32>(128);
        assert!(fresh2, "disabled pool must never reuse");
        set_enabled(true);
    }

    #[test]
    fn zero_length_checkout_is_free() {
        let _g = lock();
        set_enabled(true);
        let (v, fresh) = take_zeroed::<f32>(0);
        assert!(v.is_empty() && !fresh);
        recycle(Vec::<f32>::new()); // no-op
    }

    #[test]
    fn distinct_element_types_do_not_collide() {
        let _g = lock();
        set_enabled(true);
        let (v, _) = take_zeroed::<f32>(64);
        recycle(v);
        let (w, _) = take_zeroed::<u64>(64);
        assert_eq!(w.len(), 64);
        recycle(w);
        let (v2, fresh) = take_zeroed::<f32>(64);
        assert!(!fresh, "f32 bucket still holds the f32 buffer");
        assert_eq!(v2.len(), 64);
    }

    #[test]
    fn pool_buf_recycles_on_drop() {
        let _g = lock();
        set_enabled(true);
        let ptr = {
            let mut b = PoolBuf::<f32>::zeroed(333);
            b[0] = 1.0;
            b.as_ptr()
        };
        let (v, fresh) = take_zeroed::<f32>(333);
        assert!(!fresh);
        assert_eq!(v.as_ptr(), ptr);
        assert_eq!(v[0], 0.0);
    }

    #[test]
    fn oversized_buffers_bypass_the_pool() {
        let _g = lock();
        set_enabled(true);
        let huge = 1usize << (MAX_BUCKET + 1);
        let (v, fresh) = take_raw::<f32>(huge);
        assert!(fresh);
        assert!(v.capacity() >= huge);
        recycle(v); // dropped: over-size
    }
}
