//! Record-and-replay memory planning for fixed-structure computations.
//!
//! A deterministic computation (one `sdm_peb::predict` at a fixed grid
//! shape, precision, and dispatch level) makes the *same sequence* of
//! pool checkouts every time it runs. This module exploits that:
//!
//! 1. **Record** — run the computation once while a thread-local
//!    recorder logs every checkout (element count + type) and every
//!    recycle as an alloc/free event stream ([`Trace`]).
//! 2. **Plan** — [`MemPlan::from_trace`] runs a liveness analysis over
//!    the stream and assigns every intermediate that dies inside the
//!    window to a *region* of a pre-sized arena, aliasing regions
//!    across buffers whose lifetimes do not overlap (classic
//!    interval-graph best-fit). Buffers that outlive the window — the
//!    returned prediction — are marked [`Placement::Escape`] and keep
//!    using the ordinary pool, because the caller may drop them on any
//!    thread at any time.
//! 3. **Replay** — run the same computation again with the arena
//!    installed: the k-th checkout is served from its pre-assigned
//!    region with **no pool traffic and no heap allocation**, and the
//!    matching recycle returns the buffer to its region. Values are
//!    computed by exactly the same kernel code as eager execution, so
//!    replay is bitwise identical by construction — the arena only
//!    redirects *where* intermediates live, never *what* is computed.
//!
//! # The eager-fallback contract
//!
//! Replay validates each checkout against the recorded stream (element
//! count and element type at the cursor). On the first mismatch the
//! session flags itself *diverged* and every subsequent checkout passes
//! through to the ordinary pool: the computation still completes with
//! correct (bitwise-eager) results, only the memory-planning win is
//! forfeited for that run. [`ReplayOutcome::complete`] tells the caller
//! the plan is stale so it can re-record.
//!
//! # Safety model
//!
//! Everything is safe Rust: the "arena" is a set of per-region slabs
//! (each an ordinary `Vec` moved in and out of its slot), not one raw
//! allocation carved up with pointer arithmetic, so Rust's ownership
//! rules enforce at runtime what the liveness analysis proved at plan
//! time — a region's storage is owned by at most one live buffer. The
//! planner's aliasing-safety property (two live buffers never share a
//! region) is additionally proptest-verified in `peb-plan`.

use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::Poolable;

/// One recorded checkout. Alloc events are implicitly numbered by their
/// position in the alloc stream (0, 1, 2, … in record order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocEvent {
    /// Requested length in elements.
    pub elems: usize,
    /// Size of one element in bytes.
    pub elem_bytes: usize,
    /// Element type of the checkout.
    pub ty: TypeId,
}

/// One event of a recorded trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A pool checkout on the recording thread.
    Alloc(AllocEvent),
    /// A recycle of the buffer produced by alloc number `alloc`.
    Free {
        /// Index into the alloc stream.
        alloc: u32,
    },
}

/// The alloc/free event stream of one recorded window.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in record order. Allocs that have no matching `Free` were
    /// still live when the window closed (they escaped).
    pub events: Vec<Event>,
}

impl Trace {
    /// Number of checkouts in the window.
    pub fn alloc_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Alloc(_)))
            .count()
    }
}

/// Where one recorded checkout is served from during replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Served from arena region `0`-indexed by the payload.
    Region(u32),
    /// Outlives the replay window; served from the ordinary pool.
    Escape,
}

/// One arena region: a slab that serves every checkout assigned to it
/// (their lifetimes are pairwise disjoint, so they alias safely).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionSpec {
    /// Element type stored in this region.
    pub ty: TypeId,
    /// Size of one element in bytes.
    pub elem_bytes: usize,
    /// Capacity in elements (the max over all assigned checkouts).
    pub cap_elems: usize,
}

/// The static memory plan: a placement per recorded checkout plus the
/// region table sizing the arena.
#[derive(Clone, Debug)]
pub struct MemPlan {
    /// `(event, placement)` per checkout, in alloc-stream order.
    pub allocs: Vec<(AllocEvent, Placement)>,
    /// Region table; [`Placement::Region`] indexes into this.
    pub regions: Vec<RegionSpec>,
}

impl MemPlan {
    /// Liveness analysis + aliasing assignment over a recorded trace.
    ///
    /// Walks the event stream keeping a free-list of regions. A
    /// checkout that dies inside the window takes the smallest free
    /// region of its element type that fits (best-fit); if none fits,
    /// the largest free region of that type is grown to fit (strictly
    /// cheaper than opening a new region); with no free region at all a
    /// new one is opened. Never-freed checkouts escape to the pool.
    pub fn from_trace(trace: &Trace) -> MemPlan {
        let n_allocs = trace.alloc_count();
        let mut freed = vec![false; n_allocs];
        for e in &trace.events {
            if let Event::Free { alloc } = e {
                freed[*alloc as usize] = true;
            }
        }
        let mut regions: Vec<RegionSpec> = Vec::new();
        let mut free: Vec<u32> = Vec::new();
        let mut allocs: Vec<(AllocEvent, Placement)> = Vec::with_capacity(n_allocs);
        let mut next = 0usize;
        for e in &trace.events {
            match *e {
                Event::Alloc(ev) => {
                    let id = next;
                    next += 1;
                    if !freed[id] {
                        allocs.push((ev, Placement::Escape));
                        continue;
                    }
                    // Best fit among free regions of the same type.
                    let mut best: Option<(usize, usize)> = None; // (free_idx, cap)
                    let mut largest: Option<(usize, usize)> = None;
                    for (fi, &r) in free.iter().enumerate() {
                        let spec = regions[r as usize];
                        if spec.ty != ev.ty {
                            continue;
                        }
                        if spec.cap_elems >= ev.elems
                            && best.is_none_or(|(_, c)| spec.cap_elems < c)
                        {
                            best = Some((fi, spec.cap_elems));
                        }
                        if largest.is_none_or(|(_, c)| spec.cap_elems > c) {
                            largest = Some((fi, spec.cap_elems));
                        }
                    }
                    let r = match best.or(largest) {
                        Some((fi, _)) => {
                            let r = free.swap_remove(fi);
                            let spec = &mut regions[r as usize];
                            spec.cap_elems = spec.cap_elems.max(ev.elems);
                            r
                        }
                        None => {
                            regions.push(RegionSpec {
                                ty: ev.ty,
                                elem_bytes: ev.elem_bytes,
                                cap_elems: ev.elems,
                            });
                            (regions.len() - 1) as u32
                        }
                    };
                    allocs.push((ev, Placement::Region(r)));
                }
                Event::Free { alloc } => {
                    if let Some((_, Placement::Region(r))) = allocs.get(alloc as usize) {
                        free.push(*r);
                    }
                }
            }
        }
        MemPlan { allocs, regions }
    }

    /// Total arena footprint in bytes (sum of region slabs).
    pub fn arena_bytes(&self) -> usize {
        self.regions
            .iter()
            .map(|r| r.cap_elems * r.elem_bytes)
            .sum()
    }

    /// Bytes the region-placed checkouts would occupy without aliasing
    /// (what a no-reuse arena would cost).
    pub fn logical_bytes(&self) -> usize {
        self.allocs
            .iter()
            .filter(|(_, p)| matches!(p, Placement::Region(_)))
            .map(|(ev, _)| ev.elems * ev.elem_bytes)
            .sum()
    }

    /// Checkouts served by the arena (the rest escape to the pool).
    pub fn region_allocs(&self) -> usize {
        self.allocs
            .iter()
            .filter(|(_, p)| matches!(p, Placement::Region(_)))
            .count()
    }
}

/// The materialised arena: one slab per region, fully pre-allocated at
/// construction so replays never touch the heap.
pub struct Arena {
    plan: Rc<MemPlan>,
    /// `slots[r]` holds region `r`'s slab (`Box<Vec<T>>`) while no live
    /// buffer owns it.
    slots: Vec<Option<Box<dyn Any>>>,
    /// Slab pointer → region, for recycle-time identification.
    by_ptr: HashMap<usize, u32>,
    /// Total bytes materialised (the arena high-water mark).
    allocated_bytes: usize,
}

fn v_addr<T>(v: &[T]) -> usize {
    v.as_ptr() as usize
}

impl Arena {
    /// Pre-sizes every region of `plan`. `slab_for` must materialise a
    /// slab for a given region spec — it is a callback because element
    /// types are only known to the recording call sites; use
    /// [`Arena::for_plan`] for the standard element-type set.
    pub fn new(plan: Rc<MemPlan>, slab_for: impl Fn(&RegionSpec) -> Option<Box<dyn Any>>) -> Arena {
        let mut slots = Vec::with_capacity(plan.regions.len());
        let mut by_ptr = HashMap::with_capacity(plan.regions.len());
        let mut bytes = 0usize;
        for (r, spec) in plan.regions.iter().enumerate() {
            match slab_for(spec) {
                Some(slab) => {
                    if let Some(addr) = slab_addr(slab.as_ref(), spec) {
                        by_ptr.insert(addr, r as u32);
                    }
                    bytes += spec.cap_elems * spec.elem_bytes;
                    slots.push(Some(slab));
                }
                None => slots.push(None),
            }
        }
        peb_obs::count(peb_obs::Counter::ArenaBytes, bytes as u64);
        Arena {
            plan,
            slots,
            by_ptr,
            allocated_bytes: bytes,
        }
    }

    /// The plan this arena serves.
    pub fn plan(&self) -> &Rc<MemPlan> {
        &self.plan
    }

    /// Bytes materialised across all regions (high-water mark).
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }
}

/// Extracts the base address of a slab for the standard element types.
fn slab_addr(slab: &dyn Any, spec: &RegionSpec) -> Option<usize> {
    macro_rules! try_ty {
        ($($t:ty),*) => {
            $(if spec.ty == TypeId::of::<$t>() {
                return slab.downcast_ref::<Vec<$t>>().map(|v| v_addr(v));
            })*
        };
    }
    try_ty!(f32, f64, u64, u32, u16, i8, usize);
    // An element type outside the `impl_poolable!` set misses the ptr
    // map; its recycles simply fall through to the ordinary pool.
    None
}

impl Arena {
    /// Standard constructor covering every `impl_poolable!` primitive.
    /// Regions of element types outside this set are left empty; their
    /// checkouts fall through to the pool (still correct, not planned).
    pub fn for_plan(plan: Rc<MemPlan>) -> Arena {
        Arena::new(plan, |spec| {
            macro_rules! mk {
                ($($t:ty),*) => {
                    $(if spec.ty == TypeId::of::<$t>() {
                        let v: Vec<$t> = Vec::with_capacity(spec.cap_elems);
                        return Some(Box::new(v) as Box<dyn Any>);
                    })*
                };
            }
            mk!(f32, f64, u64, u32, u16, i8, usize);
            None
        })
    }
}

// ---------------------------------------------------------------------------
// Thread-local session state
// ---------------------------------------------------------------------------

struct RecordState {
    events: Vec<Event>,
    live: HashMap<usize, u32>,
    allocs: u32,
}

struct ReplayState {
    arena: Rc<RefCell<Arena>>,
    cursor: usize,
    diverged: bool,
    served: u32,
    escaped: u32,
}

enum Mode {
    Off,
    Record(RecordState),
    Replay(ReplayState),
}

thread_local! {
    /// Fast-path flag checked by every checkout/recycle; the full mode
    /// lives behind a second TLS slot so the common (off) case is one
    /// `Cell` read.
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static MODE: RefCell<Mode> = const { RefCell::new(Mode::Off) };
}

/// Whether a record or replay session is active on this thread.
#[inline]
pub fn active() -> bool {
    ARMED.with(|a| a.get())
}

/// Opens a recording window on this thread.
///
/// # Panics
///
/// Panics if a record or replay session is already active — sessions
/// never nest (a plan records exactly one computation).
pub fn begin_record() {
    MODE.with(|m| {
        let mut m = m.borrow_mut();
        assert!(
            matches!(*m, Mode::Off),
            "arena session already active on this thread"
        );
        *m = Mode::Record(RecordState {
            events: Vec::new(),
            live: HashMap::new(),
            allocs: 0,
        });
    });
    ARMED.with(|a| a.set(true));
}

/// Closes the recording window, returning the event stream.
///
/// # Panics
///
/// Panics if no recording session is active.
pub fn end_record() -> Trace {
    ARMED.with(|a| a.set(false));
    MODE.with(|m| {
        let mut m = m.borrow_mut();
        match std::mem::replace(&mut *m, Mode::Off) {
            Mode::Record(rs) => Trace { events: rs.events },
            other => {
                *m = other;
                panic!("end_record without begin_record");
            }
        }
    })
}

/// Installs `arena` for a replay window on this thread.
///
/// # Panics
///
/// Panics if a record or replay session is already active.
pub fn begin_replay(arena: &Rc<RefCell<Arena>>) {
    MODE.with(|m| {
        let mut m = m.borrow_mut();
        assert!(
            matches!(*m, Mode::Off),
            "arena session already active on this thread"
        );
        *m = Mode::Replay(ReplayState {
            arena: Rc::clone(arena),
            cursor: 0,
            diverged: false,
            served: 0,
            escaped: 0,
        });
    });
    ARMED.with(|a| a.set(true));
}

/// What happened during a replay window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Every recorded checkout was matched in order — the plan is
    /// still valid for this computation.
    pub complete: bool,
    /// Checkouts served from arena regions.
    pub served: u32,
    /// Checkouts that escaped to the ordinary pool (by plan).
    pub escaped: u32,
    /// The checkout stream diverged from the recording; the tail of
    /// the run fell back to the pool and the plan should be rebuilt.
    pub diverged: bool,
}

/// Closes the replay window.
///
/// # Panics
///
/// Panics if no replay session is active.
pub fn end_replay() -> ReplayOutcome {
    ARMED.with(|a| a.set(false));
    MODE.with(|m| {
        let mut m = m.borrow_mut();
        match std::mem::replace(&mut *m, Mode::Off) {
            Mode::Replay(rs) => {
                let expected = rs.arena.borrow().plan.allocs.len();
                ReplayOutcome {
                    complete: !rs.diverged && rs.cursor == expected,
                    served: rs.served,
                    escaped: rs.escaped,
                    diverged: rs.diverged,
                }
            }
            other => {
                *m = other;
                panic!("end_replay without begin_replay");
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Hooks called from the pool checkout/recycle paths
// ---------------------------------------------------------------------------

/// Replay-mode interception of a checkout: `Some(buf)` serves the
/// checkout from the arena, `None` passes through to the pool (off,
/// recording, escape placement, or diverged).
pub(crate) fn replay_checkout<T: Poolable>(len: usize) -> Option<Vec<T>> {
    MODE.with(|m| {
        let mut m = m.borrow_mut();
        let Mode::Replay(rs) = &mut *m else {
            return None;
        };
        if rs.diverged {
            return None;
        }
        let mut arena = rs.arena.borrow_mut();
        let Some(&(ev, placement)) = arena.plan.allocs.get(rs.cursor) else {
            rs.diverged = true;
            return None;
        };
        if ev.ty != TypeId::of::<T>() || ev.elems != len {
            rs.diverged = true;
            return None;
        }
        rs.cursor += 1;
        let r = match placement {
            Placement::Escape => {
                rs.escaped += 1;
                return None;
            }
            Placement::Region(r) => r as usize,
        };
        match arena.slots[r].take() {
            Some(slab) => match slab.downcast::<Vec<T>>() {
                Ok(v) => {
                    let v = *v;
                    debug_assert!(v.is_empty() && v.capacity() >= len);
                    rs.served += 1;
                    Some(v)
                }
                Err(slab) => {
                    // Type-confused slab (stale ptr mapping after a
                    // leak); drop it and fall back for this checkout.
                    drop(slab);
                    rs.diverged = true;
                    None
                }
            },
            None => {
                // Region slab lost (a caller grew or leaked the buffer
                // on a previous run). Re-materialise to spec.
                let spec = arena.plan.regions[r];
                let v: Vec<T> = Vec::with_capacity(spec.cap_elems);
                arena.by_ptr.retain(|_, rr| *rr as usize != r);
                arena.by_ptr.insert(v_addr(&v), r as u32);
                arena.allocated_bytes += spec.cap_elems * spec.elem_bytes;
                peb_obs::count(
                    peb_obs::Counter::ArenaBytes,
                    (spec.cap_elems * spec.elem_bytes) as u64,
                );
                rs.served += 1;
                Some(v)
            }
        }
    })
}

/// Record-mode hook: logs the checkout that just produced `v`.
pub(crate) fn record_checkout<T: Poolable>(v: &[T], len: usize) {
    MODE.with(|m| {
        let mut m = m.borrow_mut();
        let Mode::Record(rs) = &mut *m else {
            return;
        };
        let id = rs.allocs;
        rs.allocs += 1;
        rs.events.push(Event::Alloc(AllocEvent {
            elems: len,
            elem_bytes: std::mem::size_of::<T>(),
            ty: TypeId::of::<T>(),
        }));
        rs.live.insert(v.as_ptr() as usize, id);
    });
}

/// Intercepts a recycle. Returns `true` when the buffer was consumed
/// (returned to its arena region); `false` passes it to the pool.
pub(crate) fn intercept_recycle<T: Poolable>(v: &mut Vec<T>) -> bool {
    MODE.with(|m| {
        let mut m = m.borrow_mut();
        match &mut *m {
            Mode::Record(rs) => {
                if let Some(id) = rs.live.remove(&(v.as_ptr() as usize)) {
                    rs.events.push(Event::Free { alloc: id });
                }
                false
            }
            Mode::Replay(rs) => {
                let mut arena = rs.arena.borrow_mut();
                let addr = v.as_ptr() as usize;
                let Some(&r) = arena.by_ptr.get(&addr) else {
                    return false;
                };
                let r = r as usize;
                if arena.plan.regions[r].ty != TypeId::of::<T>() || arena.slots[r].is_some() {
                    // Stale mapping — not actually this region's slab.
                    return false;
                }
                let mut buf = std::mem::take(v);
                buf.clear();
                arena.slots[r] = Some(Box::new(buf));
                true
            }
            Mode::Off => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(elems: usize) -> Event {
        Event::Alloc(AllocEvent {
            elems,
            elem_bytes: 4,
            ty: TypeId::of::<f32>(),
        })
    }

    #[test]
    fn disjoint_lifetimes_share_one_region() {
        // a(100) freed, then b(80) — b reuses a's region.
        let trace = Trace {
            events: vec![
                alloc(100),
                Event::Free { alloc: 0 },
                alloc(80),
                Event::Free { alloc: 1 },
            ],
        };
        let plan = MemPlan::from_trace(&trace);
        assert_eq!(plan.regions.len(), 1);
        assert_eq!(plan.regions[0].cap_elems, 100);
        assert_eq!(plan.allocs[0].1, Placement::Region(0));
        assert_eq!(plan.allocs[1].1, Placement::Region(0));
        assert_eq!(plan.arena_bytes(), 400);
        assert_eq!(plan.logical_bytes(), 720);
    }

    #[test]
    fn overlapping_lifetimes_get_distinct_regions() {
        let trace = Trace {
            events: vec![
                alloc(10),
                alloc(10),
                Event::Free { alloc: 0 },
                Event::Free { alloc: 1 },
            ],
        };
        let plan = MemPlan::from_trace(&trace);
        assert_eq!(plan.regions.len(), 2);
        assert_ne!(plan.allocs[0].1, plan.allocs[1].1);
    }

    #[test]
    fn never_freed_escapes() {
        let trace = Trace {
            events: vec![alloc(64)],
        };
        let plan = MemPlan::from_trace(&trace);
        assert!(plan.regions.is_empty());
        assert_eq!(plan.allocs[0].1, Placement::Escape);
    }

    #[test]
    fn undersized_free_region_grows_instead_of_opening_new() {
        // a(10) freed, then b(100): grow a's region to 100 rather than
        // keeping a dead 10-elem region plus a fresh 100-elem one.
        let trace = Trace {
            events: vec![
                alloc(10),
                Event::Free { alloc: 0 },
                alloc(100),
                Event::Free { alloc: 1 },
            ],
        };
        let plan = MemPlan::from_trace(&trace);
        assert_eq!(plan.regions.len(), 1);
        assert_eq!(plan.regions[0].cap_elems, 100);
    }

    #[test]
    fn mixed_types_never_share_regions() {
        let mut events = vec![alloc(32), Event::Free { alloc: 0 }];
        events.push(Event::Alloc(AllocEvent {
            elems: 16,
            elem_bytes: 2,
            ty: TypeId::of::<u16>(),
        }));
        events.push(Event::Free { alloc: 1 });
        let plan = MemPlan::from_trace(&Trace { events });
        assert_eq!(plan.regions.len(), 2);
        assert_ne!(plan.regions[0].ty, plan.regions[1].ty);
    }

    #[test]
    fn record_replay_roundtrip_serves_from_arena() {
        begin_record();
        let (a, _) = crate::take_cleared::<f32>(100);
        crate::recycle(a);
        let (b, _) = crate::take_cleared::<f32>(80);
        crate::recycle(b);
        let trace = end_record();
        assert_eq!(trace.alloc_count(), 2);

        let plan = Rc::new(MemPlan::from_trace(&trace));
        assert_eq!(plan.regions.len(), 1);
        let arena = Rc::new(RefCell::new(Arena::for_plan(Rc::clone(&plan))));
        let slab0 = {
            let ar = arena.borrow();
            ar.allocated_bytes()
        };
        assert_eq!(slab0, 400);

        for _ in 0..3 {
            begin_replay(&arena);
            let (a, fresh_a) = crate::take_cleared::<f32>(100);
            assert!(!fresh_a);
            let pa = a.as_ptr() as usize;
            crate::recycle(a);
            let (b, fresh_b) = crate::take_cleared::<f32>(80);
            assert!(!fresh_b);
            assert_eq!(b.as_ptr() as usize, pa, "aliased region must reuse storage");
            crate::recycle(b);
            let out = end_replay();
            assert!(out.complete, "{out:?}");
            assert_eq!(out.served, 2);
            assert_eq!(out.escaped, 0);
        }
    }

    #[test]
    fn replay_divergence_falls_back_to_pool() {
        begin_record();
        let (a, _) = crate::take_cleared::<f32>(100);
        crate::recycle(a);
        let trace = end_record();
        let plan = Rc::new(MemPlan::from_trace(&trace));
        let arena = Rc::new(RefCell::new(Arena::for_plan(plan)));

        begin_replay(&arena);
        // Different length than recorded: diverges, still served (pool).
        let (a, _) = crate::take_cleared::<f32>(999);
        assert!(a.capacity() >= 999);
        crate::recycle(a);
        let out = end_replay();
        assert!(out.diverged);
        assert!(!out.complete);
    }

    #[test]
    fn escaping_buffers_come_from_the_pool_not_the_arena() {
        begin_record();
        let (a, _) = crate::take_cleared::<f32>(50);
        // never recycled inside the window
        let trace = end_record();
        crate::recycle(a);
        let plan = Rc::new(MemPlan::from_trace(&trace));
        let arena = Rc::new(RefCell::new(Arena::for_plan(Rc::clone(&plan))));
        assert_eq!(arena.borrow().allocated_bytes(), 0);

        begin_replay(&arena);
        let (b, _) = crate::take_cleared::<f32>(50);
        let out_before = b.as_ptr() as usize;
        // keep it live past the window
        let outcome = end_replay();
        assert!(outcome.complete);
        assert_eq!(outcome.escaped, 1);
        assert_eq!(outcome.served, 0);
        // Recycling after the window is a plain pool recycle.
        crate::recycle(b);
        let (c, _) = crate::take_cleared::<f32>(50);
        let _ = (out_before, c);
    }
}
