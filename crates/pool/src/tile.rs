//! The `PEB_TILE` knob: cache-sized slab targets for tiled execution.
//!
//! Tiled hot paths (the ADI/explicit diffusion sweeps in `peb-litho`,
//! the 3-D conv lowering in `peb-nn`) partition their depth axis into
//! slabs whose working set fits close to the core, so consecutive passes
//! over a slab hit cache instead of streaming the full volume per pass.
//! Tiling only reorders *whole-element* units of work — per-element
//! arithmetic and accumulation order are untouched — so tiled output is
//! bitwise identical to untiled and the knob is purely a performance
//! lever:
//!
//! * `PEB_TILE=off` (or `0`) — disable tiling; every pass walks the full
//!   volume (the pre-tiling behaviour);
//! * `PEB_TILE=<bytes>` — explicit slab working-set target in bytes;
//! * `PEB_TILE=auto` or unset — target the detected per-core L2 size
//!   (`/sys/devices/system/cpu/cpu0/cache`), falling back to
//!   [`DEFAULT_TILE_BYTES`] (1 MiB) when detection fails (non-Linux,
//!   masked sysfs).
//!
//! The choice is latched once per process like `PEB_SIMD` / `PEB_POOL`;
//! [`set_tile_bytes`] overrides it for benches and tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fallback slab working-set target when cache detection fails: 1 MiB,
/// comfortably inside any modern per-core L2/L3 share.
pub const DEFAULT_TILE_BYTES: usize = 1 << 20;

const TILE_UNINIT: u64 = u64::MAX;
const TILE_OFF: u64 = 0;
static TILE: AtomicU64 = AtomicU64::new(TILE_UNINIT);

/// Parses a sysfs cache size string such as `"2048K"` or `"8M"`.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1usize << 10),
        b'M' => (&s[..s.len() - 1], 1usize << 20),
        _ => (s, 1),
    };
    num.parse::<usize>().ok().map(|n| n * mult)
}

/// Detected per-core L2 cache size in bytes, when sysfs exposes it.
pub fn detected_l2_bytes() -> Option<usize> {
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let entries = std::fs::read_dir(base).ok()?;
    let mut best = None;
    for e in entries.flatten() {
        let p = e.path();
        let level = std::fs::read_to_string(p.join("level")).ok()?;
        if level.trim() == "2" {
            let size = std::fs::read_to_string(p.join("size")).ok()?;
            let bytes = parse_cache_size(&size)?;
            best = Some(best.map_or(bytes, |b: usize| b.max(bytes)));
        }
    }
    best
}

#[cold]
fn init_tile() -> u64 {
    let v = match std::env::var("PEB_TILE").as_deref() {
        Ok("off") | Ok("0") => TILE_OFF,
        Ok(s) if s.parse::<u64>().map(|b| b > 0).unwrap_or(false) => {
            s.parse::<u64>().expect("checked above")
        }
        // "auto", unset, or anything unparseable.
        _ => detected_l2_bytes().unwrap_or(DEFAULT_TILE_BYTES) as u64,
    };
    TILE.store(v, Ordering::Relaxed);
    v
}

/// Slab working-set target in bytes, or `None` when tiling is off.
/// Latched from `PEB_TILE` + cache detection on first call.
#[inline]
pub fn tile_target_bytes() -> Option<usize> {
    let v = match TILE.load(Ordering::Relaxed) {
        TILE_UNINIT => init_tile(),
        v => v,
    };
    (v != TILE_OFF).then_some(v as usize)
}

/// Overrides the latched tile target, bypassing `PEB_TILE`: `None`
/// disables tiling, `Some(bytes)` sets an explicit target. Used by
/// benchmark binaries and the determinism suite for A/B runs; callers
/// that toggle this in tests must serialise themselves (the target is
/// process-global).
pub fn set_tile_bytes(bytes: Option<usize>) {
    TILE.store(
        bytes.map_or(TILE_OFF, |b| (b as u64).max(1)),
        Ordering::Relaxed,
    );
}

/// Number of depth items (e.g. z-planes) per slab so that
/// `items × bytes_per_item` stays within the tile target, clamped to
/// `[1, total_items]`. Returns `None` when tiling is off (callers run
/// the untiled full-volume path).
pub fn slab_items(bytes_per_item: usize, total_items: usize) -> Option<usize> {
    let target = tile_target_bytes()?;
    if total_items == 0 {
        return Some(0);
    }
    Some((target / bytes_per_item.max(1)).clamp(1, total_items))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sysfs_sizes() {
        assert_eq!(parse_cache_size("2048K"), Some(2048 << 10));
        assert_eq!(parse_cache_size("8M"), Some(8 << 20));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("x"), None);
    }

    #[test]
    fn override_latches_and_slabs() {
        set_tile_bytes(Some(1 << 20));
        assert_eq!(tile_target_bytes(), Some(1 << 20));
        // 256 KiB planes → 4 per slab under a 1 MiB target.
        assert_eq!(slab_items(256 << 10, 100), Some(4));
        // Oversized items still make one-item slabs.
        assert_eq!(slab_items(64 << 20, 100), Some(1));
        // Clamped to the total.
        assert_eq!(slab_items(1, 3), Some(3));
        set_tile_bytes(None);
        assert_eq!(tile_target_bytes(), None);
        assert_eq!(slab_items(1024, 10), None);
        set_tile_bytes(Some(DEFAULT_TILE_BYTES));
    }
}
