//! Versioned, CRC-checked, atomically-written training checkpoints.
//!
//! # Wire format (`PEBCKPT1`, version 1, little-endian)
//!
//! | field | encoding |
//! |-------|----------|
//! | magic | 8 bytes `"PEBCKPT1"` |
//! | version | `u32` (currently 1) |
//! | epoch | `u64` — epochs *completed* when this state was captured |
//! | seed | `u64` — the shuffle seed of the run |
//! | opt_kind | `u32` — 0 = Adam, 1 = SGD |
//! | opt_t | `u64` — optimiser step counter (Adam bias correction) |
//! | lr_scale | `f32` — divergence-backoff multiplier in effect |
//! | rollbacks | `u64` — rollbacks performed so far |
//! | epoch_stats | `u64` count, then per epoch `f32` mean loss + `u64` skipped batches |
//! | params | `u64` count, then tensors (rank `u64`, dims `u64`…, data `f32`…) |
//! | opt_m | `u64` count, then per slot `u8` presence tag + tensor |
//! | opt_v | same as `opt_m` |
//! | crc | `u32` CRC-32 (IEEE) of **every** preceding byte, magic included |
//!
//! # Atomicity protocol
//!
//! [`atomic_write`] stages the full payload in `<name>.tmp.<pid>` in the
//! destination directory, `fsync`s the file, renames it over the
//! destination, and `fsync`s the directory. A crash at any point leaves
//! either the old checkpoint or the new one — never a torn file — and a
//! torn *write* that does land (e.g. chaos-injected truncation or bit
//! flips) is caught by the CRC on load and reported as
//! [`PebError::Corrupt`], at which point resume falls back to the
//! previous retained checkpoint.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use peb_tensor::Tensor;

use crate::error::{Context, PebError, Result};

const MAGIC: &[u8; 8] = b"PEBCKPT1";
const VERSION: u32 = 1;
/// Version written when a quantized-weight section is present. A
/// checkpoint with `quant: None` still writes version 1 **byte for
/// byte** — the upgrade is strictly additive, and every pre-existing
/// file remains readable.
const VERSION_QUANT: u32 = 2;

/// Optimiser family stored in a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptKind {
    /// Adam: `opt_m`/`opt_v` hold first/second moments, `opt_t` the step.
    Adam,
    /// SGD: `opt_m` holds the momentum velocity, `opt_v` is empty.
    Sgd,
}

impl OptKind {
    fn code(self) -> u32 {
        match self {
            OptKind::Adam => 0,
            OptKind::Sgd => 1,
        }
    }

    fn from_code(c: u32) -> Result<Self> {
        match c {
            0 => Ok(OptKind::Adam),
            1 => Ok(OptKind::Sgd),
            other => Err(PebError::corrupt(format!("unknown optimiser kind {other}"))),
        }
    }
}

/// Per-epoch bookkeeping persisted with the weights so a resumed run
/// reports the same history as an uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Mean combined loss over the epoch.
    pub mean_loss: f32,
    /// Micro-batches dropped by the non-finite guard.
    pub skipped_batches: u64,
}

/// A per-channel absmax-quantized parameter tensor as stored in a
/// version-2 checkpoint. `peb-guard` treats this as opaque data — the
/// quantization/dequantization semantics (symmetric int8, per
/// output-channel scales over the leading axis) live with the consumer
/// (`sdm_peb_core::quant`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    /// Original (dequantized) tensor shape.
    pub shape: Vec<usize>,
    /// One dequantization scale per output channel (`shape[0]` entries).
    pub scales: Vec<f32>,
    /// Row-major int8 codes, one per original element.
    pub codes: Vec<i8>,
}

impl QuantTensor {
    /// Number of elements the dequantized tensor holds.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One parameter slot of a quantized checkpoint: rank ≥ 2 weights carry
/// int8 codes, everything else (biases, scalars — where quantization
/// saves nothing and costs accuracy) stays full f32.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantSlot {
    /// Full-precision parameter (rank ≤ 1, or excluded from PTQ).
    F32(Tensor),
    /// Per-channel absmax int8 parameter.
    I8(QuantTensor),
}

/// Full training state at an epoch boundary.
///
/// Restoring every field reproduces the uninterrupted trajectory
/// *bitwise*: weights and moments round-trip exactly (f32 ↔ LE bytes is
/// lossless), and the shuffle RNG is reconstructed by replaying `epoch`
/// shuffles from `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Epochs completed.
    pub epoch: u64,
    /// Shuffle seed of the run (resume replays the RNG stream).
    pub seed: u64,
    /// Optimiser family.
    pub opt_kind: OptKind,
    /// Optimiser step counter.
    pub opt_t: u64,
    /// Divergence-backoff LR multiplier in effect.
    pub lr_scale: f32,
    /// Rollbacks performed so far.
    pub rollbacks: u64,
    /// Per-epoch history up to `epoch`.
    pub epoch_stats: Vec<EpochRecord>,
    /// Model parameters in `Parameterized::parameters()` order.
    pub params: Vec<Tensor>,
    /// First moments (Adam) or velocity (SGD), per parameter; `None` for
    /// parameters the optimiser has not touched yet.
    pub opt_m: Vec<Option<Tensor>>,
    /// Second moments (Adam only), per parameter.
    pub opt_v: Vec<Option<Tensor>>,
    /// Post-training-quantized weights, written as a version-2 tagged
    /// section. `None` (every training checkpoint) keeps the file at
    /// version 1, byte-identical to the pre-quantization format. A
    /// quantized serving checkpoint carries one slot per parameter here
    /// and leaves `params` empty — consumers restore by dequantizing.
    pub quant: Option<Vec<QuantSlot>>,
}

impl TrainCheckpoint {
    /// Serialises and atomically writes the checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PebError::Io`] when staging, syncing or renaming fails.
    pub fn save(&self, path: &Path) -> Result<()> {
        let _span = peb_obs::span("guard.checkpoint.save");
        let bytes = self.to_bytes();
        atomic_write(path, &bytes).with_ctx(|| format!("writing checkpoint {}", path.display()))?;
        peb_obs::count(peb_obs::Counter::GuardCheckpoints, 1);
        Ok(())
    }

    /// Loads and CRC-validates a checkpoint.
    ///
    /// # Errors
    ///
    /// [`PebError::Io`] when the file cannot be read, [`PebError::Corrupt`]
    /// on bad magic, version, checksum, or an undecodable payload.
    pub fn load(path: &Path) -> Result<Self> {
        let _span = peb_obs::span("guard.checkpoint.load");
        let bytes = fs::read(path).with_ctx(|| format!("reading checkpoint {}", path.display()))?;
        Self::from_bytes(&bytes).with_ctx(|| format!("decoding checkpoint {}", path.display()))
    }

    /// Serialises to the wire format (CRC footer included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w =
            Vec::with_capacity(1024 + 4 * self.params.iter().map(Tensor::len).sum::<usize>());
        w.extend_from_slice(MAGIC);
        put_u32(
            &mut w,
            if self.quant.is_some() {
                VERSION_QUANT
            } else {
                VERSION
            },
        );
        put_u64(&mut w, self.epoch);
        put_u64(&mut w, self.seed);
        put_u32(&mut w, self.opt_kind.code());
        put_u64(&mut w, self.opt_t);
        put_f32(&mut w, self.lr_scale);
        put_u64(&mut w, self.rollbacks);
        put_u64(&mut w, self.epoch_stats.len() as u64);
        for s in &self.epoch_stats {
            put_f32(&mut w, s.mean_loss);
            put_u64(&mut w, s.skipped_batches);
        }
        put_u64(&mut w, self.params.len() as u64);
        for t in &self.params {
            put_tensor(&mut w, t);
        }
        put_opt_tensors(&mut w, &self.opt_m);
        put_opt_tensors(&mut w, &self.opt_v);
        if let Some(slots) = &self.quant {
            put_u64(&mut w, slots.len() as u64);
            for slot in slots {
                match slot {
                    QuantSlot::F32(t) => {
                        w.push(0);
                        put_tensor(&mut w, t);
                    }
                    QuantSlot::I8(q) => {
                        w.push(1);
                        put_u64(&mut w, q.shape.len() as u64);
                        for &d in &q.shape {
                            put_u64(&mut w, d as u64);
                        }
                        put_u64(&mut w, q.scales.len() as u64);
                        for &s in &q.scales {
                            put_f32(&mut w, s);
                        }
                        put_u64(&mut w, q.codes.len() as u64);
                        w.extend(q.codes.iter().map(|&c| c as u8));
                    }
                }
            }
        }
        let crc = crc32(&w);
        put_u32(&mut w, crc);
        w
    }

    /// Decodes the wire format, validating magic, version and CRC.
    ///
    /// # Errors
    ///
    /// Returns [`PebError::Corrupt`] describing the first violated field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(PebError::corrupt(format!(
                "checkpoint too short ({} bytes)",
                bytes.len()
            )));
        }
        let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
        if &payload[..8] != MAGIC {
            return Err(PebError::corrupt("bad checkpoint magic"));
        }
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        let actual = crc32(payload);
        if stored != actual {
            return Err(PebError::corrupt(format!(
                "crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut r = Cursor {
            bytes: payload,
            pos: 8,
        };
        let version = r.u32()?;
        if version != VERSION && version != VERSION_QUANT {
            return Err(PebError::corrupt(format!(
                "unsupported checkpoint version {version} (expected {VERSION} or {VERSION_QUANT})"
            )));
        }
        let epoch = r.u64()?;
        let seed = r.u64()?;
        let opt_kind = OptKind::from_code(r.u32()?)?;
        let opt_t = r.u64()?;
        let lr_scale = r.f32()?;
        let rollbacks = r.u64()?;
        let n_stats = r.len("epoch stats", 1 << 24)?;
        let mut epoch_stats = Vec::with_capacity(n_stats);
        for _ in 0..n_stats {
            epoch_stats.push(EpochRecord {
                mean_loss: r.f32()?,
                skipped_batches: r.u64()?,
            });
        }
        let n_params = r.len("parameters", 1 << 20)?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(r.tensor()?);
        }
        let opt_m = r.opt_tensors()?;
        let opt_v = r.opt_tensors()?;
        let quant = if version >= VERSION_QUANT {
            Some(r.quant_slots()?)
        } else {
            None
        };
        if r.pos != payload.len() {
            return Err(PebError::corrupt(format!(
                "{} trailing bytes after checkpoint payload",
                payload.len() - r.pos
            )));
        }
        Ok(TrainCheckpoint {
            epoch,
            seed,
            opt_kind,
            opt_t,
            lr_scale,
            rollbacks,
            epoch_stats,
            params,
            opt_m,
            opt_v,
            quant,
        })
    }
}

// --- header peek ------------------------------------------------------------

/// Validated header metadata of an on-disk checkpoint, decoded without
/// materialising the parameter tensors.
///
/// The whole file is still read and CRC-checked (corruption anywhere in
/// the payload must be caught before a consumer trusts the header), but
/// the tensor payload is never decoded into `Vec<f32>` storage — on
/// serve-sized models that is the difference between a metadata probe
/// and a full model load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptMeta {
    /// Epochs completed when the state was captured.
    pub epoch: u64,
    /// Shuffle seed of the originating run.
    pub seed: u64,
    /// Optimiser family stored alongside the weights.
    pub opt_kind: OptKind,
    /// Number of parameter tensors in the payload.
    pub n_params: u64,
    /// Total file size in bytes (CRC footer included).
    pub file_bytes: u64,
    /// The validated CRC-32 — a stable content fingerprint, usable as a
    /// version identity for hot-swap registries.
    pub crc: u32,
    /// Wire-format version: 1 = plain f32, 2 = carries a quantized
    /// weight section (`n_params` is then typically 0).
    pub version: u32,
}

/// Reads and CRC-validates `path`, decoding only the checkpoint header.
///
/// # Errors
///
/// [`PebError::Io`] when the file cannot be read, [`PebError::Corrupt`]
/// on bad magic, version, checksum or a truncated header — the same
/// corruption classes as [`TrainCheckpoint::load`], so a file that
/// `peek`s clean will also load (barring a race with a concurrent
/// rewrite).
pub fn peek(path: &Path) -> Result<CkptMeta> {
    let _span = peb_obs::span("guard.checkpoint.peek");
    let bytes = fs::read(path).with_ctx(|| format!("reading checkpoint {}", path.display()))?;
    peek_bytes(&bytes).with_ctx(|| format!("peeking checkpoint {}", path.display()))
}

/// [`peek`] over an in-memory image.
///
/// # Errors
///
/// Returns [`PebError::Corrupt`] describing the first violated field.
pub fn peek_bytes(bytes: &[u8]) -> Result<CkptMeta> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(PebError::corrupt(format!(
            "checkpoint too short ({} bytes)",
            bytes.len()
        )));
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if &payload[..8] != MAGIC {
        return Err(PebError::corrupt("bad checkpoint magic"));
    }
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let actual = crc32(payload);
    if stored != actual {
        return Err(PebError::corrupt(format!(
            "crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let mut r = Cursor {
        bytes: payload,
        pos: 8,
    };
    let version = r.u32()?;
    if version != VERSION && version != VERSION_QUANT {
        return Err(PebError::corrupt(format!(
            "unsupported checkpoint version {version} (expected {VERSION} or {VERSION_QUANT})"
        )));
    }
    let epoch = r.u64()?;
    let seed = r.u64()?;
    let opt_kind = OptKind::from_code(r.u32()?)?;
    let _opt_t = r.u64()?;
    let _lr_scale = r.f32()?;
    let _rollbacks = r.u64()?;
    let n_stats = r.len("epoch stats", 1 << 24)?;
    // Skip the fixed-width epoch records without decoding them.
    r.take(n_stats * 12)?;
    let n_params = r.len("parameters", 1 << 20)? as u64;
    Ok(CkptMeta {
        epoch,
        seed,
        opt_kind,
        n_params,
        file_bytes: bytes.len() as u64,
        crc: stored,
        version,
    })
}

// --- checkpoint directory management ---------------------------------------

/// File name for the checkpoint written after `epoch` completed epochs.
pub fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("ckpt-{epoch:06}.bin"))
}

/// Epoch numbers of all checkpoint files in `dir`, descending (newest
/// first). Unreadable directory entries and foreign files are ignored.
pub fn list_checkpoints(dir: &Path) -> Vec<u64> {
    let mut epochs: Vec<u64> = fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name();
                    let name = name.to_str()?;
                    let stem = name.strip_prefix("ckpt-")?.strip_suffix(".bin")?;
                    stem.parse::<u64>().ok()
                })
                .collect()
        })
        .unwrap_or_default();
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    epochs
}

/// Loads the newest checkpoint in `dir` that passes validation, skipping
/// (and reporting to stderr) corrupt ones — the on-disk half of the
/// rollback story: a torn or chaos-mangled latest file degrades to the
/// previous good epoch instead of killing the run.
///
/// Returns `Ok(None)` when the directory holds no checkpoint files at
/// all.
///
/// # Errors
///
/// Returns the *last* decode error when checkpoint files exist but none
/// validates.
pub fn load_latest(dir: &Path) -> Result<Option<TrainCheckpoint>> {
    let epochs = list_checkpoints(dir);
    if epochs.is_empty() {
        return Ok(None);
    }
    let mut last_err = None;
    for epoch in &epochs {
        let path = checkpoint_path(dir, *epoch);
        match TrainCheckpoint::load(&path) {
            Ok(ckpt) => return Ok(Some(ckpt)),
            Err(e) => {
                eprintln!(
                    "[peb-guard] skipping unreadable checkpoint {}: {e}",
                    path.display()
                );
                last_err = Some(e);
            }
        }
    }
    match last_err {
        Some(e) => Err(e.context(format!(
            "no valid checkpoint among {} candidate(s) in {}",
            epochs.len(),
            dir.display()
        ))),
        // Unreachable (`epochs` non-empty means the loop either returned
        // or set `last_err`), but a typed error beats a panic here too.
        None => Err(PebError::corrupt("checkpoint scan inconsistency")),
    }
}

/// Deletes all but the newest `keep` checkpoints in `dir`. Best-effort:
/// removal failures are ignored (the next prune retries).
pub fn prune_checkpoints(dir: &Path, keep: usize) {
    for epoch in list_checkpoints(dir).into_iter().skip(keep) {
        let _ = fs::remove_file(checkpoint_path(dir, epoch));
    }
}

// --- atomic write ----------------------------------------------------------

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename over the destination, `fsync` the directory.
///
/// # Errors
///
/// Returns any underlying I/O error; on failure the destination is
/// untouched (the stale temp file is removed best-effort).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("checkpoint");
    let tmp = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp.{}", std::process::id())),
        None => PathBuf::from(format!(".{file_name}.tmp.{}", std::process::id())),
    };
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        if let Some(d) = dir {
            // Persist the rename itself; ignore platforms/filesystems
            // where directories cannot be opened for sync.
            if let Ok(dirf) = File::open(d) {
                let _ = dirf.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

// --- CRC-32 (IEEE 802.3, reflected) ----------------------------------------

/// CRC-32 lookup table for the reflected IEEE polynomial `0xEDB88320`.
fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE; the zlib/PNG variant) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- primitive codecs -------------------------------------------------------

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(w: &mut Vec<u8>, v: f32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_tensor(w: &mut Vec<u8>, t: &Tensor) {
    put_u64(w, t.rank() as u64);
    for &d in t.shape() {
        put_u64(w, d as u64);
    }
    for &v in t.data() {
        put_f32(w, v);
    }
}

fn put_opt_tensors(w: &mut Vec<u8>, slots: &[Option<Tensor>]) {
    put_u64(w, slots.len() as u64);
    for slot in slots {
        match slot {
            Some(t) => {
                w.push(1);
                put_tensor(w, t);
            }
            None => w.push(0),
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(PebError::corrupt(format!(
                "truncated checkpoint: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn len(&mut self, what: &str, max: usize) -> Result<usize> {
        let n = self.u64()? as usize;
        if n > max {
            return Err(PebError::corrupt(format!(
                "implausible {what} count {n} (max {max})"
            )));
        }
        Ok(n)
    }

    fn tensor(&mut self) -> Result<Tensor> {
        let rank = self.len("tensor rank", 8)?;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(self.len("tensor dim", 1 << 30)?);
        }
        let n: usize = shape.iter().product();
        if n > 1 << 30 {
            return Err(PebError::corrupt(format!("implausible tensor size {n}")));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32()?);
        }
        Ok(Tensor::from_vec(data, &shape)?)
    }

    fn opt_tensors(&mut self) -> Result<Vec<Option<Tensor>>> {
        let n = self.len("optimiser slots", 1 << 20)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match self.u8()? {
                0 => None,
                1 => Some(self.tensor()?),
                tag => return Err(PebError::corrupt(format!("bad optimiser slot tag {tag}"))),
            });
        }
        Ok(out)
    }

    fn quant_slots(&mut self) -> Result<Vec<QuantSlot>> {
        let n = self.len("quantized slots", 1 << 20)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match self.u8()? {
                0 => QuantSlot::F32(self.tensor()?),
                1 => {
                    let rank = self.len("quant tensor rank", 8)?;
                    let mut shape = Vec::with_capacity(rank);
                    for _ in 0..rank {
                        shape.push(self.len("quant tensor dim", 1 << 30)?);
                    }
                    let total: usize = shape.iter().product();
                    if total > 1 << 30 {
                        return Err(PebError::corrupt(format!(
                            "implausible quant tensor size {total}"
                        )));
                    }
                    let n_scales = self.len("quant scales", 1 << 30)?;
                    let mut scales = Vec::with_capacity(n_scales);
                    for _ in 0..n_scales {
                        scales.push(self.f32()?);
                    }
                    let n_codes = self.len("quant codes", 1 << 30)?;
                    if n_codes != total {
                        return Err(PebError::corrupt(format!(
                            "quant code count {n_codes} disagrees with shape product {total}"
                        )));
                    }
                    let codes = self.take(n_codes)?.iter().map(|&b| b as i8).collect();
                    QuantSlot::I8(QuantTensor {
                        shape,
                        scales,
                        codes,
                    })
                }
                tag => return Err(PebError::corrupt(format!("bad quantized slot tag {tag}"))),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 3,
            seed: 20250705,
            opt_kind: OptKind::Adam,
            opt_t: 12,
            lr_scale: 0.5,
            rollbacks: 1,
            epoch_stats: vec![
                EpochRecord {
                    mean_loss: 1.25,
                    skipped_batches: 0,
                },
                EpochRecord {
                    mean_loss: 0.75,
                    skipped_batches: 2,
                },
            ],
            params: vec![
                Tensor::from_fn(&[2, 3], |i| i as f32 - 2.5),
                Tensor::scalar(-0.0),
            ],
            opt_m: vec![Some(Tensor::full(&[2, 3], 1e-9)), None],
            opt_v: vec![Some(Tensor::full(&[2, 3], f32::MIN_POSITIVE)), None],
            quant: None,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ckpt = sample_checkpoint();
        let decoded = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).expect("roundtrip decodes");
        assert_eq!(decoded.epoch, ckpt.epoch);
        assert_eq!(decoded.opt_kind, ckpt.opt_kind);
        assert_eq!(decoded.lr_scale.to_bits(), ckpt.lr_scale.to_bits());
        for (a, b) in decoded.params.iter().zip(&ckpt.params) {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(decoded.opt_m, ckpt.opt_m);
        assert_eq!(decoded.opt_v, ckpt.opt_v);
    }

    #[test]
    fn unquantized_checkpoints_stay_version_1() {
        // The v2 upgrade must not move a single byte of a training
        // checkpoint: version stays 1 and no trailing section appears.
        let bytes = sample_checkpoint().to_bytes();
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        assert_eq!(version, 1);
        let meta = peek_bytes(&bytes).expect("peek");
        assert_eq!(meta.version, 1);
    }

    #[test]
    fn quantized_checkpoint_roundtrips_as_version_2() {
        let mut ckpt = sample_checkpoint();
        ckpt.params.clear();
        ckpt.opt_m.clear();
        ckpt.opt_v.clear();
        ckpt.quant = Some(vec![
            QuantSlot::I8(QuantTensor {
                shape: vec![2, 3],
                scales: vec![0.25, 0.5],
                codes: vec![1, -2, 3, -4, 5, -127],
            }),
            QuantSlot::F32(Tensor::from_fn(&[3], |i| i as f32 * 0.5)),
        ]);
        let bytes = ckpt.to_bytes();
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        assert_eq!(version, 2);
        let meta = peek_bytes(&bytes).expect("peek accepts v2");
        assert_eq!(meta.version, 2);
        assert_eq!(meta.n_params, 0);
        let back = TrainCheckpoint::from_bytes(&bytes).expect("v2 decodes");
        assert_eq!(back.quant, ckpt.quant);
        assert!(back.params.is_empty());
        // Code count must agree with the shape product.
        let mut bad = ckpt.clone();
        if let Some(slots) = &mut bad.quant {
            if let QuantSlot::I8(q) = &mut slots[0] {
                q.codes.pop();
            }
        }
        assert!(TrainCheckpoint::from_bytes(&bad.to_bytes())
            .expect_err("mismatched code count")
            .is_corrupt());
    }

    #[test]
    fn peek_matches_full_decode_and_rejects_corruption() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        let meta = peek_bytes(&bytes).expect("peek decodes");
        assert_eq!(meta.epoch, ckpt.epoch);
        assert_eq!(meta.seed, ckpt.seed);
        assert_eq!(meta.opt_kind, ckpt.opt_kind);
        assert_eq!(meta.n_params, ckpt.params.len() as u64);
        assert_eq!(meta.file_bytes, bytes.len() as u64);
        // The fingerprint is the stored CRC footer.
        let crc = u32::from_le_bytes([
            bytes[bytes.len() - 4],
            bytes[bytes.len() - 3],
            bytes[bytes.len() - 2],
            bytes[bytes.len() - 1],
        ]);
        assert_eq!(meta.crc, crc);
        // Any corruption a full load would reject, peek rejects too.
        let mut mangled = bytes.clone();
        mangled[bytes.len() / 2] ^= 0x01;
        assert!(peek_bytes(&mangled).expect_err("corrupt").is_corrupt());
        assert!(peek_bytes(&bytes[..20])
            .expect_err("truncated")
            .is_corrupt());
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for probe in [8usize, bytes.len() / 2, bytes.len() - 5] {
            let mut mangled = bytes.clone();
            mangled[probe] ^= 0x10;
            let err = TrainCheckpoint::from_bytes(&mangled).expect_err("bit flip must not decode");
            assert!(
                err.is_corrupt(),
                "wrong class for flipped byte {probe}: {err}"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in [0usize, 7, 12, bytes.len() - 1] {
            let err =
                TrainCheckpoint::from_bytes(&bytes[..cut]).expect_err("truncation must not decode");
            assert!(err.is_corrupt(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn atomic_write_then_load_and_prune() {
        let dir = std::env::temp_dir().join(format!("peb_guard_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = sample_checkpoint();
        for epoch in 1..=4u64 {
            let mut c = ckpt.clone();
            c.epoch = epoch;
            c.save(&checkpoint_path(&dir, epoch)).expect("save");
        }
        assert_eq!(list_checkpoints(&dir), vec![4, 3, 2, 1]);
        prune_checkpoints(&dir, 2);
        assert_eq!(list_checkpoints(&dir), vec![4, 3]);
        let latest = load_latest(&dir).expect("load").expect("present");
        assert_eq!(latest.epoch, 4);
        // No stray temp files.
        let stray = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(stray, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_latest_falls_back_past_corrupt_newest() {
        let dir = std::env::temp_dir().join(format!("peb_guard_fallback_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut ckpt = sample_checkpoint();
        ckpt.epoch = 1;
        ckpt.save(&checkpoint_path(&dir, 1)).expect("save epoch 1");
        ckpt.epoch = 2;
        ckpt.save(&checkpoint_path(&dir, 2)).expect("save epoch 2");
        // Truncate the newest: resume must degrade to epoch 1.
        let newest = checkpoint_path(&dir, 2);
        let bytes = std::fs::read(&newest).expect("read");
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("truncate");
        let loaded = load_latest(&dir).expect("fallback works").expect("present");
        assert_eq!(loaded.epoch, 1);
        // All corrupt → typed error, not a panic.
        let oldest = checkpoint_path(&dir, 1);
        std::fs::write(&oldest, b"garbage").expect("mangle");
        let err = load_latest(&dir).expect_err("all corrupt");
        assert!(err.is_corrupt());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_is_none() {
        let dir = std::env::temp_dir().join(format!("peb_guard_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert_eq!(load_latest(&dir).expect("ok"), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
