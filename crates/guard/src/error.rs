//! The workspace-wide typed error (`PebError`) and its context chain.
//!
//! Every fallible public entry point in `peb-data`, `sdm-peb` (trainer and
//! solver), `peb-litho::flow` and the bench binaries returns this type
//! instead of panicking: a malformed dataset file, a diverged training
//! run, or a corrupt checkpoint must surface as a value the caller can
//! match on, log, and recover from — the fab-loop deployment argument of
//! the TorchResist and physics-constrained-manufacturing lines of work.

use std::error::Error;
use std::fmt;
use std::io;

use peb_fft::FftError;
use peb_litho::LithoError;
use peb_tensor::TensorError;

/// Convenience alias used across the workspace's fault-tolerant paths.
pub type Result<T> = std::result::Result<T, PebError>;

/// The workspace-typed error.
///
/// Variants are coarse *classes* (callers dispatch on recoverability),
/// while precision lives in the `detail` strings and in [`PebError::Context`]
/// frames pushed by the [`Context`] extension trait.
#[derive(Debug, Clone, PartialEq)]
pub enum PebError {
    /// A tensor/geometry shape invariant was violated.
    Shape {
        /// What was violated.
        detail: String,
    },
    /// A configuration value violates a physical or logical invariant.
    Config {
        /// The violated invariant.
        detail: String,
    },
    /// An operating-system I/O failure (file missing, permission, disk).
    Io {
        /// `std::io::ErrorKind` of the underlying failure.
        kind: io::ErrorKind,
        /// The underlying error message.
        detail: String,
    },
    /// On-disk data failed validation: bad magic, checksum mismatch,
    /// truncation, or an undecodable record. Distinct from [`PebError::Io`]
    /// so callers can quarantine rather than retry.
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
    /// A numeric invariant broke outside the training loop (non-finite
    /// field values, singular solve, …).
    Numeric {
        /// The violated invariant.
        detail: String,
    },
    /// Training diverged and the rollback/retry budget is exhausted.
    Divergence {
        /// Description of the terminal state.
        detail: String,
        /// Rollbacks performed before giving up.
        rollbacks: u64,
    },
    /// A failure deliberately injected by the [`crate::chaos`] harness
    /// (e.g. a simulated mid-run kill). Never produced in production.
    Injected {
        /// Which injection fired.
        detail: String,
    },
    /// A context frame wrapping a lower-level error.
    Context {
        /// Human description of the operation that failed.
        ctx: String,
        /// The wrapped error.
        source: Box<PebError>,
    },
}

impl PebError {
    /// Builds a [`PebError::Shape`].
    pub fn shape(detail: impl Into<String>) -> Self {
        PebError::Shape {
            detail: detail.into(),
        }
    }

    /// Builds a [`PebError::Config`].
    pub fn config(detail: impl Into<String>) -> Self {
        PebError::Config {
            detail: detail.into(),
        }
    }

    /// Builds a [`PebError::Corrupt`].
    pub fn corrupt(detail: impl Into<String>) -> Self {
        PebError::Corrupt {
            detail: detail.into(),
        }
    }

    /// Builds a [`PebError::Numeric`].
    pub fn numeric(detail: impl Into<String>) -> Self {
        PebError::Numeric {
            detail: detail.into(),
        }
    }

    /// Builds a [`PebError::Injected`].
    pub fn injected(detail: impl Into<String>) -> Self {
        PebError::Injected {
            detail: detail.into(),
        }
    }

    /// The innermost (root-cause) error, unwrapping every context frame.
    pub fn root(&self) -> &PebError {
        match self {
            PebError::Context { source, .. } => source.root(),
            other => other,
        }
    }

    /// True when the root cause is data corruption (bad checksum, magic,
    /// truncation) — the "quarantine, don't retry" class.
    pub fn is_corrupt(&self) -> bool {
        matches!(self.root(), PebError::Corrupt { .. })
    }

    /// True when the root cause is exhausted divergence recovery.
    pub fn is_divergence(&self) -> bool {
        matches!(self.root(), PebError::Divergence { .. })
    }

    /// True when the root cause was injected by the chaos harness.
    pub fn is_injected(&self) -> bool {
        matches!(self.root(), PebError::Injected { .. })
    }

    /// Wraps `self` in a context frame.
    pub fn context(self, ctx: impl Into<String>) -> Self {
        PebError::Context {
            ctx: ctx.into(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for PebError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PebError::Shape { detail } => write!(f, "shape error: {detail}"),
            PebError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            PebError::Io { kind, detail } => write!(f, "i/o error ({kind:?}): {detail}"),
            PebError::Corrupt { detail } => write!(f, "corrupt data: {detail}"),
            PebError::Numeric { detail } => write!(f, "numeric error: {detail}"),
            PebError::Divergence { detail, rollbacks } => {
                write!(
                    f,
                    "training diverged after {rollbacks} rollback(s): {detail}"
                )
            }
            PebError::Injected { detail } => write!(f, "injected fault: {detail}"),
            PebError::Context { ctx, source } => write!(f, "{ctx}: {source}"),
        }
    }
}

impl Error for PebError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PebError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for PebError {
    fn from(e: io::Error) -> Self {
        // `InvalidData` is how pre-guard codecs signalled format trouble;
        // keep that classified as corruption rather than an OS failure.
        if e.kind() == io::ErrorKind::InvalidData || e.kind() == io::ErrorKind::UnexpectedEof {
            PebError::Corrupt {
                detail: e.to_string(),
            }
        } else {
            PebError::Io {
                kind: e.kind(),
                detail: e.to_string(),
            }
        }
    }
}

impl From<TensorError> for PebError {
    fn from(e: TensorError) -> Self {
        PebError::Shape {
            detail: e.to_string(),
        }
    }
}

impl From<FftError> for PebError {
    fn from(e: FftError) -> Self {
        PebError::Numeric {
            detail: e.to_string(),
        }
    }
}

impl From<LithoError> for PebError {
    fn from(e: LithoError) -> Self {
        match e {
            LithoError::Tensor(t) => t.into(),
            LithoError::Fft(fft) => fft.into(),
            LithoError::Config { detail } | LithoError::Layout { detail } => {
                PebError::Config { detail }
            }
        }
    }
}

/// Extension adding `.ctx("…")` to any `Result` whose error converts into
/// [`PebError`] — the idiom for building readable context chains:
///
/// ```
/// use peb_guard::{Context, PebError};
/// let r: Result<(), std::io::Error> =
///     Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
/// let e = r.ctx("loading dataset cache").unwrap_err();
/// assert!(e.to_string().starts_with("loading dataset cache:"));
/// ```
pub trait Context<T> {
    /// Wraps the error (converted to [`PebError`]) in a context frame.
    fn ctx(self, msg: impl Into<String>) -> Result<T>;

    /// Like [`Context::ctx`] but lazily builds the message.
    fn with_ctx(self, f: impl FnOnce() -> String) -> Result<T>;
}

impl<T, E: Into<PebError>> Context<T> for std::result::Result<T, E> {
    fn ctx(self, msg: impl Into<String>) -> Result<T> {
        self.map_err(|e| e.into().context(msg))
    }

    fn with_ctx(self, f: impl FnOnce() -> String) -> Result<T> {
        self.map_err(|e| e.into().context(f()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_chain_displays_outside_in() {
        let root = PebError::corrupt("crc mismatch");
        let wrapped = root.clone().context("loading checkpoint epoch 3");
        assert_eq!(
            wrapped.to_string(),
            "loading checkpoint epoch 3: corrupt data: crc mismatch"
        );
        assert_eq!(wrapped.root(), &root);
        assert!(wrapped.is_corrupt());
        assert!(!wrapped.is_divergence());
    }

    #[test]
    fn io_error_classification() {
        let missing: PebError = io::Error::new(io::ErrorKind::NotFound, "no file").into();
        assert!(matches!(missing, PebError::Io { .. }));
        let truncated: PebError = io::Error::new(io::ErrorKind::UnexpectedEof, "short read").into();
        assert!(truncated.is_corrupt());
    }

    #[test]
    fn litho_error_maps_by_class() {
        let cfg: PebError = LithoError::Config {
            detail: "bad grid".into(),
        }
        .into();
        assert!(matches!(cfg, PebError::Config { .. }));
    }

    #[test]
    fn source_chain_walks_context_frames() {
        let e = PebError::numeric("nan in field")
            .context("peb solve")
            .context("flow run");
        let mut depth = 0;
        let mut cur: &dyn Error = &e;
        while let Some(next) = cur.source() {
            depth += 1;
            cur = next;
        }
        assert_eq!(depth, 2);
    }
}
