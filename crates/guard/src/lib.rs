//! `peb-guard`: the fault-tolerance layer of the SDM-PEB workspace.
//!
//! The ROADMAP north-star is a production service, and production means
//! failure is an input, not an exception: a NaN spike mid-training, a
//! truncated dataset cache, a process killed between epochs. This crate
//! centralises the three mechanisms that turn those events from aborts
//! into recoveries:
//!
//! * [`PebError`] — the workspace-typed error with context chains
//!   ([`Context::ctx`]), returned by every fallible public entry point in
//!   `peb-data`, the `sdm-peb` trainer, `peb-litho::flow` and the bench
//!   binaries;
//! * [`checkpoint`] — versioned, CRC-32-checked, atomically-written
//!   training checkpoints ([`TrainCheckpoint`]) with newest-valid
//!   fallback ([`checkpoint::load_latest`]) so a torn or corrupted latest
//!   file degrades to the previous good epoch;
//! * [`chaos`] — the deterministic fault-injection harness (`PEB_CHAOS`)
//!   that drives NaN spikes, checkpoint/dataset truncation and bit flips,
//!   and mid-run kill/resume through the test suite and CI.
//!
//! The divergence sentinel itself (detect → rollback → LR backoff →
//! retry → typed failure) lives in `sdm_peb::Trainer`, which consumes
//! all three pieces; see DESIGN.md §10 for the state machine.

#![forbid(unsafe_code)]

pub mod chaos;
mod checkpoint;
mod error;

pub use checkpoint::{
    atomic_write, checkpoint_path, crc32, list_checkpoints, load_latest, peek, peek_bytes,
    prune_checkpoints, CkptMeta, EpochRecord, OptKind, QuantSlot, QuantTensor, TrainCheckpoint,
};
pub use error::{Context, PebError, Result};
