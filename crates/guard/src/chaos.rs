//! Deterministic fault injection (`PEB_CHAOS`).
//!
//! The harness arms at most **one** fault per process, either from the
//! `PEB_CHAOS` environment variable (latched on first probe, exactly like
//! `PEB_TRACE`/`PEB_SIMD`) or programmatically via [`arm`] in tests. Every
//! fault is *one-shot*: the first site that matches consumes it, so an
//! injected NaN spike diverges one epoch, the rollback retries, and the
//! retry runs clean — which is precisely the recovery path under test.
//!
//! | `PEB_CHAOS` | fault |
//! |-------------|-------|
//! | `nan-spike[:EPOCH]` | poison the model parameters right after the first optimiser step of `EPOCH` (default 1), as an undetected numeric blow-up |
//! | `truncate-ckpt[:BYTES]` | after the next checkpoint write, truncate the file by `BYTES` (default 16) bytes |
//! | `bitflip-ckpt[:BYTE]` | after the next checkpoint write, flip one bit at offset `BYTE` (default the payload midpoint) |
//! | `kill[:EPOCH]` | abort the run with [`PebError::Injected`] right after the checkpoint of `EPOCH` (default 1) is written — the resume test then continues from disk |
//! | `truncate-data[:BYTES]` | after the next dataset write, truncate the file by `BYTES` (default 64) bytes |
//! | `disconnect` | drop the next `peb-serve` client connection mid-response (abrupt socket close after the headers, before the body) |
//! | `kill-worker[:N]` | abort the process (`SIGABRT`-style, no cleanup) at the start of the `N`th inference batch after arming (default 0 = the next one) — a serving worker dying mid-batch |
//! | `hang-worker[:N]` | wedge the serving process at the `N`th request after arming: every connection thread stops reading and writing, simulating a live-but-unresponsive worker (liveness probes time out, the process does not exit) |
//! | `corrupt-resp[:N]` | flip one payload byte of the `N`th inference response frame after arming, exercising the `PEBRESP2` CRC reject path in routers and clients |
//!
//! The three `*-worker`/`corrupt-resp` faults carry a *countdown*
//! rather than an epoch: each matching probe decrements it and the
//! fault fires when it reaches zero, so a chaos schedule can plant
//! "fail on the 50th request" into a worker's environment and drive a
//! deterministic failure mid-load.
//!
//! The checkpoint faults double as *hot-swap* faults: `peb-serve` probes
//! [`mangle_checkpoint`] on the file it is about to load, so an armed
//! `truncate-ckpt`/`bitflip-ckpt` corrupts the incoming model exactly
//! once and the registry's reject-and-keep-serving path is exercised.
//!
//! Production builds never consult this module unless `PEB_CHAOS` is set;
//! the disarmed fast path is one mutex-free atomic load.

use std::fs::OpenOptions;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// An armed fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Chaos {
    /// Poison parameters after the first optimiser step of `epoch`.
    NanSpike {
        /// 0-based epoch to poison.
        epoch: u64,
    },
    /// Truncate the next written checkpoint file by `bytes`.
    TruncateCkpt {
        /// Bytes to cut from the tail.
        bytes: u64,
    },
    /// Flip one bit of the next written checkpoint file.
    BitflipCkpt {
        /// Byte offset to flip (`None` → payload midpoint).
        byte: Option<u64>,
    },
    /// Return [`crate::PebError::Injected`] after the checkpoint of
    /// `epoch` is written.
    Kill {
        /// 0-based epoch after whose checkpoint the run dies.
        epoch: u64,
    },
    /// Truncate the next written dataset file by `bytes`.
    TruncateData {
        /// Bytes to cut from the tail.
        bytes: u64,
    },
    /// Drop the next served client connection mid-response.
    Disconnect,
    /// Abort the process at the start of an inference batch (the
    /// countdown is decremented once per batch, firing at zero).
    KillWorker {
        /// Matching probes remaining before the fault fires.
        after: u64,
    },
    /// Wedge the serving process: stop reading and writing on every
    /// connection without exiting (countdown per request).
    HangWorker {
        /// Matching probes remaining before the fault fires.
        after: u64,
    },
    /// Flip one payload byte of an inference response frame so its
    /// CRC-32 footer no longer verifies (countdown per response).
    CorruptResp {
        /// Matching probes remaining before the fault fires.
        after: u64,
    },
}

/// Fast disarm flag: `false` ⇒ nothing armed, probes return immediately.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Whether `PEB_CHAOS` has been latched; until then probes must take the
/// slow path so an env-armed fault can set [`ARMED`].
static INIT: AtomicBool = AtomicBool::new(false);
/// Lazily initialised armed fault (None after consumption/disarm).
static STATE: Mutex<ChaosState> = Mutex::new(ChaosState::Uninit);

/// Cheap probe gate: after the env latch has run, a plain atomic load;
/// before it, fall through to [`state`] so the latch happens.
fn probe() -> bool {
    if !INIT.load(Ordering::Acquire) {
        drop(state());
    }
    ARMED.load(Ordering::Relaxed)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ChaosState {
    /// `PEB_CHAOS` not read yet.
    Uninit,
    /// A fault is armed and unconsumed.
    Armed(Chaos),
    /// Nothing armed (unset/consumed/cleared).
    Disarmed,
}

fn state() -> std::sync::MutexGuard<'static, ChaosState> {
    let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if *s == ChaosState::Uninit {
        *s = match std::env::var("PEB_CHAOS").ok().and_then(|v| parse(&v)) {
            Some(c) => {
                ARMED.store(true, Ordering::Relaxed);
                ChaosState::Armed(c)
            }
            None => ChaosState::Disarmed,
        };
        INIT.store(true, Ordering::Release);
    }
    s
}

/// Parses a `PEB_CHAOS` spec; `None` for unrecognised input.
pub fn parse(spec: &str) -> Option<Chaos> {
    let mut parts = spec.split(':');
    let head = parts.next()?;
    let arg = parts.next().and_then(|v| v.parse::<u64>().ok());
    match head {
        "nan-spike" => Some(Chaos::NanSpike {
            epoch: arg.unwrap_or(1),
        }),
        "truncate-ckpt" => Some(Chaos::TruncateCkpt {
            bytes: arg.unwrap_or(16),
        }),
        "bitflip-ckpt" => Some(Chaos::BitflipCkpt { byte: arg }),
        // The CI matrix name for the kill/resume scenario.
        "kill" | "kill-resume" => Some(Chaos::Kill {
            epoch: arg.unwrap_or(1),
        }),
        "truncate-data" => Some(Chaos::TruncateData {
            bytes: arg.unwrap_or(64),
        }),
        "disconnect" => Some(Chaos::Disconnect),
        "kill-worker" => Some(Chaos::KillWorker {
            after: arg.unwrap_or(0),
        }),
        "hang-worker" => Some(Chaos::HangWorker {
            after: arg.unwrap_or(0),
        }),
        "corrupt-resp" => Some(Chaos::CorruptResp {
            after: arg.unwrap_or(0),
        }),
        _ => None,
    }
}

/// Arms a fault programmatically (tests), replacing any armed one.
pub fn arm(c: Chaos) {
    *state() = ChaosState::Armed(c);
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms without firing.
pub fn disarm() {
    *state() = ChaosState::Disarmed;
    ARMED.store(false, Ordering::Relaxed);
}

/// The currently armed fault, if any (not consumed by peeking).
pub fn armed() -> Option<Chaos> {
    if !probe() {
        return None;
    }
    match &*state() {
        ChaosState::Armed(c) => Some(c.clone()),
        _ => None,
    }
}

/// Consumes the armed fault when `matches` approves it.
fn take_if(matches: impl FnOnce(&Chaos) -> bool) -> Option<Chaos> {
    if !probe() {
        return None;
    }
    let mut s = state();
    if let ChaosState::Armed(c) = &*s {
        if matches(c) {
            let taken = c.clone();
            *s = ChaosState::Disarmed;
            ARMED.store(false, Ordering::Relaxed);
            return Some(taken);
        }
    }
    None
}

/// True exactly once when a NaN spike is armed for `epoch` — the trainer
/// responds by poisoning the freshly-updated parameters.
pub fn take_nan_spike(epoch: u64) -> bool {
    take_if(|c| matches!(c, Chaos::NanSpike { epoch: e } if *e == epoch)).is_some()
}

/// True exactly once when a kill is armed for `epoch` (checked after the
/// epoch's checkpoint lands on disk).
pub fn take_kill(epoch: u64) -> bool {
    take_if(|c| matches!(c, Chaos::Kill { epoch: e } if *e == epoch)).is_some()
}

/// True exactly once when a client-disconnect fault is armed — the
/// server responds by closing the socket mid-response.
pub fn take_disconnect() -> bool {
    take_if(|c| matches!(c, Chaos::Disconnect)).is_some()
}

/// Decrements the countdown a matching armed fault carries; fires
/// (consuming the fault) when the countdown is already zero. Each call
/// is one "matching probe" in the `PEB_CHAOS` table: `fault:3` survives
/// three probes and fires on the fourth.
fn fire_after(select: impl Fn(&mut Chaos) -> Option<&mut u64>) -> bool {
    if !probe() {
        return false;
    }
    let mut s = state();
    if let ChaosState::Armed(c) = &mut *s {
        if let Some(after) = select(c) {
            if *after == 0 {
                *s = ChaosState::Disarmed;
                ARMED.store(false, Ordering::Relaxed);
                return true;
            }
            *after -= 1;
        }
    }
    false
}

/// True exactly once when a worker-kill fault reaches its countdown —
/// probed by `peb-serve` at the start of every inference batch; the
/// worker responds by aborting the whole process.
pub fn take_kill_worker() -> bool {
    fire_after(|c| match c {
        Chaos::KillWorker { after } => Some(after),
        _ => None,
    })
}

/// True exactly once when a worker-hang fault reaches its countdown —
/// probed by `peb-serve` per request; the worker responds by wedging
/// every connection thread (alive but unresponsive).
pub fn take_hang_worker() -> bool {
    fire_after(|c| match c {
        Chaos::HangWorker { after } => Some(after),
        _ => None,
    })
}

/// True exactly once when a corrupt-response fault reaches its
/// countdown — probed by `peb-serve` per inference response; the
/// worker responds by flipping a payload byte after the CRC footer was
/// computed.
pub fn take_corrupt_resp() -> bool {
    fire_after(|c| match c {
        Chaos::CorruptResp { after } => Some(after),
        _ => None,
    })
}

/// Applies any armed checkpoint-file corruption to `path` (called after
/// a checkpoint write, and by `peb-serve` *before* a hot-swap load).
/// Returns `true` when the file was mangled.
pub fn mangle_checkpoint(path: &Path) -> bool {
    match take_if(|c| matches!(c, Chaos::TruncateCkpt { .. } | Chaos::BitflipCkpt { .. })) {
        Some(Chaos::TruncateCkpt { bytes }) => truncate_tail(path, bytes),
        Some(Chaos::BitflipCkpt { byte }) => flip_bit(path, byte),
        _ => false,
    }
}

/// Applies any armed dataset-file corruption to `path` (called after a
/// dataset write). Returns `true` when the file was mangled.
pub fn mangle_dataset(path: &Path) -> bool {
    match take_if(|c| matches!(c, Chaos::TruncateData { .. })) {
        Some(Chaos::TruncateData { bytes }) => truncate_tail(path, bytes),
        _ => false,
    }
}

fn truncate_tail(path: &Path, bytes: u64) -> bool {
    let Ok(meta) = std::fs::metadata(path) else {
        return false;
    };
    let new_len = meta.len().saturating_sub(bytes.max(1));
    let Ok(f) = OpenOptions::new().write(true).open(path) else {
        return false;
    };
    let ok = f.set_len(new_len).is_ok();
    if ok {
        eprintln!(
            "[peb-chaos] truncated {} by {} bytes (now {new_len})",
            path.display(),
            meta.len() - new_len
        );
    }
    ok
}

fn flip_bit(path: &Path, byte: Option<u64>) -> bool {
    let Ok(mut f) = OpenOptions::new().read(true).write(true).open(path) else {
        return false;
    };
    let Ok(len) = f.seek(SeekFrom::End(0)) else {
        return false;
    };
    if len == 0 {
        return false;
    }
    let offset = byte.unwrap_or(len / 2).min(len - 1);
    let mut b = [0u8];
    if f.seek(SeekFrom::Start(offset)).is_err() || f.read_exact(&mut b).is_err() {
        return false;
    }
    b[0] ^= 0x20;
    let ok = f.seek(SeekFrom::Start(offset)).is_ok() && f.write_all(&b).is_ok();
    if ok {
        eprintln!(
            "[peb-chaos] flipped bit 5 of byte {offset} in {}",
            path.display()
        );
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed fault is process-global; serialise the tests.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_specs() {
        assert_eq!(parse("nan-spike"), Some(Chaos::NanSpike { epoch: 1 }));
        assert_eq!(parse("nan-spike:3"), Some(Chaos::NanSpike { epoch: 3 }));
        assert_eq!(
            parse("truncate-ckpt:9"),
            Some(Chaos::TruncateCkpt { bytes: 9 })
        );
        assert_eq!(
            parse("bitflip-ckpt"),
            Some(Chaos::BitflipCkpt { byte: None })
        );
        assert_eq!(parse("kill-resume:2"), Some(Chaos::Kill { epoch: 2 }));
        assert_eq!(parse("kill"), Some(Chaos::Kill { epoch: 1 }));
        assert_eq!(
            parse("truncate-data"),
            Some(Chaos::TruncateData { bytes: 64 })
        );
        assert_eq!(parse("disconnect"), Some(Chaos::Disconnect));
        assert_eq!(parse("kill-worker"), Some(Chaos::KillWorker { after: 0 }));
        assert_eq!(parse("hang-worker:7"), Some(Chaos::HangWorker { after: 7 }));
        assert_eq!(
            parse("corrupt-resp:50"),
            Some(Chaos::CorruptResp { after: 50 })
        );
        assert_eq!(parse("meteor-strike"), None);
    }

    #[test]
    fn countdown_faults_fire_at_zero_and_only_once() {
        let _l = lock();
        arm(Chaos::CorruptResp { after: 2 });
        assert!(!take_corrupt_resp(), "countdown 2 → no fire");
        assert!(!take_kill_worker(), "non-matching probe must not count");
        assert!(!take_corrupt_resp(), "countdown 1 → no fire");
        assert!(take_corrupt_resp(), "countdown 0 → fire");
        assert!(!take_corrupt_resp(), "already consumed");
        assert_eq!(armed(), None);
        arm(Chaos::KillWorker { after: 0 });
        assert!(take_kill_worker(), "default countdown fires immediately");
        arm(Chaos::HangWorker { after: 1 });
        assert!(!take_hang_worker());
        assert!(take_hang_worker());
        disarm();
    }

    #[test]
    fn faults_are_one_shot() {
        let _l = lock();
        arm(Chaos::NanSpike { epoch: 2 });
        assert!(!take_nan_spike(1), "wrong epoch must not consume");
        assert!(take_nan_spike(2));
        assert!(!take_nan_spike(2), "already consumed");
        assert_eq!(armed(), None);
        disarm();
    }

    #[test]
    fn mangle_truncates_files() {
        let _l = lock();
        let path = std::env::temp_dir().join(format!("peb_chaos_trunc_{}", std::process::id()));
        std::fs::write(&path, vec![0xABu8; 100]).expect("write");
        arm(Chaos::TruncateCkpt { bytes: 30 });
        assert!(mangle_checkpoint(&path));
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), 70);
        // Consumed: a second write stays intact.
        assert!(!mangle_checkpoint(&path));
        std::fs::remove_file(&path).ok();
        disarm();
    }

    #[test]
    fn mangle_flips_exactly_one_bit() {
        let _l = lock();
        let path = std::env::temp_dir().join(format!("peb_chaos_flip_{}", std::process::id()));
        let original = vec![0u8; 64];
        std::fs::write(&path, &original).expect("write");
        arm(Chaos::BitflipCkpt { byte: Some(10) });
        assert!(mangle_checkpoint(&path));
        let mangled = std::fs::read(&path).expect("read");
        let diff: u32 = original
            .iter()
            .zip(&mangled)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
        std::fs::remove_file(&path).ok();
        disarm();
    }
}
