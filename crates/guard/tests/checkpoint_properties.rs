//! Property tests: checkpoint serialisation is bit-exact (including
//! non-finite and signed-zero payloads) and corruption never passes the
//! CRC.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use peb_guard::{EpochRecord, OptKind, PebError, TrainCheckpoint};
use peb_tensor::Tensor;

/// Random tensor whose payload mixes ordinary values with the IEEE-754
/// specials a checkpoint must preserve exactly: NaN (several payloads),
/// ±inf, -0.0, and subnormals.
fn special_tensor(rng: &mut StdRng) -> Tensor {
    let rank = rng.gen_range(0..4usize);
    let shape: Vec<usize> = (0..rank).map(|_| rng.gen_range(1..5usize)).collect();
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|_| match rng.gen_range(0..8u32) {
            0 => f32::NAN,
            1 => f32::from_bits(0x7fc0_dead), // NaN with payload
            2 => f32::INFINITY,
            3 => f32::NEG_INFINITY,
            4 => -0.0,
            5 => f32::from_bits(1), // smallest subnormal
            _ => rng.gen_range(-1e6..1e6),
        })
        .collect();
    Tensor::from_vec(data, &shape).expect("shape/data agree by construction")
}

fn random_checkpoint(seed: u64) -> TrainCheckpoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_params = rng.gen_range(0..5usize);
    let params: Vec<Tensor> = (0..n_params).map(|_| special_tensor(&mut rng)).collect();
    let opt_m: Vec<Option<Tensor>> = params
        .iter()
        .map(|_| {
            if rng.gen_range(0..3u32) == 0 {
                None
            } else {
                Some(special_tensor(&mut rng))
            }
        })
        .collect();
    let opt_v: Vec<Option<Tensor>> = params
        .iter()
        .map(|_| {
            if rng.gen_range(0..3u32) == 0 {
                None
            } else {
                Some(special_tensor(&mut rng))
            }
        })
        .collect();
    let epochs = rng.gen_range(0..6usize);
    TrainCheckpoint {
        epoch: rng.gen_range(0..10_000u64),
        seed: rng.next_u64(),
        opt_kind: if rng.gen_range(0..2u32) == 0 {
            OptKind::Adam
        } else {
            OptKind::Sgd
        },
        opt_t: rng.next_u64(),
        lr_scale: f32::from_bits(rng.next_u32()),
        rollbacks: rng.gen_range(0..100u64),
        epoch_stats: (0..epochs)
            .map(|_| EpochRecord {
                mean_loss: f32::from_bits(rng.next_u32()),
                skipped_batches: rng.gen_range(0..1000u64),
            })
            .collect(),
        params,
        opt_m,
        opt_v,
        quant: None,
    }
}

fn bits(t: &Tensor) -> (Vec<usize>, Vec<u32>) {
    (
        t.shape().to_vec(),
        t.data().iter().map(|v| v.to_bits()).collect(),
    )
}

fn opt_bits(t: &Option<Tensor>) -> Option<(Vec<usize>, Vec<u32>)> {
    t.as_ref().map(bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode reproduces every field bit-for-bit, and encoding
    /// the decoded value reproduces the exact byte stream.
    #[test]
    fn roundtrip_is_bit_exact(seed in 0u64..10_000) {
        let ckpt = random_checkpoint(seed);
        let bytes = ckpt.to_bytes();
        let back = TrainCheckpoint::from_bytes(&bytes).expect("roundtrip decode");

        prop_assert_eq!(back.epoch, ckpt.epoch);
        prop_assert_eq!(back.seed, ckpt.seed);
        prop_assert_eq!(back.opt_kind, ckpt.opt_kind);
        prop_assert_eq!(back.opt_t, ckpt.opt_t);
        prop_assert_eq!(back.lr_scale.to_bits(), ckpt.lr_scale.to_bits());
        prop_assert_eq!(back.rollbacks, ckpt.rollbacks);
        prop_assert_eq!(back.epoch_stats.len(), ckpt.epoch_stats.len());
        for (a, b) in back.epoch_stats.iter().zip(&ckpt.epoch_stats) {
            prop_assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            prop_assert_eq!(a.skipped_batches, b.skipped_batches);
        }
        for (a, b) in back.params.iter().zip(&ckpt.params) {
            prop_assert_eq!(bits(a), bits(b));
        }
        for (a, b) in back.opt_m.iter().zip(&ckpt.opt_m) {
            prop_assert_eq!(opt_bits(a), opt_bits(b));
        }
        for (a, b) in back.opt_v.iter().zip(&ckpt.opt_v) {
            prop_assert_eq!(opt_bits(a), opt_bits(b));
        }
        prop_assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
    }

    /// Any single corrupted byte is caught — by the CRC footer, or (for
    /// damage inside the length-bearing header fields) by a decoder
    /// bounds check. Corruption must never pass silently.
    #[test]
    fn single_byte_corruption_is_always_detected(
        seed in 0u64..2_000,
        victim in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let ckpt = random_checkpoint(seed);
        let mut bytes = ckpt.to_bytes();
        let idx = victim % bytes.len();
        bytes[idx] ^= flip;
        match TrainCheckpoint::from_bytes(&bytes) {
            Err(e) => prop_assert!(
                matches!(e.root(), PebError::Corrupt { .. }),
                "wrong error class: {}", e
            ),
            Ok(_) => prop_assert!(false, "corrupt byte {} accepted", idx),
        }
    }
}
