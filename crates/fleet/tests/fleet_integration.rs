//! End-to-end fleet behaviour over real worker processes: sharded
//! routing with bitwise-identical answers, failover + supervised
//! restart after a worker crash, fleet-wide hot-swap with checkpoint
//! reload on restart, and router-side deadline shedding.
//!
//! Workers are spawned from the `peb_worker` binary cargo builds for
//! this test target (`CARGO_BIN_EXE_peb_worker`). Worker serving knobs
//! travel via `FleetConfig::worker_env`, never the parent's global
//! environment (parallel tests would race on it).

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use peb_fleet::{clip_digest, Fleet, FleetConfig, Ring};
use peb_guard::{OptKind, TrainCheckpoint};
use peb_nn::Parameterized;
use peb_serve::clip::{decode_resp, encode_clip};
use peb_serve::Client;
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{PebPredictor, SdmPeb, SdmPebConfig};

const GRID: (usize, usize, usize) = (4, 16, 16);
const SEED: u64 = 42;

fn worker_env() -> Vec<(String, String)> {
    [
        ("PEB_SERVE_GRID", "4x16x16"),
        ("PEB_SERVE_MODEL", "tiny"),
        ("PEB_SERVE_SEED", "42"),
        ("PEB_SERVE_MAX_BATCH", "4"),
        ("PEB_SERVE_MAX_WAIT_US", "200"),
        ("PEB_SERVE_THREADS", "1"),
        ("PEB_SERVE_PREC", "f32"),
    ]
    .iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect()
}

fn fleet_config(workers: usize) -> FleetConfig {
    FleetConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_peb_worker"))),
        worker_env: worker_env(),
        // Generous on a 1-core box: model build + batching + retries.
        deadline_us: 30_000_000,
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(500),
        probe_fails: 2,
        attempt_timeout: Some(Duration::from_secs(5)),
        ..FleetConfig::default()
    }
    .normalized()
}

fn test_clip(tag: u64) -> Tensor {
    let (d, h, w) = GRID;
    Tensor::from_vec(
        (0..d * h * w)
            .map(|i| ((i as f32 + tag as f32 * 37.0) * 0.01).cos() * 0.3 + 0.5)
            .collect(),
        &[d, h, w],
    )
    .expect("clip")
}

/// The single-process answer every fleet response must match bitwise.
fn reference_digest(clip: &Tensor) -> u64 {
    let model = SdmPeb::new(SdmPebConfig::tiny(GRID), &mut StdRng::seed_from_u64(SEED));
    model.predict(clip).bit_digest()
}

/// A clip whose ring owner is `shard` (searches tags deterministically).
fn clip_owned_by(ring: &Ring, shard: usize) -> Tensor {
    for tag in 0..256u64 {
        let c = test_clip(tag);
        if ring.owner(clip_digest(&encode_clip(&c))) == shard {
            return c;
        }
    }
    panic!("no tag in 0..256 hashes to shard {shard}");
}

fn wait_for(mut cond: impl FnMut() -> bool, budget: Duration, what: &str) {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn fleet_serves_sharded_requests_bitwise_identical_to_single_process() {
    let fleet = Fleet::start(fleet_config(2)).expect("fleet start");
    let mut client = Client::connect(fleet.addr()).expect("connect");

    // Liveness, readiness, stats all answer at the router.
    let r = client.request("GET", "/healthz", b"").expect("healthz");
    assert_eq!(r.status, 200);
    let r = client.request("GET", "/readyz", b"").expect("readyz");
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
    let r = client.request("GET", "/stats", b"").expect("stats");
    let stats_json = String::from_utf8_lossy(&r.body).to_string();
    assert!(stats_json.contains("\"workers\":2"), "{stats_json}");
    assert!(stats_json.contains("\"up\":2"), "{stats_json}");

    // Clips spread across both shards; every answer matches the
    // single-process model bitwise.
    let ring = fleet.ring();
    let mut owners_seen = [false; 2];
    for tag in 0..8 {
        let clip = test_clip(tag);
        owners_seen[ring.owner(clip_digest(&encode_clip(&clip)))] = true;
        let served = client.infer(&clip).expect("fleet infer");
        assert_eq!(
            served.bit_digest(),
            reference_digest(&clip),
            "tag {tag}: fleet answer must be bitwise single-process"
        );
    }
    assert!(
        owners_seen[0] && owners_seen[1],
        "8 clips should span both shards"
    );
    assert_eq!(fleet.stats().corrupt_rejected.load(Ordering::Relaxed), 0);
    fleet.shutdown();
}

#[test]
fn killed_worker_fails_over_and_is_restarted() {
    // Arm a kill-worker fault on shard 0's first spawn: the first batch
    // that worker runs aborts the whole process mid-request.
    let mut cfg = fleet_config(2);
    cfg.worker_chaos = vec![(0, "kill-worker".to_string())];
    let fleet = Fleet::start(cfg).expect("fleet start");
    let ring = fleet.ring();
    let victim_clip = clip_owned_by(&ring, 0);
    let want = reference_digest(&victim_clip);

    let mut client = Client::connect(fleet.addr()).expect("connect");
    // The owner dies mid-batch; the router must fail over and still
    // return the right bits.
    let served = client.infer(&victim_clip).expect("failover infer");
    assert_eq!(
        served.bit_digest(),
        want,
        "failover answer must be bitwise identical"
    );
    let stats = fleet.stats();
    assert!(stats.retries.load(Ordering::Relaxed) >= 1, "retry counted");
    assert!(
        stats.failovers.load(Ordering::Relaxed) >= 1,
        "failover counted"
    );

    // The supervisor notices the crash and brings shard 0 back.
    let shards = fleet.shards();
    wait_for(
        || shards.total_restarts() >= 1 && shards.up_count() == 2,
        Duration::from_secs(30),
        "worker restart",
    );
    // The restarted worker serves the same bits (restarts are clean —
    // the fault spec does not re-arm).
    let served = client.infer(&victim_clip).expect("post-restart infer");
    assert_eq!(served.bit_digest(), want);
    fleet.shutdown();
}

#[test]
fn swap_fans_out_and_restarted_worker_reloads_checkpoint() {
    let donor = SdmPeb::new(SdmPebConfig::tiny(GRID), &mut StdRng::seed_from_u64(999));
    let params: Vec<Tensor> = donor.parameters().iter().map(|p| p.value_clone()).collect();
    let n = params.len();
    let ckpt = TrainCheckpoint {
        epoch: 5,
        seed: 999,
        opt_kind: OptKind::Adam,
        opt_t: 0,
        lr_scale: 1.0,
        rollbacks: 0,
        epoch_stats: vec![],
        params,
        opt_m: vec![None; n],
        opt_v: vec![None; n],
        quant: None,
    };
    let path = std::env::temp_dir().join(format!("peb_fleet_swap_{}.ckpt", std::process::id()));
    ckpt.save(&path).expect("save checkpoint");

    let mut cfg = fleet_config(2);
    // Shard 0 will abort on its first post-swap batch, forcing a
    // restart that must reload the swapped checkpoint.
    cfg.worker_chaos = vec![(0, "kill-worker".to_string())];
    let fleet = Fleet::start(cfg).expect("fleet start");
    let ring = fleet.ring();
    let shard0_clip = clip_owned_by(&ring, 0);
    let swapped_digest = donor.predict(&shard0_clip).bit_digest();
    assert_ne!(swapped_digest, reference_digest(&shard0_clip));

    let mut client = Client::connect(fleet.addr()).expect("connect");
    let r = client
        .request("POST", "/swap", path.display().to_string().as_bytes())
        .expect("swap request");
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));

    // First shard-0 infer: the armed fault kills the worker mid-batch;
    // the failover answer must already carry the *swapped* bits (the
    // fallback worker swapped too).
    let served = client.infer(&shard0_clip).expect("failover infer");
    assert_eq!(served.bit_digest(), swapped_digest);

    // The restarted shard 0 must reload the checkpoint before going
    // routable — wait for it, then check its bits too. (The clip owner
    // routes to shard 0 again once it is Up.)
    let shards = fleet.shards();
    wait_for(
        || shards.total_restarts() >= 1 && shards.up_count() == 2,
        Duration::from_secs(30),
        "worker restart",
    );
    let served = client.infer(&shard0_clip).expect("post-restart infer");
    assert_eq!(
        served.bit_digest(),
        swapped_digest,
        "restarted worker must serve the swapped checkpoint, not the seed model"
    );
    fleet.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn hopeless_deadline_is_shed_with_504() {
    let fleet = Fleet::start(fleet_config(1)).expect("fleet start");
    let mut client = Client::connect(fleet.addr()).expect("connect");
    let clip = test_clip(3);
    let r = client
        .request_with_headers(
            "POST",
            "/infer",
            &[("x-peb-deadline-us", "1")],
            &encode_clip(&clip),
        )
        .expect("request completes");
    assert_eq!(
        r.status,
        504,
        "a 1µs budget must shed, not serve: {}",
        String::from_utf8_lossy(&r.body)
    );
    // A sane budget on the same connection still serves.
    let served = client.infer(&clip).expect("infer after shed");
    assert_eq!(served.bit_digest(), reference_digest(&clip));
    let _ = decode_resp; // silence unused when assertions compile out
    fleet.shutdown();
}

#[test]
fn bad_deadline_header_is_a_400_and_bad_routes_stay_typed() {
    let fleet = Fleet::start(fleet_config(1)).expect("fleet start");
    let mut client = Client::connect(fleet.addr()).expect("connect");
    let r = client
        .request_with_headers(
            "POST",
            "/infer",
            &[("x-peb-deadline-us", "soon")],
            &encode_clip(&test_clip(0)),
        )
        .expect("request completes");
    assert_eq!(r.status, 400);
    let r = client.request("GET", "/nope", b"").expect("request");
    assert_eq!(r.status, 404);
    let r = client.request("POST", "/healthz", b"").expect("request");
    assert_eq!(r.status, 405);
    // A malformed clip is forwarded to the worker and comes back 400 —
    // deterministic client errors are not retried.
    let r = client
        .request("POST", "/infer", b"not a clip frame")
        .expect("request");
    assert_eq!(r.status, 400);
    assert_eq!(fleet.stats().retries.load(Ordering::Relaxed), 0);
    fleet.shutdown();
}
