//! Failover determinism (ISSUE satellite): for every chaos fault the
//! fleet supports — `kill-worker` (process aborts mid-batch),
//! `hang-worker` (process wedges, alive but unresponsive) and
//! `corrupt-resp` (response frame fails its CRC) — a request whose
//! owner shard faults must come back **bitwise identical** to the
//! no-fault run, at 1 and 4 compute threads and in both f32 and bf16.
//!
//! The reference is a literal no-fault fleet run (not an in-process
//! model): cross-process bitwise determinism is the contract that makes
//! idempotent retries safe, so the test holds the fleet to exactly
//! that.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

use peb_fleet::{clip_digest, Fleet, FleetConfig, Ring};
use peb_serve::clip::encode_clip;
use peb_serve::Client;
use peb_simd::Prec;
use peb_tensor::Tensor;

const GRID: (usize, usize, usize) = (4, 16, 16);

fn worker_env(threads: usize) -> Vec<(String, String)> {
    vec![
        ("PEB_SERVE_GRID".to_string(), "4x16x16".to_string()),
        ("PEB_SERVE_MODEL".to_string(), "tiny".to_string()),
        ("PEB_SERVE_SEED".to_string(), "42".to_string()),
        ("PEB_SERVE_MAX_BATCH".to_string(), "4".to_string()),
        ("PEB_SERVE_MAX_WAIT_US".to_string(), "200".to_string()),
        ("PEB_SERVE_THREADS".to_string(), threads.to_string()),
        ("PEB_SERVE_PREC".to_string(), "f32".to_string()),
    ]
}

fn base_config(threads: usize) -> FleetConfig {
    FleetConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_peb_worker"))),
        worker_env: worker_env(threads),
        deadline_us: 60_000_000,
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(500),
        probe_fails: 2,
        // A hung worker must cost one bounded attempt, not the whole
        // deadline — this cap is what makes hang failover land in time.
        attempt_timeout: Some(Duration::from_secs(2)),
        drain_timeout: Duration::from_millis(1_000),
        ..FleetConfig::default()
    }
    .normalized()
}

fn test_clip(tag: u64) -> Tensor {
    let (d, h, w) = GRID;
    Tensor::from_vec(
        (0..d * h * w)
            .map(|i| ((i as f32 + tag as f32 * 37.0) * 0.01).cos() * 0.3 + 0.5)
            .collect(),
        &[d, h, w],
    )
    .expect("clip")
}

/// A clip owned by shard 0, so an armed shard-0 fault is on the
/// request's primary path, not a bystander.
fn shard0_clip() -> Tensor {
    let ring = Ring::new(2);
    for tag in 0..256u64 {
        let c = test_clip(tag);
        if ring.owner(clip_digest(&encode_clip(&c))) == 0 {
            return c;
        }
    }
    panic!("no tag in 0..256 hashes to shard 0");
}

/// Serves the clip in f32 and bf16 through `fleet`, returning both
/// output digests.
fn serve_both(fleet: &Fleet, clip: &Tensor) -> (u64, u64) {
    let mut client = Client::connect(fleet.addr()).expect("connect");
    let f32_digest = client.infer(clip).expect("f32 infer").bit_digest();
    let bf16_digest = client
        .infer_prec(clip, Prec::Bf16)
        .expect("bf16 infer")
        .bit_digest();
    (f32_digest, bf16_digest)
}

fn determinism_matrix(threads: usize) {
    let clip = shard0_clip();

    // Reference: the no-fault fleet's answers.
    let clean = Fleet::start(base_config(threads)).expect("clean fleet");
    let (ref_f32, ref_bf16) = serve_both(&clean, &clip);
    clean.shutdown();

    for fault in ["kill-worker", "hang-worker", "corrupt-resp"] {
        let mut cfg = base_config(threads);
        cfg.worker_chaos = vec![(0, fault.to_string())];
        if fault == "hang-worker" {
            // The wedge trips on the worker's *next parsed request*. A
            // long probe cadence makes that the supervisor's startup
            // probe, deterministically: our infer then always meets a
            // wedged-but-routable shard 0 and must fail over on the
            // attempt-timeout path (the supervisor is probed out of
            // cadence by the router's suspect flag afterwards).
            cfg.probe_interval = Duration::from_secs(10);
        }
        let fleet = Fleet::start(cfg).expect("chaos fleet");
        let (f32_digest, bf16_digest) = serve_both(&fleet, &clip);
        assert_eq!(
            f32_digest, ref_f32,
            "{fault}/{threads}t: retried f32 answer must be bitwise the no-fault answer"
        );
        assert_eq!(
            bf16_digest, ref_bf16,
            "{fault}/{threads}t: retried bf16 answer must be bitwise the no-fault answer"
        );
        let stats = fleet.stats();
        assert!(
            stats.retries.load(Ordering::Relaxed) >= 1,
            "{fault}/{threads}t: the faulted primary must have forced a retry"
        );
        if fault == "corrupt-resp" {
            assert!(
                stats.corrupt_rejected.load(Ordering::Relaxed) >= 1,
                "{fault}/{threads}t: the corrupt frame must be caught by the CRC gate"
            );
        }
        fleet.shutdown();
    }
}

#[test]
fn every_fault_is_bitwise_invisible_at_one_thread() {
    determinism_matrix(1);
}

#[test]
fn every_fault_is_bitwise_invisible_at_four_threads() {
    determinism_matrix(4);
}
