//! The fleet front-end: accepts the same HTTP/`PEBCLIP1` protocol as a
//! single worker, shards `/infer` across worker processes by clip
//! digest, propagates deadlines, and retries failed attempts on
//! fallback shards.
//!
//! Routing rules (DESIGN §15):
//!
//! - The shard *preference order* for a request is a pure function of
//!   its clip digest (consistent hashing, [`crate::ring`]). Down shards
//!   are skipped, not re-hashed — the ring shrinks.
//! - The router's remaining deadline rides the `X-Peb-Deadline-Us`
//!   header to the worker, whose batch coalescer sheds late jobs with
//!   504. The per-attempt socket read budget is the remaining deadline,
//!   optionally capped by `attempt_timeout` so a hung worker costs one
//!   attempt's cap instead of the whole budget.
//! - An attempt failure (connect refused/reset, timeout, bad CRC, 429,
//!   5xx) marks the shard suspect (the supervisor probes it out of
//!   cadence) and retries on the next shard in preference order after a
//!   capped exponential backoff with deterministic jitter. Retries stop
//!   when the deadline expires (504) or attempts are exhausted (502).
//! - Worker responses failing the CRC-32 integrity check are **never
//!   forwarded**; they count as `corrupt_rejected` and retry.
//!
//! Router routes: `/infer` and `/swap` forward (sharded / fan-out);
//! `/healthz`, `/readyz` and `/stats` answer locally; `/version`
//! forwards to the first routable shard.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use peb_serve::http::encode_response;
use peb_serve::{Client, ClientError, ClientTimeouts, Method, Request, RequestParser};

use crate::config::FleetConfig;
use crate::ring::{clip_digest, fnv64, Ring};
use crate::stats::FleetStats;
use crate::supervisor::{Shards, Supervisor};

/// Read timeout on router connections (bounds shutdown latency).
const READ_POLL: Duration = Duration::from_millis(100);

/// Largest request body the router accepts (matches a worker's own
/// limit for paper-scale grids, with header slack).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// A running fleet: router + supervisor + workers.
pub struct Fleet {
    addr: SocketAddr,
    config: FleetConfig,
    supervisor: Option<Supervisor>,
    stats: Arc<FleetStats>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Everything a connection thread needs to route (cheaply cloneable).
#[derive(Clone)]
struct RouterCtx {
    config: FleetConfig,
    ring: Arc<Ring>,
    shards: Arc<Shards>,
    /// The supervisor's checkpoint record: `/swap` writes the committed
    /// path here so restarted workers reload it.
    ckpt: Arc<Mutex<Option<String>>>,
    stats: Arc<FleetStats>,
}

impl Fleet {
    /// Starts the workers (via [`Supervisor::start`]), binds the router
    /// address, and begins accepting.
    ///
    /// # Errors
    ///
    /// Propagates worker spawn failures and socket errors.
    pub fn start(config: FleetConfig) -> std::io::Result<Fleet> {
        let config = config.normalized();
        let supervisor = Supervisor::start(&config)?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(FleetStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let ctx = RouterCtx {
            config: config.clone(),
            ring: Arc::new(Ring::new(config.workers)),
            shards: Arc::clone(supervisor.shards()),
            ckpt: supervisor.checkpoint_cell(),
            stats: Arc::clone(&stats),
        };
        let mut acceptors = Vec::with_capacity(config.conn_workers);
        for i in 0..config.conn_workers {
            let listener = listener.try_clone()?;
            let ctx = ctx.clone();
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("peb-fleet-accept-{i}"))
                    .spawn(move || accept_loop(&listener, &ctx, &stop, &conns))?,
            );
        }
        Ok(Fleet {
            addr,
            config,
            supervisor: Some(supervisor),
            stats,
            stop,
            acceptors,
            conns,
        })
    }

    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fleet counters (tests, the bench).
    pub fn stats(&self) -> &Arc<FleetStats> {
        &self.stats
    }

    /// The shared shard table (tests inspect states and restarts).
    pub fn shards(&self) -> Arc<Shards> {
        self.supervisor
            .as_ref()
            .map(|s| Arc::clone(s.shards()))
            .unwrap_or_else(|| Arc::new(Shards::empty()))
    }

    /// The routing ring (tests compute which shard owns a clip).
    pub fn ring(&self) -> Ring {
        Ring::new(self.config.workers)
    }

    /// Graceful stop: stop accepting, finish in-flight requests, then
    /// drain every worker.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        let conns = {
            let mut g = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        for c in conns {
            let _ = c.join();
        }
        if let Some(s) = self.supervisor.take() {
            s.shutdown(self.config.drain_timeout);
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    ctx: &RouterCtx,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        let ctx = ctx.clone();
        let stop = Arc::clone(stop);
        let spawned = std::thread::Builder::new()
            .name("peb-fleet-conn".to_string())
            .spawn(move || handle_conn(stream, &ctx, &stop));
        if let Ok(j) = spawned {
            conns.lock().unwrap_or_else(|e| e.into_inner()).push(j);
        }
    }
}

/// Per-connection-thread cache of upstream clients, one per shard.
/// Keep-alive to the workers amortises connect cost; any attempt
/// failure drops the cached client so the next attempt reconnects.
type Upstreams = HashMap<usize, Client>;

fn handle_conn(mut stream: TcpStream, ctx: &RouterCtx, stop: &Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::with_max_body(MAX_BODY);
    let mut buf = [0u8; 16 * 1024];
    let mut upstreams = Upstreams::new();
    loop {
        loop {
            match parser.poll() {
                Ok(Some(req)) => {
                    ctx.stats.tick_request();
                    let (status, content_type, body) = route(ctx, &mut upstreams, &req);
                    let keep = req.keep_alive;
                    let wire = encode_response(status, content_type, &body, keep);
                    if stream.write_all(&wire).is_err() || !keep {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    ctx.stats.tick_request();
                    let body = format!("{e}\n");
                    let wire = encode_response(e.status(), "text/plain", body.as_bytes(), false);
                    let _ = stream.write_all(&wire);
                    return;
                }
            }
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => parser.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Routes one request; returns `(status, content_type, body)`.
fn route(
    ctx: &RouterCtx,
    upstreams: &mut Upstreams,
    req: &Request,
) -> (u16, &'static str, Vec<u8>) {
    match (&req.method, req.path()) {
        (Method::Get, "/healthz") => (200, "text/plain", b"ok\n".to_vec()),
        (Method::Get, "/readyz") => {
            let up = ctx.shards.up_count();
            if up > 0 {
                (
                    200,
                    "text/plain",
                    format!("ready ({up} shards up)\n").into_bytes(),
                )
            } else {
                (503, "text/plain", b"not ready: no shard up\n".to_vec())
            }
        }
        (Method::Get, "/stats") => (
            200,
            "application/json",
            ctx.stats.to_json(&ctx.shards).into_bytes(),
        ),
        (Method::Get, "/version") => forward_first_up(ctx, upstreams, req),
        (Method::Post, "/infer") => infer(ctx, upstreams, req),
        (Method::Post, "/swap") => swap_all(ctx, upstreams, req),
        (_, "/healthz" | "/readyz" | "/stats" | "/version" | "/infer" | "/swap") => (
            405,
            "text/plain",
            b"method not allowed on this route\n".to_vec(),
        ),
        _ => (404, "text/plain", b"no such route\n".to_vec()),
    }
}

/// Resolves this request's absolute deadline: the client's
/// `X-Peb-Deadline-Us` header, else the fleet default. `None` = none.
fn request_deadline(ctx: &RouterCtx, req: &Request) -> Result<Option<Instant>, String> {
    let us = match req.header("x-peb-deadline-us") {
        Some(v) => v
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("x-peb-deadline-us {v:?} is not a microsecond count"))?,
        None => ctx.config.deadline_us,
    };
    Ok((us > 0).then(|| Instant::now() + Duration::from_micros(us)))
}

/// The sharded `/infer` path: preference order, deadline propagation,
/// retries with failover and backoff.
fn infer(
    ctx: &RouterCtx,
    upstreams: &mut Upstreams,
    req: &Request,
) -> (u16, &'static str, Vec<u8>) {
    let deadline = match request_deadline(ctx, req) {
        Ok(d) => d,
        Err(detail) => return (400, "text/plain", format!("{detail}\n").into_bytes()),
    };
    let digest = clip_digest(&req.body);
    let prefer = ctx.ring.prefer(digest);
    let mut last_failure: Option<String> = None;
    let mut prev_shard: Option<usize> = None;
    for attempt in 0..ctx.config.max_attempts {
        // Deadline check between attempts: shed rather than dispatch
        // work the client has already given up on.
        let remaining = match remaining_budget(deadline) {
            Ok(r) => r,
            Err(()) => {
                ctx.stats.tick_deadline_shed();
                return (504, "text/plain", b"deadline expired at router\n".to_vec());
            }
        };
        // Skip shards that are not routable *right now*; the preference
        // order itself never changes (the ring shrinks, DESIGN §15).
        let candidates: Vec<usize> = prefer
            .iter()
            .copied()
            .filter(|&s| ctx.shards.slots()[s].routable())
            .collect();
        if candidates.is_empty() {
            // Total outage: wait one backoff step for the supervisor to
            // bring something back, bounded by the deadline.
            backoff(ctx, digest, attempt, deadline);
            last_failure = Some("no shard up".to_string());
            continue;
        }
        let shard = candidates[attempt % candidates.len()];
        if attempt > 0 {
            ctx.stats.tick_retry(prev_shard != Some(shard));
        }
        prev_shard = Some(shard);
        match try_shard(ctx, upstreams, shard, req, remaining) {
            Ok((status, body)) => {
                let ct = if status == 200 {
                    "application/octet-stream"
                } else {
                    "text/plain"
                };
                return (status, ct, body);
            }
            Err(failure) => {
                last_failure = Some(failure);
                ctx.shards.slots()[shard].mark_suspect();
                backoff(ctx, digest, attempt, deadline);
            }
        }
    }
    if remaining_budget(deadline).is_err() {
        ctx.stats.tick_deadline_shed();
        return (504, "text/plain", b"deadline expired at router\n".to_vec());
    }
    let detail = last_failure.unwrap_or_else(|| "no attempt ran".to_string());
    (
        502,
        "text/plain",
        format!("all attempts failed: {detail}\n").into_bytes(),
    )
}

/// One upstream attempt. `Ok` carries a response to forward verbatim
/// (200 with a verified frame, or a deterministic non-retryable status);
/// `Err` carries the retryable failure description.
fn try_shard(
    ctx: &RouterCtx,
    upstreams: &mut Upstreams,
    shard: usize,
    req: &Request,
    remaining: Option<Duration>,
) -> Result<(u16, Vec<u8>), String> {
    let slot = &ctx.shards.slots()[shard];
    let addr = slot
        .addr()
        .ok_or_else(|| format!("shard {shard} has no address"))?;
    // Socket budget for this attempt: the remaining deadline when one
    // exists (clamped away from zero — a zero socket timeout is an
    // error, and remaining==0 was shed before dispatch), further capped
    // by `attempt_timeout` so a *hung* worker cannot consume the whole
    // deadline on one attempt and starve the failover retry.
    let attempt_budget = match (remaining, ctx.config.attempt_timeout) {
        (Some(r), Some(cap)) => Some(r.min(cap)),
        (Some(r), None) => Some(r),
        (None, cap) => cap,
    };
    let timeouts = match attempt_budget {
        Some(b) => ClientTimeouts::uniform(b.max(Duration::from_millis(1))),
        None => ClientTimeouts::default(),
    };
    let mut client = match upstreams.remove(&shard) {
        Some(mut c) => {
            c.set_read_timeout(timeouts.read)
                .map_err(|e| format!("shard {shard}: {e}"))?;
            c
        }
        None => Client::connect_with(addr, timeouts).map_err(|e| format!("shard {shard}: {e}"))?,
    };
    let deadline_header;
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(1);
    if let Some(r) = remaining {
        deadline_header = (r.as_micros() as u64).max(1).to_string();
        headers.push(("x-peb-deadline-us", deadline_header.as_str()));
    }
    let resp = client
        .request_with_headers("POST", &req.target, &headers, &req.body)
        .map_err(|e| format!("shard {shard}: {e}"))?;
    if resp.status == 200 {
        // Integrity gate: a corrupt or legacy frame is a worker fault,
        // retried elsewhere — never forwarded.
        if let Err(e) = peb_serve::clip::resp_integrity_ok(&resp.body) {
            ctx.stats.tick_corrupt_rejected();
            return Err(format!("shard {shard}: {e}"));
        }
        upstreams.insert(shard, client);
        return Ok((200, resp.body));
    }
    let retryable = ClientError::Status(resp.status, String::new()).is_retryable();
    if retryable {
        return Err(format!(
            "shard {shard}: status {} {}",
            resp.status,
            String::from_utf8_lossy(&resp.body).trim_end()
        ));
    }
    // Deterministic client error (400/404/413/…): forward verbatim.
    upstreams.insert(shard, client);
    Ok((resp.status, resp.body))
}

/// `Ok(Some(d))` = budget left, `Ok(None)` = no deadline, `Err` = gone.
fn remaining_budget(deadline: Option<Instant>) -> Result<Option<Duration>, ()> {
    match deadline {
        None => Ok(None),
        Some(dl) => {
            let now = Instant::now();
            if now >= dl {
                Err(())
            } else {
                Ok(Some(dl - now))
            }
        }
    }
}

/// Capped exponential backoff with deterministic jitter, never sleeping
/// past the deadline. Jitter derives from `(digest, attempt)` so a
/// retry storm for different clips de-synchronises without any RNG
/// state (reproducible runs stay reproducible).
fn backoff(ctx: &RouterCtx, digest: u64, attempt: usize, deadline: Option<Instant>) {
    let base = ctx
        .config
        .backoff_base_us
        .saturating_mul(1u64 << attempt.min(16))
        .min(ctx.config.backoff_cap_us);
    let mut key = [0u8; 12];
    key[..8].copy_from_slice(&digest.to_le_bytes());
    key[8..].copy_from_slice(&(attempt as u32).to_le_bytes());
    let jitter = fnv64(&key) % (base / 2 + 1);
    let mut sleep = Duration::from_micros(base + jitter);
    if let Ok(Some(r)) = remaining_budget(deadline) {
        sleep = sleep.min(r);
    } else if deadline.is_some() {
        return; // deadline already gone; the caller sheds next
    }
    std::thread::sleep(sleep);
}

/// `/version`: forward to the first routable shard.
fn forward_first_up(
    ctx: &RouterCtx,
    upstreams: &mut Upstreams,
    req: &Request,
) -> (u16, &'static str, Vec<u8>) {
    for (shard, slot) in ctx.shards.slots().iter().enumerate() {
        if !slot.routable() {
            continue;
        }
        let Some(addr) = slot.addr() else { continue };
        let mut client = match upstreams.remove(&shard) {
            Some(c) => c,
            None => match Client::connect_with(addr, ClientTimeouts::default()) {
                Ok(c) => c,
                Err(_) => continue,
            },
        };
        if let Ok(resp) = client.request("GET", &req.target, &req.body) {
            upstreams.insert(shard, client);
            return (resp.status, "application/json", resp.body);
        }
    }
    (503, "text/plain", b"no shard up\n".to_vec())
}

/// `/swap`: fan out to every routable worker, record the checkpoint for
/// restarts, answer with the first worker's response. A worker that
/// rejects the swap keeps its previous model (per-worker 409 semantics
/// hold); the fleet records the checkpoint only if *all* ups accepted.
fn swap_all(
    ctx: &RouterCtx,
    upstreams: &mut Upstreams,
    req: &Request,
) -> (u16, &'static str, Vec<u8>) {
    let mut first_ok: Option<Vec<u8>> = None;
    let mut first_err: Option<(u16, Vec<u8>)> = None;
    let mut attempted = 0usize;
    for (shard, slot) in ctx.shards.slots().iter().enumerate() {
        if !slot.routable() {
            continue;
        }
        let Some(addr) = slot.addr() else { continue };
        attempted += 1;
        let mut client = match upstreams.remove(&shard) {
            Some(c) => c,
            None => match Client::connect_with(addr, ClientTimeouts::default()) {
                Ok(c) => c,
                Err(e) => {
                    first_err.get_or_insert((502, format!("shard {shard}: {e}\n").into_bytes()));
                    continue;
                }
            },
        };
        match client.request("POST", "/swap", &req.body) {
            Ok(resp) if resp.status == 200 => {
                upstreams.insert(shard, client);
                first_ok.get_or_insert(resp.body);
            }
            Ok(resp) => {
                upstreams.insert(shard, client);
                first_err.get_or_insert((resp.status, resp.body));
            }
            Err(e) => {
                first_err.get_or_insert((502, format!("shard {shard}: {e}\n").into_bytes()));
            }
        }
    }
    if attempted == 0 {
        return (503, "text/plain", b"no shard up\n".to_vec());
    }
    match (first_ok, first_err) {
        (Some(body), None) => {
            // Every up worker accepted: restarted workers must reload
            // this checkpoint too.
            let path = String::from_utf8_lossy(&req.body).trim().to_string();
            *ctx.ckpt.lock().unwrap_or_else(|e| e.into_inner()) = Some(path);
            (200, "application/json", body)
        }
        (_, Some((status, body))) => (status, "text/plain", body),
        (None, None) => (503, "text/plain", b"no shard up\n".to_vec()),
    }
}
