//! Consistent-hash ring over clip digests (DESIGN §15).
//!
//! Each shard owns `VNODES` points on a `u64` circle, placed by
//! FNV-1a-hashing `"shard:<s>:vnode:<v>"`. A request's clip digest
//! (FNV-1a over its request body) lands somewhere on the circle; the
//! shard preference order is the distinct shard sequence encountered
//! walking clockwise from that point.
//!
//! Two properties the fleet leans on:
//!
//! - **Determinism independent of up-state.** The preference order is a
//!   pure function of `(digest, shard count)` — worker crashes do not
//!   reshuffle it. The router *skips* down shards (the ring "shrinks")
//!   rather than recomputing placement, so a shard that restarts gets
//!   exactly its old keyspace back and no clip ever changes owner
//!   because an unrelated shard bounced.
//! - **Even-ish spread with cheap lookups.** Virtual nodes smooth the
//!   per-shard load; lookup is a binary search over a few hundred
//!   points, noise next to an inference.

/// Virtual nodes per shard. 64 keeps the worst shard within ~2× of an
/// even split for small fleets (the spread test pins this down) while
/// the ring stays a few hundred points — lookup cost is noise.
pub const VNODES: usize = 64;

/// FNV-1a 64-bit hash — the workspace's standing dependency-free hash
/// (the plan cache keys and bench digests use the same construction).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest a request body into its ring key.
pub fn clip_digest(body: &[u8]) -> u64 {
    fnv64(body)
}

/// SplitMix64 finalizer. FNV-1a of short or similar inputs (vnode
/// labels, small test keys) leaves the high bits correlated, which
/// skews circle placement badly; this avalanche pass fixes the
/// distribution without changing the dependency-free hash itself.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The ring: sorted `(point, shard)` pairs.
#[derive(Debug, Clone)]
pub struct Ring {
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Builds the ring for `shards` workers.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES);
        for s in 0..shards {
            for v in 0..VNODES {
                points.push((mix64(fnv64(format!("shard:{s}:vnode:{v}").as_bytes())), s));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The owning shard for `digest` (head of the preference order).
    pub fn owner(&self, digest: u64) -> usize {
        self.prefer(digest)[0]
    }

    /// The full shard preference order for `digest`: every shard
    /// exactly once, the owner first, fallbacks in clockwise-walk
    /// order. Deterministic and independent of which shards are up.
    pub fn prefer(&self, digest: u64) -> Vec<usize> {
        let key = mix64(digest);
        let start = self
            .points
            .partition_point(|&(p, _)| p < key)
            .min(self.points.len());
        let mut order = Vec::with_capacity(self.shards);
        let mut seen = vec![false; self.shards];
        for i in 0..self.points.len() {
            let (_, s) = self.points[(start + i) % self.points.len()];
            if !seen[s] {
                seen[s] = true;
                order.push(s);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn preference_covers_every_shard_once() {
        let ring = Ring::new(4);
        for digest in [0u64, 1, u64::MAX, 0xdead_beef, fnv64(b"clip")] {
            let order = ring.prefer(digest);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "digest {digest:#x}: {order:?}");
        }
    }

    #[test]
    fn preference_is_deterministic() {
        let a = Ring::new(3);
        let b = Ring::new(3);
        for i in 0..64u64 {
            let digest = fnv64(&i.to_le_bytes());
            assert_eq!(a.prefer(digest), b.prefer(digest));
        }
    }

    #[test]
    fn vnodes_spread_ownership() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4096u64 {
            counts[ring.owner(fnv64(&i.to_le_bytes()))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // Even split would be 1024 each; vnode smoothing should keep
            // every shard within a loose factor of that.
            assert!(
                c > 400 && c < 2048,
                "shard {s} owns {c} of 4096 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn single_shard_ring_always_prefers_it() {
        let ring = Ring::new(1);
        assert_eq!(ring.prefer(12345), vec![0]);
    }
}
