//! Fleet-level counters and the per-shard state table behind the
//! router's `/stats`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::supervisor::Shards;

/// Router counters, mirrored into `peb-obs` (`fleet_requests`,
/// `fleet_retries`, `fleet_failovers`, `fleet_restarts`,
/// `fleet_deadline_shed`) so a traced run folds fleet activity into the
/// same profile as the workers' kernels.
#[derive(Debug, Default)]
pub struct FleetStats {
    /// Requests that reached a terminal response at the router.
    pub requests: AtomicU64,
    /// Upstream attempts beyond each request's first.
    pub retries: AtomicU64,
    /// Retries that moved to a *different* shard than the previous
    /// attempt (a strict subset of `retries`).
    pub failovers: AtomicU64,
    /// Requests shed with 504 at the router (deadline expired before or
    /// between attempts; workers count their own coalescer sheds).
    pub deadline_shed: AtomicU64,
    /// Worker responses rejected for a bad CRC footer or legacy frame
    /// version — never forwarded to the client.
    pub corrupt_rejected: AtomicU64,
}

impl FleetStats {
    /// Records one terminal router response.
    pub fn tick_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::FleetRequests, 1);
    }

    /// Records one retry; `failover` marks a shard change.
    pub fn tick_retry(&self, failover: bool) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::FleetRetries, 1);
        if failover {
            self.failovers.fetch_add(1, Ordering::Relaxed);
            peb_obs::count(peb_obs::Counter::FleetFailovers, 1);
        }
    }

    /// Records one router-side deadline shed (504).
    pub fn tick_deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::FleetDeadlineShed, 1);
    }

    /// Records one corrupt/legacy worker response caught by the
    /// integrity check.
    pub fn tick_corrupt_rejected(&self) {
        self.corrupt_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the router's `/stats` JSON body, including the live
    /// per-shard table (state, address, restart count).
    pub fn to_json(&self, shards: &Shards) -> String {
        let per_shard: Vec<String> = shards
            .slots()
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let addr = slot
                    .addr()
                    .map(|a| format!("\"{a}\""))
                    .unwrap_or_else(|| "null".to_string());
                format!(
                    "{{\"shard\":{i},\"state\":\"{}\",\"addr\":{addr},\"restarts\":{}}}",
                    slot.state().name(),
                    slot.restarts(),
                )
            })
            .collect();
        format!(
            "{{\"requests\":{},\"retries\":{},\"failovers\":{},\"deadline_shed\":{},\"corrupt_rejected\":{},\"restarts\":{},\"workers\":{},\"up\":{},\"shards\":[{}]}}",
            self.requests.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
            self.deadline_shed.load(Ordering::Relaxed),
            self.corrupt_rejected.load(Ordering::Relaxed),
            shards.total_restarts(),
            shards.slots().len(),
            shards.up_count(),
            per_shard.join(","),
        )
    }
}
