//! Worker process lifecycle: spawn, ready handshake, health probing,
//! crash/hang detection, restart with checkpoint reload, graceful
//! drain.
//!
//! Each shard is one `peb_worker` child process (the serve binary
//! wrapped with a stdin-lifetime): the worker binds port 0, prints
//! `PEB_WORKER_READY <addr>` on stdout, serves until its stdin reaches
//! EOF, then drains gracefully. That gives the supervisor three
//! portable control channels with no signal handling:
//!
//! - **ready**: the stdout handshake line (parsed with a timeout);
//! - **graceful stop**: drop the stdin pipe and wait `drain_timeout`;
//! - **hard stop**: `Child::kill` when the drain budget runs out or the
//!   worker is wedged.
//!
//! Detection is two-pronged: `try_wait` catches *crashes* (the
//! `kill-worker` chaos abort) on the next tick, and `/healthz` probes
//! with a hard timeout catch *hangs* (the `hang-worker` wedge, which
//! leaves the process alive but unresponsive). Either path restarts the
//! worker and replays the fleet's current checkpoint into it, so a
//! restarted shard serves the same model version as its peers.

use std::io::{BufRead as _, BufReader};
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use peb_serve::{Client, ClientTimeouts};

use crate::config::FleetConfig;

/// How long a freshly-spawned worker gets to print its ready line.
const READY_TIMEOUT: Duration = Duration::from_secs(60);

/// Lifecycle state of one shard's worker process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardState {
    /// Spawned, ready handshake not yet seen.
    Starting = 0,
    /// Healthy and routable.
    Up = 1,
    /// Graceful drain in progress: no new routes, in-flight finishing.
    Draining = 2,
    /// Crashed, hung, or not yet respawned: skipped by the router (the
    /// ring shrinks around it).
    Down = 3,
}

impl ShardState {
    fn from_u8(v: u8) -> ShardState {
        match v {
            0 => ShardState::Starting,
            1 => ShardState::Up,
            2 => ShardState::Draining,
            _ => ShardState::Down,
        }
    }

    /// Stable lowercase name (`/stats` JSON).
    pub fn name(&self) -> &'static str {
        match self {
            ShardState::Starting => "starting",
            ShardState::Up => "up",
            ShardState::Draining => "draining",
            ShardState::Down => "down",
        }
    }
}

/// The router-visible half of one shard: state, address, counters.
#[derive(Debug)]
pub struct ShardSlot {
    state: AtomicU8,
    addr: Mutex<Option<SocketAddr>>,
    restarts: AtomicU64,
    /// Longest single outage (µs): from the supervisor declaring the
    /// shard down to its replacement going routable. Sampling can't
    /// measure this reliably on a loaded single-core box, so the
    /// restart path clocks itself.
    longest_outage_us: AtomicU64,
    /// Router hint: a request just failed against this shard; probe it
    /// ahead of the regular cadence.
    suspect: AtomicBool,
}

impl ShardSlot {
    fn new() -> Self {
        ShardSlot {
            state: AtomicU8::new(ShardState::Down as u8),
            addr: Mutex::new(None),
            restarts: AtomicU64::new(0),
            longest_outage_us: AtomicU64::new(0),
            suspect: AtomicBool::new(false),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::Acquire))
    }

    fn set_state(&self, s: ShardState) {
        self.state.store(s as u8, Ordering::Release);
    }

    /// The worker's bound address, when one is live.
    pub fn addr(&self) -> Option<SocketAddr> {
        *self.addr.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set_addr(&self, a: Option<SocketAddr>) {
        *self.addr.lock().unwrap_or_else(|e| e.into_inner()) = a;
    }

    /// Times this shard's worker has been restarted.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Longest down-to-routable stretch this shard has seen.
    pub fn longest_outage(&self) -> Duration {
        Duration::from_micros(self.longest_outage_us.load(Ordering::Relaxed))
    }

    fn record_outage(&self, d: Duration) {
        self.longest_outage_us
            .fetch_max(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Flags this shard for an out-of-cadence health probe (the router
    /// calls this when an upstream attempt fails).
    pub fn mark_suspect(&self) {
        self.suspect.store(true, Ordering::Release);
    }

    fn take_suspect(&self) -> bool {
        self.suspect.swap(false, Ordering::AcqRel)
    }

    /// Whether the router may send new work here.
    pub fn routable(&self) -> bool {
        self.state() == ShardState::Up
    }
}

/// The shared shard table (router + supervisor + `/stats`).
#[derive(Debug)]
pub struct Shards {
    slots: Vec<ShardSlot>,
}

impl Shards {
    fn new(n: usize) -> Self {
        Shards {
            slots: (0..n).map(|_| ShardSlot::new()).collect(),
        }
    }

    /// A table with no shards (a fleet already shut down).
    pub fn empty() -> Self {
        Shards { slots: Vec::new() }
    }

    /// All slots, indexed by shard id.
    pub fn slots(&self) -> &[ShardSlot] {
        &self.slots
    }

    /// Shards currently routable.
    pub fn up_count(&self) -> usize {
        self.slots.iter().filter(|s| s.routable()).count()
    }

    /// Total restarts across the fleet.
    pub fn total_restarts(&self) -> u64 {
        self.slots.iter().map(|s| s.restarts()).sum()
    }

    /// The fleet's worst single shard outage (time-to-recovery).
    pub fn worst_outage(&self) -> Duration {
        self.slots
            .iter()
            .map(|s| s.longest_outage())
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// One live worker process.
struct WorkerProc {
    child: Child,
    /// Held open while the worker serves; dropping it is the graceful
    /// stop signal (the worker drains and exits on stdin EOF).
    stdin: Option<ChildStdin>,
    stdout_reader: Option<JoinHandle<()>>,
}

impl WorkerProc {
    /// Spawns a worker and waits for its ready handshake.
    fn spawn(
        config: &FleetConfig,
        shard: usize,
        chaos: Option<&str>,
    ) -> std::io::Result<(WorkerProc, SocketAddr)> {
        let bin = config.worker_bin();
        let mut cmd = Command::new(&bin);
        cmd.env("PEB_SERVE_ADDR", "127.0.0.1:0")
            // Chaos must be opt-in per worker: the parent may itself run
            // under PEB_CHAOS (bench schedules, CI), and a blanket
            // inherit would arm every worker — and every *restart* —
            // with the same fault.
            .env_remove("PEB_CHAOS")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &config.worker_env {
            cmd.env(k, v);
        }
        if let Some(spec) = chaos {
            cmd.env("PEB_CHAOS", spec);
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "worker stdout not piped")
        })?;
        // The reader thread owns stdout for the worker's whole life:
        // it forwards the ready line, then drains (so a chatty worker
        // can never block on a full pipe).
        let (tx, rx) = mpsc::channel::<SocketAddr>();
        let reader = std::thread::Builder::new()
            .name(format!("peb-fleet-wout-{shard}"))
            .spawn(move || {
                let mut lines = BufReader::new(stdout).lines();
                for line in &mut lines {
                    let Ok(line) = line else { return };
                    if let Some(rest) = line.strip_prefix("PEB_WORKER_READY ") {
                        if let Ok(addr) = rest.trim().parse() {
                            let _ = tx.send(addr);
                        }
                        break;
                    }
                }
                for line in lines {
                    if line.is_err() {
                        return;
                    }
                }
            })?;
        let addr = match rx.recv_timeout(READY_TIMEOUT) {
            Ok(a) => a,
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                let _ = reader.join();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("worker {shard} ({}) never reported ready", bin.display()),
                ));
            }
        };
        Ok((
            WorkerProc {
                child,
                stdin,
                stdout_reader: Some(reader),
            },
            addr,
        ))
    }

    /// Whether the process has exited (crash detection).
    fn exited(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }

    /// Hard kill, reaping the zombie and the reader thread.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(r) = self.stdout_reader.take() {
            let _ = r.join();
        }
    }

    /// Graceful stop: close stdin, wait up to `budget`, escalate to a
    /// kill if the worker does not exit in time.
    fn drain(mut self, budget: Duration) {
        drop(self.stdin.take());
        let deadline = Instant::now() + budget;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    break;
                }
            }
        }
        if let Some(r) = self.stdout_reader.take() {
            let _ = r.join();
        }
    }
}

/// The supervisor: owns every worker process and the probe thread.
pub struct Supervisor {
    shards: Arc<Shards>,
    ckpt: Arc<Mutex<Option<String>>>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<Vec<Option<WorkerProc>>>>,
}

impl Supervisor {
    /// Spawns `config.workers` worker processes, waits for every ready
    /// handshake, and starts the probe/restart thread.
    ///
    /// # Errors
    ///
    /// Fails if any initial worker cannot spawn or never reports ready
    /// (already-spawned workers are killed on the way out).
    pub fn start(config: &FleetConfig) -> std::io::Result<Supervisor> {
        let shards = Arc::new(Shards::new(config.workers));
        let mut procs: Vec<Option<WorkerProc>> = Vec::with_capacity(config.workers);
        for shard in 0..config.workers {
            let chaos = config
                .worker_chaos
                .iter()
                .find(|(s, _)| *s == shard)
                .map(|(_, spec)| spec.as_str());
            shards.slots()[shard].set_state(ShardState::Starting);
            match WorkerProc::spawn(config, shard, chaos) {
                Ok((proc_, addr)) => {
                    shards.slots()[shard].set_addr(Some(addr));
                    shards.slots()[shard].set_state(ShardState::Up);
                    procs.push(Some(proc_));
                }
                Err(e) => {
                    for p in procs.into_iter().flatten() {
                        p.kill();
                    }
                    return Err(e);
                }
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let ckpt: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let join = {
            let shards = Arc::clone(&shards);
            let stop = Arc::clone(&stop);
            let ckpt = Arc::clone(&ckpt);
            let config = config.clone();
            std::thread::Builder::new()
                .name("peb-fleet-supervisor".to_string())
                .spawn(move || supervise(&config, &shards, &ckpt, &stop, procs))?
        };
        Ok(Supervisor {
            shards,
            ckpt,
            stop,
            join: Some(join),
        })
    }

    /// The shared shard table.
    pub fn shards(&self) -> &Arc<Shards> {
        &self.shards
    }

    /// The shared checkpoint record: the router writes the committed
    /// `/swap` path here; [`restart`] replays it into fresh workers.
    pub fn checkpoint_cell(&self) -> Arc<Mutex<Option<String>>> {
        Arc::clone(&self.ckpt)
    }

    /// Graceful fleet stop: mark every shard draining (the router stops
    /// routing), close each worker's stdin, wait out the drain budget,
    /// kill stragglers.
    pub fn shutdown(mut self, drain_timeout: Duration) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            if let Ok(procs) = j.join() {
                for (shard, p) in procs.into_iter().enumerate() {
                    if let Some(p) = p {
                        self.shards.slots()[shard].set_state(ShardState::Draining);
                        p.drain(drain_timeout);
                    }
                    self.shards.slots()[shard].set_state(ShardState::Down);
                    self.shards.slots()[shard].set_addr(None);
                }
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            if let Ok(procs) = j.join() {
                for p in procs.into_iter().flatten() {
                    p.kill();
                }
            }
        }
    }
}

/// The probe/restart loop. Returns the final process table to the
/// shutdown path so it can drain gracefully.
fn supervise(
    config: &FleetConfig,
    shards: &Arc<Shards>,
    ckpt: &Arc<Mutex<Option<String>>>,
    stop: &AtomicBool,
    mut procs: Vec<Option<WorkerProc>>,
) -> Vec<Option<WorkerProc>> {
    let mut fails: Vec<u32> = vec![0; procs.len()];
    let mut last_probe = Instant::now() - config.probe_interval;
    while !stop.load(Ordering::Acquire) {
        // Crash detection is cheap (non-blocking waitpid) — every tick.
        for shard in 0..procs.len() {
            let crashed = match &mut procs[shard] {
                Some(p) => p.exited(),
                None => true,
            };
            if crashed && !stop.load(Ordering::Acquire) {
                restart(config, shards, ckpt, &mut procs, &mut fails, shard);
            }
        }
        // Health probes on the configured cadence, plus immediately for
        // any shard the router just flagged as suspect.
        let due = last_probe.elapsed() >= config.probe_interval;
        if due {
            last_probe = Instant::now();
        }
        for shard in 0..procs.len() {
            let slot = &shards.slots()[shard];
            let suspect = slot.take_suspect();
            if !(due || suspect) || slot.state() != ShardState::Up {
                continue;
            }
            if probe_ok(slot, config.probe_timeout) {
                fails[shard] = 0;
            } else {
                fails[shard] += 1;
                if fails[shard] >= config.probe_fails {
                    restart(config, shards, ckpt, &mut procs, &mut fails, shard);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    procs
}

/// One `/healthz` round-trip under the probe budget.
fn probe_ok(slot: &ShardSlot, timeout: Duration) -> bool {
    let Some(addr) = slot.addr() else {
        return false;
    };
    let Ok(mut c) = Client::connect_with(addr, ClientTimeouts::uniform(timeout)) else {
        return false;
    };
    matches!(c.request("GET", "/healthz", b""), Ok(r) if r.status == 200)
}

/// Kills (if needed) and respawns one shard's worker, replaying the
/// fleet's current checkpoint into the fresh process.
fn restart(
    config: &FleetConfig,
    shards: &Arc<Shards>,
    ckpt: &Arc<Mutex<Option<String>>>,
    procs: &mut [Option<WorkerProc>],
    fails: &mut [u32],
    shard: usize,
) {
    let slot = &shards.slots()[shard];
    let down_at = Instant::now();
    slot.set_state(ShardState::Down);
    slot.set_addr(None);
    if let Some(p) = procs[shard].take() {
        p.kill();
    }
    fails[shard] = 0;
    // Restarts come up chaos-free: a fault spec describes one planned
    // failure, not a permanently poisoned shard.
    match WorkerProc::spawn(config, shard, None) {
        Ok((p, addr)) => {
            // Replay the current checkpoint before the shard goes
            // routable, so it never serves the stale base model.
            let current = ckpt.lock().unwrap_or_else(|e| e.into_inner()).clone();
            if let Some(path) = current {
                let swapped = Client::connect_with(addr, ClientTimeouts::default())
                    .and_then(|mut c| c.swap(&path));
                if let Err(e) = swapped {
                    eprintln!("peb-fleet: shard {shard} checkpoint reload failed: {e}");
                }
            }
            procs[shard] = Some(p);
            slot.set_addr(Some(addr));
            slot.set_state(ShardState::Up);
            slot.record_outage(down_at.elapsed());
            slot.restarts.fetch_add(1, Ordering::Relaxed);
            peb_obs::count(peb_obs::Counter::FleetRestarts, 1);
        }
        Err(e) => {
            // Stay Down; the next tick retries the spawn.
            eprintln!("peb-fleet: shard {shard} respawn failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_state_roundtrips_and_names() {
        for s in [
            ShardState::Starting,
            ShardState::Up,
            ShardState::Draining,
            ShardState::Down,
        ] {
            assert_eq!(ShardState::from_u8(s as u8), s);
        }
        assert_eq!(ShardState::Up.name(), "up");
        assert_eq!(ShardState::Down.name(), "down");
    }

    #[test]
    fn slot_suspect_is_one_shot_and_routable_tracks_state() {
        let slot = ShardSlot::new();
        assert!(!slot.routable());
        slot.set_state(ShardState::Up);
        assert!(slot.routable());
        assert!(!slot.take_suspect());
        slot.mark_suspect();
        assert!(slot.take_suspect());
        assert!(!slot.take_suspect());
        slot.set_state(ShardState::Draining);
        assert!(!slot.routable());
    }
}
