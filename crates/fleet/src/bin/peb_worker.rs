//! One fleet worker: a `peb-serve` server whose lifetime is its stdin.
//!
//! The supervisor spawns this binary with `PEB_SERVE_ADDR=127.0.0.1:0`
//! and a piped stdin/stdout. The worker binds, prints
//! `PEB_WORKER_READY <addr>` (the supervisor's ready handshake), then
//! blocks reading stdin. EOF on stdin — the supervisor dropping its
//! pipe end, or the parent dying — triggers a graceful
//! [`Server::shutdown`] (in-flight requests finish, the queue drains).
//! A hard stop is simply `kill(2)`; the protocol is stateless and
//! inference idempotent, so nothing needs cleanup.
//!
//! All serving knobs arrive as inherited `PEB_SERVE_*` environment
//! (see `peb_serve::ServeConfig`); chaos faults as `PEB_CHAOS`.

use std::io::{Read as _, Write as _};

use peb_serve::{ServeConfig, Server};

fn main() {
    let config = ServeConfig::from_env();
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("peb_worker: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("PEB_WORKER_READY {}", server.addr());
    let _ = std::io::stdout().flush();
    // Serve until the supervisor closes our stdin.
    let mut buf = [0u8; 256];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    server.shutdown();
}
