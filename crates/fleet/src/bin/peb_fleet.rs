//! Standalone fleet binary: `PEB_FLEET_* peb_fleet`.
//!
//! Spawns `PEB_FLEET_WORKERS` `peb_worker` child processes, binds the
//! router address, prints the topology, and serves until killed.

use peb_fleet::{Fleet, FleetConfig};

fn main() {
    let config = FleetConfig::from_env();
    let fleet = match Fleet::start(config.clone()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("peb-fleet: failed to start on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "peb-fleet routing on {} across {} workers (deadline {}us, {} attempts, probe {}ms)",
        fleet.addr(),
        config.workers,
        config.deadline_us,
        config.max_attempts,
        config.probe_interval.as_millis(),
    );
    for (shard, slot) in fleet.shards().slots().iter().enumerate() {
        match slot.addr() {
            Some(a) => println!("  shard {shard}: {a}"),
            None => println!("  shard {shard}: down"),
        }
    }
    // Serve forever; the process is stopped externally.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
