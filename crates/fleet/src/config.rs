//! Fleet configuration (`PEB_FLEET_*` environment variables).
//!
//! The fleet layers *on top of* the per-worker `PEB_SERVE_*` variables:
//! every worker process inherits the parent's `PEB_SERVE_*` environment
//! (model preset, grid, seed, precision, batching knobs) with only its
//! bind address overridden, so one set of serving knobs configures the
//! whole fleet.

use std::time::Duration;

/// Everything the router + supervisor need, with env-var overrides.
///
/// | env | field | default |
/// |-----|-------|---------|
/// | `PEB_FLEET_ADDR` | `addr` | `127.0.0.1:7979` |
/// | `PEB_FLEET_WORKERS` | `workers` | `2` |
/// | `PEB_FLEET_DEADLINE_US` | `deadline_us` | `2_000_000` (2 s) |
/// | `PEB_FLEET_RETRIES` | `max_attempts` | `2·workers` |
/// | `PEB_FLEET_PROBE_MS` | `probe_interval` | `250` |
/// | `PEB_FLEET_PROBE_TIMEOUT_MS` | `probe_timeout` | `500` |
/// | `PEB_FLEET_PROBE_FAILS` | `probe_fails` | `2` |
/// | `PEB_FLEET_BACKOFF_US` | `backoff_base` | `2_000` |
/// | `PEB_FLEET_BACKOFF_CAP_US` | `backoff_cap` | `100_000` |
/// | `PEB_FLEET_ATTEMPT_MS` | `attempt_timeout` | unset (deadline only) |
/// | `PEB_FLEET_DRAIN_MS` | `drain_timeout` | `3_000` |
/// | `PEB_FLEET_CONNS` | `conn_workers` | `2` |
/// | `PEB_FLEET_WORKER_BIN` | `worker_bin` | sibling `peb_worker` |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Router bind address (`host:port`; port 0 lets the OS pick).
    pub addr: String,
    /// Number of worker processes (= shards on the hash ring).
    pub workers: usize,
    /// Default per-request deadline in microseconds, applied when the
    /// client sends no `X-Peb-Deadline-Us` header. `0` disables the
    /// default (requests without the header then have no deadline).
    pub deadline_us: u64,
    /// Upper bound on routing attempts per request (first try included).
    /// `0` → `2·workers` after normalisation.
    pub max_attempts: usize,
    /// How often the supervisor probes each worker's `/healthz`.
    pub probe_interval: Duration,
    /// Per-probe connect/read budget; a hung worker fails by timeout.
    pub probe_timeout: Duration,
    /// Consecutive probe failures before a worker is declared down and
    /// restarted (absorbs one slow probe on a loaded box).
    pub probe_fails: u32,
    /// First retry backoff in microseconds (doubles per attempt).
    pub backoff_base_us: u64,
    /// Backoff ceiling in microseconds.
    pub backoff_cap_us: u64,
    /// Optional per-attempt socket budget cap. Without it a hung worker
    /// consumes the entire remaining deadline on one attempt, leaving
    /// nothing for failover; with it the router gives up on the wedged
    /// shard after this long and retries elsewhere while budget remains.
    pub attempt_timeout: Option<Duration>,
    /// How long a graceful drain waits for a worker to exit after its
    /// stdin closes, before escalating to a hard kill.
    pub drain_timeout: Duration,
    /// Router connection-handling threads.
    pub conn_workers: usize,
    /// Path to the `peb_worker` binary. `None` → a `peb_worker` sibling
    /// of the current executable (how the bench and CI find it).
    pub worker_bin: Option<std::path::PathBuf>,
    /// Per-shard `PEB_CHAOS` specs injected into the *first* spawn of
    /// that shard only (restarts come up clean) — the chaos schedule
    /// hook for `bench_fleet` and the failover tests.
    pub worker_chaos: Vec<(usize, String)>,
    /// Extra environment for every worker spawn (tests and the bench
    /// pin `PEB_SERVE_*` knobs here instead of mutating the parent's
    /// process-global environment, which is racy under parallel tests).
    pub worker_env: Vec<(String, String)>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            addr: "127.0.0.1:7979".to_string(),
            workers: 2,
            deadline_us: 2_000_000,
            max_attempts: 0,
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            probe_fails: 2,
            backoff_base_us: 2_000,
            backoff_cap_us: 100_000,
            attempt_timeout: None,
            drain_timeout: Duration::from_millis(3_000),
            conn_workers: 2,
            worker_bin: None,
            worker_chaos: Vec::new(),
            worker_env: Vec::new(),
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

impl FleetConfig {
    /// Defaults overridden by any set `PEB_FLEET_*` variables.
    pub fn from_env() -> Self {
        let mut c = FleetConfig::default();
        if let Ok(v) = std::env::var("PEB_FLEET_ADDR") {
            c.addr = v;
        }
        if let Some(v) = env_parse("PEB_FLEET_WORKERS") {
            c.workers = v;
        }
        if let Some(v) = env_parse("PEB_FLEET_DEADLINE_US") {
            c.deadline_us = v;
        }
        if let Some(v) = env_parse("PEB_FLEET_RETRIES") {
            c.max_attempts = v;
        }
        if let Some(v) = env_parse::<u64>("PEB_FLEET_PROBE_MS") {
            c.probe_interval = Duration::from_millis(v.max(1));
        }
        if let Some(v) = env_parse::<u64>("PEB_FLEET_PROBE_TIMEOUT_MS") {
            c.probe_timeout = Duration::from_millis(v.max(1));
        }
        if let Some(v) = env_parse("PEB_FLEET_PROBE_FAILS") {
            c.probe_fails = v;
        }
        if let Some(v) = env_parse("PEB_FLEET_BACKOFF_US") {
            c.backoff_base_us = v;
        }
        if let Some(v) = env_parse("PEB_FLEET_BACKOFF_CAP_US") {
            c.backoff_cap_us = v;
        }
        if let Some(v) = env_parse::<u64>("PEB_FLEET_ATTEMPT_MS") {
            c.attempt_timeout = Some(Duration::from_millis(v.max(1)));
        }
        if let Some(v) = env_parse::<u64>("PEB_FLEET_DRAIN_MS") {
            c.drain_timeout = Duration::from_millis(v);
        }
        if let Some(v) = env_parse("PEB_FLEET_CONNS") {
            c.conn_workers = v;
        }
        if let Ok(v) = std::env::var("PEB_FLEET_WORKER_BIN") {
            if !v.is_empty() {
                c.worker_bin = Some(std::path::PathBuf::from(v));
            }
        }
        c.normalized()
    }

    /// Clamps degenerate values so a typo'd env var cannot wedge the
    /// router (zero workers, zero attempts, …).
    pub fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        if self.max_attempts == 0 {
            self.max_attempts = 2 * self.workers;
        }
        self.probe_fails = self.probe_fails.max(1);
        self.backoff_base_us = self.backoff_base_us.max(1);
        self.backoff_cap_us = self.backoff_cap_us.max(self.backoff_base_us);
        self.conn_workers = self.conn_workers.max(1);
        self
    }

    /// Resolves the worker binary path: the explicit override, or a
    /// `peb_worker` sibling of the current executable.
    pub fn worker_bin(&self) -> std::path::PathBuf {
        if let Some(p) = &self.worker_bin {
            return p.clone();
        }
        let mut p = std::env::current_exe().unwrap_or_else(|_| std::path::PathBuf::from("."));
        p.set_file_name("peb_worker");
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_clamps_zeros() {
        let c = FleetConfig {
            workers: 0,
            max_attempts: 0,
            probe_fails: 0,
            backoff_base_us: 0,
            backoff_cap_us: 0,
            conn_workers: 0,
            ..FleetConfig::default()
        }
        .normalized();
        assert_eq!(c.workers, 1);
        assert_eq!(c.max_attempts, 2, "2 attempts per (single) worker");
        assert_eq!(c.probe_fails, 1);
        assert!(c.backoff_base_us >= 1);
        assert!(c.backoff_cap_us >= c.backoff_base_us);
        assert_eq!(c.conn_workers, 1);
    }

    #[test]
    fn default_attempts_scale_with_workers() {
        let c = FleetConfig {
            workers: 3,
            ..FleetConfig::default()
        }
        .normalized();
        assert_eq!(c.max_attempts, 6);
    }
}
