//! peb-fleet: supervised multi-process sharded serving for SDM-PEB.
//!
//! Turns `peb-serve` into an N-process service with availability under
//! fault (DESIGN §15):
//!
//! - **Sharding** — a dependency-free router accepts the existing
//!   HTTP/`PEBCLIP1` protocol and routes each `/infer` by consistent
//!   hashing its clip digest across worker processes ([`ring`]). The
//!   preference order is deterministic and independent of which workers
//!   are up: a down shard is *skipped* (the ring shrinks), never
//!   re-hashed.
//! - **Deadlines** — per-request budgets (`X-Peb-Deadline-Us`, default
//!   `PEB_FLEET_DEADLINE_US`) propagate from router to the worker's
//!   batch coalescer; late work is shed with 504 at whichever layer
//!   notices first, never served after the caller gave up.
//! - **Retries** — connect failures, timeouts, CRC-bad frames, 429 and
//!   5xx retry on the next shard in preference order under capped
//!   exponential backoff with deterministic jitter, bounded by the
//!   deadline. Inference is idempotent (bitwise-deterministic, even),
//!   so retries are always safe.
//! - **Supervision** — workers are child processes health-probed on a
//!   cadence; crashes (`try_wait`) and hangs (probe timeout) restart
//!   the worker with the fleet's current checkpoint reloaded. Degraded
//!   operation is first-class: the fleet keeps answering while any
//!   shard is up, and `/stats` reports per-shard state.
//!
//! The response integrity contract: every byte the router forwards from
//! a 200 `/infer` passed the `PEBRESP2` CRC-32 check — a corrupted
//! worker response is a retry, never a forward. Combined with the
//! serving layer's batching invariance and cross-process bitwise
//! determinism (same seed → same bits), every successful fleet response
//! is bitwise identical to the single-process answer; `bench_fleet`
//! asserts exactly that under a chaos schedule.
//!
//! Chaos faults for this layer (`PEB_CHAOS`, see `peb-guard`):
//! `kill-worker[:N]` aborts a worker at the top of a batch,
//! `hang-worker[:N]` wedges it alive-but-unresponsive,
//! `corrupt-resp[:N]` flips a response byte so the CRC footer fails.

pub mod config;
pub mod ring;
pub mod router;
pub mod stats;
pub mod supervisor;

pub use config::FleetConfig;
pub use ring::{clip_digest, fnv64, Ring};
pub use router::Fleet;
pub use stats::FleetStats;
pub use supervisor::{ShardSlot, ShardState, Shards, Supervisor};
