//! Iterative radix-2 decimation-in-time FFT.

use std::error::Error;
use std::fmt;

use crate::Complex;

/// Errors from FFT entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// Input length is not a power of two (or is zero).
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "fft length {len} is not a nonzero power of two")
            }
        }
    }
}

impl Error for FftError {}

/// In-place radix-2 FFT. `inverse` selects the sign convention; inverse
/// transforms are scaled by `1/N` so `ifft(fft(x)) == x`.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] for invalid lengths.
pub fn fft1d_inplace(data: &mut [Complex], inverse: bool) -> Result<(), FftError> {
    let n = data.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(FftError::NotPowerOfTwo { len: n });
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * std::f32::consts::TAU / len as f32;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let s = 1.0 / n as f32;
        for x in data.iter_mut() {
            *x = x.scale(s);
        }
    }
    Ok(())
}

/// Forward FFT of a slice, allocating the output.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] for invalid lengths.
pub fn fft1d(data: &[Complex]) -> Result<Vec<Complex>, FftError> {
    let mut out = data.to_vec();
    fft1d_inplace(&mut out, false)?;
    Ok(out)
}

/// Inverse FFT of a slice (scaled by `1/N`), allocating the output.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] for invalid lengths.
pub fn ifft1d(data: &[Complex]) -> Result<Vec<Complex>, FftError> {
    let mut out = data.to_vec();
    fft1d_inplace(&mut out, true)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(N²) reference DFT.
    fn dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &x) in data.iter().enumerate() {
                    acc += x * Complex::cis(-std::f32::consts::TAU * (k * t) as f32 / n as f32);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for &n in &[1usize, 2, 4, 8, 32, 64] {
            let data: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let fast = fft1d(&data).unwrap();
            let slow = dft(&data);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a.re - b.re).abs() < 1e-3 && (a.im - b.im).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn roundtrip() {
        let data: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f32, -(i as f32)))
            .collect();
        let back = ifft1d(&fft1d(&data).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn parseval() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let spec = fft1d(&data).unwrap();
        let time_e: f32 = data.iter().map(|c| c.norm_sqr()).sum();
        let freq_e: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / 64.0;
        assert!((time_e - freq_e).abs() < 1e-2);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        let spec = fft1d(&data).unwrap();
        for c in spec {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(
            fft1d(&[Complex::ZERO; 6]).unwrap_err(),
            FftError::NotPowerOfTwo { len: 6 }
        );
        assert!(fft1d(&[]).is_err());
    }
}
