//! 1-D FFT: iterative radix-2 for power-of-two lengths, Bluestein's
//! chirp-z algorithm for everything else.
//!
//! Bluestein rewrites the DFT as a convolution,
//! `X[k] = w^{k²/2} Σ_t (x[t]·w^{t²/2}) · w^{-(k-t)²/2}`, which is
//! evaluated with power-of-two FFTs of length `m ≥ 2n−1`. The quadratic
//! chirp exponents are reduced `k² mod 2n` in integer arithmetic before
//! touching `f32`, which keeps the twiddle phase accurate for any length.

use std::error::Error;
use std::fmt;

use crate::Complex;

/// Errors from FFT entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// Zero-length input.
    Empty,
    /// Half-spectrum bin count inconsistent with the requested real
    /// signal length (`bins` must equal `n/2 + 1`).
    SpectrumLength {
        /// Bins supplied.
        bins: usize,
        /// Real signal length requested.
        n: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::Empty => write!(f, "fft input must be non-empty"),
            FftError::SpectrumLength { bins, n } => {
                write!(
                    f,
                    "spectrum has {bins} bins but a real signal of length {n} needs {}",
                    n / 2 + 1
                )
            }
        }
    }
}

impl Error for FftError {}

/// In-place FFT of any nonzero length. `inverse` selects the sign
/// convention; inverse transforms are scaled by `1/N` so
/// `ifft(fft(x)) == x`. Power-of-two lengths run the radix-2 kernel,
/// all others Bluestein's algorithm; both execute through the
/// thread-local plan cache in [`crate::plan`], so twiddle tables,
/// bit-reversal permutations and Bluestein filter spectra are computed
/// once per `(length, direction)` per thread.
///
/// # Errors
///
/// Returns [`FftError::Empty`] for zero-length input.
pub fn fft1d_inplace(data: &mut [Complex], inverse: bool) -> Result<(), FftError> {
    if data.is_empty() {
        return Err(FftError::Empty);
    }
    crate::plan::fft_inplace_planned(data, inverse);
    Ok(())
}

/// Forward FFT of a slice, allocating the output.
///
/// # Errors
///
/// Returns [`FftError::Empty`] for zero-length input.
pub fn fft1d(data: &[Complex]) -> Result<Vec<Complex>, FftError> {
    let _span = peb_obs::span("fft.fft1d");
    peb_obs::count(peb_obs::Counter::FftLines, 1);
    let mut out = data.to_vec();
    fft1d_inplace(&mut out, false)?;
    Ok(out)
}

/// Inverse FFT of a slice (scaled by `1/N`), allocating the output.
///
/// # Errors
///
/// Returns [`FftError::Empty`] for zero-length input.
pub fn ifft1d(data: &[Complex]) -> Result<Vec<Complex>, FftError> {
    let _span = peb_obs::span("fft.fft1d");
    peb_obs::count(peb_obs::Counter::FftLines, 1);
    let mut out = data.to_vec();
    fft1d_inplace(&mut out, true)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(N²) reference DFT.
    fn dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &x) in data.iter().enumerate() {
                    acc += x * Complex::cis(-std::f32::consts::TAU * (k * t) as f32 / n as f32);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // Powers of two take the radix-2 kernel; the rest take Bluestein.
        for &n in &[1usize, 2, 3, 4, 5, 6, 7, 8, 12, 17, 31, 32, 48, 64] {
            let data: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let fast = fft1d(&data).unwrap();
            let slow = dft(&data);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(
                    (a.re - b.re).abs() < 2e-3 && (a.im - b.im).abs() < 2e-3,
                    "n={n}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn roundtrip() {
        let data: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f32, -(i as f32)))
            .collect();
        let back = ifft1d(&fft1d(&data).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn roundtrip_prime_length() {
        let data: Vec<Complex> = (0..13)
            .map(|i| Complex::new((i as f32).sin(), (i as f32).cos()))
            .collect();
        let back = ifft1d(&fft1d(&data).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn parseval() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let spec = fft1d(&data).unwrap();
        let time_e: f32 = data.iter().map(|c| c.norm_sqr()).sum();
        let freq_e: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / 64.0;
        assert!((time_e - freq_e).abs() < 1e-2);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        let spec = fft1d(&data).unwrap();
        for c in spec {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(fft1d(&[]).unwrap_err(), FftError::Empty);
        assert_eq!(ifft1d(&[]).unwrap_err(), FftError::Empty);
    }
}
