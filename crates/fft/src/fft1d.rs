//! 1-D FFT: iterative radix-2 for power-of-two lengths, Bluestein's
//! chirp-z algorithm for everything else.
//!
//! Bluestein rewrites the DFT as a convolution,
//! `X[k] = w^{k²/2} Σ_t (x[t]·w^{t²/2}) · w^{-(k-t)²/2}`, which is
//! evaluated with power-of-two FFTs of length `m ≥ 2n−1`. The quadratic
//! chirp exponents are reduced `k² mod 2n` in integer arithmetic before
//! touching `f32`, which keeps the twiddle phase accurate for any length.

use std::error::Error;
use std::fmt;

use crate::Complex;

/// Errors from FFT entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// Zero-length input.
    Empty,
    /// Half-spectrum bin count inconsistent with the requested real
    /// signal length (`bins` must equal `n/2 + 1`).
    SpectrumLength {
        /// Bins supplied.
        bins: usize,
        /// Real signal length requested.
        n: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::Empty => write!(f, "fft input must be non-empty"),
            FftError::SpectrumLength { bins, n } => {
                write!(
                    f,
                    "spectrum has {bins} bins but a real signal of length {n} needs {}",
                    n / 2 + 1
                )
            }
        }
    }
}

impl Error for FftError {}

/// In-place radix-2 FFT for power-of-two `data.len()`.
pub(crate) fn radix2_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    debug_assert!(n > 0 && n & (n - 1) == 0, "radix-2 needs a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * std::f32::consts::TAU / len as f32;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let s = 1.0 / n as f32;
        for x in data.iter_mut() {
            *x = x.scale(s);
        }
    }
}

/// Chirp factors `w_k = exp(sign·iπ·k²/n)` with the exponent reduced
/// `k² mod 2n` as integers so the phase stays accurate at large `k`.
fn chirp_table(n: usize, sign: f32) -> Vec<Complex> {
    let two_n = 2 * n as u64;
    (0..n)
        .map(|k| {
            let e = ((k as u64 * k as u64) % two_n) as f32;
            Complex::cis(sign * std::f32::consts::PI * e / n as f32)
        })
        .collect()
}

/// Bluestein chirp-z FFT for arbitrary (non-power-of-two) lengths.
fn bluestein_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    let m = (2 * n - 1).next_power_of_two();
    let sign = if inverse { 1.0 } else { -1.0 };
    let chirp = chirp_table(n, sign);
    // a[t] = x[t]·w_t, zero-padded to m.
    let mut a = vec![Complex::ZERO; m];
    for (t, slot) in a.iter_mut().take(n).enumerate() {
        *slot = data[t] * chirp[t];
    }
    // b[t] = conj(w_t) wrapped circularly so the linear convolution with
    // the chirp is exact under the cyclic FFT convolution.
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for t in 1..n {
        let c = chirp[t].conj();
        b[t] = c;
        b[m - t] = c;
    }
    radix2_inplace(&mut a, false);
    radix2_inplace(&mut b, false);
    for (av, bv) in a.iter_mut().zip(&b) {
        *av *= *bv;
    }
    radix2_inplace(&mut a, true);
    let scale = 1.0 / n as f32;
    for (k, slot) in data.iter_mut().enumerate() {
        let v = a[k] * chirp[k];
        *slot = if inverse { v.scale(scale) } else { v };
    }
}

/// In-place FFT of any nonzero length. `inverse` selects the sign
/// convention; inverse transforms are scaled by `1/N` so
/// `ifft(fft(x)) == x`. Power-of-two lengths run the radix-2 kernel,
/// all others Bluestein's algorithm.
///
/// # Errors
///
/// Returns [`FftError::Empty`] for zero-length input.
pub fn fft1d_inplace(data: &mut [Complex], inverse: bool) -> Result<(), FftError> {
    let n = data.len();
    if n == 0 {
        return Err(FftError::Empty);
    }
    if n & (n - 1) == 0 {
        radix2_inplace(data, inverse);
    } else {
        bluestein_inplace(data, inverse);
    }
    Ok(())
}

/// Forward FFT of a slice, allocating the output.
///
/// # Errors
///
/// Returns [`FftError::Empty`] for zero-length input.
pub fn fft1d(data: &[Complex]) -> Result<Vec<Complex>, FftError> {
    let _span = peb_obs::span("fft.fft1d");
    peb_obs::count(peb_obs::Counter::FftLines, 1);
    let mut out = data.to_vec();
    fft1d_inplace(&mut out, false)?;
    Ok(out)
}

/// Inverse FFT of a slice (scaled by `1/N`), allocating the output.
///
/// # Errors
///
/// Returns [`FftError::Empty`] for zero-length input.
pub fn ifft1d(data: &[Complex]) -> Result<Vec<Complex>, FftError> {
    let _span = peb_obs::span("fft.fft1d");
    peb_obs::count(peb_obs::Counter::FftLines, 1);
    let mut out = data.to_vec();
    fft1d_inplace(&mut out, true)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(N²) reference DFT.
    fn dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &x) in data.iter().enumerate() {
                    acc += x * Complex::cis(-std::f32::consts::TAU * (k * t) as f32 / n as f32);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // Powers of two take the radix-2 kernel; the rest take Bluestein.
        for &n in &[1usize, 2, 3, 4, 5, 6, 7, 8, 12, 17, 31, 32, 48, 64] {
            let data: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let fast = fft1d(&data).unwrap();
            let slow = dft(&data);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(
                    (a.re - b.re).abs() < 2e-3 && (a.im - b.im).abs() < 2e-3,
                    "n={n}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn roundtrip() {
        let data: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f32, -(i as f32)))
            .collect();
        let back = ifft1d(&fft1d(&data).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn roundtrip_prime_length() {
        let data: Vec<Complex> = (0..13)
            .map(|i| Complex::new((i as f32).sin(), (i as f32).cos()))
            .collect();
        let back = ifft1d(&fft1d(&data).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn parseval() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let spec = fft1d(&data).unwrap();
        let time_e: f32 = data.iter().map(|c| c.norm_sqr()).sum();
        let freq_e: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / 64.0;
        assert!((time_e - freq_e).abs() < 1e-2);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        let spec = fft1d(&data).unwrap();
        for c in spec {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(fft1d(&[]).unwrap_err(), FftError::Empty);
        assert_eq!(ifft1d(&[]).unwrap_err(), FftError::Empty);
    }
}
