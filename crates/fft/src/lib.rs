//! Fast Fourier transforms for the SDM-PEB reproduction.
//!
//! Provides an iterative radix-2 complex FFT in one, two and three
//! dimensions plus convolution helpers. Two subsystems consume it:
//!
//! * `peb-litho` — computes aerial images by (circular) convolution of the
//!   mask with optical kernels;
//! * `peb-baselines` — the FNO and DeePEB models apply learned filters in
//!   the frequency domain.
//!
//! Any nonzero length is supported: powers of two run the radix-2
//! kernel, everything else Bluestein's chirp-z algorithm. The workspace
//! still keeps H/W grid sizes as powers of two for speed (see DESIGN.md
//! §7).
//!
//! # Example
//!
//! ```
//! use peb_fft::{fft1d, ifft1d, Complex};
//!
//! # fn main() -> Result<(), peb_fft::FftError> {
//! let signal: Vec<Complex> = (0..8).map(|i| Complex::new(i as f32, 0.0)).collect();
//! let spectrum = fft1d(&signal)?;
//! let back = ifft1d(&spectrum)?;
//! assert!((back[3].re - 3.0).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

mod complex;
mod convolve;
mod fft1d;
mod fftnd;
mod plan;
mod rfft;

pub use complex::Complex;
pub use convolve::{convolve2d_periodic, convolve3d_periodic};
pub use fft1d::{fft1d, fft1d_inplace, ifft1d, FftError};
pub use fftnd::{fft2d, fft3d, ifft2d, ifft3d, ComplexField};
pub use rfft::{irfft1d, irfft1d_len, rfft1d};
