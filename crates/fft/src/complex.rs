//! Minimal complex arithmetic (the allowed dependency set has no complex
//! number crate).

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f32` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

// Complex spectra check scratch lines out of the thread-local buffer pool
// on every FFT call, so the type gets its own monomorphic pool.
peb_pool::impl_poolable!(Complex);

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    pub fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}` on the unit circle.
    pub fn cis(theta: f32) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f32) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f32> for Complex {
    fn from(re: f32) -> Self {
        Complex::new(re, 0.0)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-6 && (q.im - a.im).abs() < 1e-6);
    }

    #[test]
    fn cis_unit_circle() {
        let c = Complex::cis(std::f32::consts::FRAC_PI_2);
        assert!(c.re.abs() < 1e-6);
        assert!((c.im - 1.0).abs() < 1e-6);
        assert!((Complex::cis(1.234).abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!((a * a.conj()).re, 25.0);
        assert!((a * a.conj()).im.abs() < 1e-6);
    }
}
