//! FFT-based periodic (circular) convolution.
//!
//! The lithography simulation window is treated as periodic — the standard
//! assumption for dense-clip simulation — so circular convolution via the
//! FFT is both exact for that boundary condition and fast.

use peb_tensor::Tensor;

use crate::fft1d::FftError;
use crate::fftnd::{fft2d, fft3d, ifft2d, ifft3d, ComplexField};

/// Circular 2-D convolution of two `[H, W]` tensors of identical shape.
///
/// The kernel is indexed with its origin at element `(0, 0)`; centre a
/// symmetric kernel by placing its peak there and wrapping the tails (see
/// `peb-litho`'s kernel builders).
///
/// # Errors
///
/// Returns [`FftError`] on empty extents.
///
/// # Panics
///
/// Panics if the shapes differ or are not rank-2.
pub fn convolve2d_periodic(signal: &Tensor, kernel: &Tensor) -> Result<Tensor, FftError> {
    assert_eq!(signal.shape(), kernel.shape(), "convolve2d shapes");
    assert_eq!(signal.rank(), 2, "convolve2d rank");
    let fs = fft2d(&ComplexField::from_real(signal))?;
    let fk = fft2d(&ComplexField::from_real(kernel))?;
    Ok(ifft2d(&fs.hadamard(&fk))?.real())
}

/// Circular 3-D convolution of two `[D, H, W]` tensors of identical shape.
///
/// # Errors
///
/// Returns [`FftError`] on empty extents.
///
/// # Panics
///
/// Panics if the shapes differ or are not rank-3.
pub fn convolve3d_periodic(signal: &Tensor, kernel: &Tensor) -> Result<Tensor, FftError> {
    assert_eq!(signal.shape(), kernel.shape(), "convolve3d shapes");
    assert_eq!(signal.rank(), 3, "convolve3d rank");
    let fs = fft3d(&ComplexField::from_real(signal))?;
    let fk = fft3d(&ComplexField::from_real(kernel))?;
    Ok(ifft3d(&fs.hadamard(&fk))?.real())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel() {
        let mut kernel = Tensor::zeros(&[8, 8]);
        kernel.set(&[0, 0], 1.0);
        let signal = Tensor::from_fn(&[8, 8], |i| (i % 7) as f32);
        let out = convolve2d_periodic(&signal, &kernel).unwrap();
        assert!(out.approx_eq(&signal, 1e-4));
    }

    #[test]
    fn shift_kernel_rolls_signal() {
        let mut kernel = Tensor::zeros(&[4, 4]);
        kernel.set(&[0, 1], 1.0); // shift x by +1 (circular)
        let mut signal = Tensor::zeros(&[4, 4]);
        signal.set(&[2, 0], 1.0);
        let out = convolve2d_periodic(&signal, &kernel).unwrap();
        assert!((out.get(&[2, 1]) - 1.0).abs() < 1e-4);
        assert!(out.get(&[2, 0]).abs() < 1e-4);
    }

    #[test]
    fn matches_direct_convolution() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let s = Tensor::randn(&[8, 8], &mut rng);
        let k = Tensor::randn(&[8, 8], &mut rng);
        let fast = convolve2d_periodic(&s, &k).unwrap();
        let mut direct = Tensor::zeros(&[8, 8]);
        for oy in 0..8usize {
            for ox in 0..8usize {
                let mut acc = 0f32;
                for ky in 0..8usize {
                    for kx in 0..8usize {
                        let sy = (oy + 8 - ky) % 8;
                        let sx = (ox + 8 - kx) % 8;
                        acc += s.get(&[sy, sx]) * k.get(&[ky, kx]);
                    }
                }
                direct.set(&[oy, ox], acc);
            }
        }
        assert!(fast.max_abs_diff(&direct) < 1e-3);
    }

    #[test]
    fn convolution_commutes() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(10);
        let s = Tensor::randn(&[2, 4, 4], &mut rng);
        let k = Tensor::randn(&[2, 4, 4], &mut rng);
        let a = convolve3d_periodic(&s, &k).unwrap();
        let b = convolve3d_periodic(&k, &s).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn preserves_total_mass_for_unit_kernel() {
        // A kernel summing to 1 preserves the signal mean.
        let kernel = Tensor::full(&[4, 4], 1.0 / 16.0);
        let signal = Tensor::from_fn(&[4, 4], |i| i as f32);
        let out = convolve2d_periodic(&signal, &kernel).unwrap();
        assert!((out.mean() - signal.mean()).abs() < 1e-4);
    }
}
