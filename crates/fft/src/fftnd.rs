//! Multi-dimensional FFTs over a dense complex field.

use peb_tensor::Tensor;

use crate::fft1d::{fft1d_inplace, FftError};
use crate::Complex;

/// A dense N-D array of complex values (row-major), the frequency-domain
/// counterpart of [`peb_tensor::Tensor`].
///
/// Storage is checked out of the thread-local `peb-pool` and recycled on
/// drop, so repeated spectral round trips (the aerial-image convolution
/// hot path) reuse the same buffers instead of allocating.
#[derive(Debug, PartialEq)]
pub struct ComplexField {
    data: Vec<Complex>,
    shape: Vec<usize>,
}

/// Checks out an empty pooled `Complex` buffer with capacity ≥ `cap`.
fn alloc_cleared(cap: usize) -> Vec<Complex> {
    peb_pool::take_cleared(cap).0
}

impl ComplexField {
    /// Creates a field from a buffer and shape.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the shape product.
    pub fn from_parts(data: Vec<Complex>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "ComplexField length/shape mismatch"
        );
        ComplexField {
            data,
            shape: shape.to_vec(),
        }
    }

    /// All-zero field.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        let mut data = alloc_cleared(n);
        data.resize(n, Complex::ZERO);
        ComplexField {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Builds a field from a real tensor (imaginary parts zero).
    pub fn from_real(t: &Tensor) -> Self {
        let mut data = alloc_cleared(t.len());
        data.extend(t.data().iter().map(|&r| Complex::new(r, 0.0)));
        ComplexField {
            data,
            shape: t.shape().to_vec(),
        }
    }

    /// Extracts the real parts as a tensor.
    pub fn real(&self) -> Tensor {
        Tensor::from_fn(&self.shape, |i| self.data[i].re)
    }

    /// Extracts the imaginary parts as a tensor.
    pub fn imag(&self) -> Tensor {
        Tensor::from_fn(&self.shape, |i| self.data[i].im)
    }

    /// Shape of the field.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Immutable element buffer.
    pub fn data(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable element buffer.
    pub fn data_mut(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Pointwise complex product with another field of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &ComplexField) -> ComplexField {
        assert_eq!(self.shape, other.shape, "hadamard shape mismatch");
        let mut data = alloc_cleared(self.data.len());
        data.extend(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| a * b),
        );
        ComplexField {
            data,
            shape: self.shape.clone(),
        }
    }

    /// FFT along one axis, in place.
    ///
    /// The `outer·inner` lines along the axis are independent, so they
    /// fan out over the `peb-par` pool with a per-chunk gather/scatter
    /// buffer; every element belongs to exactly one line, keeping the
    /// result thread-count independent.
    fn transform_axis(&mut self, axis: usize, inverse: bool) -> Result<(), FftError> {
        let shape = &self.shape;
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        // The only failure mode is an empty axis, which is
        // line-independent — check it once, up front. (Non-power-of-two
        // lengths dispatch to the Bluestein kernel per line.)
        if mid == 0 {
            return Err(FftError::Empty);
        }
        let lines = outer * inner;
        let _span = peb_obs::span("fft.axis");
        peb_obs::count(peb_obs::Counter::FftLines, lines as u64);
        let slots = peb_par::UnsafeSlice::new(&mut self.data);
        // ~5·n·log₂n complex flops per line, plus the gather/scatter.
        let line_cost =
            5 * (mid as u64) * (usize::BITS - mid.leading_zeros()) as u64 + 4 * mid as u64;
        peb_par::parallel_chunks_cost(lines, lines.div_ceil(64), line_cost, |range| {
            let mut line = peb_pool::PoolBuf::<Complex>::zeroed(mid);
            for li in range {
                let (o, i) = (li / inner, li % inner);
                for (m, slot) in line.iter_mut().enumerate() {
                    // SAFETY: line `li` owns exactly the strided positions
                    // `(o·mid + m)·inner + i`; lines are disjoint.
                    *slot = unsafe { *slots.get_mut((o * mid + m) * inner + i) };
                }
                fft1d_inplace(&mut line, inverse).expect("length checked nonzero");
                for (m, slot) in line.iter().enumerate() {
                    // SAFETY: as above.
                    unsafe { *slots.get_mut((o * mid + m) * inner + i) = *slot };
                }
            }
        });
        Ok(())
    }
}

impl Clone for ComplexField {
    fn clone(&self) -> Self {
        ComplexField {
            data: peb_pool::take_copy(&self.data).0,
            shape: self.shape.clone(),
        }
    }
}

impl Drop for ComplexField {
    /// Returns the storage to the thread-local `peb-pool`.
    fn drop(&mut self) {
        peb_pool::recycle(std::mem::take(&mut self.data));
    }
}

/// Forward 2-D FFT of an `[H, W]` field.
///
/// # Errors
///
/// Returns [`FftError`] if the field has an empty axis.
pub fn fft2d(field: &ComplexField) -> Result<ComplexField, FftError> {
    transform_all(field, false, 2)
}

/// Inverse 2-D FFT (scaled so that `ifft2d(fft2d(x)) == x`).
///
/// # Errors
///
/// Returns [`FftError`] on invalid shapes.
pub fn ifft2d(field: &ComplexField) -> Result<ComplexField, FftError> {
    transform_all(field, true, 2)
}

/// Forward 3-D FFT of a `[D, H, W]` field.
///
/// # Errors
///
/// Returns [`FftError`] on invalid shapes.
pub fn fft3d(field: &ComplexField) -> Result<ComplexField, FftError> {
    transform_all(field, false, 3)
}

/// Inverse 3-D FFT.
///
/// # Errors
///
/// Returns [`FftError`] on invalid shapes.
pub fn ifft3d(field: &ComplexField) -> Result<ComplexField, FftError> {
    transform_all(field, true, 3)
}

fn transform_all(
    field: &ComplexField,
    inverse: bool,
    expect_rank: usize,
) -> Result<ComplexField, FftError> {
    assert_eq!(
        field.shape().len(),
        expect_rank,
        "expected rank-{expect_rank} field, got {:?}",
        field.shape()
    );
    let mut out = field.clone();
    for axis in 0..expect_rank {
        out.transform_axis(axis, inverse)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn random_field(shape: &[usize], seed: u64) -> ComplexField {
        let mut rng = StdRng::seed_from_u64(seed);
        ComplexField::from_real(&Tensor::randn(shape, &mut rng))
    }

    #[test]
    fn fft2d_roundtrip() {
        let f = random_field(&[8, 16], 1);
        let back = ifft2d(&fft2d(&f).unwrap()).unwrap();
        assert!(back.real().approx_eq(&f.real(), 1e-4));
        assert!(back.imag().approx_eq(&f.imag(), 1e-4));
    }

    #[test]
    fn fft3d_roundtrip() {
        let f = random_field(&[4, 8, 8], 2);
        let back = ifft3d(&fft3d(&f).unwrap()).unwrap();
        assert!(back.real().approx_eq(&f.real(), 1e-4));
    }

    #[test]
    fn dc_component_is_sum() {
        let f = random_field(&[4, 4], 3);
        let total: f32 = f.real().sum();
        let spec = fft2d(&f).unwrap();
        assert!((spec.data()[0].re - total).abs() < 1e-3);
        assert!(spec.data()[0].im.abs() < 1e-4);
    }

    #[test]
    fn real_input_spectrum_is_hermitian() {
        let f = random_field(&[8, 8], 4);
        let spec = fft2d(&f).unwrap();
        // X[-k] = conj(X[k]) for real input.
        for ky in 0..8usize {
            for kx in 0..8usize {
                let a = spec.data()[ky * 8 + kx];
                let b = spec.data()[((8 - ky) % 8) * 8 + (8 - kx) % 8];
                assert!((a.re - b.re).abs() < 1e-3);
                assert!((a.im + b.im).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn hadamard_matches_manual() {
        let a = random_field(&[2, 2], 5);
        let b = random_field(&[2, 2], 6);
        let h = a.hadamard(&b);
        for i in 0..4 {
            let expect = a.data()[i] * b.data()[i];
            assert!((h.data()[i].re - expect.re).abs() < 1e-6);
        }
    }
}
