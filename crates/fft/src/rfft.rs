//! Real-input FFT.
//!
//! Even lengths use the half-length complex-packing trick: packing even
//! samples into the real parts and odd samples into the imaginary parts
//! of an `N/2`-length complex signal lets one complex FFT produce the
//! full spectrum — half the work of the naive approach. Odd lengths fall
//! back to a full complex FFT (Bluestein under the hood) and keep only
//! the `⌊N/2⌋ + 1` non-redundant bins. Used where the workspace
//! transforms real fields (aerial-image convolution, spectral
//! statistics).

use crate::fft1d::{fft1d_inplace, FftError};
use crate::Complex;

/// Forward FFT of a real signal of any nonzero length, returning the
/// `⌊N/2⌋ + 1` non-redundant spectrum bins (the remainder is the
/// Hermitian mirror).
///
/// # Errors
///
/// Returns [`FftError::Empty`] for zero-length input.
pub fn rfft1d(data: &[f32]) -> Result<Vec<Complex>, FftError> {
    let n = data.len();
    if n == 0 {
        return Err(FftError::Empty);
    }
    let _span = peb_obs::span("fft.rfft");
    peb_obs::count(peb_obs::Counter::FftLines, 1);
    if !n.is_multiple_of(2) {
        // Odd lengths (including 1): plain complex FFT, truncated to the
        // non-redundant half.
        let mut z: Vec<Complex> = data.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft1d_inplace(&mut z, false)?;
        z.truncate(n / 2 + 1);
        return Ok(z);
    }
    let half = n / 2;
    // Pack: z[k] = x[2k] + i·x[2k+1] (pooled scratch).
    let mut z = peb_pool::PoolBuf::<Complex>::cleared(half);
    z.extend((0..half).map(|k| Complex::new(data[2 * k], data[2 * k + 1])));
    fft1d_inplace(&mut z, false)?;
    // Untangle: X[k] = E[k] + e^{-2πik/N} O[k], where
    // E[k] = (Z[k] + conj(Z[−k]))/2 and O[k] = (Z[k] − conj(Z[−k]))/(2i).
    let mut out = Vec::with_capacity(half + 1);
    for k in 0..=half {
        let zk = z[k % half];
        let zmk = z[(half - k % half) % half].conj();
        let e = (zk + zmk).scale(0.5);
        let o = (zk - zmk) * Complex::new(0.0, -0.5);
        let w = Complex::cis(-std::f32::consts::TAU * k as f32 / n as f32);
        out.push(e + w * o);
    }
    Ok(out)
}

/// Inverse of [`rfft1d`] for **even** original lengths: reconstructs the
/// real signal of length `2·(spectrum.len() − 1)`. The bin count alone
/// cannot distinguish even from odd originals — use [`irfft1d_len`] when
/// the length was odd (or to be explicit).
///
/// # Errors
///
/// Returns [`FftError::Empty`] when the spectrum has fewer than 2 bins.
pub fn irfft1d(spectrum: &[Complex]) -> Result<Vec<f32>, FftError> {
    if spectrum.len() < 2 {
        return Err(FftError::Empty);
    }
    irfft1d_len(spectrum, 2 * (spectrum.len() - 1))
}

/// Inverse real FFT with the original signal length given explicitly,
/// supporting both even and odd `n`.
///
/// # Errors
///
/// Returns [`FftError::Empty`] for `n == 0` and
/// [`FftError::SpectrumLength`] unless `spectrum.len() == n/2 + 1`.
pub fn irfft1d_len(spectrum: &[Complex], n: usize) -> Result<Vec<f32>, FftError> {
    if n == 0 {
        return Err(FftError::Empty);
    }
    let bins = n / 2 + 1;
    if spectrum.len() != bins {
        return Err(FftError::SpectrumLength {
            bins: spectrum.len(),
            n,
        });
    }
    let _span = peb_obs::span("fft.irfft");
    peb_obs::count(peb_obs::Counter::FftLines, 1);
    // Rebuild the full Hermitian spectrum (in pooled scratch) and run one
    // complex inverse FFT. (A half-length unpacking inverse exists for
    // even n; full reconstruction keeps this path simple and is still
    // dominated by the forward direction in our workloads.)
    let mut full = peb_pool::PoolBuf::<Complex>::cleared(n);
    full.extend_from_slice(spectrum);
    for k in bins..n {
        full.push(spectrum[n - k].conj());
    }
    fft1d_inplace(&mut full, true)?;
    Ok(full.iter().map(|c| c.re).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::fft1d;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn matches_full_complex_fft() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 4, 5, 6, 7, 9, 12, 16, 31, 64] {
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let complex_in: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let full = fft1d(&complex_in).unwrap();
            let half = rfft1d(&x).unwrap();
            assert_eq!(half.len(), n / 2 + 1);
            for (k, h) in half.iter().enumerate() {
                assert!(
                    (h.re - full[k].re).abs() < 2e-3 && (h.im - full[k].im).abs() < 2e-3,
                    "n={n} bin {k}: {h} vs {}",
                    full[k]
                );
            }
        }
    }

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let x: Vec<f32> = (0..32).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let back = irfft1d(&rfft1d(&x).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn roundtrip_odd_and_non_pow2_lengths() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in [3usize, 5, 6, 7, 10, 13, 21] {
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let back = irfft1d_len(&rfft1d(&x).unwrap(), n).unwrap();
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-3, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dc_and_nyquist_bins_are_real() {
        let mut rng = StdRng::seed_from_u64(9);
        let x: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let s = rfft1d(&x).unwrap();
        assert!(s[0].im.abs() < 1e-4, "DC must be real");
        assert!(s[8].im.abs() < 1e-4, "Nyquist must be real");
        assert!((s[0].re - x.iter().sum::<f32>()).abs() < 1e-3);
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(rfft1d(&[]).unwrap_err(), FftError::Empty);
        assert_eq!(irfft1d(&[Complex::ZERO]).unwrap_err(), FftError::Empty);
        assert_eq!(
            irfft1d_len(&[Complex::ZERO; 3], 7).unwrap_err(),
            FftError::SpectrumLength { bins: 3, n: 7 }
        );
        assert_eq!(irfft1d_len(&[], 0).unwrap_err(), FftError::Empty);
    }
}
