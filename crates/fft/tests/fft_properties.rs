//! Property-based tests for the FFT stack on arbitrary lengths.
//!
//! PR 2 replaced the power-of-two-only radix-2 entry points with a
//! dispatching kernel (radix-2 for powers of two, Bluestein chirp-z for
//! everything else). These properties pin the contract on *any* length,
//! with odd and prime lengths exercised explicitly since those take the
//! Bluestein path end to end.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

use peb_fft::{fft1d, ifft1d, irfft1d_len, rfft1d, Complex};

/// Lengths whose only divisors are themselves: pure Bluestein territory.
const PRIMES: [usize; 14] = [3, 5, 7, 11, 13, 17, 19, 23, 31, 37, 53, 61, 79, 97];

fn random_complex(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

fn random_real(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// O(N²) reference DFT.
fn dft(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &x) in data.iter().enumerate() {
                let phase = -std::f32::consts::TAU * (k * t % n) as f32 / n as f32;
                acc += x * Complex::cis(phase);
            }
            acc
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_inverse_roundtrip_any_length(len in 1usize..97, seed in 0u64..1000) {
        let x = random_complex(len, seed);
        let back = ifft1d(&fft1d(&x).unwrap()).unwrap();
        prop_assert_eq!(back.len(), len);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!(
                (a.re - b.re).abs() < 2e-3 && (a.im - b.im).abs() < 2e-3,
                "len={} roundtrip {} vs {}", len, a, b
            );
        }
    }

    #[test]
    fn forward_matches_reference_dft(len in 1usize..49, seed in 0u64..1000) {
        let x = random_complex(len, seed);
        let fast = fft1d(&x).unwrap();
        let slow = dft(&x);
        let tol = 1e-3 * (len as f32).max(4.0);
        for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!(
                (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol,
                "len={} bin {}: {} vs {}", len, k, a, b
            );
        }
    }

    #[test]
    fn roundtrip_on_prime_lengths(pi in 0usize..14, seed in 0u64..1000) {
        let len = PRIMES[pi];
        let x = random_complex(len, seed);
        let back = ifft1d(&fft1d(&x).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&x) {
            prop_assert!(
                (a.re - b.re).abs() < 2e-3 && (a.im - b.im).abs() < 2e-3,
                "prime len={}: {} vs {}", len, a, b
            );
        }
    }

    #[test]
    fn rfft_matches_complex_fft_any_length(len in 1usize..97, seed in 0u64..1000) {
        let x = random_real(len, seed);
        let complex_in: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let full = fft1d(&complex_in).unwrap();
        let half = rfft1d(&x).unwrap();
        prop_assert_eq!(half.len(), len / 2 + 1);
        let tol = 1e-3 * (len as f32).max(4.0);
        for (k, h) in half.iter().enumerate() {
            prop_assert!(
                (h.re - full[k].re).abs() < tol && (h.im - full[k].im).abs() < tol,
                "len={} bin {}: {} vs {}", len, k, h, full[k]
            );
        }
    }

    #[test]
    fn rfft_irfft_roundtrip_any_length(len in 1usize..97, seed in 0u64..1000) {
        let x = random_real(len, seed);
        let back = irfft1d_len(&rfft1d(&x).unwrap(), len).unwrap();
        prop_assert_eq!(back.len(), len);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 2e-3, "len={}: {} vs {}", len, a, b);
        }
    }

    #[test]
    fn plan_cache_is_bitwise_stable_on_prime_lengths(pi in 0usize..14, seed in 0u64..1000) {
        // The first transform of a given length builds the Bluestein plan;
        // subsequent transforms replay it from the thread-local cache. A
        // cached plan must reproduce the cold-path bits exactly, forward
        // and inverse, on pure Bluestein (prime) lengths.
        let len = PRIMES[pi];
        let x = random_complex(len, seed);
        let first = fft1d(&x).unwrap();
        for _ in 0..3 {
            let again = fft1d(&x).unwrap();
            for (k, (a, b)) in again.iter().zip(&first).enumerate() {
                prop_assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "cached fft differs at len={} bin {}: {} vs {}", len, k, a, b
                );
            }
        }
        let inv_first = ifft1d(&first).unwrap();
        let inv_again = ifft1d(&first).unwrap();
        for (k, (a, b)) in inv_again.iter().zip(&inv_first).enumerate() {
            prop_assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "cached ifft differs at len={} bin {}: {} vs {}", len, k, a, b
            );
        }
    }

    #[test]
    fn rfft_plan_cache_is_bitwise_stable_on_odd_lengths(half in 1usize..48, seed in 0u64..1000) {
        // Odd lengths drive the rfft path through Bluestein; the full
        // rfft → irfft chain must be reproducible bit for bit when every
        // plan involved is served from the cache.
        let len = 2 * half + 1;
        let x = random_real(len, seed);
        let spec_first = rfft1d(&x).unwrap();
        let spec_again = rfft1d(&x).unwrap();
        for (k, (a, b)) in spec_again.iter().zip(&spec_first).enumerate() {
            prop_assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "cached rfft differs at len={} bin {}: {} vs {}", len, k, a, b
            );
        }
        let back_first = irfft1d_len(&spec_first, len).unwrap();
        let back_again = irfft1d_len(&spec_first, len).unwrap();
        for (k, (a, b)) in back_again.iter().zip(&back_first).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "cached irfft differs at len={} sample {}: {} vs {}", len, k, a, b
            );
        }
    }

    #[test]
    fn parseval_any_length(len in 1usize..97, seed in 0u64..1000) {
        let x = random_complex(len, seed);
        let spec = fft1d(&x).unwrap();
        let time_e: f32 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_e: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / len as f32;
        let tol = 2e-3 * time_e.max(1.0);
        prop_assert!(
            (time_e - freq_e).abs() < tol,
            "len={}: time {} vs freq {}", len, time_e, freq_e
        );
    }
}
