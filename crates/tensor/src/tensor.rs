//! The raw dense tensor type.

use serde::{Deserialize, Serialize};

use crate::shape::{numel, ravel, strides_for, Shape};
use crate::{Result, TensorError};

/// A contiguous, row-major, N-dimensional array of `f32`.
///
/// `Tensor` is the storage type shared by the physics simulator (which uses
/// it directly) and the autograd layer (which wraps it in [`crate::Var`]).
/// All operations allocate fresh output tensors unless documented otherwise.
///
/// # Example
///
/// ```
/// use peb_tensor::Tensor;
///
/// # fn main() -> Result<(), peb_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

/// Checks out an **empty** pooled buffer with capacity ≥ `cap` from the
/// thread-local `peb-pool`, counting a `tensor_allocs` only when fresh
/// heap storage was allocated (a pool miss, or the pool is disabled).
/// Every constructor routes through here so dropped tensors (recycled by
/// the `Drop` impl) feed the next construction.
pub(crate) fn alloc_cleared(cap: usize) -> Vec<f32> {
    let (v, fresh) = peb_pool::take_cleared(cap);
    if fresh {
        peb_obs::count(peb_obs::Counter::TensorAllocs, 1);
    }
    v
}

/// Pooled copy of a slice, with the same alloc accounting as
/// [`alloc_cleared`].
pub(crate) fn alloc_copy(src: &[f32]) -> Vec<f32> {
    let (v, fresh) = peb_pool::take_copy(src);
    if fresh {
        peb_obs::count(peb_obs::Counter::TensorAllocs, 1);
    }
    v
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if data.len() != numel(shape) {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                shape: shape.to_vec(),
            });
        }
        peb_obs::count(peb_obs::Counter::TensorAllocs, 1);
        Ok(Self {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Wraps a buffer that came from [`alloc_cleared`]/[`alloc_copy`]
    /// (whose checkout already did the alloc accounting) without counting
    /// a second `tensor_allocs`.
    pub(crate) fn from_pooled(data: Vec<f32>, shape: &[usize]) -> Self {
        debug_assert_eq!(data.len(), numel(shape));
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        let mut data = alloc_cleared(1);
        data.push(value);
        Self {
            data,
            shape: Vec::new(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = numel(shape);
        let mut data = alloc_cleared(n);
        data.resize(n, value);
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        let mut data = alloc_cleared(n);
        for i in 0..n {
            data.push(f(i));
        }
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Shape of the tensor, outermost axis first.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer. (The buffer is
    /// moved out, so nothing is recycled into the pool on drop.)
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// Reads the element at multi-axis `coords`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `coords` is out of range.
    pub fn get(&self, coords: &[usize]) -> f32 {
        self.data[ravel(coords, &self.shape)]
    }

    /// Writes the element at multi-axis `coords`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `coords` is out of range.
    pub fn set(&mut self, coords: &[usize], value: f32) {
        let idx = ravel(coords, &self.shape);
        self.data[idx] = value;
    }

    /// Returns the single element of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires exactly one element, got shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// FNV-1a digest over the exact bit patterns of every element.
    ///
    /// Two tensors digest equal iff their flat buffers are bitwise
    /// identical, which is what the workspace's determinism contracts
    /// (SIMD level, thread count, fusion, tiling, batching) compare.
    /// The shape is deliberately excluded so a reshape of the same
    /// buffer digests the same.
    pub fn bit_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in &self.data {
            h ^= v.to_bits() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        let mut data = alloc_cleared(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Self {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ (use the
    /// broadcasting entry points in this crate for mixed shapes).
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut data = alloc_cleared(self.data.len());
        data.extend(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b)),
        );
        Ok(Self {
            data,
            shape: self.shape.clone(),
        })
    }

    /// True when every element differs from `other` by at most `tol`.
    ///
    /// Returns `false` (rather than erroring) on shape mismatch, which is
    /// the convenient behaviour inside assertions.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let (data, fresh) = peb_pool::take_copy(&self.data);
        if fresh {
            peb_obs::count(peb_obs::Counter::TensorAllocs, 1);
        }
        Self {
            data,
            shape: self.shape.clone(),
        }
    }
}

impl Drop for Tensor {
    /// Returns the storage to the thread-local `peb-pool` so the next
    /// same-sized constructor reuses it instead of allocating. A no-op
    /// when the pool is disabled or the buffer was moved out.
    fn drop(&mut self) {
        peb_pool::recycle(std::mem::take(&mut self.data));
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
        assert_eq!(t.get(&[1, 2, 3]), 23.0);
        assert_eq!(t.get(&[1, 0, 2]), 14.0);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).unwrap().data(), &[11.0, 22.0]);
        assert!(a.zip_map(&Tensor::zeros(&[3]), |x, _| x).is_err());
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn display_nonempty() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(!format!("{t}").is_empty());
        assert!(!format!("{t:?}").is_empty());
    }
}
