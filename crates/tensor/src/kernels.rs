//! Low-level GEMM kernels.
//!
//! Two kernels share one floating-point contract: every output element
//! accumulates its `k` products in strictly ascending `k` order, so the
//! naive reference, the cache-blocked kernel, and the parallel row-panel
//! driver in [`crate::Tensor::matmul`] all produce bitwise-identical sums
//! for finite inputs at any thread count.

/// Rows per panel; also the parallel chunk size, so chunk boundaries are a
/// function of `m` only — never of the thread count.
pub const MC: usize = 64;
/// `k`-dimension block: one `KC x NC` panel of `b` stays hot in L2 while a
/// row panel streams over it.
pub const KC: usize = 256;
/// `n`-dimension block bounding the working set of `out` rows in L1.
pub const NC: usize = 1024;

/// Reference ikj kernel (the pre-blocking implementation), kept for
/// benchmarking against [`matmul_blocked`] and for differential tests.
///
/// `out += a[m×k] · b[k×n]`, `out` pre-zeroed by the caller.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Cache-blocked (`MC`×`KC`×`NC`) kernel: `out += a[m×k] · b[k×n]`, `out`
/// pre-zeroed by the caller.
///
/// Loop order is `jc → kc → ic → i → kk → j` (BLIS-style), which keeps a
/// `KC×NC` panel of `b` resident while `MC` rows of `a` stream over it.
/// For each output element the `kc` blocks and the `kk` offsets within
/// them both ascend, so the accumulation order — and the floating-point
/// result — is identical to [`matmul_naive`].
pub fn matmul_blocked(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if k <= KC && n <= NC {
        // One block covers the whole problem: the blocking loops would be
        // pure overhead, and the streaming kernel already accumulates in
        // the same (ascending-k) order.
        return matmul_naive(a, b, out, m, k, n);
    }
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for kc in (0..k).step_by(KC) {
            let kb = KC.min(k - kc);
            for ic in (0..m).step_by(MC) {
                let mb = MC.min(m - ic);
                for i in ic..ic + mb {
                    let arow = &a[i * k + kc..i * k + kc + kb];
                    let orow = &mut out[i * n + jc..i * n + jc + nb];
                    for (kk, &av) in arow.iter().enumerate() {
                        let brow = &b[(kc + kk) * n + jc..(kc + kk) * n + jc + nb];
                        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Parallel GEMM driver: `out += a[m×k] · b[k×n]`, `out` pre-zeroed.
///
/// Splits `m` into fixed [`MC`]-row panels and fans them out over the
/// [`peb_par`] pool; each panel runs [`matmul_blocked`] on its disjoint
/// slice of `out`, so results are bitwise identical at any thread count.
pub fn matmul_par(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let slots = peb_par::UnsafeSlice::new(out);
    peb_par::parallel_chunks(m, MC, |rows| {
        let sub_a = &a[rows.start * k..rows.end * k];
        // SAFETY: row panels are disjoint by construction.
        let sub_out = unsafe { slots.slice_mut(rows.start * n..rows.end * n) };
        matmul_blocked(sub_a, b, sub_out, rows.len(), k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, salt: u32) -> Vec<f32> {
        // Cheap deterministic fill with varied magnitudes (no RNG dep).
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        // Cover: within one block, straddling MC/KC/NC boundaries, thin
        // and wide shapes.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (65, 300, 17), (130, 7, 1030)] {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let mut naive = vec![0f32; m * n];
            let mut blocked = vec![0f32; m * n];
            matmul_naive(&a, &b, &mut naive, m, k, n);
            matmul_blocked(&a, &b, &mut blocked, m, k, n);
            for (x, y) in naive.iter().zip(blocked.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (m, k, n) = (150, 64, 33);
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        let mut seq = vec![0f32; m * n];
        let mut par = vec![0f32; m * n];
        peb_par::with_thread_count(1, || matmul_par(&a, &b, &mut seq, m, k, n));
        peb_par::with_thread_count(4, || matmul_par(&a, &b, &mut par, m, k, n));
        for (x, y) in seq.iter().zip(par.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
