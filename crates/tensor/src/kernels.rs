//! Low-level GEMM kernels.
//!
//! The production path is the packed register-tile microkernel in
//! [`peb_simd::gemm`], driven here in fixed [`MC`]-row panels over the
//! [`peb_par`] pool. The microkernel accumulates every output element's
//! `k` products in an order that depends only on the problem shape —
//! never on the row panelling or thread count — so [`matmul_par`] is
//! bitwise reproducible at any `PEB_THREADS` for a fixed SIMD dispatch
//! level. Across dispatch levels (and against [`matmul_naive`]) results
//! differ by bounded ULPs: the packed kernel brackets k-sums per cache
//! block and the AVX2 path fuses multiply–adds.
//!
//! [`matmul_naive`] is the reference ikj triple loop, kept as the oracle
//! for differential tests and benches.

/// Rows per panel; also the parallel chunk size, so chunk boundaries are a
/// function of `m` only — never of the thread count.
pub const MC: usize = 64;

/// Reference ikj kernel (the pre-blocking implementation), kept as the
/// differential-test oracle and for benchmarking the packed microkernel.
///
/// `out += a[m×k] · b[k×n]`, `out` pre-zeroed by the caller.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Parallel GEMM driver: `out += a[m×k] · b[k×n]`, `out` pre-zeroed.
///
/// Splits `m` into fixed [`MC`]-row panels and fans them out over the
/// [`peb_par`] pool; each panel runs the [`peb_simd::gemm`] microkernel on
/// its disjoint slice of `out`. The cost hint (`2·k·n` flops per row)
/// keeps small products — common in autograd tails — off the pool
/// entirely without changing the panel boundaries.
pub fn matmul_par(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    // Precision is latched on the submitting thread (the pool workers
    // never consult the latch), then captured into the panel closures —
    // so `with_prec` scopes compose with any `PEB_THREADS`.
    let prec = peb_simd::prec();
    let slots = peb_par::UnsafeSlice::new(out);
    let row_flops = 2 * (k as u64) * (n as u64);
    match prec {
        peb_simd::Prec::F32 => {
            peb_par::parallel_chunks_cost(m, MC, row_flops, |rows| {
                let sub_a = &a[rows.start * k..rows.end * k];
                // SAFETY: row panels are disjoint by construction.
                let sub_out = unsafe { slots.slice_mut(rows.start * n..rows.end * n) };
                peb_simd::gemm::gemm(sub_a, b, sub_out, rows.len(), k, n);
            });
        }
        peb_simd::Prec::Bf16 => {
            peb_par::parallel_chunks_cost(m, MC, row_flops, |rows| {
                let sub_a = &a[rows.start * k..rows.end * k];
                // SAFETY: row panels are disjoint by construction.
                let sub_out = unsafe { slots.slice_mut(rows.start * n..rows.end * n) };
                peb_simd::gemm::gemm_bf16(sub_a, b, sub_out, rows.len(), k, n);
            });
        }
        peb_simd::Prec::Int8 => {
            // Quantize `b` once per multiply (per-column absmax), then
            // fan the activation rows out; exact i32 accumulation makes
            // this arm bitwise reproducible at any thread count *and*
            // dispatch level.
            let qb = peb_simd::int8::quantize_b(b, k, n);
            peb_par::parallel_chunks_cost(m, MC, row_flops, |rows| {
                let sub_a = &a[rows.start * k..rows.end * k];
                // SAFETY: row panels are disjoint by construction.
                let sub_out = unsafe { slots.slice_mut(rows.start * n..rows.end * n) };
                peb_simd::int8::gemm_i8(sub_a, &qb, sub_out, rows.len());
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, salt: u32) -> Vec<f32> {
        // Cheap deterministic fill with varied magnitudes (no RNG dep).
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    /// Reassociated k-sums can cancel, so a pure ULP bound on the result
    /// blows up near zero; accept either tight ULPs or an absolute error
    /// small against the Σ|a||b| ≈ k work that produced the element.
    fn close(w: f32, g: f32, k: usize) -> bool {
        peb_simd::ulp_diff(w, g) <= 256 || (w - g).abs() <= k as f32 * 1e-6
    }

    #[test]
    fn packed_tracks_naive_within_ulps() {
        // Cover: within one block, straddling MC/KC/NC boundaries, thin
        // and wide shapes.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (65, 300, 17), (130, 7, 1030)] {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let mut naive = vec![0f32; m * n];
            let mut packed = vec![0f32; m * n];
            matmul_naive(&a, &b, &mut naive, m, k, n);
            // The ULP budget is an f32-kernel property; pin the arm even
            // when the suite runs under PEB_PREC=bf16.
            peb_simd::with_prec(peb_simd::Prec::F32, || {
                matmul_par(&a, &b, &mut packed, m, k, n);
            });
            for (x, y) in naive.iter().zip(packed.iter()) {
                assert!(close(*x, *y, k), "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (m, k, n) = (150, 64, 33);
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        let mut seq = vec![0f32; m * n];
        let mut par = vec![0f32; m * n];
        peb_par::with_thread_count(1, || matmul_par(&a, &b, &mut seq, m, k, n));
        peb_par::with_thread_count(4, || matmul_par(&a, &b, &mut par, m, k, n));
        for (x, y) in seq.iter().zip(par.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn reduced_precision_arms_track_naive_and_stay_thread_invariant() {
        let (m, k, n) = (150, 96, 33);
        let a = pseudo(m * k, 5);
        let b = pseudo(k * n, 6);
        let mut naive = vec![0f32; m * n];
        matmul_naive(&a, &b, &mut naive, m, k, n);
        // |a|,|b| ≤ 1 → per-element mass ≤ k; bf16 carries 2⁻⁷·mass,
        // int8 roughly twice that. Loose absolute gates from those.
        for (prec, tol) in [
            (peb_simd::Prec::Bf16, k as f32 * 0.01),
            (peb_simd::Prec::Int8, k as f32 * 0.025),
        ] {
            let mut seq = vec![0f32; m * n];
            let mut par = vec![0f32; m * n];
            peb_simd::with_prec(prec, || {
                peb_par::with_thread_count(1, || matmul_par(&a, &b, &mut seq, m, k, n));
                peb_par::with_thread_count(4, || matmul_par(&a, &b, &mut par, m, k, n));
            });
            for (x, y) in naive.iter().zip(seq.iter()) {
                assert!((x - y).abs() <= tol, "{prec:?}: {x} vs {y}");
            }
            // The submitting thread's latch governs the whole fan-out,
            // and panelling never changes bits.
            for (x, y) in seq.iter().zip(par.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{prec:?}");
            }
        }
    }

    #[test]
    fn explicit_f32_override_is_bitwise_default() {
        let (m, k, n) = (70, 40, 21);
        let a = pseudo(m * k, 7);
        let b = pseudo(k * n, 8);
        let mut plain = vec![0f32; m * n];
        matmul_par(&a, &b, &mut plain, m, k, n);
        // Naming the ambient precision explicitly must be a bitwise
        // no-op — f32 by default, bf16 when the suite runs under
        // PEB_PREC=bf16.
        let mut forced = vec![0f32; m * n];
        peb_simd::with_prec(peb_simd::prec(), || {
            matmul_par(&a, &b, &mut forced, m, k, n)
        });
        for (x, y) in plain.iter().zip(forced.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
