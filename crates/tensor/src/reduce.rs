//! Reductions over all elements or a single axis.
//!
//! Reductions accumulate in `f64` so large volumes (millions of voxels in a
//! PEB grid) do not lose precision in the running sum.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements, accumulated in `f64` (vectorized into eight
    /// fixed-order `f64` partials on the SIMD path — deterministic per
    /// dispatch level).
    pub fn sum(&self) -> f32 {
        peb_simd::elementwise::vsum_f64(self.data()) as f32
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max_value(&self) -> f32 {
        assert!(!self.is_empty(), "max_value of empty tensor");
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min_value(&self) -> f32 {
        assert!(!self.is_empty(), "min_value of empty tensor");
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the maximum element (first occurrence).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0usize;
        let mut bv = self.data()[0];
        for (i, &v) in self.data().iter().enumerate() {
            if v > bv {
                bv = v;
                best = i;
            }
        }
        best
    }

    /// Sum over one axis, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Self> {
        self.reduce_axis(axis, |acc, v| acc + v as f64, 0.0, |acc, _| acc as f32)
    }

    /// Mean over one axis, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Self> {
        let n = *self.shape().get(axis).ok_or(TensorError::AxisOutOfRange {
            axis,
            rank: self.rank(),
        })? as f64;
        self.reduce_axis(
            axis,
            |acc, v| acc + v as f64,
            0.0,
            move |acc, _| (acc / n) as f32,
        )
    }

    /// Maximum over one axis, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn max_axis(&self, axis: usize) -> Result<Self> {
        self.reduce_axis(
            axis,
            |acc, v| acc.max(v as f64),
            f64::NEG_INFINITY,
            |acc, _| acc as f32,
        )
    }

    fn reduce_axis(
        &self,
        axis: usize,
        fold: impl Fn(f64, f32) -> f64,
        init: f64,
        finish: impl Fn(f64, usize) -> f32,
    ) -> Result<Self> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out_shape = shape.to_vec();
        out_shape.remove(axis);
        let src = self.data();
        let mut out = crate::tensor::alloc_cleared(outer * inner);
        for o in 0..outer {
            for i in 0..inner {
                let mut acc = init;
                for m in 0..mid {
                    acc = fold(acc, src[(o * mid + m) * inner + i]);
                }
                out.push(finish(acc, mid));
            }
        }
        Ok(Tensor::from_pooled(out, &out_shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t234() -> Tensor {
        Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap()
    }

    #[test]
    fn global_reductions() {
        let t = t234();
        assert_eq!(t.sum(), 276.0);
        assert_eq!(t.mean(), 11.5);
        assert_eq!(t.max_value(), 23.0);
        assert_eq!(t.min_value(), 0.0);
        assert_eq!(t.argmax(), 23);
    }

    #[test]
    fn sum_axis_middle() {
        let t = t234();
        let s = t.sum_axis(1).unwrap();
        assert_eq!(s.shape(), &[2, 4]);
        // Sum over axis 1 of element (0, :, 0) = 0 + 4 + 8.
        assert_eq!(s.get(&[0, 0]), 12.0);
        assert_eq!(s.get(&[1, 3]), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn mean_axis_matches_sum() {
        let t = t234();
        let m = t.mean_axis(2).unwrap();
        let s = t.sum_axis(2).unwrap();
        assert!(m.approx_eq(&s.mul_scalar(0.25), 1e-6));
    }

    #[test]
    fn max_axis_leading() {
        let t = t234();
        let m = t.max_axis(0).unwrap();
        assert_eq!(m.shape(), &[3, 4]);
        assert_eq!(m.get(&[0, 0]), 12.0);
    }

    #[test]
    fn axis_out_of_range() {
        assert!(t234().sum_axis(3).is_err());
    }
}

impl Tensor {
    /// Minimum over one axis, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn min_axis(&self, axis: usize) -> Result<Self> {
        self.reduce_axis(
            axis,
            |acc, v| acc.min(v as f64),
            f64::INFINITY,
            |acc, _| acc as f32,
        )
    }

    /// Dot product with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Self) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum::<f64>() as f32
    }

    /// Frobenius (L2) norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data()
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Cumulative sum along `axis` (inclusive), preserving the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn cumsum_axis(&self, axis: usize) -> Result<Self> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out = self.clone();
        let data = out.data_mut();
        for o in 0..outer {
            for i in 0..inner {
                let mut acc = 0f32;
                for m in 0..mid {
                    acc += data[(o * mid + m) * inner + i];
                    data[(o * mid + m) * inner + i] = acc;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod extra_reduce_tests {
    use super::*;

    #[test]
    fn min_axis_matches_negated_max() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 2.0, 5.0, 0.0, -4.0], &[2, 3]).unwrap();
        let mn = t.min_axis(1).unwrap();
        let neg_max = t.map(|v| -v).max_axis(1).unwrap().map(|v| -v);
        assert!(mn.approx_eq(&neg_max, 0.0));
        assert_eq!(mn.data(), &[-1.0, -4.0]);
    }

    #[test]
    fn dot_and_norm_consistent() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(t.dot(&t), 25.0);
        assert_eq!(t.norm(), 5.0);
    }

    #[test]
    fn cumsum_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let c = t.cumsum_axis(1).unwrap();
        assert_eq!(c.data(), &[1.0, 3.0, 6.0, 4.0, 9.0, 15.0]);
        let c0 = t.cumsum_axis(0).unwrap();
        assert_eq!(c0.data(), &[1.0, 2.0, 3.0, 5.0, 7.0, 9.0]);
        assert!(t.cumsum_axis(2).is_err());
    }

    #[test]
    fn cumsum_last_entry_equals_axis_sum() {
        let t = Tensor::from_fn(&[3, 4], |i| (i as f32) * 0.5 - 2.0);
        let c = t.cumsum_axis(1).unwrap();
        let s = t.sum_axis(1).unwrap();
        for row in 0..3 {
            assert!((c.get(&[row, 3]) - s.get(&[row])).abs() < 1e-5);
        }
    }
}
