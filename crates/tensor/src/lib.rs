//! N-dimensional `f32` tensors with reverse-mode automatic differentiation.
//!
//! This crate is the numeric substrate of the SDM-PEB reproduction. It
//! provides two layers:
//!
//! * [`Tensor`] — a plain, contiguous, row-major N-D array of `f32` with
//!   elementwise arithmetic, broadcasting, matrix multiplication,
//!   reductions and shape manipulation. Used directly by the physics
//!   simulator, which needs no gradients.
//! * [`Var`] — a node in a dynamically built computation graph wrapping a
//!   [`Tensor`]. Calling [`Var::backward`] runs reverse-mode automatic
//!   differentiation over the graph. All neural-network layers are built
//!   from `Var` operations; custom fused operations (convolutions, the
//!   Mamba selective scan) plug in through [`Var::from_op`].
//!
//! # Example
//!
//! ```
//! use peb_tensor::{Tensor, Var};
//!
//! # fn main() -> Result<(), peb_tensor::TensorError> {
//! let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3])?);
//! let y = x.mul(&x).sum(); // y = sum(x^2)
//! y.backward();
//! let g = x.grad().expect("leaf gradient");
//! assert_eq!(g.data(), &[2.0, 4.0, 6.0]); // dy/dx = 2x
//! # Ok(())
//! # }
//! ```

mod autograd;
mod broadcast;
mod construct;
mod elementwise;
mod error;
pub mod fused;
mod grad_check;
pub mod kernels;
mod matmul;
mod reduce;
mod shape;
mod shape_ops;
mod tensor;

pub use autograd::{Var, VarId};
pub use error::TensorError;
pub use fused::{fusion_enabled, set_fusion_enabled, FusedChain};
pub use grad_check::{check_gradients, numeric_gradient, GradCheckReport};
pub use shape::{broadcast_shapes, strides_for, Shape};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
