//! Lazy fused elementwise chains over [`Tensor`].
//!
//! [`Tensor::fused`] starts a bounded chain builder; each combinator
//! records one elementwise stage, and [`FusedChain::eval`] executes the
//! whole chain as a **single** streaming sweep through
//! [`peb_simd::fused::vchain`] — one pool checkout for the output
//! instead of one per stage, and one pass over memory instead of k.
//!
//! The fused result is bitwise identical to evaluating the same stages
//! as separate tensor ops at the same `PEB_SIMD` dispatch level (see the
//! determinism contract in `peb_simd::fused`). `PEB_FUSE=off` (or
//! [`set_fusion_enabled`]`(false)`) makes `eval()` fall back to exactly
//! those separate unfused sweeps — the A/B lever used by `bench_e2e` and
//! the determinism suite.
//!
//! # Example
//!
//! ```
//! use peb_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap();
//! let b = Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap();
//! // sigmoid((a + b) * 0.5) in one sweep.
//! let y = a.fused().add(&b).mul_scalar(0.5).sigmoid().eval();
//! assert_eq!(y.shape(), &[2]);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

use peb_simd::fused::Stage;

use crate::Tensor;

const FUSE_UNINIT: u8 = u8::MAX;
static FUSE: AtomicU8 = AtomicU8::new(FUSE_UNINIT);

#[cold]
fn init_fuse() -> bool {
    let on = !matches!(
        std::env::var("PEB_FUSE").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    );
    FUSE.store(on as u8, Ordering::Relaxed);
    on
}

/// Whether fused chains execute as single sweeps, latched from
/// `PEB_FUSE` on first call (default: on).
#[inline]
pub fn fusion_enabled() -> bool {
    match FUSE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => init_fuse(),
    }
}

/// Overrides the latched fusion switch, bypassing `PEB_FUSE`. Used by
/// benchmark binaries and the determinism suite for A/B runs; callers
/// that toggle this in tests must serialise themselves (the switch is
/// process-global).
pub fn set_fusion_enabled(on: bool) {
    FUSE.store(on as u8, Ordering::Relaxed);
}

/// A bounded chain of elementwise stages pending evaluation.
///
/// Built by [`Tensor::fused`]; consumed by [`FusedChain::eval`]. Binary
/// combinators require the operand to have the source's shape (fusion is
/// same-shape only — broadcasting calls keep using the eager ops).
#[must_use = "a fused chain does nothing until eval()"]
pub struct FusedChain<'a> {
    src: &'a Tensor,
    stages: Vec<Stage<'a>>,
}

impl Tensor {
    /// Starts a lazily fused elementwise chain rooted at this tensor.
    pub fn fused(&self) -> FusedChain<'_> {
        FusedChain {
            src: self,
            stages: Vec::new(),
        }
    }
}

// Builder-style stage names intentionally mirror the elementwise tensor
// ops they fuse; the chain is not a numeric type, so the std::ops traits
// (which consume two operands and return a value) do not fit.
#[allow(clippy::should_implement_trait)]
impl<'a> FusedChain<'a> {
    fn operand(&mut self, b: &'a Tensor, make: fn(&'a [f32]) -> Stage<'a>) {
        assert_eq!(
            b.shape(),
            self.src.shape(),
            "fused chain operands must be same-shape"
        );
        self.stages.push(make(b.data()));
    }

    /// `acc + b`
    pub fn add(mut self, b: &'a Tensor) -> Self {
        self.operand(b, Stage::AddT);
        self
    }

    /// `acc − b`
    pub fn sub(mut self, b: &'a Tensor) -> Self {
        self.operand(b, Stage::SubT);
        self
    }

    /// `b − acc`
    pub fn rsub(mut self, b: &'a Tensor) -> Self {
        self.operand(b, Stage::RsubT);
        self
    }

    /// `acc × b`
    pub fn mul(mut self, b: &'a Tensor) -> Self {
        self.operand(b, Stage::MulT);
        self
    }

    /// `acc ÷ b`
    pub fn div(mut self, b: &'a Tensor) -> Self {
        self.operand(b, Stage::DivT);
        self
    }

    /// `acc + s`
    pub fn add_scalar(mut self, s: f32) -> Self {
        self.stages.push(Stage::AddScalar(s));
        self
    }

    /// `acc × s`
    pub fn mul_scalar(mut self, s: f32) -> Self {
        self.stages.push(Stage::MulScalar(s));
        self
    }

    /// `s − acc`
    pub fn sub_from_scalar(mut self, s: f32) -> Self {
        self.stages.push(Stage::SubFromScalar(s));
        self
    }

    /// `√acc`
    pub fn sqrt(mut self) -> Self {
        self.stages.push(Stage::Sqrt);
        self
    }

    /// `exp(acc)` (backend exponential — tolerance-class on SIMD).
    pub fn exp(mut self) -> Self {
        self.stages.push(Stage::Exp);
        self
    }

    /// Numerically stable logistic sigmoid.
    pub fn sigmoid(mut self) -> Self {
        self.stages.push(Stage::Sigmoid);
        self
    }

    /// `−acc`
    pub fn neg(mut self) -> Self {
        self.stages.push(Stage::Neg);
        self
    }

    /// Number of recorded stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages yet.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Executes the chain.
    ///
    /// With fusion enabled this is one streaming sweep and one pool
    /// checkout, ticking `fused_ops` once per collapsed stage; with
    /// fusion disabled each stage runs as its own unfused kernel sweep
    /// with its own pooled intermediate (identical arithmetic, k× the
    /// traffic), ticking nothing.
    pub fn eval(self) -> Tensor {
        if self.stages.is_empty() {
            return self.src.clone();
        }
        peb_obs::optrace::note("fused", || {
            let names: Vec<&str> = self.stages.iter().map(|s| s.name()).collect();
            format!(
                "chain=[{}] len={} fused={}",
                names.join(","),
                self.src.len(),
                fusion_enabled()
            )
        });
        if fusion_enabled() {
            let n = self.src.len();
            let mut data = crate::tensor::alloc_cleared(n);
            data.resize(n, 0.0);
            peb_simd::fused::vchain(self.src.data(), &self.stages, &mut data);
            peb_obs::count(peb_obs::Counter::FusedOps, self.stages.len() as u64);
            Tensor::from_pooled(data, self.src.shape())
        } else {
            eval_unfused(self.src, &self.stages)
        }
    }
}

/// The reference path: each stage as a separate dispatched kernel sweep
/// through its own pooled intermediate — exactly what the eager tensor
/// ops would have done.
fn eval_unfused(src: &Tensor, stages: &[Stage<'_>]) -> Tensor {
    use peb_simd::elementwise as ew;
    let n = src.len();
    let mut cur: Option<Vec<f32>> = None;
    for st in stages {
        let mut out = crate::tensor::alloc_cleared(n);
        out.resize(n, 0.0);
        let inp: &[f32] = cur.as_deref().unwrap_or_else(|| src.data());
        match *st {
            Stage::AddT(b) => ew::vadd(inp, b, &mut out),
            Stage::SubT(b) => ew::vsub(inp, b, &mut out),
            Stage::RsubT(b) => ew::vsub(b, inp, &mut out),
            Stage::MulT(b) => ew::vmul(inp, b, &mut out),
            Stage::DivT(b) => ew::vdiv(inp, b, &mut out),
            Stage::AddScalar(s) => ew::vadd_scalar(inp, s, &mut out),
            Stage::MulScalar(s) => ew::vmul_scalar(inp, s, &mut out),
            Stage::SubFromScalar(s) => {
                for (o, &v) in out.iter_mut().zip(inp) {
                    *o = s - v;
                }
            }
            Stage::Sqrt => ew::vsqrt(inp, &mut out),
            Stage::Exp => ew::vexp(inp, &mut out),
            Stage::Sigmoid => ew::vsigmoid(inp, &mut out),
            Stage::Neg => {
                for (o, &v) in out.iter_mut().zip(inp) {
                    *o = -v;
                }
            }
        }
        if let Some(prev) = cur.take() {
            peb_pool::recycle(prev);
        }
        cur = Some(out);
    }
    Tensor::from_pooled(cur.expect("non-empty chain"), src.shape())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(len: usize, salt: u32) -> Tensor {
        Tensor::from_fn(&[len], |i| {
            let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            (x as f32 / u32::MAX as f32) * 4.0 - 2.0
        })
    }

    #[test]
    fn fused_matches_eager_ops_bitwise() {
        let a = t(101, 1);
        let b = t(101, 2);
        let eager = (&(&a + &b) * &b).mul_scalar(0.5).sigmoid();
        let fused = a.fused().add(&b).mul(&b).mul_scalar(0.5).sigmoid().eval();
        for (x, y) in eager.data().iter().zip(fused.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fused_matches_unfused_fallback_bitwise() {
        let a = t(77, 3);
        let b = t(77, 4);
        let prev = fusion_enabled();
        set_fusion_enabled(true);
        let fused = a.fused().sub(&b).exp().add_scalar(1.0).eval();
        set_fusion_enabled(false);
        let unfused = a.fused().sub(&b).exp().add_scalar(1.0).eval();
        set_fusion_enabled(prev);
        for (x, y) in fused.data().iter().zip(unfused.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn empty_chain_is_identity() {
        let a = t(9, 5);
        let out = a.fused().eval();
        assert_eq!(a.data(), out.data());
    }

    #[test]
    #[should_panic(expected = "same-shape")]
    fn rejects_shape_mismatch() {
        let a = t(8, 6);
        let b = t(9, 7);
        let _ = a.fused().add(&b);
    }
}
