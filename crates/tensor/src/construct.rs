//! Random and structured constructors.

use rand::Rng;

use crate::Tensor;

impl Tensor {
    /// Standard-normal random tensor (Box–Muller over the supplied RNG).
    ///
    /// All stochastic code in the workspace threads an explicit RNG so runs
    /// are reproducible from a seed.
    pub fn randn(shape: &[usize], rng: &mut impl Rng) -> Self {
        Tensor::from_fn(shape, |_| {
            // Box–Muller transform; avoids depending on rand_distr.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
        })
    }

    /// Uniform random tensor on `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        Tensor::from_fn(shape, |_| rng.gen_range(lo..hi))
    }

    /// 1-D tensor of `n` evenly spaced values from `start` to `end` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least two points");
        let step = (end - start) / (n - 1) as f32;
        Tensor::from_fn(&[n], |i| start + step * i as f32)
    }

    /// 1-D tensor `[0, 1, …, n-1]`.
    pub fn arange(n: usize) -> Self {
        Tensor::from_fn(&[n], |i| i as f32)
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        Tensor::from_fn(&[n, n], |i| if i / n == i % n { 1.0 } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], &mut rng);
        let mean = t.data().iter().sum::<f32>() / t.len() as f32;
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.data(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[1, 2]), 0.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn seeded_reproducibility() {
        let a = Tensor::randn(&[32], &mut StdRng::seed_from_u64(42));
        let b = Tensor::randn(&[32], &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
