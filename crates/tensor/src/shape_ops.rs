//! Shape manipulation: reshape, permute, concat, slice, pad, upsampling.

use crate::shape::{numel, strides_for};
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        if numel(shape) != self.len() {
            return Err(TensorError::LengthMismatch {
                len: self.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Tensor::from_pooled(
            crate::tensor::alloc_copy(self.data()),
            shape,
        ))
    }

    /// Materialised axis permutation; `perm[i]` is the source axis placed
    /// at output axis `i`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] if `perm` is not a permutation of
    /// `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<Self> {
        let rank = self.rank();
        if perm.len() != rank {
            return Err(TensorError::Invalid {
                detail: format!("permute: perm {perm:?} for rank {rank}"),
            });
        }
        let mut seen = vec![false; rank];
        for &p in perm {
            if p >= rank || seen[p] {
                return Err(TensorError::Invalid {
                    detail: format!("permute: {perm:?} is not a permutation"),
                });
            }
            seen[p] = true;
        }
        let src_shape = self.shape();
        let src_strides = strides_for(src_shape);
        let out_shape: Vec<usize> = perm.iter().map(|&p| src_shape[p]).collect();
        let n = self.len();
        let src = self.data();
        let mut out = crate::tensor::alloc_cleared(n);
        let rank_out = out_shape.len();
        let mut coords = vec![0usize; rank_out];
        // Stride of each output axis in the *source* buffer.
        let axis_stride: Vec<usize> = perm.iter().map(|&p| src_strides[p]).collect();
        let mut src_idx = 0usize;
        for _ in 0..n {
            out.push(src[src_idx]);
            for axis in (0..rank_out).rev() {
                coords[axis] += 1;
                src_idx += axis_stride[axis];
                if coords[axis] < out_shape[axis] {
                    break;
                }
                coords[axis] = 0;
                src_idx -= axis_stride[axis] * out_shape[axis];
            }
        }
        Ok(Tensor::from_pooled(out, &out_shape))
    }

    /// Concatenates tensors along `axis`.
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty, the axis is out of range, or
    /// non-`axis` extents differ.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Self> {
        let first = parts.first().ok_or_else(|| TensorError::Invalid {
            detail: "concat of zero tensors".into(),
        })?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut total_axis = 0usize;
        for p in parts {
            if p.rank() != rank {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape().to_vec(),
                    rhs: p.shape().to_vec(),
                });
            }
            for a in 0..rank {
                if a != axis && p.shape()[a] != first.shape()[a] {
                    return Err(TensorError::ShapeMismatch {
                        op: "concat",
                        lhs: first.shape().to_vec(),
                        rhs: p.shape().to_vec(),
                    });
                }
            }
            total_axis += p.shape()[axis];
        }
        let mut out_shape = first.shape().to_vec();
        out_shape[axis] = total_axis;
        let outer: usize = first.shape()[..axis].iter().product();
        let inner: usize = first.shape()[axis + 1..].iter().product();
        let mut out = crate::tensor::alloc_cleared(numel(&out_shape));
        for o in 0..outer {
            for p in parts {
                let mid = p.shape()[axis];
                let chunk = mid * inner;
                out.extend_from_slice(&p.data()[o * chunk..(o + 1) * chunk]);
            }
        }
        Ok(Tensor::from_pooled(out, &out_shape))
    }

    /// Extracts `[start, end)` along `axis`.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid axis or range.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Result<Self> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let dim = self.shape()[axis];
        if start > end || end > dim {
            return Err(TensorError::IndexOutOfBounds {
                detail: format!("slice [{start}, {end}) on axis {axis} of extent {dim}"),
            });
        }
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let mut out_shape = self.shape().to_vec();
        out_shape[axis] = end - start;
        let mut out = crate::tensor::alloc_cleared(numel(&out_shape));
        let src = self.data();
        for o in 0..outer {
            let base = (o * dim + start) * inner;
            out.extend_from_slice(&src[base..base + (end - start) * inner]);
        }
        Ok(Tensor::from_pooled(out, &out_shape))
    }

    /// Zero-pads each axis by `(before, after)` amounts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] if `pads.len() != rank`.
    pub fn pad(&self, pads: &[(usize, usize)]) -> Result<Self> {
        if pads.len() != self.rank() {
            return Err(TensorError::Invalid {
                detail: format!("pad: {} specs for rank {}", pads.len(), self.rank()),
            });
        }
        let out_shape: Vec<usize> = self
            .shape()
            .iter()
            .zip(pads)
            .map(|(&d, &(b, a))| d + b + a)
            .collect();
        let mut out = Tensor::zeros(&out_shape);
        let src_shape = self.shape().to_vec();
        let out_strides = strides_for(&out_shape);
        let rank = src_shape.len();
        let src = self.data();
        let dst = out.data_mut();
        let mut coords = vec![0usize; rank];
        // Base offset of the padded region's origin in the output buffer.
        let base: usize = pads
            .iter()
            .zip(out_strides.iter())
            .map(|(&(b, _), &s)| b * s)
            .sum();
        let mut dst_idx = base;
        for &v in src {
            dst[dst_idx] = v;
            for axis in (0..rank).rev() {
                coords[axis] += 1;
                dst_idx += out_strides[axis];
                if coords[axis] < src_shape[axis] {
                    break;
                }
                coords[axis] = 0;
                dst_idx -= out_strides[axis] * src_shape[axis];
            }
        }
        Ok(out)
    }

    /// Crops `pads` back off each axis, the inverse of [`Tensor::pad`].
    ///
    /// # Errors
    ///
    /// Returns an error if any crop exceeds the axis extent.
    pub fn crop(&self, pads: &[(usize, usize)]) -> Result<Self> {
        if pads.len() != self.rank() {
            return Err(TensorError::Invalid {
                detail: format!("crop: {} specs for rank {}", pads.len(), self.rank()),
            });
        }
        let mut cur = self.clone();
        for (axis, &(b, a)) in pads.iter().enumerate() {
            let dim = cur.shape()[axis];
            if b + a > dim {
                return Err(TensorError::IndexOutOfBounds {
                    detail: format!("crop ({b},{a}) on axis {axis} extent {dim}"),
                });
            }
            cur = cur.slice_axis(axis, b, dim - a)?;
        }
        Ok(cur)
    }

    /// Nearest-neighbour upsampling of the two trailing axes by `factor`.
    ///
    /// Works on any rank ≥ 2 tensor; leading axes are treated as batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] for rank < 2 or `factor == 0`.
    pub fn upsample2_nearest(&self, factor: usize) -> Result<Self> {
        if self.rank() < 2 || factor == 0 {
            return Err(TensorError::Invalid {
                detail: format!("upsample2_nearest: rank {} factor {factor}", self.rank()),
            });
        }
        let rank = self.rank();
        let (h, w) = (self.shape()[rank - 2], self.shape()[rank - 1]);
        let batch: usize = self.shape()[..rank - 2].iter().product();
        let (oh, ow) = (h * factor, w * factor);
        let mut out_shape = self.shape().to_vec();
        out_shape[rank - 2] = oh;
        out_shape[rank - 1] = ow;
        let src = self.data();
        let mut out = crate::tensor::alloc_cleared(batch * oh * ow);
        for b in 0..batch {
            for oy in 0..oh {
                let iy = oy / factor;
                for ox in 0..ow {
                    let ix = ox / factor;
                    out.push(src[(b * h + iy) * w + ix]);
                }
            }
        }
        Ok(Tensor::from_pooled(out, &out_shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_checks_len() {
        let t = Tensor::arange(6);
        assert!(t.reshape(&[2, 3]).is_ok());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn permute_matrix_transpose() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let p = t.permute(&[1, 0]).unwrap();
        assert!(p.approx_eq(&t.transpose2(), 0.0));
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        let p = t.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape(), &[4, 2, 3]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    assert_eq!(p.get(&[c, a, b]), t.get(&[a, b, c]));
                }
            }
        }
    }

    #[test]
    fn permute_rejects_invalid() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
        assert!(t.permute(&[0, 2]).is_err());
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]).unwrap();
        let c = Tensor::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn slice_middle_axis() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        let s = t.slice_axis(1, 1, 3).unwrap();
        assert_eq!(s.shape(), &[2, 2, 4]);
        assert_eq!(s.get(&[0, 0, 0]), t.get(&[0, 1, 0]));
        assert_eq!(s.get(&[1, 1, 3]), t.get(&[1, 2, 3]));
    }

    #[test]
    fn slice_concat_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let a = t.slice_axis(1, 0, 2).unwrap();
        let b = t.slice_axis(1, 2, 4).unwrap();
        assert!(Tensor::concat(&[&a, &b], 1).unwrap().approx_eq(&t, 0.0));
    }

    #[test]
    fn pad_crop_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32 + 1.0).collect(), &[2, 3]).unwrap();
        let p = t.pad(&[(1, 2), (0, 1)]).unwrap();
        assert_eq!(p.shape(), &[5, 4]);
        assert_eq!(p.get(&[0, 0]), 0.0);
        assert_eq!(p.get(&[1, 0]), 1.0);
        assert_eq!(p.sum(), t.sum());
        assert!(p.crop(&[(1, 2), (0, 1)]).unwrap().approx_eq(&t, 0.0));
    }

    #[test]
    fn upsample_nearest() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let u = t.upsample2_nearest(2).unwrap();
        assert_eq!(u.shape(), &[1, 4, 4]);
        assert_eq!(u.get(&[0, 0, 1]), 1.0);
        assert_eq!(u.get(&[0, 3, 3]), 4.0);
        assert_eq!(u.sum(), t.sum() * 4.0);
    }
}

impl Tensor {
    /// Reverses the order of elements along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn flip_axis(&self, axis: usize) -> Result<Self> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let src = self.data();
        let mut out = crate::tensor::alloc_cleared(self.len());
        out.resize(self.len(), 0.0);
        for o in 0..outer {
            for m in 0..mid {
                let dst_m = mid - 1 - m;
                out[(o * mid + dst_m) * inner..(o * mid + dst_m + 1) * inner]
                    .copy_from_slice(&src[(o * mid + m) * inner..(o * mid + m + 1) * inner]);
            }
        }
        Ok(Tensor::from_pooled(out, shape))
    }
}

#[cfg(test)]
mod flip_tests {
    use super::*;

    #[test]
    fn flip_1d() {
        let t = Tensor::arange(4);
        assert_eq!(t.flip_axis(0).unwrap().data(), &[3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn flip_middle_axis_involution() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        let f = t.flip_axis(1).unwrap();
        assert_eq!(f.get(&[0, 0, 2]), t.get(&[0, 2, 2]));
        assert!(f.flip_axis(1).unwrap().approx_eq(&t, 0.0));
        assert!(t.flip_axis(3).is_err());
    }
}
