//! Finite-difference gradient checking used throughout the test suites.

use crate::{Tensor, Var};

/// Outcome of a gradient check: analytic vs numeric gradients plus the
/// worst relative error observed.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Analytic gradient from [`Var::backward`].
    pub analytic: Tensor,
    /// Central finite-difference gradient.
    pub numeric: Tensor,
    /// max |a − n| / max(1, |a|, |n|) over all elements.
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// Whether the worst relative error is below `tol`.
    pub fn ok(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Central finite-difference gradient of `f` (a scalar-valued function of
/// one leaf) at `x0`.
///
/// `f` is rebuilt per perturbation, so it must be pure.
pub fn numeric_gradient(x0: &Tensor, f: impl Fn(&Var) -> Var, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(x0.shape());
    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let fp = f(&Var::parameter(plus)).value().item();
        let fm = f(&Var::parameter(minus)).value().item();
        grad.data_mut()[i] = (fp - fm) / (2.0 * eps);
    }
    grad
}

/// Compares the analytic gradient of the scalar function `f` at the leaf
/// `x` against central finite differences with step `eps`.
///
/// # Panics
///
/// Panics if `f` does not return a scalar.
pub fn check_gradients(x: &Var, f: impl Fn(&Var) -> Var, eps: f32) -> GradCheckReport {
    let leaf = Var::parameter(x.value_clone());
    let y = f(&leaf);
    y.backward();
    let analytic = leaf.grad().unwrap_or_else(|| Tensor::zeros(&leaf.shape()));
    let numeric = numeric_gradient(&x.value(), &f, eps);
    let mut max_rel = 0f32;
    for (&a, &n) in analytic.data().iter().zip(numeric.data()) {
        let denom = 1f32.max(a.abs()).max(n.abs());
        max_rel = max_rel.max((a - n).abs() / denom);
    }
    GradCheckReport {
        analytic,
        numeric,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_passes() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap());
        let report = check_gradients(&x, |v| v.square().sum(), 1e-3);
        assert!(report.ok(1e-3), "{report:?}");
    }

    #[test]
    fn deliberately_wrong_gradient_fails() {
        // abs has gradient sign(x); a check centred on a kink-free region
        // passes, but a function whose custom backward lies must fail.
        let x = Var::parameter(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let report = check_gradients(
            &x,
            |v| {
                let val = v.value().map(|t| t * t);
                // Wrong backward on purpose: claims gradient 1.
                Var::from_op(Tensor::scalar(val.sum()), vec![v.clone()], |g| {
                    vec![Some(Tensor::full(&[1], g.item()))]
                })
            },
            1e-3,
        );
        assert!(!report.ok(1e-2));
    }
}
