use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and shape-sensitive operations.
///
/// Elementwise math on well-shaped tensors is infallible; errors arise from
/// mismatched shapes, invalid axes or inconsistent buffer lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data buffer length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements supplied.
        len: usize,
        /// Shape requested.
        shape: Vec<usize>,
    },
    /// Two operand shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// An axis index is out of range for the tensor rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A slice or index range is out of bounds.
    IndexOutOfBounds {
        /// Description of the offending access.
        detail: String,
    },
    /// Operation-specific invariant violated (e.g. non-square FFT length).
    Invalid {
        /// Description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, shape } => {
                write!(f, "buffer of {len} elements cannot form shape {shape:?}")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { detail } => {
                write!(f, "index out of bounds: {detail}")
            }
            TensorError::Invalid { detail } => write!(f, "invalid operation: {detail}"),
        }
    }
}

impl Error for TensorError {}
