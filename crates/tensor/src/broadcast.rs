//! Broadcasting elementwise binary operations and gradient reduction.

use crate::shape::{broadcast_shapes, numel, strides_for};
use crate::{Result, Tensor};

impl Tensor {
    /// Applies a binary operation with NumPy-style broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] when the shapes do not
    /// broadcast together.
    pub fn broadcast_zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape() == other.shape() {
            return self.zip_map(other, f);
        }
        let out_shape = broadcast_shapes(self.shape(), other.shape())?;
        let out_strides = strides_for(&out_shape);
        let l_strides = effective_strides(self.shape(), &out_shape);
        let r_strides = effective_strides(other.shape(), &out_shape);
        let n = numel(&out_shape);
        let ld = self.data();
        let rd = other.data();
        let mut data = crate::tensor::alloc_cleared(n);
        // Walk output coordinates incrementally to avoid a div/mod per axis
        // per element on the hot path.
        let rank = out_shape.len();
        let mut coords = vec![0usize; rank];
        let mut li = 0usize;
        let mut ri = 0usize;
        for _ in 0..n {
            data.push(f(ld[li], rd[ri]));
            for axis in (0..rank).rev() {
                coords[axis] += 1;
                li += l_strides[axis];
                ri += r_strides[axis];
                if coords[axis] < out_shape[axis] {
                    break;
                }
                coords[axis] = 0;
                li -= l_strides[axis] * out_shape[axis];
                ri -= r_strides[axis] * out_shape[axis];
            }
        }
        let _ = out_strides;
        Ok(Tensor::from_pooled(data, &out_shape))
    }

    /// Sums `self` down to `target_shape`, the adjoint of broadcasting.
    ///
    /// Axes that were expanded by broadcasting (extent 1 in the target, or
    /// missing leading axes) are summed out. Used by autograd to reduce an
    /// output gradient back to each operand's shape.
    ///
    /// # Panics
    ///
    /// Panics if `target_shape` does not broadcast to `self.shape()`.
    pub fn reduce_to_shape(&self, target_shape: &[usize]) -> Self {
        if self.shape() == target_shape {
            return self.clone();
        }
        let src_shape = self.shape().to_vec();
        let rank = src_shape.len();
        assert!(
            target_shape.len() <= rank,
            "reduce_to_shape: target rank {} exceeds source rank {}",
            target_shape.len(),
            rank
        );
        // Left-pad the target with 1s to the source rank.
        let mut padded = vec![1usize; rank - target_shape.len()];
        padded.extend_from_slice(target_shape);
        for (i, (&s, &t)) in src_shape.iter().zip(padded.iter()).enumerate() {
            assert!(
                t == s || t == 1,
                "reduce_to_shape: axis {i} cannot reduce {s} -> {t}"
            );
        }
        let out_n = numel(&padded);
        let mut out = crate::tensor::alloc_cleared(out_n);
        out.resize(out_n, 0.0);
        let src_strides = strides_for(&src_shape);
        let dst_strides = strides_for(&padded);
        for (flat, &v) in self.data().iter().enumerate() {
            let mut dst = 0usize;
            for axis in 0..rank {
                let c = (flat / src_strides[axis]) % src_shape[axis];
                let cc = if padded[axis] == 1 { 0 } else { c };
                dst += cc * dst_strides[axis];
            }
            out[dst] += v;
        }
        Tensor::from_pooled(out, target_shape)
    }
}

/// Strides to read a (possibly lower-rank) operand as if broadcast to
/// `out_shape`: broadcast axes get stride 0.
fn effective_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let strides = strides_for(shape);
    let offset = out_shape.len() - shape.len();
    let mut out = vec![0usize; out_shape.len()];
    for i in 0..shape.len() {
        out[offset + i] = if shape[i] == 1 { 0 } else { strides[i] };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_row_and_column() {
        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]).unwrap();
        let sum = col.broadcast_zip(&row, |a, b| a + b).unwrap();
        assert_eq!(sum.shape(), &[2, 3]);
        assert_eq!(sum.data(), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
    }

    #[test]
    fn broadcast_scalar() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let s = Tensor::scalar(10.0);
        let out = a.broadcast_zip(&s, |x, y| x * y).unwrap();
        assert_eq!(out.data(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn broadcast_missing_leading_axis() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let out = a.broadcast_zip(&b, |x, y| x + y).unwrap();
        assert_eq!(out.data(), &[1.0, 3.0, 5.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_axes() {
        let g = Tensor::ones(&[2, 3]);
        assert_eq!(g.reduce_to_shape(&[1, 3]).data(), &[2.0, 2.0, 2.0]);
        assert_eq!(g.reduce_to_shape(&[2, 1]).data(), &[3.0, 3.0]);
        assert_eq!(g.reduce_to_shape(&[3]).data(), &[2.0, 2.0, 2.0]);
        assert_eq!(g.reduce_to_shape(&[]).item(), 6.0);
    }

    #[test]
    fn reduce_is_adjoint_of_broadcast() {
        // <broadcast(x), g> == <x, reduce(g)> for linear broadcast.
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap();
        let g = Tensor::from_vec((0..6).map(|i| i as f32 * 0.3).collect(), &[2, 3]).unwrap();
        let bx = Tensor::zeros(&[2, 3]).broadcast_zip(&x, |_, b| b).unwrap();
        let lhs: f32 = bx.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let rg = g.reduce_to_shape(&[3]);
        let rhs: f32 = x.data().iter().zip(rg.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }
}
