//! Dense matrix multiplication (2-D and batched 3-D).

use crate::kernels;
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Runs the packed `peb-simd` register-tile microkernel with row
    /// panels spread over the `peb-par` pool; bitwise identical at any
    /// `PEB_THREADS` for a fixed SIMD dispatch level.
    ///
    /// # Errors
    ///
    /// Returns a shape error unless `self` is `[m, k]` and `other` is
    /// `[k, n]`.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        let (ls, rs) = (self.shape(), other.shape());
        if ls.len() != 2 || rs.len() != 2 || ls[1] != rs[0] {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: ls.to_vec(),
                rhs: rs.to_vec(),
            });
        }
        let (m, k, n) = (ls[0], ls[1], rs[1]);
        let _span = peb_obs::span("gemm.matmul");
        peb_obs::count(peb_obs::Counter::GemmFlops, 2 * (m * k * n) as u64);
        peb_obs::optrace::note("gemm", || format!("m={m} k={k} n={n}"));
        // Pooled output panel: `zeros` checks out (pre-zeroed) from the
        // thread-local pool, which the accumulating kernel requires.
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.data(), other.data(), out.data_mut(), m, k, n);
        Ok(out)
    }

    /// Batched matrix product: `[b, m, k] × [b, k, n] → [b, m, n]`.
    ///
    /// # Errors
    ///
    /// Returns a shape error unless both operands are rank-3 with matching
    /// batch and inner dimensions.
    pub fn bmm(&self, other: &Self) -> Result<Self> {
        let (ls, rs) = (self.shape(), other.shape());
        if ls.len() != 3 || rs.len() != 3 || ls[0] != rs[0] || ls[2] != rs[1] {
            return Err(TensorError::ShapeMismatch {
                op: "bmm",
                lhs: ls.to_vec(),
                rhs: rs.to_vec(),
            });
        }
        let (b, m, k, n) = (ls[0], ls[1], ls[2], rs[2]);
        let _span = peb_obs::span("gemm.bmm");
        peb_obs::count(peb_obs::Counter::GemmFlops, 2 * (b * m * k * n) as u64);
        peb_obs::optrace::note("gemm.bmm", || format!("b={b} m={m} k={k} n={n}"));
        let mut out = Tensor::zeros(&[b, m, n]);
        // Batches are independent; when there is only one, run_parallel
        // falls through without entering a parallel region, so the inner
        // GEMM still parallelises over its row panels.
        peb_par::parallel_chunks_mut_cost(out.data_mut(), m * n, 2 * k as u64, |offset, chunk| {
            let bi = offset / (m * n);
            matmul_into(
                &self.data()[bi * m * k..(bi + 1) * m * k],
                &other.data()[bi * k * n..(bi + 1) * k * n],
                chunk,
                m,
                k,
                n,
            );
        });
        Ok(out)
    }

    /// Transpose of a rank-2 tensor, copied through 32×32 tiles so both
    /// the gather and the scatter stay within one cache-line-friendly
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 (use [`Tensor::permute`] for
    /// general axis permutations).
    pub fn transpose2(&self) -> Self {
        const TB: usize = 32;
        assert_eq!(self.rank(), 2, "transpose2 requires a matrix");
        let _span = peb_obs::span("gemm.transpose2");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let src = self.data();
        let mut out = Tensor::zeros(&[n, m]);
        let od = out.data_mut();
        for ib in (0..m).step_by(TB) {
            let ie = (ib + TB).min(m);
            for jb in (0..n).step_by(TB) {
                let je = (jb + TB).min(n);
                for i in ib..ie {
                    for j in jb..je {
                        od[j * m + i] = src[i * n + j];
                    }
                }
            }
        }
        out
    }
}

/// `out += a[m×k] · b[k×n]` with `out` pre-zeroed by the caller.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    kernels::matmul_par(a, b, out, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[3, 3]).unwrap();
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert!(c.approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&Tensor::zeros(&[2, 2])).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[2, 3, 2]).unwrap();
        let c = a.bmm(&b).unwrap();
        for bi in 0..2 {
            let asub = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[2, 3]).unwrap();
            let bsub = Tensor::from_vec(b.data()[bi * 6..(bi + 1) * 6].to_vec(), &[3, 2]).unwrap();
            let csub = asub.matmul(&bsub).unwrap();
            assert_eq!(&c.data()[bi * 4..(bi + 1) * 4], csub.data());
        }
    }

    #[test]
    fn transpose2_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]), a.get(&[1, 2]));
        assert!(t.transpose2().approx_eq(&a, 0.0));
    }
}
