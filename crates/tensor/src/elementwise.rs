//! Raw (non-autograd) elementwise arithmetic.
//!
//! Broadcasting variants return [`crate::Result`]; the `std::ops`
//! implementations panic on incompatible shapes for ergonomic use in the
//! physics code where shapes are statically known.
//!
//! Same-shape binary ops and the dense unary ops route through the
//! runtime-dispatched `peb-simd` kernels; only genuinely broadcasting
//! calls take the strided scalar walk. The SIMD `+ − × ÷ √` and scalar
//! ops are bitwise identical to the plain expressions; `exp`/`sigmoid`
//! use the polynomial vector exponential (bounded-ULP, deterministic per
//! dispatch level).

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::{Result, Tensor};

/// Runs a same-shape binary `peb-simd` kernel into a pooled output.
fn zip_kernel(a: &Tensor, b: &Tensor, kernel: fn(&[f32], &[f32], &mut [f32])) -> Tensor {
    let n = a.data().len();
    let mut data = crate::tensor::alloc_cleared(n);
    data.resize(n, 0.0);
    kernel(a.data(), b.data(), &mut data);
    Tensor::from_pooled(data, a.shape())
}

/// Runs a unary `peb-simd` kernel into a pooled output.
fn map_kernel(a: &Tensor, kernel: impl FnOnce(&[f32], &mut [f32])) -> Tensor {
    let n = a.data().len();
    let mut data = crate::tensor::alloc_cleared(n);
    data.resize(n, 0.0);
    kernel(a.data(), &mut data);
    Tensor::from_pooled(data, a.shape())
}

impl Tensor {
    /// Broadcasting addition.
    ///
    /// # Errors
    ///
    /// Returns a shape error when operands do not broadcast.
    pub fn add_t(&self, other: &Self) -> Result<Self> {
        if self.shape() == other.shape() {
            return Ok(zip_kernel(self, other, peb_simd::elementwise::vadd));
        }
        self.broadcast_zip(other, |a, b| a + b)
    }

    /// Broadcasting subtraction.
    ///
    /// # Errors
    ///
    /// Returns a shape error when operands do not broadcast.
    pub fn sub_t(&self, other: &Self) -> Result<Self> {
        if self.shape() == other.shape() {
            return Ok(zip_kernel(self, other, peb_simd::elementwise::vsub));
        }
        self.broadcast_zip(other, |a, b| a - b)
    }

    /// Broadcasting multiplication.
    ///
    /// # Errors
    ///
    /// Returns a shape error when operands do not broadcast.
    pub fn mul_t(&self, other: &Self) -> Result<Self> {
        if self.shape() == other.shape() {
            return Ok(zip_kernel(self, other, peb_simd::elementwise::vmul));
        }
        self.broadcast_zip(other, |a, b| a * b)
    }

    /// Broadcasting division.
    ///
    /// # Errors
    ///
    /// Returns a shape error when operands do not broadcast.
    pub fn div_t(&self, other: &Self) -> Result<Self> {
        if self.shape() == other.shape() {
            return Ok(zip_kernel(self, other, peb_simd::elementwise::vdiv));
        }
        self.broadcast_zip(other, |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        map_kernel(self, |x, out| peb_simd::elementwise::vadd_scalar(x, s, out))
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Self {
        map_kernel(self, |x, out| peb_simd::elementwise::vmul_scalar(x, s, out))
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Self {
        map_kernel(self, peb_simd::elementwise::vexp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Elementwise absolute value.
    pub fn abs_t(&self) -> Self {
        self.map(f32::abs)
    }

    /// Elementwise square root.
    pub fn sqrt_t(&self) -> Self {
        map_kernel(self, peb_simd::elementwise::vsqrt)
    }

    /// Elementwise power with a scalar exponent.
    pub fn powf_t(&self, p: f32) -> Self {
        self.map(|x| x.powf(p))
    }

    /// Elementwise clamp to `[lo, hi]`.
    pub fn clamp_t(&self, lo: f32, hi: f32) -> Self {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Logistic sigmoid, numerically stable on both tails.
    pub fn sigmoid(&self) -> Self {
        map_kernel(self, peb_simd::elementwise::vsigmoid)
    }
}

/// Numerically stable logistic sigmoid.
pub(crate) fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $raw:ident, $opname:literal) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.$raw(rhs)
                    .unwrap_or_else(|e| panic!(concat!($opname, ": {}"), e))
            }
        }
        impl $trait<Tensor> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, add_t, "tensor add");
impl_binop!(Sub, sub, sub_t, "tensor sub");
impl_binop!(Mul, mul, mul_t, "tensor mul");
impl_binop!(Div, div, div_t, "tensor div");

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl Neg for Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_overloads() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!((&a + &b).data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).data(), &[2.0, 3.0]);
        assert_eq!((&a * &b).data(), &[3.0, 10.0]);
        assert_eq!((&b / &a).data(), &[3.0, 2.5]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_vec(vec![1.0, 4.0], &[2]).unwrap();
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 5.0]);
        assert_eq!(a.mul_scalar(0.5).data(), &[0.5, 2.0]);
        assert_eq!(a.sqrt_t().data(), &[1.0, 2.0]);
        assert_eq!(a.powf_t(2.0).data(), &[1.0, 16.0]);
        assert_eq!(a.clamp_t(0.0, 2.0).data(), &[1.0, 2.0]);
    }

    #[test]
    fn sigmoid_stability() {
        let t = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let s = t.sigmoid();
        assert!(s.data()[0] >= 0.0 && s.data()[0] < 1e-30);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!((s.data()[2] - 1.0).abs() < 1e-6);
        assert!(s.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn exp_ln_roundtrip() {
        let t = Tensor::from_vec(vec![0.5, 1.0, 2.0], &[3]).unwrap();
        assert!(t.ln().exp().approx_eq(&t, 1e-5));
    }
}
