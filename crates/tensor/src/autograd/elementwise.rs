//! Differentiable elementwise operations on [`Var`].

use crate::elementwise::stable_sigmoid;
use crate::Var;

impl Var {
    /// Broadcasting addition.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not broadcast.
    pub fn add(&self, other: &Var) -> Var {
        let out = self.value().add_t(&other.value()).expect("Var::add shapes");
        let (la, lb) = (self.shape(), other.shape());
        Var::from_op(out, vec![self.clone(), other.clone()], move |g| {
            vec![Some(g.reduce_to_shape(&la)), Some(g.reduce_to_shape(&lb))]
        })
    }

    /// Broadcasting subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not broadcast.
    pub fn sub(&self, other: &Var) -> Var {
        let out = self.value().sub_t(&other.value()).expect("Var::sub shapes");
        let (la, lb) = (self.shape(), other.shape());
        Var::from_op(out, vec![self.clone(), other.clone()], move |g| {
            vec![
                Some(g.reduce_to_shape(&la)),
                Some(g.map(|x| -x).reduce_to_shape(&lb)),
            ]
        })
    }

    /// Broadcasting elementwise product.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not broadcast.
    pub fn mul(&self, other: &Var) -> Var {
        let out = self.value().mul_t(&other.value()).expect("Var::mul shapes");
        let (la, lb) = (self.shape(), other.shape());
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(out, vec![self.clone(), other.clone()], move |g| {
            let ga = g
                .mul_t(&b.value())
                .expect("mul backward")
                .reduce_to_shape(&la);
            let gb = g
                .mul_t(&a.value())
                .expect("mul backward")
                .reduce_to_shape(&lb);
            vec![Some(ga), Some(gb)]
        })
    }

    /// Broadcasting elementwise division.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not broadcast.
    pub fn div(&self, other: &Var) -> Var {
        let out = self.value().div_t(&other.value()).expect("Var::div shapes");
        let (la, lb) = (self.shape(), other.shape());
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(out, vec![self.clone(), other.clone()], move |g| {
            let bv = b.value();
            let ga = g.div_t(&bv).expect("div backward").reduce_to_shape(&la);
            // d/db (a/b) = -a / b².
            let gb = g
                .mul_t(&a.value())
                .expect("div backward")
                .div_t(&bv.zip_map(&bv, |x, y| x * y).expect("square"))
                .expect("div backward")
                .map(|x| -x)
                .reduce_to_shape(&lb);
            vec![Some(ga), Some(gb)]
        })
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.mul_scalar(-1.0)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        let out = self.value().add_scalar(s);
        Var::from_op(out, vec![self.clone()], |g| vec![Some(g.clone())])
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Var {
        let out = self.value().mul_scalar(s);
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(g.mul_scalar(s))]
        })
    }

    /// Elementwise map with a user-supplied derivative.
    ///
    /// `f` is the function, `df` its derivative given `(x, f(x))`. The
    /// building block for the activations below.
    pub fn map_unary(&self, f: impl Fn(f32) -> f32, df: impl Fn(f32, f32) -> f32 + 'static) -> Var {
        let x = self.value_clone();
        let out = x.map(&f);
        let y = out.clone();
        Var::from_op(out, vec![self.clone()], move |g| {
            let mut gx = g.clone();
            for ((gv, &xv), &yv) in gx
                .data_mut()
                .iter_mut()
                .zip(x.data().iter())
                .zip(y.data().iter())
            {
                *gv *= df(xv, yv);
            }
            vec![Some(gx)]
        })
    }

    /// Natural exponential.
    pub fn exp(&self) -> Var {
        let out = self.value().exp();
        let y = out.clone();
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(y.fused().mul(g).eval())]
        })
    }

    /// Natural logarithm of `x + eps` (eps guards against log(0)).
    pub fn ln_eps(&self, eps: f32) -> Var {
        self.map_unary(move |x| (x + eps).ln(), move |x, _| 1.0 / (x + eps))
    }

    /// Square root.
    pub fn sqrt(&self) -> Var {
        self.map_unary(f32::sqrt, |_, y| 0.5 / y.max(1e-12))
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let xv = self.value_clone();
        let out = xv.mul_t(&xv).expect("square");
        Var::from_op(out, vec![self.clone()], move |g| {
            // (x·2)·g — commutative reorder of g·(2·x), bitwise identical.
            vec![Some(xv.fused().mul_scalar(2.0).mul(g).eval())]
        })
    }

    /// `|x|^p` with the correct signed gradient `p·|x|^{p-1}·sign(x)`.
    ///
    /// Used by the PEB focal loss, which weights squared errors by
    /// `|error|^γ` (Eq. 17 of the paper).
    pub fn abs_powf(&self, p: f32) -> Var {
        self.map_unary(
            move |x| x.abs().powf(p),
            move |x, _| {
                if x == 0.0 {
                    0.0
                } else {
                    p * x.abs().powf(p - 1.0) * x.signum()
                }
            },
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.value().sigmoid();
        let y = out.clone();
        Var::from_op(out, vec![self.clone()], move |g| {
            // ((1−y)·y)·g in one fused sweep — commutative reorder of
            // g·(y·(1−y)), bitwise identical.
            vec![Some(y.fused().sub_from_scalar(1.0).mul(&y).mul(g).eval())]
        })
    }

    /// SiLU (sigmoid-weighted linear unit), the activation used throughout
    /// the SDM unit.
    ///
    /// The sigmoid runs through the dispatched kernel (tolerance-class on
    /// SIMD, like [`Var::sigmoid`]); the backward is one fused sweep
    /// `((((1−s)·x)+1)·s)·g` — a commutative reorder of
    /// `g·(s·(1+x·(1−s)))`, bitwise identical to the scalar closure at a
    /// fixed dispatch level.
    pub fn silu(&self) -> Var {
        let xv = self.value_clone();
        let s = xv.sigmoid();
        let out = s.mul_t(&xv).expect("silu");
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(
                s.fused()
                    .sub_from_scalar(1.0)
                    .mul(&xv)
                    .add_scalar(1.0)
                    .mul(&s)
                    .mul(g)
                    .eval(),
            )]
        })
    }

    /// Softplus `ln(1 + e^x)`, used for the Δ parameter of the SSM
    /// (Eq. 11).
    pub fn softplus(&self) -> Var {
        self.map_unary(
            |x| {
                if x > 20.0 {
                    x
                } else {
                    x.exp().ln_1p()
                }
            },
            |x, _| stable_sigmoid(x),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        self.map_unary(f32::tanh, |_, y| 1.0 - y * y)
    }

    /// ReLU.
    pub fn relu(&self) -> Var {
        self.map_unary(|x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Leaky ReLU with the given negative slope (decoder activation).
    pub fn leaky_relu(&self, slope: f32) -> Var {
        self.map_unary(
            move |x| if x >= 0.0 { x } else { slope * x },
            move |x, _| if x >= 0.0 { 1.0 } else { slope },
        )
    }

    /// GELU (tanh approximation), used by FNO blocks.
    pub fn gelu(&self) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/π)
        self.map_unary(
            |x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()),
            |x, _| {
                let u = C * (x + 0.044715 * x * x * x);
                let t = u.tanh();
                let du = C * (1.0 + 3.0 * 0.044715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
            },
        )
    }

    /// Clamp with straight-through gradient inside `[lo, hi]` and zero
    /// outside.
    pub fn clamp(&self, lo: f32, hi: f32) -> Var {
        self.map_unary(
            move |x| x.clamp(lo, hi),
            move |x, _| if (lo..=hi).contains(&x) { 1.0 } else { 0.0 },
        )
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&self) -> Var {
        self.map_unary(f32::abs, |x, _| if x == 0.0 { 0.0 } else { x.signum() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use crate::Tensor;

    fn param(data: Vec<f32>) -> Var {
        let n = data.len();
        Var::parameter(Tensor::from_vec(data, &[n]).unwrap())
    }

    #[test]
    fn add_broadcast_gradients() {
        let a = Var::parameter(Tensor::ones(&[2, 3]));
        let b = Var::parameter(Tensor::ones(&[3]));
        let y = a.add(&b).sum();
        y.backward();
        assert_eq!(a.grad().unwrap().shape(), &[2, 3]);
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn div_gradients() {
        let a = param(vec![6.0]);
        let b = param(vec![2.0]);
        let y = a.div(&b);
        y.backward();
        assert!((a.grad().unwrap().item() - 0.5).abs() < 1e-6);
        assert!((b.grad().unwrap().item() + 1.5).abs() < 1e-6);
    }

    #[test]
    fn activations_gradcheck() {
        let x = vec![-1.5, -0.3, 0.05, 0.4, 2.0]; // avoid the leaky_relu kink at 0
        for (name, f) in [
            ("silu", (|v: &Var| v.silu().sum()) as fn(&Var) -> Var),
            ("sigmoid", |v| v.sigmoid().sum()),
            ("softplus", |v| v.softplus().sum()),
            ("tanh", |v| v.tanh().sum()),
            ("gelu", |v| v.gelu().sum()),
            ("exp", |v| v.exp().sum()),
            ("square", |v| v.square().sum()),
            ("leaky", |v| v.leaky_relu(0.1).sum()),
        ] {
            let p = param(x.clone());
            let report = check_gradients(&p, f, 1e-2);
            assert!(report.ok(2e-2), "{name}: {report:?}");
        }
    }

    #[test]
    fn abs_powf_gradient() {
        // |x|^3 has derivative 3 x |x|.
        let p = param(vec![-2.0, 0.5]);
        let y = p.abs_powf(3.0).sum();
        y.backward();
        let g = p.grad().unwrap();
        assert!((g.data()[0] - (3.0 * -2.0f32 * 2.0)).abs() < 1e-4);
        assert!((g.data()[1] - (3.0 * 0.5 * 0.5)).abs() < 1e-4);
    }

    #[test]
    fn ln_eps_is_safe_at_zero() {
        let p = param(vec![0.0, 1.0]);
        let y = p.ln_eps(1e-6).sum();
        y.backward();
        assert!(y.value().data()[0].is_finite());
        assert!(p.grad().unwrap().data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn clamp_gradient_masks_outside() {
        let p = param(vec![-2.0, 0.5, 3.0]);
        p.clamp(0.0, 1.0).sum().backward();
        assert_eq!(p.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }
}
