//! Differentiable matrix products.

use crate::Var;

impl Var {
    /// Matrix product `[m, k] × [k, n] → [m, n]` with gradients.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes.
    pub fn matmul(&self, other: &Var) -> Var {
        let out = self
            .value()
            .matmul(&other.value())
            .expect("Var::matmul shapes");
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(out, vec![self.clone(), other.clone()], move |g| {
            // dA = G · Bᵀ ; dB = Aᵀ · G
            let ga = g.matmul(&b.value().transpose2()).expect("matmul back A");
            let gb = a.value().transpose2().matmul(g).expect("matmul back B");
            vec![Some(ga), Some(gb)]
        })
    }

    /// Batched matrix product `[b, m, k] × [b, k, n] → [b, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes.
    pub fn bmm(&self, other: &Var) -> Var {
        let out = self.value().bmm(&other.value()).expect("Var::bmm shapes");
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(out, vec![self.clone(), other.clone()], move |g| {
            let av = a.value();
            let bv = b.value();
            let bt = bv.permute(&[0, 2, 1]).expect("bmm transpose");
            let at = av.permute(&[0, 2, 1]).expect("bmm transpose");
            let ga = g.bmm(&bt).expect("bmm back A");
            let gb = at.bmm(g).expect("bmm back B");
            vec![Some(ga), Some(gb)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use crate::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Var::parameter(Tensor::randn(&[3, 4], &mut rng));
        let b = Var::parameter(Tensor::randn(&[4, 2], &mut rng));
        // Finite differences need the full-precision forward: bf16
        // storage noise (~2^-8 relative) swamps an h=1e-2 stencil.
        peb_simd::with_prec(peb_simd::Prec::F32, || {
            let fa = check_gradients(&a, |v| v.matmul(&b).sum(), 1e-2);
            assert!(fa.ok(2e-2), "{fa:?}");
            let a2 = a.detach();
            let bp = Var::parameter(b.value_clone());
            let fb = check_gradients(&bp, |v| a2.matmul(v).sum(), 1e-2);
            assert!(fb.ok(2e-2), "{fb:?}");
        });
    }

    #[test]
    fn bmm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Var::parameter(Tensor::randn(&[2, 2, 3], &mut rng));
        let b = Var::constant(Tensor::randn(&[2, 3, 2], &mut rng));
        // See matmul_gradcheck: finite differences stay on the f32 path.
        peb_simd::with_prec(peb_simd::Prec::F32, || {
            let fa = check_gradients(&a, |v| v.bmm(&b).sum(), 1e-2);
            assert!(fa.ok(2e-2), "{fa:?}");
        });
    }

    #[test]
    fn matmul_known_gradient() {
        // y = sum(A·B); dA = ones·Bᵀ (row sums of B broadcast).
        let a = Var::parameter(Tensor::ones(&[2, 2]));
        let b = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        a.matmul(&b).sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[3.0, 7.0, 3.0, 7.0]);
    }
}
