//! Reverse-mode automatic differentiation over [`Tensor`] values.
//!
//! A [`Var`] wraps a tensor inside a dynamically built computation DAG.
//! Every operation records its parents and a backward closure; calling
//! [`Var::backward`] on a scalar output propagates gradients to every
//! reachable node that requires them.
//!
//! Node identifiers increase monotonically with creation order, and an
//! operation's parents always exist before its output, so visiting nodes in
//! decreasing id order is a valid reverse topological order — no explicit
//! sort-free graph traversal is needed beyond reachability.

mod elementwise;
mod linalg;
mod reduce;
mod shape;

use std::cell::{Ref, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Tensor;

/// Unique, creation-ordered identifier of an autograd node.
pub type VarId = u64;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> VarId {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Backward closure: maps the output gradient to one gradient per parent
/// (`None` for parents that do not require gradients).
type BackFn = Box<dyn Fn(&Tensor) -> Vec<Option<Tensor>>>;

struct Node {
    id: VarId,
    value: RefCell<Tensor>,
    grad: RefCell<Option<Tensor>>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackFn>,
}

/// A node in the autograd graph: a tensor plus provenance.
///
/// `Var` is a cheap reference-counted handle; cloning shares the node.
/// Graphs are single-threaded by design (the training loop owns them).
///
/// # Example
///
/// ```
/// use peb_tensor::{Tensor, Var};
///
/// let w = Var::parameter(Tensor::scalar(3.0));
/// let loss = w.mul(&w).mul_scalar(0.5); // 0.5 w²
/// loss.backward();
/// assert_eq!(w.grad().unwrap().item(), 3.0); // d/dw = w
/// ```
#[derive(Clone)]
pub struct Var {
    node: Rc<Node>,
}

impl Var {
    /// Wraps a tensor as a constant (no gradient tracked).
    pub fn constant(value: Tensor) -> Self {
        Self::leaf(value, false)
    }

    /// Wraps a tensor as a trainable parameter (gradient accumulated).
    pub fn parameter(value: Tensor) -> Self {
        Self::leaf(value, true)
    }

    fn leaf(value: Tensor, requires_grad: bool) -> Self {
        Var {
            node: Rc::new(Node {
                id: next_id(),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Creates a node from a custom operation.
    ///
    /// `back` receives the gradient flowing into this node and must return
    /// one `Option<Tensor>` per entry of `parents`, in order. This is the
    /// extension point used by the convolution and selective-scan kernels
    /// in downstream crates.
    pub fn from_op(
        value: Tensor,
        parents: Vec<Var>,
        back: impl Fn(&Tensor) -> Vec<Option<Tensor>> + 'static,
    ) -> Self {
        let requires_grad = parents.iter().any(Var::requires_grad);
        Var {
            node: Rc::new(Node {
                id: next_id(),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents: if requires_grad { parents } else { Vec::new() },
                backward: if requires_grad {
                    Some(Box::new(back))
                } else {
                    None
                },
            }),
        }
    }

    /// Stable identifier of this node.
    pub fn id(&self) -> VarId {
        self.node.id
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// Borrows the tensor value.
    ///
    /// # Panics
    ///
    /// Panics if the value is mutably borrowed (only the optimiser mutates
    /// values, never while a forward/backward pass is in flight).
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.node.value.borrow()
    }

    /// Clones the tensor value out of the node.
    pub fn value_clone(&self) -> Tensor {
        self.node.value.borrow().clone()
    }

    /// Shape of the value (cloned, so no borrow is held).
    pub fn shape(&self) -> Vec<usize> {
        self.node.value.borrow().shape().to_vec()
    }

    /// Replaces the value in place (optimiser step).
    ///
    /// # Panics
    ///
    /// Panics if the new shape differs — parameters never change shape.
    pub fn set_value(&self, value: Tensor) {
        assert_eq!(
            self.node.value.borrow().shape(),
            value.shape(),
            "set_value must preserve shape"
        );
        *self.node.value.borrow_mut() = value;
    }

    /// Current accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.node.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    /// Adds `g` into the accumulated gradient (as a backward pass would).
    ///
    /// Used by optimisation utilities such as gradient clipping that
    /// rescale stored gradients outside a backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not match the value's shape.
    pub fn accumulate_grad(&self, g: Tensor) {
        assert_eq!(
            self.value().shape(),
            g.shape(),
            "accumulate_grad shape mismatch"
        );
        accumulate(&self.node, g);
    }

    /// Detaches the value from the graph as a constant.
    pub fn detach(&self) -> Var {
        Var::constant(self.value_clone())
    }

    /// Runs reverse-mode differentiation from this scalar node.
    ///
    /// Accumulates gradients into every reachable node with
    /// `requires_grad`; leaf parameters keep their gradients until
    /// [`Var::zero_grad`], which is how gradient accumulation across
    /// micro-batches works.
    ///
    /// # Panics
    ///
    /// Panics if the node does not hold exactly one element; use
    /// [`Var::backward_with`] to seed a non-scalar output.
    pub fn backward(&self) {
        let seed = {
            let v = self.value();
            assert_eq!(
                v.len(),
                1,
                "backward() requires a scalar output, got shape {:?}",
                v.shape()
            );
            Tensor::full(v.shape(), 1.0)
        };
        self.backward_with(seed);
    }

    /// Runs reverse-mode differentiation with an explicit output gradient.
    ///
    /// # Panics
    ///
    /// Panics if `seed` does not match the node's shape.
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(
            self.value().shape(),
            seed.shape(),
            "backward seed shape mismatch"
        );
        if !self.requires_grad() {
            return;
        }
        accumulate(&self.node, seed);
        // Collect reachable grad-requiring nodes, then sweep in decreasing
        // id order (a valid reverse topological order by construction).
        let mut order: Vec<Rc<Node>> = Vec::new();
        let mut seen: HashSet<VarId> = HashSet::new();
        let mut stack: Vec<Rc<Node>> = vec![self.node.clone()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.id) {
                continue;
            }
            for p in &n.parents {
                if p.requires_grad() {
                    stack.push(p.node.clone());
                }
            }
            order.push(n);
        }
        order.sort_by_key(|n| std::cmp::Reverse(n.id));
        for n in order {
            let Some(back) = n.backward.as_ref() else {
                continue;
            };
            let grad = n.grad.borrow().clone();
            let Some(grad) = grad else { continue };
            let parent_grads = back(&grad);
            debug_assert_eq!(parent_grads.len(), n.parents.len());
            for (p, g) in n.parents.iter().zip(parent_grads) {
                if let Some(g) = g {
                    if p.requires_grad() {
                        debug_assert_eq!(
                            g.shape(),
                            p.value().shape(),
                            "gradient shape mismatch for parent"
                        );
                        accumulate(&p.node, g);
                    }
                }
            }
            // Free intermediate gradients eagerly; leaves keep theirs.
            if n.backward.is_some() {
                *n.grad.borrow_mut() = None;
            }
        }
    }
}

fn accumulate(node: &Rc<Node>, g: Tensor) {
    let mut slot = node.grad.borrow_mut();
    *slot = Some(match slot.take() {
        Some(existing) => existing + g,
        None => g,
    });
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.node.id)
            .field("shape", &self.value().shape())
            .field("requires_grad", &self.requires_grad())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_chain_rule() {
        let x = Var::parameter(Tensor::scalar(2.0));
        // y = (x^2 + x) * x = x^3 + x^2 ; dy/dx = 3x^2 + 2x = 16
        let y = x.mul(&x).add(&x).mul(&x);
        y.backward();
        assert!((x.grad().unwrap().item() - 16.0).abs() < 1e-5);
    }

    #[test]
    fn constants_get_no_grad() {
        let x = Var::parameter(Tensor::scalar(2.0));
        let c = Var::constant(Tensor::scalar(5.0));
        let y = x.mul(&c);
        y.backward();
        assert!(c.grad().is_none());
        assert_eq!(x.grad().unwrap().item(), 5.0);
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        let x = Var::parameter(Tensor::scalar(1.0));
        x.mul_scalar(3.0).backward();
        x.mul_scalar(4.0).backward();
        assert_eq!(x.grad().unwrap().item(), 7.0);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn shared_subexpression_accumulates() {
        let x = Var::parameter(Tensor::scalar(3.0));
        let s = x.mul(&x); // x²
        let y = s.add(&s); // 2x² ; dy/dx = 4x = 12
        y.backward();
        assert!((x.grad().unwrap().item() - 12.0).abs() < 1e-5);
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Var::parameter(Tensor::scalar(2.0));
        let y = x.detach().mul(&x);
        y.backward();
        // Only the non-detached path contributes: d/dx (c * x) = c = 2.
        assert_eq!(x.grad().unwrap().item(), 2.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let x = Var::parameter(Tensor::zeros(&[2]));
        x.backward();
    }

    #[test]
    fn backward_with_seed() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let y = x.mul(&x);
        y.backward_with(Tensor::from_vec(vec![1.0, 10.0], &[2]).unwrap());
        assert_eq!(x.grad().unwrap().data(), &[2.0, 40.0]);
    }
}
