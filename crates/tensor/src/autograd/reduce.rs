//! Differentiable reductions and normalisations.

use crate::shape::unravel;
use crate::{Tensor, Var};

impl Var {
    /// Sum of all elements, returning a scalar node.
    pub fn sum(&self) -> Var {
        let shape = self.shape();
        let out = Tensor::scalar(self.value().sum());
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(Tensor::full(&shape, g.item()))]
        })
    }

    /// Mean of all elements, returning a scalar node.
    pub fn mean(&self) -> Var {
        let shape = self.shape();
        let n = shape.iter().product::<usize>().max(1) as f32;
        let out = Tensor::scalar(self.value().mean());
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(Tensor::full(&shape, g.item() / n))]
        })
    }

    /// Sum over `axis`, removing it.
    ///
    /// # Panics
    ///
    /// Panics on an invalid axis.
    pub fn sum_axis(&self, axis: usize) -> Var {
        let src_shape = self.shape();
        let out = self.value().sum_axis(axis).expect("Var::sum_axis");
        Var::from_op(out, vec![self.clone()], move |g| {
            // Broadcast the reduced gradient back along `axis`.
            let mut keep = src_shape.clone();
            keep[axis] = 1;
            let gk = g.reshape(&keep).expect("sum_axis backward reshape");
            let gx = Tensor::zeros(&src_shape)
                .broadcast_zip(&gk, |_, b| b)
                .expect("sum_axis backward broadcast");
            vec![Some(gx)]
        })
    }

    /// Mean over `axis`, removing it.
    ///
    /// # Panics
    ///
    /// Panics on an invalid axis.
    pub fn mean_axis(&self, axis: usize) -> Var {
        let n = self.shape()[axis] as f32;
        self.sum_axis(axis).mul_scalar(1.0 / n)
    }

    /// Maximum over all elements; the gradient routes to the first argmax.
    ///
    /// This is the differentiable core of the MaxSE loss (Eq. 16).
    pub fn max_all(&self) -> Var {
        let v = self.value_clone();
        let idx = v.argmax();
        let shape = v.shape().to_vec();
        let out = Tensor::scalar(v.data()[idx]);
        Var::from_op(out, vec![self.clone()], move |g| {
            let mut gx = Tensor::zeros(&shape);
            gx.data_mut()[idx] = g.item();
            vec![Some(gx)]
        })
    }

    /// Softmax along `axis` (numerically stabilised by the axis max).
    ///
    /// # Panics
    ///
    /// Panics on an invalid axis.
    pub fn softmax(&self, axis: usize) -> Var {
        let x = self.value_clone();
        let shape = x.shape().to_vec();
        assert!(
            axis < shape.len(),
            "softmax axis {axis} rank {}",
            shape.len()
        );
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out = x.clone();
        {
            let data = out.data_mut();
            for o in 0..outer {
                for i in 0..inner {
                    let at = |m: usize| (o * mid + m) * inner + i;
                    let mut mx = f32::NEG_INFINITY;
                    for m in 0..mid {
                        mx = mx.max(data[at(m)]);
                    }
                    let mut z = 0f64;
                    for m in 0..mid {
                        let e = (data[at(m)] - mx).exp();
                        data[at(m)] = e;
                        z += e as f64;
                    }
                    let zi = 1.0 / z as f32;
                    for m in 0..mid {
                        data[at(m)] *= zi;
                    }
                }
            }
        }
        let y = out.clone();
        Var::from_op(out, vec![self.clone()], move |g| {
            // dX = Y ⊙ (G − sum(G ⊙ Y, axis))
            let mut gx = g.clone();
            let gd = gx.data_mut();
            let yd = y.data();
            for o in 0..outer {
                for i in 0..inner {
                    let at = |m: usize| (o * mid + m) * inner + i;
                    let mut dot = 0f64;
                    for m in 0..mid {
                        dot += (gd[at(m)] * yd[at(m)]) as f64;
                    }
                    let dot = dot as f32;
                    for m in 0..mid {
                        gd[at(m)] = yd[at(m)] * (gd[at(m)] - dot);
                    }
                }
            }
            vec![Some(gx)]
        })
    }

    /// Dot-product-style weighted sum: `sum(self ⊙ w)` for a constant
    /// weight tensor (convenience for losses).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn weighted_sum(&self, w: &Tensor) -> Var {
        assert_eq!(self.shape(), w.shape(), "weighted_sum shape mismatch");
        let prod = self.value().zip_map(w, |a, b| a * b).expect("weighted_sum");
        let out = Tensor::scalar(prod.sum());
        let w = w.clone();
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(w.mul_scalar(g.item()))]
        })
    }

    /// Index of the maximum element of the current value (no gradient).
    pub fn argmax_coords(&self) -> Vec<usize> {
        let v = self.value();
        unravel(v.argmax(), v.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sum_mean_gradients() {
        let x = Var::parameter(Tensor::ones(&[2, 3]));
        x.sum().backward();
        assert!(x.grad().unwrap().approx_eq(&Tensor::ones(&[2, 3]), 0.0));
        x.zero_grad();
        x.mean().backward();
        assert!(x
            .grad()
            .unwrap()
            .approx_eq(&Tensor::full(&[2, 3], 1.0 / 6.0), 1e-7));
    }

    #[test]
    fn sum_axis_gradient_broadcasts() {
        let x = Var::parameter(Tensor::ones(&[2, 3]));
        // sum over axis 0 then weight rows differently.
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        x.sum_axis(0).weighted_sum(&w).backward();
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn max_all_routes_to_argmax() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 5.0, 3.0], &[3]).unwrap());
        x.max_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
        assert_eq!(x.max_all().value().item(), 5.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Var::parameter(Tensor::randn(&[4, 5], &mut rng));
        let y = x.softmax(1);
        let row_sums = y.value().sum_axis(1).unwrap();
        assert!(row_sums.approx_eq(&Tensor::ones(&[4]), 1e-5));
    }

    #[test]
    fn softmax_gradcheck() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Var::parameter(Tensor::randn(&[3, 4], &mut rng));
        let w = Tensor::randn(&[3, 4], &mut rng);
        let report = check_gradients(&x, |v| v.softmax(1).weighted_sum(&w), 1e-2);
        assert!(report.ok(2e-2), "{report:?}");
    }

    #[test]
    fn softmax_axis0_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Var::parameter(Tensor::randn(&[3, 2], &mut rng));
        let w = Tensor::randn(&[3, 2], &mut rng);
        let report = check_gradients(&x, |v| v.softmax(0).weighted_sum(&w), 1e-2);
        assert!(report.ok(2e-2), "{report:?}");
    }

    #[test]
    fn softmax_extreme_inputs_stable() {
        let x = Var::parameter(Tensor::from_vec(vec![1000.0, 0.0, -1000.0], &[3]).unwrap());
        let y = x.softmax(0);
        assert!(y.value().data().iter().all(|v| v.is_finite()));
        assert!((y.value().data()[0] - 1.0).abs() < 1e-6);
    }
}
