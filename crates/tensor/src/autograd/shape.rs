//! Differentiable shape manipulation.

use crate::{Tensor, Var};

impl Var {
    /// Reshape preserving element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let src_shape = self.shape();
        let out = self.value().reshape(shape).expect("Var::reshape");
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(g.reshape(&src_shape).expect("reshape backward"))]
        })
    }

    /// Axis permutation; the backward pass applies the inverse permutation.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a valid permutation.
    pub fn permute(&self, perm: &[usize]) -> Var {
        let out = self.value().permute(perm).expect("Var::permute");
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(g.permute(&inverse).expect("permute backward"))]
        })
    }

    /// Concatenates nodes along `axis`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes or an empty input list.
    pub fn concat(parts: &[&Var], axis: usize) -> Var {
        let values: Vec<Tensor> = parts.iter().map(|p| p.value_clone()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = Tensor::concat(&refs, axis).expect("Var::concat");
        let extents: Vec<usize> = values.iter().map(|v| v.shape()[axis]).collect();
        let parents: Vec<Var> = parts.iter().map(|&p| p.clone()).collect();
        Var::from_op(out, parents, move |g| {
            let mut grads = Vec::with_capacity(extents.len());
            let mut start = 0usize;
            for &e in &extents {
                grads.push(Some(
                    g.slice_axis(axis, start, start + e)
                        .expect("concat backward"),
                ));
                start += e;
            }
            grads
        })
    }

    /// Extracts `[start, end)` along `axis`; the gradient zero-pads back.
    ///
    /// # Panics
    ///
    /// Panics on an invalid range.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Var {
        let src_shape = self.shape();
        let out = self
            .value()
            .slice_axis(axis, start, end)
            .expect("Var::slice_axis");
        Var::from_op(out, vec![self.clone()], move |g| {
            let mut pads = vec![(0usize, 0usize); src_shape.len()];
            pads[axis] = (start, src_shape[axis] - end);
            vec![Some(g.pad(&pads).expect("slice backward"))]
        })
    }

    /// Zero padding; the gradient crops back.
    ///
    /// # Panics
    ///
    /// Panics if `pads.len()` differs from the rank.
    pub fn pad(&self, pads: &[(usize, usize)]) -> Var {
        let out = self.value().pad(pads).expect("Var::pad");
        let pads = pads.to_vec();
        Var::from_op(out, vec![self.clone()], move |g| {
            vec![Some(g.crop(&pads).expect("pad backward"))]
        })
    }

    /// Nearest-neighbour upsampling of the two trailing axes; the gradient
    /// sums each `factor × factor` block.
    ///
    /// # Panics
    ///
    /// Panics for rank < 2 or `factor == 0`.
    pub fn upsample2_nearest(&self, factor: usize) -> Var {
        let src_shape = self.shape();
        let out = self
            .value()
            .upsample2_nearest(factor)
            .expect("Var::upsample2_nearest");
        Var::from_op(out, vec![self.clone()], move |g| {
            let rank = src_shape.len();
            let (h, w) = (src_shape[rank - 2], src_shape[rank - 1]);
            let batch: usize = src_shape[..rank - 2].iter().product();
            let (oh, ow) = (h * factor, w * factor);
            let gd = g.data();
            let mut out = Tensor::zeros(&src_shape);
            let od = out.data_mut();
            for b in 0..batch {
                for oy in 0..oh {
                    let iy = oy / factor;
                    for ox in 0..ow {
                        let ix = ox / factor;
                        od[(b * h + iy) * w + ix] += gd[(b * oh + oy) * ow + ox];
                    }
                }
            }
            vec![Some(out)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reshape_permute_gradcheck() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = Tensor::randn(&[3, 2, 2], &mut rng);
        let x = Var::parameter(Tensor::randn(&[2, 2, 3], &mut rng));
        let report = check_gradients(&x, |v| v.permute(&[2, 0, 1]).weighted_sum(&w), 1e-2);
        assert!(report.ok(2e-2), "{report:?}");
        let report2 = check_gradients(
            &x,
            |v| {
                v.reshape(&[4, 3])
                    .weighted_sum(&w.reshape(&[4, 3]).unwrap())
            },
            1e-2,
        );
        assert!(report2.ok(2e-2), "{report2:?}");
    }

    #[test]
    fn concat_splits_gradient() {
        let a = Var::parameter(Tensor::ones(&[2, 1]));
        let b = Var::parameter(Tensor::ones(&[2, 2]));
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        Var::concat(&[&a, &b], 1).weighted_sum(&w).backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 4.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_pads_gradient_back() {
        let x = Var::parameter(Tensor::arange(5));
        x.slice_axis(0, 1, 3).sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn pad_crops_gradient_back() {
        let x = Var::parameter(Tensor::ones(&[2]));
        let w = Tensor::from_vec(vec![5.0, 1.0, 2.0, 7.0], &[4]).unwrap();
        x.pad(&[(1, 1)]).weighted_sum(&w).backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn upsample_gradient_pools() {
        let x = Var::parameter(Tensor::ones(&[1, 2, 2]));
        x.upsample2_nearest(2).sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn upsample_gradcheck() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Var::parameter(Tensor::randn(&[1, 2, 3], &mut rng));
        let w = Tensor::randn(&[1, 4, 6], &mut rng);
        let report = check_gradients(&x, |v| v.upsample2_nearest(2).weighted_sum(&w), 1e-2);
        assert!(report.ok(2e-2), "{report:?}");
    }
}
