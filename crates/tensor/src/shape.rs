//! Shape arithmetic shared by raw tensors and autograd operations.

use crate::{Result, TensorError};

/// A tensor shape: the extent of each axis, outermost first (row-major).
pub type Shape = Vec<usize>;

/// Row-major strides for `shape` (in elements, not bytes).
///
/// The last axis always has stride 1; an empty shape yields empty strides.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (s, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *s = acc;
        acc *= dim;
    }
    strides
}

/// Number of elements implied by `shape` (1 for a scalar/empty shape).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Computes the broadcast result shape of two operand shapes.
///
/// Shapes align from the trailing axis; each pair of extents must be equal
/// or one of them must be 1 (NumPy semantics).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when any aligned pair of extents
/// differs and neither is 1.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Shape> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < lhs.len() {
            lhs[lhs.len() - 1 - i]
        } else {
            1
        };
        let r = if i < rhs.len() {
            rhs[rhs.len() - 1 - i]
        } else {
            1
        };
        out[rank - 1 - i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast",
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Converts a flat index into multi-axis coordinates for `shape`.
pub fn unravel(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        coords[i] = flat % shape[i];
        flat /= shape[i];
    }
    coords
}

/// Converts multi-axis coordinates into a flat row-major index.
pub fn ravel(coords: &[usize], shape: &[usize]) -> usize {
    debug_assert_eq!(coords.len(), shape.len());
    let mut flat = 0usize;
    for (&c, &d) in coords.iter().zip(shape.iter()) {
        debug_assert!(c < d);
        flat = flat * d + c;
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert!(strides_for(&[]).is_empty());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[3, 1], &[1, 4]).unwrap(), vec![3, 4]);
        assert_eq!(broadcast_shapes(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[2, 2]).unwrap(), vec![2, 2]);
    }

    #[test]
    fn broadcast_rejects_mismatch() {
        assert!(broadcast_shapes(&[2, 3], &[2, 4]).is_err());
    }

    #[test]
    fn ravel_unravel_roundtrip() {
        let shape = [2, 3, 5];
        for flat in 0..numel(&shape) {
            let coords = unravel(flat, &shape);
            assert_eq!(ravel(&coords, &shape), flat);
        }
    }
}
