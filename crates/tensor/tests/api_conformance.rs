//! API-guideline conformance checks (C-SEND-SYNC, C-DEBUG-NONEMPTY,
//! C-COMMON-TRAITS).

use peb_tensor::{Tensor, TensorError, Var};

#[test]
fn tensor_is_send_and_sync() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Tensor>();
    assert_sync::<Tensor>();
    assert_send::<TensorError>();
    assert_sync::<TensorError>();
}

#[test]
fn debug_and_display_are_never_empty() {
    let t = Tensor::zeros(&[0]);
    assert!(!format!("{t:?}").is_empty());
    assert!(!format!("{t}").is_empty());
    let v = Var::constant(Tensor::scalar(0.0));
    assert!(!format!("{v:?}").is_empty());
    let e = TensorError::AxisOutOfRange { axis: 3, rank: 2 };
    assert!(!format!("{e}").is_empty());
    assert!(!format!("{e:?}").is_empty());
}

#[test]
fn errors_implement_std_error() {
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<TensorError>();
}

#[test]
fn tensor_implements_common_traits() {
    // Clone + PartialEq + Default round out the data-structure contract.
    let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
    let b = a.clone();
    assert_eq!(a, b);
    let d = Tensor::default();
    assert_eq!(d.len(), 1);
}

#[test]
fn error_messages_are_lowercase_without_trailing_punctuation() {
    let errors: Vec<TensorError> = vec![
        TensorError::LengthMismatch {
            len: 3,
            shape: vec![2, 2],
        },
        TensorError::ShapeMismatch {
            op: "test",
            lhs: vec![1],
            rhs: vec![2],
        },
        TensorError::AxisOutOfRange { axis: 5, rank: 2 },
        TensorError::IndexOutOfBounds { detail: "x".into() },
        TensorError::Invalid { detail: "y".into() },
    ];
    for e in errors {
        let msg = e.to_string();
        let first = msg.chars().next().unwrap();
        assert!(
            first.is_lowercase() || !first.is_alphabetic(),
            "message should start lowercase: {msg}"
        );
        assert!(!msg.ends_with('.'), "no trailing period: {msg}");
    }
}
