//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_tensor::{check_gradients, Tensor, Var};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn finite_vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(shape in small_dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&shape, &mut rng);
        let b = Tensor::randn(&shape, &mut rng);
        let ab = a.add_t(&b).unwrap();
        let ba = b.add_t(&a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-6));
    }

    #[test]
    fn mul_distributes_over_add(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[3, 4], &mut rng);
        let c = Tensor::randn(&[3, 4], &mut rng);
        let lhs = a.mul_t(&b.add_t(&c).unwrap()).unwrap();
        let rhs = a.mul_t(&b).unwrap().add_t(&a.mul_t(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn matmul_associative(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 2], &mut rng);
        let c = Tensor::randn(&[2, 5], &mut rng);
        // The 1e-3 budget is an f32 algebra property: chained multiplies
        // under the bf16 latch round through storage twice (~2^-8
        // relative each), which the dedicated bf16 kernel suites cover.
        let (lhs, rhs) = peb_simd::with_prec(peb_simd::Prec::F32, || {
            (
                a.matmul(&b).unwrap().matmul(&c).unwrap(),
                a.matmul(&b.matmul(&c).unwrap()).unwrap(),
            )
        });
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..1000) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 2], &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn permute_roundtrip(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[2, 3, 4], &mut rng);
        let p = t.permute(&[1, 2, 0]).unwrap();
        // Inverse of [1,2,0] is [2,0,1].
        let back = p.permute(&[2, 0, 1]).unwrap();
        prop_assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn slice_concat_roundtrip(split in 1usize..4, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[3, 4, 2], &mut rng);
        let a = t.slice_axis(1, 0, split).unwrap();
        let b = t.slice_axis(1, split, 4).unwrap();
        let back = Tensor::concat(&[&a, &b], 1).unwrap();
        prop_assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn pad_preserves_sum(before in 0usize..3, after in 0usize..3, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[2, 3], &mut rng);
        let p = t.pad(&[(before, after), (after, before)]).unwrap();
        prop_assert!((p.sum() - t.sum()).abs() < 1e-4);
        let c = p.crop(&[(before, after), (after, before)]).unwrap();
        prop_assert!(c.approx_eq(&t, 0.0));
    }

    #[test]
    fn reduce_to_shape_is_broadcast_adjoint(seed in 0u64..1000) {
        // <broadcast(x, S), g> == <x, reduce(g, shape(x))>
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[1, 3], &mut rng);
        let g = Tensor::randn(&[4, 3], &mut rng);
        let bx = Tensor::zeros(&[4, 3]).broadcast_zip(&x, |_, b| b).unwrap();
        let lhs: f32 = bx.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let rg = g.reduce_to_shape(&[1, 3]);
        let rhs: f32 = x.data().iter().zip(rg.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn sum_axis_consistent_with_total(axis in 0usize..3, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[2, 3, 4], &mut rng);
        let s = t.sum_axis(axis).unwrap();
        prop_assert!((s.sum() - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn composite_expression_gradcheck(vals in finite_vals(6)) {
        // f(x) = mean(silu(x)² + softplus(x)) exercises several backward
        // paths through a shared input.
        let x = Tensor::from_vec(vals, &[2, 3]).unwrap();
        let report = check_gradients(
            &Var::parameter(x),
            |v| v.silu().square().add(&v.softplus()).mean(),
            1e-2,
        );
        prop_assert!(report.ok(3e-2), "{:?}", report);
    }

    #[test]
    fn softmax_is_shift_invariant(shift in -5.0f32..5.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let a = Var::constant(x.clone()).softmax(1).value_clone();
        let b = Var::constant(x.add_scalar(shift)).softmax(1).value_clone();
        prop_assert!(a.approx_eq(&b, 1e-5));
    }
}
