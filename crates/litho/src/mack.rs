//! Mack development-rate model (Eq. 5).

use serde::{Deserialize, Serialize};

use peb_tensor::Tensor;

/// Mack kinetic development model parameters; defaults are Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MackParams {
    /// Maximum development rate (nm/s) for fully deprotected resist.
    pub r_max: f32,
    /// Minimum development rate (nm/s) for unexposed resist.
    pub r_min: f32,
    /// Threshold inhibitor concentration `M_th`.
    pub m_th: f32,
    /// Surface reaction order `n`.
    pub n: f32,
    /// Development duration in seconds (Table I: 60).
    pub duration: f32,
}

impl MackParams {
    /// The paper's Table I values.
    pub fn paper() -> Self {
        MackParams {
            r_max: 40.0,
            r_min: 0.0003,
            m_th: 0.5,
            n: 30.0,
            duration: 60.0,
        }
    }

    /// The Mack `a` constant `(1 − M_th)ⁿ (n+1)/(n−1)`.
    pub fn a_const(&self) -> f32 {
        (1.0 - self.m_th).powf(self.n) * (self.n + 1.0) / (self.n - 1.0)
    }

    /// Development rate (nm/s) for a single inhibitor concentration.
    ///
    /// `R = R_max (a+1)(1−m)ⁿ / (a + (1−m)ⁿ) + R_min`, clamped to
    /// `[R_min, R_max]`.
    pub fn rate(&self, inhibitor: f32) -> f32 {
        let m = inhibitor.clamp(0.0, 1.0);
        let a = self.a_const();
        let p = (1.0 - m).powf(self.n);
        let r = self.r_max * (a + 1.0) * p / (a + p) + self.r_min;
        r.clamp(self.r_min, self.r_max)
    }

    /// Development-rate field from an inhibitor field (any shape).
    pub fn rate_field(&self, inhibitor: &Tensor) -> Tensor {
        inhibitor.map(|m| self.rate(m))
    }
}

impl Default for MackParams {
    fn default() -> Self {
        MackParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits() {
        let p = MackParams::paper();
        // Fully protected resist develops at ≈ R_min.
        assert!(p.rate(1.0) <= p.r_min * 2.0);
        // Fully deprotected resist develops at ≈ R_max.
        assert!((p.rate(0.0) - p.r_max).abs() / p.r_max < 0.05);
    }

    #[test]
    fn monotone_decreasing_in_inhibitor() {
        let p = MackParams::paper();
        let mut prev = f32::INFINITY;
        for i in 0..=20 {
            let r = p.rate(i as f32 / 20.0);
            assert!(r <= prev + 1e-6);
            prev = r;
        }
    }

    #[test]
    fn threshold_behaviour() {
        // With n = 30 the rate switches steeply around M_th.
        let p = MackParams::paper();
        let above = p.rate(p.m_th + 0.1);
        let below = p.rate(p.m_th - 0.1);
        assert!(below / above > 100.0, "below {below} above {above}");
    }

    #[test]
    fn rate_field_matches_scalar() {
        let p = MackParams::paper();
        let m = Tensor::linspace(0.0, 1.0, 5);
        let r = p.rate_field(&m);
        for (i, &mi) in m.data().iter().enumerate() {
            assert_eq!(r.data()[i], p.rate(mi));
        }
    }

    #[test]
    fn rates_are_bounded() {
        let p = MackParams::paper();
        let m = Tensor::linspace(-0.5, 1.5, 33); // deliberately out of range
        let r = p.rate_field(&m);
        assert!(r.min_value() >= p.r_min);
        assert!(r.max_value() <= p.r_max);
    }
}
