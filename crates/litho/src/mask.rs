//! Contact-layer mask clip generation.
//!
//! The paper uses 100 proprietary 2×2 µm² mask clips "designed with contact
//! sizes and distribution patterns suitable for technology nodes at 28 nm
//! and below" [42]. This module is the synthetic replacement: a rule-driven
//! generator that produces contact-hole layouts in the same family —
//! regular arrays, staggered arrays, random placements and mixtures — under
//! a minimum-spacing design rule, with every clip reproducible from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use peb_tensor::Tensor;

use crate::{LithoError, Result};

/// Layout family of a generated clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClipStyle {
    /// Contacts on a regular grid with small positional jitter.
    RegularArray,
    /// Regular rows with alternate rows offset by half a pitch.
    Staggered,
    /// Rejection-sampled random placement under the spacing rule.
    Random,
    /// Style chosen per clip from the other three (dataset diversity).
    Mixed,
}

/// A rectangular contact hole, in pixel coordinates of the clip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Contact {
    /// Centre row (y), in pixels.
    pub cy: f32,
    /// Centre column (x), in pixels.
    pub cx: f32,
    /// Opening width along x, in pixels.
    pub w: f32,
    /// Opening height along y, in pixels.
    pub h: f32,
}

/// A generated mask clip: transmission pattern plus contact bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskClip {
    /// `[H, W]` transmission: 1.0 inside contact openings, 0.0 elsewhere.
    pub pattern: Tensor,
    /// The placed contacts (used later by CD metrology).
    pub contacts: Vec<Contact>,
    /// Style actually used (resolved from [`ClipStyle::Mixed`]).
    pub style: ClipStyle,
    /// Seed the clip was generated from.
    pub seed: u64,
}

/// Generator configuration.
///
/// All physical lengths are in pixels of the target grid; use
/// [`MaskConfig::from_nm`] to specify nanometres against a grid spacing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskConfig {
    /// Clip edge length in pixels (square clips, matching the paper).
    pub size: usize,
    /// Contact opening edge length in pixels.
    pub contact_px: f32,
    /// Centre-to-centre pitch for array styles, in pixels.
    pub pitch_px: f32,
    /// Minimum edge-to-edge spacing rule, in pixels.
    pub min_space_px: f32,
    /// Probability that an array site is populated (dense vs sparse).
    pub fill_probability: f64,
    /// Relative size jitter (± fraction of `contact_px`).
    pub size_jitter: f32,
    /// Positional jitter for array styles, in pixels.
    pub pos_jitter: f32,
    /// Layout family.
    pub style: ClipStyle,
}

impl MaskConfig {
    /// A 28 nm-class contact layer for a clip of `size` pixels at 4 nm/px:
    /// 60 nm contacts on a 120 nm pitch for 64-px-and-larger clips, scaled
    /// down proportionally for smaller demo grids.
    pub fn demo(size: usize) -> Self {
        let scale = (size as f32 / 64.0).min(1.0);
        MaskConfig {
            size,
            contact_px: 15.0 * scale,
            pitch_px: 30.0 * scale,
            min_space_px: 10.0 * scale,
            fill_probability: 0.7,
            size_jitter: 0.15,
            pos_jitter: 1.5 * scale,
            style: ClipStyle::Mixed,
        }
    }

    /// Builds a configuration from physical dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Config`] if `dx_nm` is non-positive.
    pub fn from_nm(
        size: usize,
        dx_nm: f32,
        contact_nm: f32,
        pitch_nm: f32,
        min_space_nm: f32,
        style: ClipStyle,
    ) -> Result<Self> {
        if dx_nm <= 0.0 {
            return Err(LithoError::Config {
                detail: format!("dx_nm must be positive, got {dx_nm}"),
            });
        }
        Ok(MaskConfig {
            size,
            contact_px: contact_nm / dx_nm,
            pitch_px: pitch_nm / dx_nm,
            min_space_px: min_space_nm / dx_nm,
            fill_probability: 0.7,
            size_jitter: 0.15,
            pos_jitter: 1.5,
            style,
        })
    }

    /// Generates a clip from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Config`] for degenerate configurations and
    /// [`LithoError::Layout`] if no contact can be placed.
    pub fn generate(&self, seed: u64) -> Result<MaskClip> {
        if self.size == 0 || self.contact_px <= 0.0 || self.pitch_px <= self.contact_px {
            return Err(LithoError::Config {
                detail: format!(
                    "degenerate mask config: size={} contact={} pitch={}",
                    self.size, self.contact_px, self.pitch_px
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let style = match self.style {
            ClipStyle::Mixed => match rng.gen_range(0..3) {
                0 => ClipStyle::RegularArray,
                1 => ClipStyle::Staggered,
                _ => ClipStyle::Random,
            },
            s => s,
        };
        let place = |rng: &mut StdRng| match style {
            ClipStyle::RegularArray => self.array_contacts(rng, false),
            ClipStyle::Staggered => self.array_contacts(rng, true),
            ClipStyle::Random => self.random_contacts(rng),
            ClipStyle::Mixed => unreachable!("resolved above"),
        };
        let mut contacts = place(&mut rng);
        // Sparse fills on small clips can leave every array site
        // unpopulated (e.g. the Staggered family at seed 1011). Re-roll
        // placement from retry streams derived from the seed — still
        // reproducible, and seeds that succeed first try are unaffected.
        let mut attempt = 0u64;
        while contacts.is_empty() && attempt < 16 {
            attempt += 1;
            let mut retry =
                StdRng::seed_from_u64(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            contacts = place(&mut retry);
        }
        if contacts.is_empty() {
            // Geometrically empty (no site fits inside the margins, so no
            // amount of re-rolling helps): fall back to one centred
            // contact when the clip can hold it at all.
            let centre = self.size as f32 * 0.5;
            if self.contact_px < self.size as f32 {
                contacts.push(Contact {
                    cy: centre,
                    cx: centre,
                    w: self.contact_px,
                    h: self.contact_px,
                });
            } else {
                return Err(LithoError::Layout {
                    detail: format!("no contacts placeable for style {style:?} seed {seed}"),
                });
            }
        }
        let pattern = rasterise(self.size, &contacts);
        Ok(MaskClip {
            pattern,
            contacts,
            style,
            seed,
        })
    }

    /// Margin that keeps whole contacts (plus jitter) inside the clip.
    fn margin(&self) -> f32 {
        self.contact_px * 0.5 * (1.0 + self.size_jitter) + self.pos_jitter + 1.0
    }

    fn array_contacts(&self, rng: &mut StdRng, staggered: bool) -> Vec<Contact> {
        let mut out = Vec::new();
        let pitch = self.pitch_px;
        let margin = self.margin();
        let mut row = 0usize;
        let mut cy = margin + self.contact_px * 0.5;
        while cy < self.size as f32 - margin {
            let offset = if staggered && row % 2 == 1 {
                pitch * 0.5
            } else {
                0.0
            };
            let mut cx = margin + self.contact_px * 0.5 + offset;
            while cx < self.size as f32 - margin {
                if rng.gen_bool(self.fill_probability) {
                    out.push(self.jittered_contact(rng, cy, cx));
                }
                cx += pitch;
            }
            cy += pitch;
            row += 1;
        }
        out
    }

    fn random_contacts(&self, rng: &mut StdRng) -> Vec<Contact> {
        // Aim for a density comparable to the arrays, thinned a little so
        // rejection sampling converges.
        let cell = self.pitch_px * self.pitch_px;
        let target =
            ((self.size * self.size) as f64 / cell as f64 * self.fill_probability * 0.8) as usize;
        let margin = self.margin();
        let mut out: Vec<Contact> = Vec::new();
        let mut attempts = 0usize;
        while out.len() < target.max(1) && attempts < target.max(1) * 60 {
            attempts += 1;
            let cy = rng.gen_range(margin..self.size as f32 - margin);
            let cx = rng.gen_range(margin..self.size as f32 - margin);
            let cand = self.jittered_contact(rng, cy, cx);
            let ok = out.iter().all(|c| {
                let gap_x = (c.cx - cand.cx).abs() - (c.w + cand.w) * 0.5;
                let gap_y = (c.cy - cand.cy).abs() - (c.h + cand.h) * 0.5;
                gap_x.max(gap_y) >= self.min_space_px
            });
            if ok {
                out.push(cand);
            }
        }
        out
    }

    fn jittered_contact(&self, rng: &mut StdRng, cy: f32, cx: f32) -> Contact {
        let jit = |rng: &mut StdRng| rng.gen_range(-self.pos_jitter..=self.pos_jitter);
        let size = |rng: &mut StdRng| {
            self.contact_px * (1.0 + rng.gen_range(-self.size_jitter..=self.size_jitter))
        };
        Contact {
            cy: cy + jit(rng),
            cx: cx + jit(rng),
            w: size(rng),
            h: size(rng),
        }
    }
}

/// Rasterises contacts into a binary `[size, size]` transmission map with
/// linear anti-aliasing at the edges (sub-pixel contact sizes matter at
/// 4 nm pixels).
fn rasterise(size: usize, contacts: &[Contact]) -> Tensor {
    let mut t = Tensor::zeros(&[size, size]);
    let data = t.data_mut();
    for c in contacts {
        let y0 = c.cy - c.h * 0.5;
        let y1 = c.cy + c.h * 0.5;
        let x0 = c.cx - c.w * 0.5;
        let x1 = c.cx + c.w * 0.5;
        let iy0 = y0.floor().max(0.0) as usize;
        let iy1 = (y1.ceil() as usize).min(size);
        let ix0 = x0.floor().max(0.0) as usize;
        let ix1 = (x1.ceil() as usize).min(size);
        for y in iy0..iy1 {
            // Coverage of pixel [y, y+1) by [y0, y1).
            let cov_y = (y1.min(y as f32 + 1.0) - y0.max(y as f32)).clamp(0.0, 1.0);
            for x in ix0..ix1 {
                let cov_x = (x1.min(x as f32 + 1.0) - x0.max(x as f32)).clamp(0.0, 1.0);
                let idx = y * size + x;
                data[idx] = (data[idx] + cov_y * cov_x).min(1.0);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let cfg = MaskConfig::demo(64);
        let a = cfg.generate(3).unwrap();
        let b = cfg.generate(3).unwrap();
        assert_eq!(a, b);
        let c = cfg.generate(4).unwrap();
        assert_ne!(a.pattern, c.pattern);
    }

    #[test]
    fn pattern_is_normalised_transmission() {
        let clip = MaskConfig::demo(64).generate(1).unwrap();
        assert_eq!(clip.pattern.shape(), &[64, 64]);
        assert!(clip.pattern.min_value() >= 0.0);
        assert!(clip.pattern.max_value() <= 1.0);
        assert!(clip.pattern.sum() > 0.0);
    }

    #[test]
    fn contact_area_matches_pattern_mass() {
        let mut cfg = MaskConfig::demo(64);
        cfg.style = ClipStyle::RegularArray;
        cfg.size_jitter = 0.0;
        cfg.pos_jitter = 0.0;
        cfg.fill_probability = 1.0;
        let clip = cfg.generate(5).unwrap();
        let expect: f32 = clip.contacts.iter().map(|c| c.w * c.h).sum();
        assert!(
            (clip.pattern.sum() - expect).abs() / expect < 0.02,
            "mass {} vs expected {expect}",
            clip.pattern.sum()
        );
    }

    #[test]
    fn random_respects_spacing_rule() {
        let mut cfg = MaskConfig::demo(128);
        cfg.style = ClipStyle::Random;
        let clip = cfg.generate(11).unwrap();
        for (i, a) in clip.contacts.iter().enumerate() {
            for b in clip.contacts.iter().skip(i + 1) {
                let gap_x = (a.cx - b.cx).abs() - (a.w + b.w) * 0.5;
                let gap_y = (a.cy - b.cy).abs() - (a.h + b.h) * 0.5;
                assert!(
                    gap_x.max(gap_y) >= cfg.min_space_px - 1e-3,
                    "contacts {i} violate spacing"
                );
            }
        }
    }

    #[test]
    fn staggered_offsets_alternate_rows() {
        let mut cfg = MaskConfig::demo(128);
        cfg.style = ClipStyle::Staggered;
        cfg.pos_jitter = 0.0;
        cfg.fill_probability = 1.0;
        let clip = cfg.generate(2).unwrap();
        // Collect distinct row (cy) values and check alternate x offsets.
        let mut rows: Vec<f32> = clip.contacts.iter().map(|c| c.cy).collect();
        rows.sort_by(f32::total_cmp);
        rows.dedup_by(|a, b| (*a - *b).abs() < 1e-3);
        assert!(rows.len() >= 2, "need at least two rows");
        let min_x = |row: f32| {
            clip.contacts
                .iter()
                .filter(|c| (c.cy - row).abs() < 1e-3)
                .map(|c| c.cx)
                .fold(f32::INFINITY, f32::min)
        };
        let d = (min_x(rows[0]) - min_x(rows[1])).abs();
        assert!((d - cfg.pitch_px * 0.5).abs() < 1e-3, "offset {d}");
    }

    #[test]
    fn every_seed_in_dataset_range_yields_contacts() {
        // Seeds 1011 (Staggered) and 1049 (RegularArray) used to place
        // zero contacts and abort table2 dataset generation. Sweep the
        // dataset seed range across sizes and styles: every clip must
        // come back non-empty, and retried clips must stay reproducible.
        for size in [48usize, 64] {
            for style in [
                ClipStyle::RegularArray,
                ClipStyle::Staggered,
                ClipStyle::Random,
                ClipStyle::Mixed,
            ] {
                let mut cfg = MaskConfig::demo(size);
                cfg.style = style;
                for seed in 1000..1100u64 {
                    let clip = cfg
                        .generate(seed)
                        .unwrap_or_else(|e| panic!("{style:?} size {size} seed {seed}: {e}"));
                    assert!(!clip.contacts.is_empty());
                    assert_eq!(
                        clip,
                        cfg.generate(seed).unwrap(),
                        "seed {seed} reproducible"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_config_rejected() {
        let mut cfg = MaskConfig::demo(64);
        cfg.pitch_px = cfg.contact_px; // holes would merge
        assert!(matches!(cfg.generate(0), Err(LithoError::Config { .. })));
    }

    #[test]
    fn from_nm_conversion() {
        let cfg = MaskConfig::from_nm(64, 4.0, 60.0, 120.0, 40.0, ClipStyle::RegularArray).unwrap();
        assert_eq!(cfg.contact_px, 15.0);
        assert_eq!(cfg.pitch_px, 30.0);
        assert_eq!(cfg.min_space_px, 10.0);
        assert!(MaskConfig::from_nm(64, 0.0, 60.0, 120.0, 40.0, ClipStyle::Random).is_err());
    }
}
