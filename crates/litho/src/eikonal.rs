//! 3-D eikonal solver for development-front propagation.
//!
//! Solves `|∇S(x, y, z)| = 1/R(x, y, z)` for the arrival time `S` of the
//! developer front, which enters from the resist top surface (depth index
//! 0). This replaces the open-source fast iterative solver [31] cited by
//! the paper; we use the fast sweeping method (Gauss–Seidel over the 8
//! sweep orderings of 3-D space) with a Godunov upwind update that handles
//! anisotropic grid spacing.

use peb_tensor::Tensor;

use crate::{Grid, LithoError, Result};

/// Eikonal solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EikonalConfig {
    /// Convergence tolerance on the max update per full sweep set (s).
    pub tol: f32,
    /// Maximum number of 8-sweep rounds.
    pub max_rounds: usize,
}

impl Default for EikonalConfig {
    fn default() -> Self {
        EikonalConfig {
            tol: 1e-4,
            max_rounds: 12,
        }
    }
}

/// Solves for the arrival-time field `S` (seconds), shape `[D, H, W]`.
///
/// The front starts at the top surface: the initial condition is
/// `S = (dz/2) / R` for the top layer (time for the front to reach the
/// first voxel centre), infinity elsewhere.
///
/// # Errors
///
/// Returns [`LithoError::Config`] if `rate` does not match the grid or
/// contains non-positive entries.
pub fn solve_eikonal(grid: &Grid, rate: &Tensor, cfg: EikonalConfig) -> Result<Tensor> {
    if rate.shape() != grid.shape3() {
        return Err(LithoError::Config {
            detail: format!(
                "rate shape {:?} does not match grid {:?}",
                rate.shape(),
                grid.shape3()
            ),
        });
    }
    if rate.min_value() <= 0.0 {
        return Err(LithoError::Config {
            detail: "development rate must be strictly positive".into(),
        });
    }
    let (nz, ny, nx) = (grid.nz, grid.ny, grid.nx);
    let (hx, hy, hz) = (grid.dx, grid.dy, grid.dz);
    let mut s = Tensor::full(&grid.shape3(), f32::INFINITY);
    {
        let sd = s.data_mut();
        let rd = rate.data();
        for y in 0..ny {
            for x in 0..nx {
                let idx = y * nx + x;
                sd[idx] = 0.5 * hz / rd[idx];
            }
        }
    }
    let rd = rate.data().to_vec();
    let at = |z: usize, y: usize, x: usize| (z * ny + y) * nx + x;
    let _span = peb_obs::span("litho.eikonal");
    let mut rounds = 0usize;
    loop {
        let mut max_change = 0f32;
        // The 8 sweep orderings of (z, y, x).
        peb_obs::count(peb_obs::Counter::EikonalSweeps, 8);
        for dir in 0..8u8 {
            let zs: Box<dyn Iterator<Item = usize>> = if dir & 1 == 0 {
                Box::new(0..nz)
            } else {
                Box::new((0..nz).rev())
            };
            for z in zs {
                let ys: Box<dyn Iterator<Item = usize>> = if dir & 2 == 0 {
                    Box::new(0..ny)
                } else {
                    Box::new((0..ny).rev())
                };
                for y in ys {
                    let xs: Box<dyn Iterator<Item = usize>> = if dir & 4 == 0 {
                        Box::new(0..nx)
                    } else {
                        Box::new((0..nx).rev())
                    };
                    for x in xs {
                        let sd = s.data();
                        let ax = neighbour_min(sd, x, nx, |i| at(z, y, i));
                        let ay = neighbour_min(sd, y, ny, |j| at(z, j, x));
                        // z: only the voxel above feeds the front downward
                        // at z=0 (the surface is the source); both
                        // neighbours elsewhere.
                        let az = if z == 0 {
                            if nz > 1 {
                                sd[at(1, y, x)]
                            } else {
                                f32::INFINITY
                            }
                        } else if z + 1 == nz {
                            sd[at(z - 1, y, x)]
                        } else {
                            sd[at(z - 1, y, x)].min(sd[at(z + 1, y, x)])
                        };
                        let slowness = 1.0 / rd[at(z, y, x)];
                        let u = godunov_update(&[(ax, hx), (ay, hy), (az, hz)], slowness);
                        let idx = at(z, y, x);
                        let cur = s.data()[idx];
                        if u < cur {
                            max_change = max_change.max(cur - u);
                            s.data_mut()[idx] = u;
                        }
                    }
                }
            }
        }
        rounds += 1;
        if max_change < cfg.tol || rounds >= cfg.max_rounds {
            break;
        }
    }
    Ok(s)
}

fn neighbour_min(sd: &[f32], i: usize, n: usize, at: impl Fn(usize) -> usize) -> f32 {
    let lo = if i > 0 { sd[at(i - 1)] } else { f32::INFINITY };
    let hi = if i + 1 < n {
        sd[at(i + 1)]
    } else {
        f32::INFINITY
    };
    lo.min(hi)
}

/// Godunov upwind solve of `Σ ((u − aᵢ)/hᵢ)₊² = s²` for `u`, adding axes
/// in order of increasing neighbour value.
fn godunov_update(axes: &[(f32, f32); 3], slowness: f32) -> f32 {
    let mut sorted: Vec<(f32, f32)> = axes
        .iter()
        .copied()
        .filter(|(a, _)| a.is_finite())
        .collect();
    if sorted.is_empty() {
        return f32::INFINITY;
    }
    sorted.sort_by(|l, r| l.0.total_cmp(&r.0));
    // Try with 1, then 2, then 3 active axes.
    let mut u = sorted[0].0 + slowness * sorted[0].1;
    for m in 2..=sorted.len() {
        if u <= sorted[m - 1].0 {
            break;
        }
        // Solve Σ_{i<m} ((u − aᵢ)/hᵢ)² = s².
        let mut alpha = 0f64; // Σ 1/hᵢ²
        let mut beta = 0f64; // Σ aᵢ/hᵢ²
        let mut gamma = 0f64; // Σ aᵢ²/hᵢ²
        for &(a, h) in &sorted[..m] {
            let w = 1.0 / (h as f64 * h as f64);
            alpha += w;
            beta += a as f64 * w;
            gamma += (a as f64) * (a as f64) * w;
        }
        let s2 = (slowness as f64) * (slowness as f64);
        let disc = beta * beta - alpha * (gamma - s2);
        if disc < 0.0 {
            break;
        }
        u = ((beta + disc.sqrt()) / alpha) as f32;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rate_gives_planar_front() {
        let grid = Grid::new(8, 8, 6, 4.0, 4.0, 10.0).unwrap();
        let rate = Tensor::full(&grid.shape3(), 2.0); // nm/s
        let s = solve_eikonal(&grid, &rate, EikonalConfig::default()).unwrap();
        // Depth of layer k is (k+0.5)·dz; arrival = depth / rate.
        for k in 0..grid.nz {
            let expect = grid.depth_of(k) / 2.0;
            let got = s.get(&[k, 4, 4]);
            assert!(
                (got - expect).abs() / expect < 0.05,
                "layer {k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn slow_region_blocks_front() {
        let grid = Grid::new(8, 8, 4, 4.0, 4.0, 10.0).unwrap();
        let mut rate = Tensor::full(&grid.shape3(), 10.0);
        // A slow slab at layer 1 except one fast column at (4, 4).
        for y in 0..8 {
            for x in 0..8 {
                if !(y == 4 && x == 4) {
                    rate.set(&[1, y, x], 0.001);
                }
            }
        }
        let s = solve_eikonal(&grid, &rate, EikonalConfig::default()).unwrap();
        // Below the slab, the point under the fast column is reached much
        // earlier than a far corner.
        assert!(s.get(&[2, 4, 4]) < s.get(&[2, 0, 0]) * 0.9);
    }

    #[test]
    fn arrival_increases_with_depth_for_uniform_rate() {
        let grid = Grid::new(8, 8, 5, 4.0, 4.0, 8.0).unwrap();
        let rate = Tensor::full(&grid.shape3(), 5.0);
        let s = solve_eikonal(&grid, &rate, EikonalConfig::default()).unwrap();
        for k in 1..grid.nz {
            assert!(s.get(&[k, 3, 3]) > s.get(&[k - 1, 3, 3]));
        }
    }

    #[test]
    fn lateral_development_occurs() {
        // Fast channel down one column, then the front spreads laterally
        // in a fast bottom layer.
        let grid = Grid::new(16, 16, 3, 4.0, 4.0, 10.0).unwrap();
        let mut rate = Tensor::full(&grid.shape3(), 0.001);
        for z in 0..3 {
            rate.set(&[z, 8, 8], 20.0);
        }
        for y in 0..16 {
            for x in 0..16 {
                rate.set(&[2, y, x], 20.0);
            }
        }
        let s = solve_eikonal(&grid, &rate, EikonalConfig::default()).unwrap();
        // Bottom layer far from the channel is reached via the channel +
        // lateral path, not by slow vertical development (which would take
        // ~25000 s).
        assert!(s.get(&[2, 8, 0]) < 100.0, "got {}", s.get(&[2, 8, 0]));
    }

    #[test]
    fn rejects_bad_inputs() {
        let grid = Grid::small();
        assert!(solve_eikonal(&grid, &Tensor::ones(&[1, 2, 3]), EikonalConfig::default()).is_err());
        let zero_rate = Tensor::zeros(&grid.shape3());
        assert!(solve_eikonal(&grid, &zero_rate, EikonalConfig::default()).is_err());
    }

    #[test]
    fn godunov_single_axis() {
        let u = godunov_update(
            &[(1.0, 2.0), (f32::INFINITY, 1.0), (f32::INFINITY, 1.0)],
            0.5,
        );
        assert!((u - 2.0).abs() < 1e-6); // 1.0 + 0.5·2.0
    }

    #[test]
    fn godunov_two_axes_matches_quadratic() {
        // a1 = a2 = 0, h = 1: u/√... → 2 (u/1)² = s² → u = s/√2.
        let u = godunov_update(&[(0.0, 1.0), (0.0, 1.0), (f32::INFINITY, 1.0)], 1.0);
        assert!((u - 1.0 / 2f32.sqrt()).abs() < 1e-5);
    }
}

/// Solves the same eikonal problem with the fast *iterative* method (FIM)
/// of Jeong & Whitaker — the solver the paper cites \[31\].
///
/// FIM maintains an active list of narrow-band voxels and relaxes them
/// until convergence, which parallelises better than sweeping on real
/// hardware; here it serves as an independent cross-check of the
/// fast-sweeping solver (the test suite asserts both agree) and as a
/// benchmark subject.
///
/// # Errors
///
/// Same contract as [`solve_eikonal`].
pub fn solve_eikonal_fim(grid: &Grid, rate: &Tensor, cfg: EikonalConfig) -> Result<Tensor> {
    if rate.shape() != grid.shape3() {
        return Err(LithoError::Config {
            detail: format!(
                "rate shape {:?} does not match grid {:?}",
                rate.shape(),
                grid.shape3()
            ),
        });
    }
    if rate.min_value() <= 0.0 {
        return Err(LithoError::Config {
            detail: "development rate must be strictly positive".into(),
        });
    }
    let (nz, ny, nx) = (grid.nz, grid.ny, grid.nx);
    let (hx, hy, hz) = (grid.dx, grid.dy, grid.dz);
    let n = nz * ny * nx;
    let at = |z: usize, y: usize, x: usize| (z * ny + y) * nx + x;
    let rd = rate.data();
    let mut s = vec![f32::INFINITY; n];
    let mut active = std::collections::VecDeque::new();
    let mut in_list = vec![false; n];
    // Source: the top layer, seeded like the sweeping solver.
    for y in 0..ny {
        for x in 0..nx {
            let idx = at(0, y, x);
            s[idx] = 0.5 * hz / rd[idx];
            // Its neighbours form the initial band.
            for (dz, dy, dx) in [
                (1isize, 0isize, 0isize),
                (0, 1, 0),
                (0, -1, 0),
                (0, 0, 1),
                (0, 0, -1),
            ] {
                let (zz, yy, xx) = (dz, y as isize + dy, x as isize + dx);
                if zz >= 0
                    && (zz as usize) < nz
                    && yy >= 0
                    && (yy as usize) < ny
                    && xx >= 0
                    && (xx as usize) < nx
                {
                    let nidx = at(zz as usize, yy as usize, xx as usize);
                    if !in_list[nidx] && s[nidx].is_infinite() {
                        in_list[nidx] = true;
                        active.push_back(nidx);
                    }
                }
            }
        }
    }
    let update = |s: &[f32], idx: usize| -> f32 {
        let z = idx / (ny * nx);
        let y = (idx / nx) % ny;
        let x = idx % nx;
        let axis_min = |lo: Option<usize>, hi: Option<usize>| -> f32 {
            let a = lo.map(|i| s[i]).unwrap_or(f32::INFINITY);
            let b = hi.map(|i| s[i]).unwrap_or(f32::INFINITY);
            a.min(b)
        };
        let ax = axis_min(
            (x > 0).then(|| at(z, y, x - 1)),
            (x + 1 < nx).then(|| at(z, y, x + 1)),
        );
        let ay = axis_min(
            (y > 0).then(|| at(z, y - 1, x)),
            (y + 1 < ny).then(|| at(z, y + 1, x)),
        );
        let az = if z == 0 {
            if nz > 1 {
                s[at(1, y, x)]
            } else {
                f32::INFINITY
            }
        } else if z + 1 == nz {
            s[at(z - 1, y, x)]
        } else {
            s[at(z - 1, y, x)].min(s[at(z + 1, y, x)])
        };
        godunov_update(&[(ax, hx), (ay, hy), (az, hz)], 1.0 / rd[idx])
    };
    let mut guard = 0usize;
    let guard_limit = n * 64; // generous convergence bound
    while let Some(idx) = active.pop_front() {
        in_list[idx] = false;
        guard += 1;
        if guard > guard_limit {
            break;
        }
        let new = update(&s, idx);
        if new < s[idx] - cfg.tol {
            s[idx] = new;
            // Re-activate neighbours that might improve.
            let z = idx / (ny * nx);
            let y = (idx / nx) % ny;
            let x = idx % nx;
            let mut push = |zz: isize, yy: isize, xx: isize| {
                if zz >= 0
                    && (zz as usize) < nz
                    && yy >= 0
                    && (yy as usize) < ny
                    && xx >= 0
                    && (xx as usize) < nx
                {
                    let nidx = at(zz as usize, yy as usize, xx as usize);
                    if !in_list[nidx] {
                        in_list[nidx] = true;
                        active.push_back(nidx);
                    }
                }
            };
            push(z as isize - 1, y as isize, x as isize);
            push(z as isize + 1, y as isize, x as isize);
            push(z as isize, y as isize - 1, x as isize);
            push(z as isize, y as isize + 1, x as isize);
            push(z as isize, y as isize, x as isize - 1);
            push(z as isize, y as isize, x as isize + 1);
        } else if new < s[idx] {
            s[idx] = new;
        }
    }
    Ok(Tensor::from_vec(s, &grid.shape3())?)
}

#[cfg(test)]
mod fim_tests {
    use super::*;

    #[test]
    fn fim_matches_fast_sweeping_uniform() {
        let grid = Grid::new(16, 16, 6, 4.0, 4.0, 10.0).unwrap();
        let rate = Tensor::full(&grid.shape3(), 3.0);
        let fsm = solve_eikonal(&grid, &rate, EikonalConfig::default()).unwrap();
        let fim = solve_eikonal_fim(&grid, &rate, EikonalConfig::default()).unwrap();
        assert!(
            fsm.max_abs_diff(&fim) < 0.05,
            "solvers diverge: {}",
            fsm.max_abs_diff(&fim)
        );
    }

    #[test]
    fn fim_matches_fast_sweeping_heterogeneous() {
        use rand::{rngs::StdRng, SeedableRng};
        let grid = Grid::new(16, 16, 4, 4.0, 4.0, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let rate = Tensor::rand_uniform(&grid.shape3(), 0.5, 20.0, &mut rng);
        let fsm = solve_eikonal(&grid, &rate, EikonalConfig::default()).unwrap();
        let fim = solve_eikonal_fim(&grid, &rate, EikonalConfig::default()).unwrap();
        // Relative agreement on the (finite) arrival times.
        let mut max_rel = 0f32;
        for (a, b) in fsm.data().iter().zip(fim.data()) {
            if a.is_finite() && b.is_finite() {
                max_rel = max_rel.max((a - b).abs() / a.abs().max(1.0));
            }
        }
        assert!(max_rel < 0.02, "relative mismatch {max_rel}");
    }

    #[test]
    fn fim_rejects_bad_inputs() {
        let grid = Grid::small();
        assert!(
            solve_eikonal_fim(&grid, &Tensor::ones(&[1, 1, 1]), EikonalConfig::default()).is_err()
        );
    }
}
