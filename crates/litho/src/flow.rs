//! End-to-end rigorous simulation flow (the S-Litho stand-in).

use std::time::{Duration, Instant};

use peb_tensor::Tensor;

use crate::{
    measure_contact_cds, solve_eikonal, ContactCd, DillParams, EikonalConfig, Grid, MackParams,
    MaskClip, OpticsParams, PebParams, PebSolver, Result, TimeScheme,
};

/// All artefacts of one rigorous simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// 3-D aerial image `[D, H, W]`.
    pub aerial: Tensor,
    /// Initial photoacid `[A]₀`.
    pub acid0: Tensor,
    /// Final photoacid after the bake.
    pub acid: Tensor,
    /// Final inhibitor `[I]` — the PEB latent image the models predict.
    pub inhibitor: Tensor,
    /// Development-rate field `R` (nm/s).
    pub rate: Tensor,
    /// Eikonal arrival-time field `S` (s).
    pub arrival: Tensor,
    /// Per-contact CDs at the bottom layer.
    pub cds: Vec<ContactCd>,
    /// Wall-clock time of the PEB step alone (the paper's runtime
    /// comparison point: learned models replace exactly this step).
    pub peb_elapsed: Duration,
    /// Wall-clock time of the entire flow.
    pub total_elapsed: Duration,
}

/// One-call pipeline from mask clip to resist profile.
///
/// # Example
///
/// ```
/// use peb_litho::{Grid, LithoFlow, MaskConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = Grid::small();
/// let clip = MaskConfig::demo(grid.nx).generate(42)?;
/// let sim = LithoFlow::new(grid).run(&clip)?;
/// assert!(sim.inhibitor.min_value() < 0.9); // deprotection happened
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LithoFlow {
    /// Simulation grid.
    pub grid: Grid,
    /// Optical model.
    pub optics: OpticsParams,
    /// Exposure model.
    pub dill: DillParams,
    /// Bake parameters.
    pub peb: PebParams,
    /// Development-rate model.
    pub mack: MackParams,
    /// Eikonal solver settings.
    pub eikonal: EikonalConfig,
    /// Time scheme for the PEB solver.
    pub scheme: TimeScheme,
    /// Depth layer at which CDs are measured (default: bottom).
    pub cd_layer: usize,
}

impl LithoFlow {
    /// Paper-parameter flow on the given grid.
    pub fn new(grid: Grid) -> Self {
        LithoFlow {
            grid,
            optics: OpticsParams::paper(),
            dill: DillParams::paper(),
            peb: PebParams::paper(),
            mack: MackParams::paper(),
            eikonal: EikonalConfig::default(),
            scheme: TimeScheme::ImplicitLod,
            cd_layer: grid.nz - 1,
        }
    }

    /// Runs the full chain on one mask clip.
    ///
    /// # Errors
    ///
    /// Propagates configuration and numeric errors from each stage.
    pub fn run(&self, clip: &MaskClip) -> Result<Simulation> {
        let t0 = Instant::now();
        let aerial = self.optics.aerial_image(&self.grid, clip)?;
        let acid0 = self.dill.photoacid(&aerial);
        let solver = PebSolver::new(self.peb, self.grid, self.scheme)?;
        let peb_start = Instant::now();
        let state = solver.run(&acid0)?;
        let peb_elapsed = peb_start.elapsed();
        let (arrival, rate, cds) = self.develop(&state.inhibitor, clip)?;
        Ok(Simulation {
            aerial,
            acid0,
            acid: state.acid,
            inhibitor: state.inhibitor,
            rate,
            arrival,
            cds,
            peb_elapsed,
            total_elapsed: t0.elapsed(),
        })
    }

    /// Development + metrology for an inhibitor field — used both on the
    /// rigorous output and on model predictions (the paper evaluates CD
    /// error by pushing predicted inhibitors through this same chain).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the eikonal and metrology
    /// stages.
    pub fn develop(
        &self,
        inhibitor: &Tensor,
        clip: &MaskClip,
    ) -> Result<(Tensor, Tensor, Vec<ContactCd>)> {
        let rate = self.mack.rate_field(inhibitor);
        let arrival = solve_eikonal(&self.grid, &rate, self.eikonal)?;
        let cds = measure_contact_cds(
            &self.grid,
            &arrival,
            self.mack.duration,
            &clip.contacts,
            self.cd_layer,
        )?;
        Ok((arrival, rate, cds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaskConfig;

    #[test]
    fn full_flow_produces_consistent_artefacts() {
        let grid = Grid::small();
        let clip = MaskConfig::demo(grid.nx).generate(1).unwrap();
        let flow = LithoFlow::new(grid);
        let sim = flow.run(&clip).unwrap();
        assert_eq!(sim.inhibitor.shape(), &grid.shape3());
        // Concentrations stay physical.
        assert!(sim.inhibitor.min_value() >= 0.0);
        assert!(sim.inhibitor.max_value() <= 1.0 + 1e-5);
        assert!(sim.acid0.min_value() >= 0.0);
        // Deprotection happened under contacts, protection far away.
        assert!(sim.inhibitor.min_value() < 0.5);
        assert!(sim.inhibitor.max_value() > 0.9);
        // Development rates bounded by the Mack limits.
        assert!(sim.rate.max_value() <= flow.mack.r_max);
        assert!(sim.rate.min_value() >= flow.mack.r_min);
        assert!(!sim.cds.is_empty());
        assert!(sim.peb_elapsed <= sim.total_elapsed);
    }

    #[test]
    fn contacts_print_where_exposed() {
        let grid = Grid::small();
        let mut cfg = MaskConfig::demo(grid.nx);
        cfg.style = crate::ClipStyle::RegularArray;
        cfg.fill_probability = 1.0;
        let clip = cfg.generate(7).unwrap();
        let sim = LithoFlow::new(grid).run(&clip).unwrap();
        let opened = sim.cds.iter().filter(|c| c.open).count();
        assert!(
            opened * 2 >= sim.cds.len(),
            "expected most contacts open, got {opened}/{}",
            sim.cds.len()
        );
        for cd in sim.cds.iter().filter(|c| c.open) {
            assert!(cd.cd_x_nm > 0.0 && cd.cd_x_nm < grid.window_nm().0);
        }
    }

    #[test]
    fn develop_is_reusable_on_predictions() {
        // A slightly perturbed inhibitor must yield nearby CDs.
        let grid = Grid::small();
        let clip = MaskConfig::demo(grid.nx).generate(3).unwrap();
        let flow = LithoFlow::new(grid);
        let sim = flow.run(&clip).unwrap();
        let perturbed = sim.inhibitor.map(|v| (v + 0.01).min(1.0));
        let (_, _, cds) = flow.develop(&perturbed, &clip).unwrap();
        for (a, b) in sim.cds.iter().zip(&cds) {
            if a.open && b.open {
                assert!((a.cd_x_nm - b.cd_x_nm).abs() < 20.0);
            }
        }
    }
}
