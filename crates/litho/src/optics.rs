//! Simplified partially-coherent aerial-image model.
//!
//! The paper's optical step is S-Litho's rigorous Abbe/Hopkins imaging at
//! λ = 193 nm, NA = 1.35. We replace it with a Gaussian point-spread model
//! whose width is set by the Rayleigh resolution of that system, broadened
//! with depth (defocus through the resist), attenuated by absorption, and
//! modulated by a standing-wave term — the depth structure whose smoothing
//! is the whole point of PEB (§I of the paper). This preserves the aspects
//! the learning task sees: band-limited 2-D structure per depth level and
//! smooth, causal variation along z (paper Fig. 4).

use serde::{Deserialize, Serialize};

use peb_fft::convolve2d_periodic;
use peb_tensor::Tensor;

use crate::{Grid, LithoError, MaskClip, Result};

/// Optical model parameters (lengths in nanometres).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticsParams {
    /// Exposure wavelength. Paper: 193 nm (ArF).
    pub wavelength_nm: f32,
    /// Numerical aperture. Paper: 1.35 (immersion).
    pub na: f32,
    /// Point-spread σ at best focus as a fraction of the Rayleigh
    /// resolution `0.61 λ / NA`.
    pub psf_sigma_frac: f32,
    /// Defocus broadening slope: added σ per nm of depth.
    pub defocus_slope: f32,
    /// Resist absorption coefficient (1/nm); intensity decays as
    /// `exp(−α·z)`.
    pub absorption: f32,
    /// Standing-wave relative amplitude in `[0, 1)`.
    pub standing_wave: f32,
    /// Resist refractive index (sets the standing-wave period `λ / 2n`).
    pub refractive_index: f32,
}

impl OpticsParams {
    /// Paper §IV settings with moderate resist constants.
    pub fn paper() -> Self {
        OpticsParams {
            wavelength_nm: 193.0,
            na: 1.35,
            psf_sigma_frac: 0.2,
            defocus_slope: 0.03,
            absorption: 0.004,
            standing_wave: 0.15,
            refractive_index: 1.7,
        }
    }

    /// Rayleigh resolution `0.61 λ / NA` in nm.
    pub fn rayleigh_nm(&self) -> f32 {
        0.61 * self.wavelength_nm / self.na
    }

    /// PSF σ (nm) at depth `z_nm` below the resist surface.
    pub fn sigma_at(&self, z_nm: f32) -> f32 {
        let s0 = self.psf_sigma_frac * self.rayleigh_nm();
        (s0 * s0 + (self.defocus_slope * z_nm).powi(2)).sqrt()
    }

    /// Computes the 3-D aerial image `[D, H, W]` of a mask clip.
    ///
    /// Intensities are normalised so that a fully open mask at the surface
    /// gives 1.0 before absorption.
    ///
    /// # Errors
    ///
    /// Returns an error if the grid and mask disagree or FFT sizes are
    /// invalid.
    pub fn aerial_image(&self, grid: &Grid, mask: &MaskClip) -> Result<Tensor> {
        let _span = peb_obs::span("litho.aerial");
        if mask.pattern.shape() != [grid.ny, grid.nx] {
            return Err(LithoError::Config {
                detail: format!(
                    "mask shape {:?} does not match grid {:?}",
                    mask.pattern.shape(),
                    grid.shape2()
                ),
            });
        }
        let mut slices: Vec<Tensor> = Vec::with_capacity(grid.nz);
        for k in 0..grid.nz {
            let z = grid.depth_of(k);
            let sigma_px = self.sigma_at(z) / grid.dx;
            let kernel = gaussian_kernel_periodic(grid.ny, grid.nx, sigma_px, grid.dy / grid.dx);
            let img = convolve2d_periodic(&mask.pattern, &kernel)?;
            let atten = (-self.absorption * z).exp();
            let phase =
                2.0 * std::f32::consts::TAU * self.refractive_index * z / self.wavelength_nm;
            let swing = 1.0 + self.standing_wave * phase.cos();
            slices.push(img.map(|v| (v * atten * swing).max(0.0)));
        }
        let refs: Vec<&Tensor> = slices.iter().collect();
        let stacked = Tensor::concat(&refs, 0)?;
        Ok(stacked.reshape(&[grid.nz, grid.ny, grid.nx])?)
    }
}

impl Default for OpticsParams {
    fn default() -> Self {
        OpticsParams::paper()
    }
}

/// Unit-sum periodic Gaussian kernel with its peak at `(0, 0)` (wrapped
/// corners), ready for [`convolve2d_periodic`]. `aspect` scales the y
/// spacing relative to x.
fn gaussian_kernel_periodic(ny: usize, nx: usize, sigma_px: f32, aspect: f32) -> Tensor {
    let s2 = 2.0 * sigma_px * sigma_px;
    let mut k = Tensor::zeros(&[ny, nx]);
    {
        let data = k.data_mut();
        for y in 0..ny {
            // Wrapped (periodic) displacement from the origin.
            let dy = {
                let d = y.min(ny - y) as f32;
                d * aspect
            };
            for x in 0..nx {
                let dx = x.min(nx - x) as f32;
                data[y * nx + x] = (-(dx * dx + dy * dy) / s2).exp();
            }
        }
    }
    let total = k.sum();
    k.map(|v| v / total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaskConfig;

    #[test]
    fn open_frame_gives_attenuated_unity() {
        // A fully open mask should give intensity ≈ exp(-αz)·swing.
        let grid = Grid::small();
        let clip = MaskClip {
            pattern: Tensor::ones(&[grid.ny, grid.nx]),
            contacts: vec![],
            style: crate::ClipStyle::Random,
            seed: 0,
        };
        let p = OpticsParams::paper();
        let img = p.aerial_image(&grid, &clip).unwrap();
        for k in 0..grid.nz {
            let z = grid.depth_of(k);
            let phase = 2.0 * std::f32::consts::TAU * p.refractive_index * z / p.wavelength_nm;
            let expect = (-p.absorption * z).exp() * (1.0 + p.standing_wave * phase.cos());
            let got = img.slice_axis(0, k, k + 1).unwrap().mean();
            assert!((got - expect).abs() < 1e-3, "layer {k}: {got} vs {expect}");
        }
    }

    #[test]
    fn contacts_are_brighter_than_background() {
        let grid = Grid::small();
        let clip = MaskConfig::demo(grid.nx).generate(3).unwrap();
        let img = OpticsParams::paper().aerial_image(&grid, &clip).unwrap();
        let top = img.slice_axis(0, 0, 1).unwrap();
        let c = &clip.contacts[0];
        let centre = top.get(&[0, c.cy.round() as usize, c.cx.round() as usize]);
        assert!(
            centre > top.mean(),
            "centre {centre} vs mean {}",
            top.mean()
        );
        assert!(img.min_value() >= 0.0);
    }

    #[test]
    fn deeper_layers_are_dimmer_on_average() {
        let grid = Grid::small();
        let clip = MaskConfig::demo(grid.nx).generate(5).unwrap();
        let mut p = OpticsParams::paper();
        p.standing_wave = 0.0; // isolate absorption
        let img = p.aerial_image(&grid, &clip).unwrap();
        let m0 = img.slice_axis(0, 0, 1).unwrap().mean();
        let mlast = img.slice_axis(0, grid.nz - 1, grid.nz).unwrap().mean();
        assert!(mlast < m0);
    }

    #[test]
    fn defocus_blurs_deeper_layers() {
        // Peak contrast (max - mean) should drop with depth when defocus
        // dominates.
        let grid = Grid::small();
        let clip = MaskConfig::demo(grid.nx).generate(6).unwrap();
        let mut p = OpticsParams::paper();
        p.standing_wave = 0.0;
        p.absorption = 0.0;
        p.defocus_slope = 0.3;
        let img = p.aerial_image(&grid, &clip).unwrap();
        let contrast = |k: usize| {
            let s = img.slice_axis(0, k, k + 1).unwrap();
            s.max_value() - s.mean()
        };
        assert!(contrast(grid.nz - 1) < contrast(0));
    }

    #[test]
    fn kernel_is_normalised_and_centred() {
        let k = gaussian_kernel_periodic(16, 16, 2.0, 1.0);
        assert!((k.sum() - 1.0).abs() < 1e-5);
        assert_eq!(k.argmax(), 0); // peak at origin for wrapped kernels
                                   // Symmetry: k(1, 0) == k(15, 0).
        assert!((k.get(&[1, 0]) - k.get(&[15, 0])).abs() < 1e-7);
    }

    #[test]
    fn mismatched_grid_rejected() {
        let grid = Grid::small();
        let clip = MaskConfig::demo(64).generate(1).unwrap(); // 64 ≠ 32
        assert!(OpticsParams::paper().aerial_image(&grid, &clip).is_err());
    }
}
