//! Simulation grid geometry.

use serde::{Deserialize, Serialize};

use crate::{LithoError, Result};

/// A rectilinear simulation grid.
///
/// `[D, H, W]` tensors index as `(z, y, x)` with depth index 0 at the
/// resist top surface. The paper's production setting is a 2×2 µm² window
/// at 2 nm x/y and 1 nm z resolution, 80 nm resist (so 1000×1000×80); the
/// defaults here are CPU-scale but keep the same proportions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Number of samples along x (tensor axis W). Must be a power of two.
    pub nx: usize,
    /// Number of samples along y (tensor axis H). Must be a power of two.
    pub ny: usize,
    /// Number of samples along z (tensor axis D), top surface first.
    pub nz: usize,
    /// x sample spacing in nanometres.
    pub dx: f32,
    /// y sample spacing in nanometres.
    pub dy: f32,
    /// z sample spacing in nanometres.
    pub dz: f32,
}

impl Grid {
    /// Creates a grid, validating extents.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Config`] when `nx`/`ny` are not powers of two
    /// (FFT requirement) or any spacing is non-positive.
    pub fn new(nx: usize, ny: usize, nz: usize, dx: f32, dy: f32, dz: f32) -> Result<Self> {
        for (name, n) in [("nx", nx), ("ny", ny)] {
            if n == 0 || n & (n - 1) != 0 {
                return Err(LithoError::Config {
                    detail: format!("{name}={n} must be a nonzero power of two"),
                });
            }
        }
        if nz == 0 {
            return Err(LithoError::Config {
                detail: "nz must be nonzero".into(),
            });
        }
        if dx <= 0.0 || dy <= 0.0 || dz <= 0.0 {
            return Err(LithoError::Config {
                detail: format!("spacings must be positive, got ({dx}, {dy}, {dz})"),
            });
        }
        Ok(Grid {
            nx,
            ny,
            nz,
            dx,
            dy,
            dz,
        })
    }

    /// CPU-scale demo grid: 32×32 at 4 nm, 8 depth levels at 10 nm
    /// (80 nm resist as in the paper, coarser sampling).
    pub fn small() -> Self {
        Grid {
            nx: 32,
            ny: 32,
            nz: 8,
            dx: 4.0,
            dy: 4.0,
            dz: 10.0,
        }
    }

    /// Default experiment grid: 64×64 at 4 nm (256 nm window), 16 depth
    /// levels at 5 nm (80 nm resist).
    pub fn medium() -> Self {
        Grid {
            nx: 64,
            ny: 64,
            nz: 16,
            dx: 4.0,
            dy: 4.0,
            dz: 5.0,
        }
    }

    /// Shape of a single-depth field: `[H, W]`.
    pub fn shape2(&self) -> [usize; 2] {
        [self.ny, self.nx]
    }

    /// Shape of a volume field: `[D, H, W]`.
    pub fn shape3(&self) -> [usize; 3] {
        [self.nz, self.ny, self.nx]
    }

    /// Number of voxels in a volume field.
    pub fn voxels(&self) -> usize {
        self.nz * self.ny * self.nx
    }

    /// Physical window size `(x, y)` in nanometres.
    pub fn window_nm(&self) -> (f32, f32) {
        (self.nx as f32 * self.dx, self.ny as f32 * self.dy)
    }

    /// Resist thickness in nanometres.
    pub fn thickness_nm(&self) -> f32 {
        self.nz as f32 * self.dz
    }

    /// Depth (nm below the top surface) of layer `k`'s voxel centre.
    pub fn depth_of(&self, k: usize) -> f32 {
        (k as f32 + 0.5) * self.dz
    }
}

impl Default for Grid {
    fn default() -> Self {
        Grid::medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Grid::new(31, 32, 8, 2.0, 2.0, 1.0).is_err());
        assert!(Grid::new(32, 32, 0, 2.0, 2.0, 1.0).is_err());
        assert!(Grid::new(32, 32, 8, -1.0, 2.0, 1.0).is_err());
        assert!(Grid::new(32, 32, 8, 2.0, 2.0, 1.0).is_ok());
    }

    #[test]
    fn geometry_helpers() {
        let g = Grid::medium();
        assert_eq!(g.shape3(), [16, 64, 64]);
        assert_eq!(g.voxels(), 16 * 64 * 64);
        assert_eq!(g.window_nm(), (256.0, 256.0));
        assert_eq!(g.thickness_nm(), 80.0);
        assert_eq!(g.depth_of(0), 2.5);
    }
}
