//! Process-window analysis: exposure-latitude and depth-of-focus sweeps.
//!
//! Lithographers qualify a process by how much the printed CD moves under
//! dose and focus perturbations. This module sweeps the rigorous flow
//! over dose scale factors (and, through the optics model's defocus
//! term, focus offsets) and reports per-condition mean CDs — the kind of
//! downstream study the neural PEB solvers of the paper are meant to
//! accelerate.

use serde::{Deserialize, Serialize};

use crate::{LithoFlow, MaskClip, Result};

/// One condition of a process-window sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessPoint {
    /// Dose scale factor applied to the Dill exponent (1.0 = nominal).
    pub dose_scale: f32,
    /// Additional defocus slope (nm of σ per nm of depth) added to the
    /// optics model (0.0 = nominal focus).
    pub defocus_offset: f32,
    /// Mean printed CD in x over open contacts (nm); 0 when nothing
    /// printed.
    pub mean_cd_x_nm: f32,
    /// Fraction of contacts that opened.
    pub open_fraction: f32,
}

/// Sweeps dose scale factors at nominal focus.
///
/// # Errors
///
/// Propagates simulation errors from any condition.
pub fn dose_sweep(
    flow: &LithoFlow,
    clip: &MaskClip,
    dose_scales: &[f32],
) -> Result<Vec<ProcessPoint>> {
    sweep(flow, clip, dose_scales.iter().map(|&d| (d, 0.0)))
}

/// Sweeps focus offsets at nominal dose.
///
/// # Errors
///
/// Propagates simulation errors from any condition.
pub fn focus_sweep(
    flow: &LithoFlow,
    clip: &MaskClip,
    defocus_offsets: &[f32],
) -> Result<Vec<ProcessPoint>> {
    sweep(flow, clip, defocus_offsets.iter().map(|&f| (1.0, f)))
}

fn sweep(
    flow: &LithoFlow,
    clip: &MaskClip,
    conditions: impl Iterator<Item = (f32, f32)>,
) -> Result<Vec<ProcessPoint>> {
    let mut out = Vec::new();
    for (dose_scale, defocus_offset) in conditions {
        let mut f = flow.clone();
        f.dill.c_dose *= dose_scale;
        f.optics.defocus_slope += defocus_offset;
        let sim = f.run(clip)?;
        let open: Vec<_> = sim.cds.iter().filter(|c| c.open).collect();
        let mean_cd_x_nm = if open.is_empty() {
            0.0
        } else {
            open.iter().map(|c| c.cd_x_nm as f64).sum::<f64>() as f32 / open.len() as f32
        };
        out.push(ProcessPoint {
            dose_scale,
            defocus_offset,
            mean_cd_x_nm,
            open_fraction: open.len() as f32 / sim.cds.len().max(1) as f32,
        });
    }
    Ok(out)
}

/// Exposure latitude: the relative dose range over which the mean CD
/// stays within `±tolerance_nm` of its nominal (dose-scale-1.0) value.
///
/// Returns `None` when the sweep does not contain the nominal point or
/// nothing printed there.
pub fn exposure_latitude(points: &[ProcessPoint], tolerance_nm: f32) -> Option<f32> {
    let nominal = points
        .iter()
        .find(|p| (p.dose_scale - 1.0).abs() < 1e-6 && p.mean_cd_x_nm > 0.0)?;
    let in_spec: Vec<&ProcessPoint> = points
        .iter()
        .filter(|p| {
            p.mean_cd_x_nm > 0.0 && (p.mean_cd_x_nm - nominal.mean_cd_x_nm).abs() <= tolerance_nm
        })
        .collect();
    let lo = in_spec
        .iter()
        .map(|p| p.dose_scale)
        .fold(f32::INFINITY, f32::min);
    let hi = in_spec
        .iter()
        .map(|p| p.dose_scale)
        .fold(f32::NEG_INFINITY, f32::max);
    (hi > lo).then_some(hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grid, MaskConfig};

    fn setup() -> (LithoFlow, MaskClip) {
        let grid = Grid::small();
        let mut flow = LithoFlow::new(grid);
        flow.peb.duration = 30.0; // keep the sweep fast in tests
        let mut cfg = MaskConfig::demo(grid.nx);
        cfg.style = crate::ClipStyle::RegularArray;
        cfg.fill_probability = 1.0;
        (flow, cfg.generate(3).expect("clip"))
    }

    #[test]
    fn cd_grows_with_dose() {
        let (flow, clip) = setup();
        let pts = dose_sweep(&flow, &clip, &[0.8, 1.0, 1.2]).unwrap();
        assert_eq!(pts.len(), 3);
        // More dose → more acid → more deprotection → larger holes.
        let printed: Vec<&ProcessPoint> = pts.iter().filter(|p| p.mean_cd_x_nm > 0.0).collect();
        assert!(printed.len() >= 2, "{pts:?}");
        for w in printed.windows(2) {
            assert!(
                w[1].mean_cd_x_nm >= w[0].mean_cd_x_nm - 1.0,
                "CD should not shrink with dose: {pts:?}"
            );
        }
    }

    #[test]
    fn underdose_closes_contacts() {
        let (flow, clip) = setup();
        let pts = dose_sweep(&flow, &clip, &[0.25, 1.0]).unwrap();
        assert!(pts[0].open_fraction <= pts[1].open_fraction, "{pts:?}");
    }

    #[test]
    fn defocus_changes_cd() {
        let (flow, clip) = setup();
        let pts = focus_sweep(&flow, &clip, &[0.0, 0.25]).unwrap();
        // Strong defocus blurs the image; printed CD must move.
        assert!(
            (pts[0].mean_cd_x_nm - pts[1].mean_cd_x_nm).abs() > 0.5
                || pts[1].open_fraction < pts[0].open_fraction,
            "{pts:?}"
        );
    }

    #[test]
    fn exposure_latitude_brackets_nominal() {
        let pts = vec![
            ProcessPoint {
                dose_scale: 0.9,
                defocus_offset: 0.0,
                mean_cd_x_nm: 50.0,
                open_fraction: 1.0,
            },
            ProcessPoint {
                dose_scale: 1.0,
                defocus_offset: 0.0,
                mean_cd_x_nm: 55.0,
                open_fraction: 1.0,
            },
            ProcessPoint {
                dose_scale: 1.1,
                defocus_offset: 0.0,
                mean_cd_x_nm: 59.0,
                open_fraction: 1.0,
            },
            ProcessPoint {
                dose_scale: 1.2,
                defocus_offset: 0.0,
                mean_cd_x_nm: 70.0,
                open_fraction: 1.0,
            },
        ];
        let lat = exposure_latitude(&pts, 6.0).unwrap();
        assert!((lat - 0.2).abs() < 1e-6, "latitude {lat}");
        assert!(exposure_latitude(&pts[3..], 6.0).is_none());
    }
}
