//! 3-D resist-profile export.
//!
//! Writes the developed/remaining resist boundary as a Wavefront OBJ mesh
//! (axis-aligned quads on every voxel face separating resist from
//! developed space or the outside world), so profiles can be inspected in
//! any 3-D viewer. Complements the PGM/CSV outputs of the figure
//! binaries.

use std::fmt::Write as _;

use peb_tensor::Tensor;

use crate::{resist_profile, Grid, LithoError, Result};

/// Builds an OBJ mesh of the *remaining resist* after development.
///
/// `arrival` is the eikonal arrival-time field; voxels with
/// `arrival > t_dev` still contain resist. Coordinates are in
/// nanometres; +z points down into the resist (depth index 0 at the
/// top surface at z = 0).
///
/// # Errors
///
/// Returns [`LithoError::Config`] if `arrival` does not match the grid.
pub fn resist_profile_obj(grid: &Grid, arrival: &Tensor, t_dev: f32) -> Result<String> {
    if arrival.shape() != grid.shape3() {
        return Err(LithoError::Config {
            detail: format!(
                "arrival shape {:?} does not match grid {:?}",
                arrival.shape(),
                grid.shape3()
            ),
        });
    }
    let developed = resist_profile(arrival, t_dev);
    let (nz, ny, nx) = (grid.nz, grid.ny, grid.nx);
    let solid = |z: isize, y: isize, x: isize| -> bool {
        if z < 0 || z >= nz as isize || y < 0 || y >= ny as isize || x < 0 || x >= nx as isize {
            return false; // outside = empty
        }
        developed.get(&[z as usize, y as usize, x as usize]) < 0.5
    };
    let mut vertices: Vec<(f32, f32, f32)> = Vec::new();
    let mut faces: Vec<[usize; 4]> = Vec::new();
    let mut vertex_id = std::collections::HashMap::<(u32, u32, u32), usize>::new();
    let mut vid = |vertices: &mut Vec<(f32, f32, f32)>, gx: u32, gy: u32, gz: u32| -> usize {
        *vertex_id.entry((gx, gy, gz)).or_insert_with(|| {
            vertices.push((
                gx as f32 * grid.dx,
                gy as f32 * grid.dy,
                gz as f32 * grid.dz,
            ));
            vertices.len() - 1
        })
    };
    for z in 0..nz as isize {
        for y in 0..ny as isize {
            for x in 0..nx as isize {
                if !solid(z, y, x) {
                    continue;
                }
                let (gx, gy, gz) = (x as u32, y as u32, z as u32);
                // Emit a quad for every face adjacent to empty space.
                let mut quad = |corners: [(u32, u32, u32); 4]| {
                    let ids = corners.map(|(cx, cy, cz)| vid(&mut vertices, cx, cy, cz));
                    faces.push(ids);
                };
                if !solid(z, y, x - 1) {
                    quad([
                        (gx, gy, gz),
                        (gx, gy + 1, gz),
                        (gx, gy + 1, gz + 1),
                        (gx, gy, gz + 1),
                    ]);
                }
                if !solid(z, y, x + 1) {
                    quad([
                        (gx + 1, gy, gz),
                        (gx + 1, gy, gz + 1),
                        (gx + 1, gy + 1, gz + 1),
                        (gx + 1, gy + 1, gz),
                    ]);
                }
                if !solid(z, y - 1, x) {
                    quad([
                        (gx, gy, gz),
                        (gx, gy, gz + 1),
                        (gx + 1, gy, gz + 1),
                        (gx + 1, gy, gz),
                    ]);
                }
                if !solid(z, y + 1, x) {
                    quad([
                        (gx, gy + 1, gz),
                        (gx + 1, gy + 1, gz),
                        (gx + 1, gy + 1, gz + 1),
                        (gx, gy + 1, gz + 1),
                    ]);
                }
                if !solid(z - 1, y, x) {
                    quad([
                        (gx, gy, gz),
                        (gx + 1, gy, gz),
                        (gx + 1, gy + 1, gz),
                        (gx, gy + 1, gz),
                    ]);
                }
                if !solid(z + 1, y, x) {
                    quad([
                        (gx, gy, gz + 1),
                        (gx, gy + 1, gz + 1),
                        (gx + 1, gy + 1, gz + 1),
                        (gx + 1, gy, gz + 1),
                    ]);
                }
            }
        }
    }
    let mut obj = String::with_capacity(vertices.len() * 24 + faces.len() * 20);
    let _ = writeln!(
        obj,
        "# resist profile — {} vertices, {} quads",
        vertices.len(),
        faces.len()
    );
    for (x, y, z) in &vertices {
        let _ = writeln!(obj, "v {x} {y} {z}");
    }
    for f in &faces {
        // OBJ indices are 1-based.
        let _ = writeln!(obj, "f {} {} {} {}", f[0] + 1, f[1] + 1, f[2] + 1, f[3] + 1);
    }
    Ok(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(8, 8, 2, 4.0, 4.0, 10.0).unwrap()
    }

    #[test]
    fn undeveloped_block_is_a_closed_box() {
        let g = grid();
        let arrival = Tensor::full(&g.shape3(), 1e6); // all resist remains
        let obj = resist_profile_obj(&g, &arrival, 60.0).unwrap();
        // A solid box of n voxels has exactly the outer-surface faces:
        // 2·(8·8) + 2·(8·2) + 2·(8·2) = 192 quads.
        let faces = obj.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(faces, 2 * 64 + 4 * 16);
        // Header + at least one vertex line.
        assert!(obj.starts_with("# resist profile"));
        assert!(obj.contains("\nv "));
    }

    #[test]
    fn fully_developed_is_empty_mesh() {
        let g = grid();
        let arrival = Tensor::zeros(&g.shape3());
        let obj = resist_profile_obj(&g, &arrival, 60.0).unwrap();
        assert_eq!(obj.lines().filter(|l| l.starts_with("f ")).count(), 0);
    }

    #[test]
    fn hole_adds_interior_faces() {
        let g = grid();
        let mut arrival = Tensor::full(&g.shape3(), 1e6);
        // Open one column through both layers.
        arrival.set(&[0, 4, 4], 0.0);
        arrival.set(&[1, 4, 4], 0.0);
        let obj = resist_profile_obj(&g, &arrival, 60.0).unwrap();
        let solid_faces = 2 * 64 + 4 * 16;
        let faces = obj.lines().filter(|l| l.starts_with("f ")).count();
        // Removing the column removes its 2 top/bottom surface quads and
        // adds 8 interior side quads (4 sides × 2 layers).
        assert_eq!(faces, solid_faces - 2 + 8);
    }

    #[test]
    fn vertices_are_in_physical_units() {
        let g = grid();
        let arrival = Tensor::full(&g.shape3(), 1e6);
        let obj = resist_profile_obj(&g, &arrival, 60.0).unwrap();
        // The far corner vertex is at (nx·dx, ny·dy, nz·dz) = (32, 32, 20).
        assert!(obj.contains("v 32 32 20"));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let g = grid();
        assert!(resist_profile_obj(&g, &Tensor::zeros(&[1, 1, 1]), 60.0).is_err());
    }
}
