//! Resist profile evaluation from the development front.

use peb_tensor::Tensor;

/// Converts an arrival-time field into a developed/remaining profile.
///
/// Returns a `[D, H, W]` tensor with 1.0 where the resist has been removed
/// by time `t_dev` (i.e. `S ≤ t_dev`) and 0.0 where resist remains.
pub fn resist_profile(arrival: &Tensor, t_dev: f32) -> Tensor {
    arrival.map(|s| if s <= t_dev { 1.0 } else { 0.0 })
}

/// Fraction of the resist volume developed at `t_dev`.
pub fn developed_fraction(arrival: &Tensor, t_dev: f32) -> f32 {
    resist_profile(arrival, t_dev).mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_thresholds_arrival() {
        let s = Tensor::from_vec(vec![1.0, 59.9, 60.0, 60.1], &[4]).unwrap();
        let p = resist_profile(&s, 60.0);
        assert_eq!(p.data(), &[1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn developed_fraction_monotone_in_time() {
        let s = Tensor::linspace(0.0, 100.0, 11);
        let f1 = developed_fraction(&s, 10.0);
        let f2 = developed_fraction(&s, 50.0);
        let f3 = developed_fraction(&s, 100.0);
        assert!(f1 < f2 && f2 < f3);
        assert_eq!(f3, 1.0);
    }
}
