//! Dill exposure model: aerial image → initial photoacid.
//!
//! In positive-tone CAR, incident light decomposes the photoacid generator
//! (PAG). First-order Dill kinetics give a PAG conversion of
//! `1 − exp(−C · E)` for exposure dose `E`; the released photoacid is the
//! converted fraction. This is the paper's cited initial condition ("the
//! photoacid concentration is derived from the 3D aerial image via the
//! Dill model [26]").

use serde::{Deserialize, Serialize};

use peb_tensor::Tensor;

/// Dill model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DillParams {
    /// Dill C coefficient times the nominal dose: the exponent scale that
    /// turns the normalised aerial intensity into PAG conversion.
    pub c_dose: f32,
}

impl DillParams {
    /// Default setting, tuned so that 28 nm-class contacts print at their
    /// design size (+~15 nm bias) under the default optics: peak
    /// conversion ≈ 0.89 at unit aerial intensity, consistent with
    /// `[A]_sat = 0.9` from Table I.
    pub fn paper() -> Self {
        DillParams { c_dose: 2.2 }
    }

    /// Converts a 3-D aerial image into the initial normalised photoacid
    /// distribution `[A]₀ = 1 − exp(−c_dose · I)`.
    pub fn photoacid(&self, aerial: &Tensor) -> Tensor {
        let c = self.c_dose;
        // Clamp eagerly (no bitwise-safe fused clamp stage), then run the
        // scale → exp → 1−x tail as a single fused sweep.
        let clamped = aerial.map(|i| i.max(0.0));
        clamped
            .fused()
            .mul_scalar(-c)
            .exp()
            .sub_from_scalar(1.0)
            .eval()
    }
}

impl Default for DillParams {
    fn default() -> Self {
        DillParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_gives_zero_acid() {
        let acid = DillParams::paper().photoacid(&Tensor::zeros(&[2, 3, 4]));
        assert_eq!(acid.max_value(), 0.0);
    }

    #[test]
    fn unit_intensity_approaches_saturation() {
        let acid = DillParams::paper().photoacid(&Tensor::ones(&[1, 1, 1]));
        // 1 − exp(−2.2) ≈ 0.889, just under [A]_sat = 0.9.
        assert!((acid.item() - 0.889).abs() < 1e-3);
    }

    #[test]
    fn monotone_in_intensity() {
        let img = Tensor::linspace(0.0, 1.5, 16);
        let acid = DillParams::paper().photoacid(&img);
        for w in acid.data().windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(acid.max_value() < 1.0);
    }

    #[test]
    fn negative_intensity_is_clamped() {
        let img = Tensor::from_vec(vec![-0.5], &[1]).unwrap();
        assert_eq!(DillParams::paper().photoacid(&img).item(), 0.0);
    }
}
