//! Thomas algorithm for the tridiagonal systems of the implicit diffusion
//! sweeps.
//!
//! The production sweeps now factor the shared constant-coefficient
//! matrix once per axis and solve lines through `peb_simd::thomas`;
//! [`solve_tridiagonal`] is retained as the differential-test oracle that
//! pins the factored path bit for bit.

/// Solves a tridiagonal system `a[i]·x[i−1] + b[i]·x[i] + c[i]·x[i+1] =
/// d[i]` in place; the solution is written into `d`.
///
/// `a[0]` and `c[n−1]` are ignored. `scratch` must have length `n` and is
/// clobbered (callers reuse one buffer across millions of solves).
///
/// # Panics
///
/// Panics in debug builds if slice lengths disagree or a pivot vanishes
/// (cannot happen for the diagonally dominant diffusion matrices built by
/// the PEB solver).
#[cfg_attr(not(test), allow(dead_code))]
pub fn solve_tridiagonal(a: &[f32], b: &[f32], c: &[f32], d: &mut [f32], scratch: &mut [f32]) {
    let n = d.len();
    debug_assert!(a.len() == n && b.len() == n && c.len() == n && scratch.len() >= n);
    if n == 0 {
        return;
    }
    // Forward elimination storing the modified super-diagonal in scratch.
    let mut beta = b[0];
    debug_assert!(beta != 0.0, "zero pivot at row 0");
    d[0] /= beta;
    for i in 1..n {
        scratch[i] = c[i - 1] / beta;
        beta = b[i] - a[i] * scratch[i];
        debug_assert!(beta != 0.0, "zero pivot at row {i}");
        d[i] = (d[i] - a[i] * d[i - 1]) / beta;
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        d[i] -= scratch[i + 1] * d[i + 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn multiply(a: &[f32], b: &[f32], c: &[f32], x: &[f32]) -> Vec<f32> {
        let n = x.len();
        (0..n)
            .map(|i| {
                let mut v = b[i] * x[i];
                if i > 0 {
                    v += a[i] * x[i - 1];
                }
                if i + 1 < n {
                    v += c[i] * x[i + 1];
                }
                v
            })
            .collect()
    }

    #[test]
    fn solves_known_system() {
        // Diagonally dominant 4×4.
        let a = [0.0, -1.0, -1.0, -1.0];
        let b = [4.0, 4.0, 4.0, 4.0];
        let c = [-1.0, -1.0, -1.0, 0.0];
        let x_true = [1.0, 2.0, -1.0, 0.5];
        let mut d = multiply(&a, &b, &c, &x_true);
        let mut scratch = vec![0.0; 4];
        solve_tridiagonal(&a, &b, &c, &mut d, &mut scratch);
        for (got, want) in d.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-5, "{d:?}");
        }
    }

    #[test]
    fn identity_matrix_is_noop() {
        let n = 8;
        let a = vec![0.0; n];
        let b = vec![1.0; n];
        let c = vec![0.0; n];
        let mut d: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let orig = d.clone();
        let mut scratch = vec![0.0; n];
        solve_tridiagonal(&a, &b, &c, &mut d, &mut scratch);
        assert_eq!(d, orig);
    }

    #[test]
    fn factored_simd_path_matches_inline_solver_bitwise() {
        // Pins the production path (factor once + per-line replay via
        // peb-simd) to this in-line oracle, with the diffusion-style
        // coefficients implicit_axis builds.
        let r = 0.42f32;
        for n in [2usize, 3, 6, 33] {
            let a = vec![-r; n];
            let c = vec![-r; n];
            let mut b = vec![1.0 + 2.0 * r; n];
            b[0] = 1.0 + r;
            b[n - 1] = 1.0 + r;
            let mut want: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
            let mut got = want.clone();
            let mut scratch = vec![0.0; n];
            solve_tridiagonal(&a, &b, &c, &mut want, &mut scratch);
            let (mut beta, mut gamma) = (Vec::new(), Vec::new());
            peb_simd::thomas::factor_tridiagonal(&a, &b, &c, &mut beta, &mut gamma);
            peb_simd::thomas::solve_factored(&a, &beta, &gamma, &mut got);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn random_diagonally_dominant_roundtrip() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1usize, 2, 3, 17, 64] {
            let a: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..0.0)).collect();
            let c: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..0.0)).collect();
            let b: Vec<f32> = (0..n)
                .map(|i| {
                    2.5 + a.get(i).copied().unwrap_or(0.0).abs()
                        + c.get(i).copied().unwrap_or(0.0).abs()
                })
                .collect();
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut d = multiply(&a, &b, &c, &x);
            let mut scratch = vec![0.0; n];
            solve_tridiagonal(&a, &b, &c, &mut d, &mut scratch);
            for (got, want) in d.iter().zip(&x) {
                assert!((got - want).abs() < 1e-4);
            }
        }
    }
}
