//! Rigorous post-exposure-bake reaction–diffusion solver (Eqs. 1–4).
//!
//! Integrates the coupled system
//!
//! ```text
//! ∂[I]/∂t = −kc [I][A]                                   (catalysis, Eq. 1)
//! ∂[A]/∂t = −kr [A][B] + ∇·(D_A ∇[A])                    (Eq. 2)
//! ∂[B]/∂t = −kr [A][B] + ∇·(D_B ∇[B])                    (Eq. 3)
//! ```
//!
//! with zero-flux boundaries in x/y and a Robin condition for the acid at
//! the top resist surface, `D_A ∂[A]/∂z = h([A]_top − [A]_sat)` (Eq. 4).
//! Diffusion is anisotropic: the paper specifies separate normal (z) and
//! lateral (x/y) diffusion lengths, `L = √(2DT)` ⇒ `D = L²/(2T)`.
//!
//! Two time integrators are provided:
//!
//! * [`TimeScheme::ImplicitLod`] — locally one-dimensional (Lie-split)
//!   implicit sweeps per axis (Thomas solver). Unconditionally stable, so
//!   the paper's Δt = 0.1 s is usable even though `D_z,A ≈ 27 nm²/s` would
//!   limit an explicit scheme to Δt ≲ 0.02 s on a 1 nm z-grid.
//! * [`TimeScheme::ExplicitEuler`] — reference explicit scheme used for
//!   cross-validation at small Δt.
//!
//! Reaction and diffusion are combined by Strang splitting (half reaction,
//! full diffusion, half reaction); the reaction half-steps use RK4 for the
//! acid–base pair and an exact exponential update for the inhibitor.

use serde::{Deserialize, Serialize};

use peb_tensor::Tensor;

use crate::{Grid, LithoError, Result};

/// PEB physical parameters; defaults are the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PebParams {
    /// Acid normal (z) diffusion length `L_{N,A}` in nm. Table I: 70.
    pub normal_diff_len_a: f32,
    /// Base normal diffusion length `L_{N,B}` in nm. Table I: 15.
    pub normal_diff_len_b: f32,
    /// Acid lateral (x/y) diffusion length `L_{L,A}` in nm. Table I: 10.
    pub lateral_diff_len_a: f32,
    /// Base lateral diffusion length `L_{L,B}` in nm. Table I: 10.
    pub lateral_diff_len_b: f32,
    /// Catalysis coefficient `k_c` (1/s). Table I: 0.9.
    pub kc: f32,
    /// Acid–base neutralisation coefficient `k_r` (1/s). Table I: 8.6993.
    pub kr: f32,
    /// Acid surface transfer coefficient `h_A` (nm/s). Table I: 0.027.
    pub h_a: f32,
    /// Base surface transfer coefficient `h_B`. Table I: 0.
    pub h_b: f32,
    /// Acid saturation concentration `[A]_sat`. Table I: 0.9.
    pub a_sat: f32,
    /// Base saturation concentration `[B]_sat`. Table I: 0.
    pub b_sat: f32,
    /// Initial inhibitor `[I](t=0)`. Table I: 1.0.
    pub inhibitor0: f32,
    /// Initial base quencher `[B](t=0)`. Table I: 0.4.
    pub base0: f32,
    /// Baseline time step Δt in seconds. Table I: 0.1.
    pub dt: f32,
    /// Bake duration T in seconds. Table I: 90.
    pub duration: f32,
}

impl PebParams {
    /// The paper's Table I values.
    pub fn paper() -> Self {
        PebParams {
            normal_diff_len_a: 70.0,
            normal_diff_len_b: 15.0,
            lateral_diff_len_a: 10.0,
            lateral_diff_len_b: 10.0,
            kc: 0.9,
            kr: 8.6993,
            h_a: 0.027,
            h_b: 0.0,
            a_sat: 0.9,
            b_sat: 0.0,
            inhibitor0: 1.0,
            base0: 0.4,
            dt: 0.1,
            duration: 90.0,
        }
    }

    /// Acid diffusivities `(lateral, normal)` in nm²/s from `L = √(2DT)`.
    pub fn diffusivity_a(&self) -> (f32, f32) {
        let t = self.duration;
        (
            self.lateral_diff_len_a.powi(2) / (2.0 * t),
            self.normal_diff_len_a.powi(2) / (2.0 * t),
        )
    }

    /// Base diffusivities `(lateral, normal)` in nm²/s.
    pub fn diffusivity_b(&self) -> (f32, f32) {
        let t = self.duration;
        (
            self.lateral_diff_len_b.powi(2) / (2.0 * t),
            self.normal_diff_len_b.powi(2) / (2.0 * t),
        )
    }
}

impl Default for PebParams {
    fn default() -> Self {
        PebParams::paper()
    }
}

/// Time integration scheme for the diffusion operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeScheme {
    /// Locally one-dimensional implicit sweeps — unconditionally stable.
    ImplicitLod,
    /// Reference forward-Euler scheme — conditionally stable, used for
    /// solver cross-validation.
    ExplicitEuler,
}

/// Concentration fields at the end of (or during) the bake.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PebState {
    /// Photoacid `[A]`, shape `[D, H, W]`.
    pub acid: Tensor,
    /// Base quencher `[B]`, shape `[D, H, W]`.
    pub base: Tensor,
    /// Inhibitor `[I]`, shape `[D, H, W]`.
    pub inhibitor: Tensor,
}

/// The rigorous PEB solver, standing in for S-Litho's resist bake step.
#[derive(Debug, Clone)]
pub struct PebSolver {
    params: PebParams,
    grid: Grid,
    scheme: TimeScheme,
}

/// Boundary condition of one end of an implicit sweep line.
#[derive(Clone, Copy)]
enum EndBc {
    /// Reflective (zero-flux).
    Neumann,
    /// Robin in/out-diffusion: flux `h (u − sat)` with `h` in nm/s.
    Robin { h: f32, sat: f32 },
}

impl PebSolver {
    /// Creates a solver.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Config`] for non-positive Δt/duration, and for
    /// explicit integration when Δt violates the stability limit.
    pub fn new(params: PebParams, grid: Grid, scheme: TimeScheme) -> Result<Self> {
        if params.dt <= 0.0 || params.duration <= 0.0 {
            return Err(LithoError::Config {
                detail: format!(
                    "dt={} and duration={} must be positive",
                    params.dt, params.duration
                ),
            });
        }
        if scheme == TimeScheme::ExplicitEuler {
            let (dl_a, dn_a) = params.diffusivity_a();
            let (dl_b, dn_b) = params.diffusivity_b();
            let limit = |dl: f32, dn: f32| {
                0.5 / (dl / (grid.dx * grid.dx)
                    + dl / (grid.dy * grid.dy)
                    + dn / (grid.dz * grid.dz))
            };
            let max_dt = limit(dl_a, dn_a).min(limit(dl_b, dn_b));
            if params.dt > max_dt {
                return Err(LithoError::Config {
                    detail: format!(
                        "explicit scheme unstable: dt={} exceeds limit {max_dt:.4}",
                        params.dt
                    ),
                });
            }
        }
        Ok(PebSolver {
            params,
            grid,
            scheme,
        })
    }

    /// Parameters in use.
    pub fn params(&self) -> &PebParams {
        &self.params
    }

    /// Runs the bake from an initial photoacid field.
    ///
    /// Initial conditions follow the paper: uniform inhibitor
    /// (`inhibitor0`) and base (`base0`), photoacid from the Dill model.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Config`] if `acid0` does not match the grid.
    pub fn run(&self, acid0: &Tensor) -> Result<PebState> {
        let shape = self.grid.shape3();
        if acid0.shape() != shape {
            return Err(LithoError::Config {
                detail: format!(
                    "acid0 shape {:?} does not match grid {:?}",
                    acid0.shape(),
                    shape
                ),
            });
        }
        let mut state = PebState {
            acid: acid0.clone(),
            base: Tensor::full(&shape, self.params.base0),
            inhibitor: Tensor::full(&shape, self.params.inhibitor0),
        };
        let _span = peb_obs::span("litho.peb_run");
        let steps = (self.params.duration / self.params.dt).round().max(1.0) as usize;
        let dt = self.params.duration / steps as f32;
        for _ in 0..steps {
            let _step_span = peb_obs::span("litho.peb_step");
            self.reaction_half_step(&mut state, dt * 0.5);
            self.diffuse(&mut state.acid, self.params.diffusivity_a(), true, dt);
            self.diffuse(&mut state.base, self.params.diffusivity_b(), false, dt);
            self.reaction_half_step(&mut state, dt * 0.5);
        }
        Ok(state)
    }

    /// Strang half-step for the local reactions.
    ///
    /// The acid–base pair `(A, B)` evolves under `Ȧ = Ḃ = −kr·A·B` (RK4);
    /// the inhibitor uses the exact update
    /// `I ← I · exp(−kc · Ā · δt)` with `Ā` the trapezoidal mean of the
    /// acid over the sub-step.
    ///
    /// Every cell is independent (pointwise ODEs, libm `exp` on every
    /// path), so the element range fans out over the `peb-par` pool with
    /// bitwise-identical results at any thread count.
    fn reaction_half_step(&self, state: &mut PebState, dt: f32) {
        let _span = peb_obs::span("litho.reaction_half");
        let kr = self.params.kr;
        let kc = self.params.kc;
        let n = state.acid.len();
        let acid = peb_par::UnsafeSlice::new(state.acid.data_mut());
        let base = peb_par::UnsafeSlice::new(state.base.data_mut());
        let inhibitor = peb_par::UnsafeSlice::new(state.inhibitor.data_mut());
        peb_par::parallel_chunks_cost(n, n.div_ceil(64), 40, |range| {
            for idx in range {
                // SAFETY: chunk ranges are disjoint and each index touches
                // only its own element of the three fields.
                let a = unsafe { acid.get_mut(idx) };
                let b = unsafe { base.get_mut(idx) };
                let i = unsafe { inhibitor.get_mut(idx) };
                let a0 = *a;
                let (a1, b1) = rk4_neutralise(a0, *b, kr, dt);
                *a = a1.max(0.0);
                *b = b1.max(0.0);
                let mean_a = 0.5 * (a0 + *a);
                *i *= (-kc * mean_a * dt).exp();
            }
        });
    }

    /// One diffusion step for a species with `(lateral, normal)`
    /// diffusivities. `robin_top` enables the Eq. 4 surface condition at
    /// depth index 0 (acid only; the base has `h = 0` ⇒ Neumann).
    fn diffuse(&self, field: &mut Tensor, (d_lat, d_norm): (f32, f32), robin_top: bool, dt: f32) {
        let top_bc = if robin_top {
            EndBc::Robin {
                h: self.params.h_a,
                sat: self.params.a_sat,
            }
        } else if self.params.h_b > 0.0 {
            EndBc::Robin {
                h: self.params.h_b,
                sat: self.params.b_sat,
            }
        } else {
            EndBc::Neumann
        };
        match self.scheme {
            TimeScheme::ImplicitLod => {
                let (nz, ny, nx) = (self.grid.nz, self.grid.ny, self.grid.nx);
                let plane = ny * nx;
                let rx = d_lat * dt / (self.grid.dx * self.grid.dx);
                let ry = d_lat * dt / (self.grid.dy * self.grid.dy);
                let rz = d_norm * dt / (self.grid.dz * self.grid.dz);
                let data = field.data_mut();
                // Lie splitting: x, then y, then z implicit sweeps. The x
                // and y sweeps only couple cells within one z-plane, so
                // under `PEB_TILE` they stream cache-sized z-slabs: the y
                // sweep re-reads each slab while it is still resident from
                // the x sweep, instead of two full-volume passes. Per-line
                // arithmetic is untouched — tiled output is bitwise
                // identical to untiled.
                match peb_pool::tile::slab_items(plane * std::mem::size_of::<f32>(), nz) {
                    Some(sd) if sd < nz => {
                        let mut z0 = 0;
                        while z0 < nz {
                            let zl = sd.min(nz - z0);
                            let sub = &mut data[z0 * plane..(z0 + zl) * plane];
                            let sub_shape = [zl, ny, nx];
                            implicit_axis_on(
                                sub,
                                &sub_shape,
                                2,
                                rx,
                                EndBc::Neumann,
                                EndBc::Neumann,
                            );
                            implicit_axis_on(
                                sub,
                                &sub_shape,
                                1,
                                ry,
                                EndBc::Neumann,
                                EndBc::Neumann,
                            );
                            peb_obs::count(peb_obs::Counter::SlabPasses, 1);
                            z0 += zl;
                        }
                    }
                    _ => {
                        let shape = [nz, ny, nx];
                        implicit_axis_on(data, &shape, 2, rx, EndBc::Neumann, EndBc::Neumann);
                        implicit_axis_on(data, &shape, 1, ry, EndBc::Neumann, EndBc::Neumann);
                    }
                }
                // The z sweep's lines span the full depth; its xy lines
                // fan out over the pool in fixed blocks.
                implicit_axis_on(
                    data,
                    &[nz, ny, nx],
                    0,
                    rz,
                    top_bc_scaled(top_bc, dt, self.grid.dz),
                    EndBc::Neumann,
                );
            }
            TimeScheme::ExplicitEuler => {
                explicit_step(field, &self.grid, d_lat, d_norm, top_bc, dt);
            }
        }
    }
}

/// Pre-scales a Robin condition into the dimensionless form used by the
/// implicit solver (`h·dt/dz`).
fn top_bc_scaled(bc: EndBc, dt: f32, dz: f32) -> EndBc {
    match bc {
        EndBc::Neumann => EndBc::Neumann,
        EndBc::Robin { h, sat } => EndBc::Robin {
            h: h * dt / dz,
            sat,
        },
    }
}

/// RK4 integration of the neutralisation pair over `dt`.
///
/// `A − B` is conserved by the exact dynamics; RK4 preserves it to
/// round-off because both derivatives are identical.
fn rk4_neutralise(a: f32, b: f32, kr: f32, dt: f32) -> (f32, f32) {
    let f = |a: f32, b: f32| -kr * a * b;
    let k1 = f(a, b);
    let k2 = f(a + 0.5 * dt * k1, b + 0.5 * dt * k1);
    let k3 = f(a + 0.5 * dt * k2, b + 0.5 * dt * k2);
    let k4 = f(a + dt * k3, b + dt * k3);
    let delta = dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    (a + delta, b + delta)
}

/// Implicit backward-Euler sweep of one axis: solves
/// `(I − r·L_axis) u_new = u_old` line by line, where `r = D·dt/h²` and
/// `L_axis` is the 1-D Laplacian with the given end conditions.
///
/// Every line of the axis shares one constant-coefficient matrix, so the
/// elimination is factored **once** (`peb_simd::thomas`) and each line
/// replays only the cheap per-line operations — bitwise identical to the
/// in-line `solve_tridiagonal` elimination. Groups of eight lines that
/// are adjacent in the innermost dimension solve in place through the
/// vectorized interleaved kernel (no gather/scatter); leftover lines — and
/// all of axis 2, whose lines are not memory-adjacent — take the scalar
/// factored path. The `outer·inner` lines fan out over the `peb-par`
/// pool; each line reads and writes only its own strided positions, so
/// the sweep stays bitwise identical at any thread count.
fn implicit_axis_on(
    data: &mut [f32],
    shape: &[usize],
    axis: usize,
    r: f32,
    bc_first: EndBc,
    bc_last: EndBc,
) {
    if r == 0.0 {
        return;
    }
    let outer: usize = shape[..axis].iter().product();
    let n = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    if n == 1 {
        return;
    }
    let _span = peb_obs::span("litho.adi_axis");
    peb_obs::count(peb_obs::Counter::AdiLines, (outer * inner) as u64);
    peb_obs::optrace::note("adi.sweep", || {
        format!("axis={axis} n={n} lines={} r={r}", outer * inner)
    });
    // Coefficient arrays are identical for every line of this axis;
    // checked out of the thread-local pool (the solver rebuilds them for
    // every axis of every step).
    let mut lower = peb_pool::PoolBuf::<f32>::cleared(n);
    lower.resize(n, -r);
    let mut diag = peb_pool::PoolBuf::<f32>::cleared(n);
    diag.resize(n, 1.0 + 2.0 * r);
    // Reflective end rows lose one neighbour.
    diag[0] = 1.0 + r;
    diag[n - 1] = 1.0 + r;
    let mut rhs_bump_first = 0.0f32;
    if let EndBc::Robin { h, sat } = bc_first {
        // h here is the pre-scaled h·dt/dz.
        diag[0] += h;
        rhs_bump_first = h * sat;
    }
    let mut rhs_bump_last = 0.0f32;
    if let EndBc::Robin { h, sat } = bc_last {
        diag[n - 1] += h;
        rhs_bump_last = h * sat;
    }
    // Shared factorization: upper is constant −r, so build it inline.
    let mut upper = peb_pool::PoolBuf::<f32>::cleared(n);
    upper.resize(n, -r);
    let mut beta = peb_pool::PoolBuf::<f32>::cleared(n);
    let mut gamma = peb_pool::PoolBuf::<f32>::cleared(n);
    peb_simd::thomas::factor_tridiagonal(&lower, &diag, &upper, &mut beta, &mut gamma);
    let lines = outer * inner;
    let slots = peb_par::UnsafeSlice::new(data);
    let (lower, beta, gamma) = (&lower[..], &beta[..], &gamma[..]);
    let line_cost = 10 * n as u64;
    peb_par::parallel_chunks_cost(lines, lines.div_ceil(64), line_cost, |range| {
        let mut line = peb_pool::PoolBuf::<f32>::zeroed(n);
        let mut li = range.start;
        while li < range.end {
            let (o, i) = (li / inner, li % inner);
            if i + 8 <= inner && li + 8 <= range.end {
                // Eight lines adjacent in the innermost dimension: element
                // k of the group is the contiguous 8 floats at
                // `(o·n + k)·inner + i` — solve in place, no staging.
                // SAFETY: the group owns exactly those strided positions;
                // lines are disjoint across workers.
                unsafe {
                    peb_simd::thomas::solve_factored_lines8(
                        lower,
                        beta,
                        gamma,
                        &slots,
                        (o * n) * inner + i,
                        inner,
                        n,
                        rhs_bump_first,
                        rhs_bump_last,
                    );
                }
                li += 8;
                continue;
            }
            for (k, lk) in line.iter_mut().enumerate() {
                // SAFETY: line `li` owns exactly the strided positions
                // `(o·n + k)·inner + i`; lines are disjoint.
                *lk = unsafe { *slots.get_mut((o * n + k) * inner + i) };
            }
            line[0] += rhs_bump_first;
            line[n - 1] += rhs_bump_last;
            peb_simd::thomas::solve_factored(lower, beta, gamma, &mut line);
            for (k, lk) in line.iter().enumerate() {
                // SAFETY: as above.
                unsafe { *slots.get_mut((o * n + k) * inner + i) = *lk };
            }
            li += 1;
        }
    });
}

/// Reference explicit step (all axes at once), one vectorized
/// `peb_simd::stencil` slice update per z-plane. The SIMD kernel keeps
/// the exact scalar expression order (no FMA), so results are bitwise
/// identical to the pre-SIMD loop at every dispatch level.
///
/// Under `PEB_TILE` the step streams cache-sized z-slabs instead of
/// freezing a full-volume copy: each slab's pre-step planes are copied
/// to a slab-sized scratch immediately before computing it (so the
/// frozen read hits cache), and the neighbour planes every slab needs
/// are saved up front. Identical values are read and written either way,
/// so tiled output is bitwise identical to the untiled path.
fn explicit_step(field: &mut Tensor, grid: &Grid, d_lat: f32, d_norm: f32, top_bc: EndBc, dt: f32) {
    let _span = peb_obs::span("litho.explicit_step");
    let (nz, ny, nx) = (grid.nz, grid.ny, grid.nx);
    peb_obs::optrace::note("stencil", || {
        format!("grid={nz}x{ny}x{nx} dt={dt} prec={:?}", peb_simd::prec())
    });
    let p = peb_simd::stencil::StencilParams {
        rx: d_lat * dt / (grid.dx * grid.dx),
        ry: d_lat * dt / (grid.dy * grid.dy),
        rz: d_norm * dt / (grid.dz * grid.dz),
        robin_top: match top_bc {
            // Left-assoc `h·dt/dz` matches the pre-SIMD inline expression.
            EndBc::Robin { h, sat } => Some((h * dt / grid.dz, sat)),
            EndBc::Neumann => None,
        },
    };
    let plane = ny * nx;
    if peb_simd::prec() == peb_simd::Prec::Bf16 {
        // bf16 branch: freeze the pre-step field as a *bf16* copy —
        // the kernel is bandwidth-bound, so halving the streamed read
        // width is the win. The half-size frozen copy already fits
        // where the f32 copy would have forced slab tiling, so the
        // tiled path is bypassed here (one narrowing, no halo
        // bookkeeping). The write side stays full f32.
        let mut src = peb_pool::PoolBuf::<u16>::cleared(field.data().len());
        src.extend(field.data().iter().map(|&v| peb_simd::bf16::f32_to_bf16(v)));
        peb_par::parallel_chunks_mut_cost(field.data_mut(), plane, 14, |offset, dst| {
            let z = offset / plane;
            peb_simd::stencil::explicit_slice_bf16(&src, dst, z, nz, ny, nx, p);
        });
        return;
    }
    if let Some(sd) = peb_pool::tile::slab_items(plane * std::mem::size_of::<f32>(), nz) {
        if sd < nz {
            explicit_step_tiled(field, nz, ny, nx, sd, p);
            return;
        }
    }
    let src = peb_pool::PoolBuf::copy_of(field.data());
    // Every cell reads the frozen `src` copy and writes only itself:
    // z-slices update in parallel with no ordering sensitivity.
    peb_par::parallel_chunks_mut_cost(field.data_mut(), plane, 14, |offset, dst| {
        let z = offset / plane;
        peb_simd::stencil::explicit_slice(&src, dst, z, nz, ny, nx, p);
    });
}

/// Slab-streamed explicit step. Each slab of `sd` z-planes is computed
/// from a private scratch copy `[halo_below?, slab planes, halo_above?]`
/// taken from the pre-step field: the slab's own planes are copied just
/// before use (only this worker writes them), and the cross-slab halo
/// planes are saved for every slab *before* any write. Passing the
/// scratch with a virtual depth places boundary handling (Robin top at
/// `z = 0`, bottom mirror at `z = nz−1`) only on the true surfaces.
fn explicit_step_tiled(
    field: &mut Tensor,
    nz: usize,
    ny: usize,
    nx: usize,
    sd: usize,
    p: peb_simd::stencil::StencilParams,
) {
    let plane = ny * nx;
    let nslabs = nz.div_ceil(sd);
    let mut halos = peb_pool::PoolBuf::<f32>::cleared(nslabs * 2 * plane);
    halos.resize(nslabs * 2 * plane, 0.0);
    {
        let data = field.data();
        for k in 0..nslabs {
            let z0 = k * sd;
            let z1 = (z0 + sd).min(nz);
            if z0 > 0 {
                halos[k * 2 * plane..k * 2 * plane + plane]
                    .copy_from_slice(&data[(z0 - 1) * plane..z0 * plane]);
            }
            if z1 < nz {
                halos[(k * 2 + 1) * plane..(k * 2 + 2) * plane]
                    .copy_from_slice(&data[z1 * plane..(z1 + 1) * plane]);
            }
        }
    }
    let slots = peb_par::UnsafeSlice::new(field.data_mut());
    let halos = &halos[..];
    let slab_cost = (sd * plane) as u64 * 14;
    peb_par::parallel_chunks_cost(nslabs, 1, slab_cost, |range| {
        let mut scratch = peb_pool::PoolBuf::<f32>::cleared((sd + 2) * plane);
        for k in range {
            let z0 = k * sd;
            let z1 = (z0 + sd).min(nz);
            let zl = z1 - z0;
            let has_below = z0 > 0;
            let has_above = z1 < nz;
            let vnz = zl + has_below as usize + has_above as usize;
            scratch.clear();
            if has_below {
                scratch.extend_from_slice(&halos[k * 2 * plane..k * 2 * plane + plane]);
            }
            // SAFETY: slabs are disjoint; only this worker touches planes
            // z0..z1, and it copies them before writing.
            let own = unsafe { slots.slice_mut(z0 * plane..z1 * plane) };
            scratch.extend_from_slice(own);
            if has_above {
                scratch.extend_from_slice(&halos[(k * 2 + 1) * plane..(k * 2 + 2) * plane]);
            }
            let zoff = has_below as usize;
            for lz in 0..zl {
                let dst = &mut own[lz * plane..(lz + 1) * plane];
                peb_simd::stencil::explicit_slice(&scratch, dst, zoff + lz, vnz, ny, nx, p);
            }
            peb_obs::count(peb_obs::Counter::SlabPasses, 1);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Grid {
        Grid::new(16, 16, 6, 4.0, 4.0, 10.0).unwrap()
    }

    fn short_params() -> PebParams {
        PebParams {
            duration: 5.0,
            ..PebParams::paper()
        }
    }

    #[test]
    fn mass_behaviour_without_reactions_or_surface_loss() {
        // Pure diffusion with Neumann BCs everywhere conserves mass.
        let grid = tiny_grid();
        let mut p = short_params();
        p.kr = 0.0;
        p.kc = 0.0;
        p.h_a = 0.0;
        let solver = PebSolver::new(p, grid, TimeScheme::ImplicitLod).unwrap();
        let mut acid0 = Tensor::zeros(&grid.shape3());
        acid0.set(&[2, 8, 8], 1.0);
        let out = solver.run(&acid0).unwrap();
        assert!(
            (out.acid.sum() - 1.0).abs() < 1e-3,
            "mass {}",
            out.acid.sum()
        );
        // And it spreads: the peak is no longer 1.
        assert!(out.acid.max_value() < 0.9);
        assert!(out.acid.min_value() >= -1e-6);
    }

    #[test]
    fn neutralisation_consumes_acid_and_base_equally() {
        let grid = tiny_grid();
        let mut p = short_params();
        p.h_a = 0.0; // isolate the reaction
        let solver = PebSolver::new(p, grid, TimeScheme::ImplicitLod).unwrap();
        let acid0 = Tensor::full(&grid.shape3(), 0.8);
        let out = solver.run(&acid0).unwrap();
        // A − B is conserved pointwise by the neutralisation.
        let diff0 = 0.8 - p.base0;
        let diff = out.acid.zip_map(&out.base, |a, b| a - b).unwrap();
        assert!(diff.map(|d| (d - diff0).abs()).max_value() < 1e-3);
        assert!(out.acid.max_value() < 0.8);
        assert!(out.base.max_value() < p.base0);
    }

    #[test]
    fn inhibitor_decays_only_where_acid_is() {
        let grid = tiny_grid();
        let mut p = short_params();
        p.h_a = 0.0;
        let solver = PebSolver::new(p, grid, TimeScheme::ImplicitLod).unwrap();
        let mut acid0 = Tensor::zeros(&grid.shape3());
        // Acid only in one corner column.
        for z in 0..grid.nz {
            acid0.set(&[z, 2, 2], 0.9);
        }
        let out = solver.run(&acid0).unwrap();
        let near = out.inhibitor.get(&[2, 2, 2]);
        let far = out.inhibitor.get(&[2, 13, 13]);
        assert!(near < 0.9, "near {near}");
        assert!(far > 0.98, "far {far}");
        assert!(out.inhibitor.max_value() <= 1.0 + 1e-6);
        assert!(out.inhibitor.min_value() >= 0.0);
    }

    #[test]
    fn implicit_matches_explicit_at_small_dt() {
        let grid = Grid::new(8, 8, 4, 8.0, 8.0, 20.0).unwrap();
        let mut p = short_params();
        p.duration = 2.0;
        p.dt = 0.002;
        let mut acid0 = Tensor::zeros(&grid.shape3());
        acid0.set(&[1, 4, 4], 1.0);
        acid0.set(&[2, 2, 5], 0.7);
        let imp = PebSolver::new(p, grid, TimeScheme::ImplicitLod)
            .unwrap()
            .run(&acid0)
            .unwrap();
        let exp = PebSolver::new(p, grid, TimeScheme::ExplicitEuler)
            .unwrap()
            .run(&acid0)
            .unwrap();
        let d = imp.acid.max_abs_diff(&exp.acid);
        assert!(d < 5e-3, "acid mismatch {d}");
        let di = imp.inhibitor.max_abs_diff(&exp.inhibitor);
        assert!(di < 5e-3, "inhibitor mismatch {di}");
    }

    #[test]
    fn explicit_bf16_tracks_f32_run() {
        // The bf16 branch narrows the frozen pre-step field (one RNE
        // rounding per step on O(1) values); the diffusion operator is
        // dissipative, so the per-step noise stays bounded instead of
        // compounding. Gate the full short bake at 5% absolute.
        let grid = Grid::new(8, 8, 4, 8.0, 8.0, 20.0).unwrap();
        let mut p = short_params();
        p.duration = 1.0;
        p.dt = 0.002;
        let mut acid0 = Tensor::zeros(&grid.shape3());
        acid0.set(&[1, 4, 4], 1.0);
        acid0.set(&[2, 2, 5], 0.7);
        let run = || {
            PebSolver::new(p, grid, TimeScheme::ExplicitEuler)
                .unwrap()
                .run(&acid0)
                .unwrap()
        };
        let f32_run = peb_simd::with_prec(peb_simd::Prec::F32, run);
        let bf16_run = peb_simd::with_prec(peb_simd::Prec::Bf16, run);
        let d = f32_run.acid.max_abs_diff(&bf16_run.acid);
        assert!(d < 0.05, "acid mismatch {d}");
        let di = f32_run.inhibitor.max_abs_diff(&bf16_run.inhibitor);
        assert!(di < 0.05, "inhibitor mismatch {di}");
        // The plain (no-override) path is bitwise whichever forced run
        // matches the ambient latch — f32 by default, bf16 when the
        // suite runs under PEB_PREC=bf16.
        let plain = run();
        let expect = if peb_simd::prec() == peb_simd::Prec::Bf16 {
            &bf16_run
        } else {
            &f32_run
        };
        assert_eq!(plain.acid.bit_digest(), expect.acid.bit_digest());
    }

    #[test]
    fn explicit_rejects_unstable_dt() {
        let grid = Grid::new(16, 16, 8, 2.0, 2.0, 1.0).unwrap();
        let p = PebParams::paper(); // dt = 0.1 ≫ explicit limit on 1 nm z
        assert!(matches!(
            PebSolver::new(p, grid, TimeScheme::ExplicitEuler),
            Err(LithoError::Config { .. })
        ));
        assert!(PebSolver::new(p, grid, TimeScheme::ImplicitLod).is_ok());
    }

    #[test]
    fn robin_surface_drives_top_toward_saturation() {
        let grid = tiny_grid();
        let mut p = short_params();
        p.kr = 0.0;
        p.kc = 0.0;
        p.h_a = 5.0; // strong exchange to make the effect visible quickly
        p.duration = 20.0;
        let solver = PebSolver::new(p, grid, TimeScheme::ImplicitLod).unwrap();
        let acid0 = Tensor::zeros(&grid.shape3());
        let out = solver.run(&acid0).unwrap();
        let top = out.acid.slice_axis(0, 0, 1).unwrap().mean();
        let bottom = out.acid.slice_axis(0, grid.nz - 1, grid.nz).unwrap().mean();
        assert!(top > 0.5, "top {top} should rise toward a_sat");
        assert!(top > bottom, "gradient should point downward");
    }

    #[test]
    fn diffusivities_follow_length_formula() {
        let p = PebParams::paper();
        let (dl, dn) = p.diffusivity_a();
        assert!((dl - 10.0f32.powi(2) / 180.0).abs() < 1e-4);
        assert!((dn - 70.0f32.powi(2) / 180.0).abs() < 1e-3);
    }

    #[test]
    fn rk4_conserves_difference() {
        let (a, b) = rk4_neutralise(0.8, 0.4, 8.7, 0.05);
        assert!(((a - b) - 0.4).abs() < 1e-6);
        assert!(a < 0.8 && b < 0.4);
        assert!(a > 0.0 && b > 0.0);
    }

    #[test]
    fn tiled_solver_is_bitwise_identical_to_untiled() {
        // Force a tile target small enough that the tiny grid actually
        // slabs (one 16×16 plane = 1 KiB), then compare against the
        // untiled path bit for bit, for both integrators.
        let grid = tiny_grid();
        let mut p = short_params();
        let mut acid0 = Tensor::zeros(&grid.shape3());
        acid0.set(&[1, 3, 4], 0.9);
        acid0.set(&[4, 10, 2], 0.6);
        for scheme in [TimeScheme::ImplicitLod, TimeScheme::ExplicitEuler] {
            if scheme == TimeScheme::ExplicitEuler {
                // D = L²/(2·duration), so keep the duration long enough
                // for dt to sit inside the explicit stability limit.
                p.dt = 0.002;
                p.duration = 0.5;
            }
            let solver = PebSolver::new(p, grid, scheme).unwrap();
            peb_pool::tile::set_tile_bytes(None);
            let untiled = solver.run(&acid0).unwrap();
            peb_pool::tile::set_tile_bytes(Some(2 << 10));
            let tiled = solver.run(&acid0).unwrap();
            peb_pool::tile::set_tile_bytes(Some(peb_pool::tile::DEFAULT_TILE_BYTES));
            for (field, u, t) in [
                ("acid", &untiled.acid, &tiled.acid),
                ("base", &untiled.base, &tiled.base),
                ("inhibitor", &untiled.inhibitor, &tiled.inhibitor),
            ] {
                for (a, b) in u.data().iter().zip(t.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{field} ({scheme:?})");
                }
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let grid = tiny_grid();
        let solver = PebSolver::new(short_params(), grid, TimeScheme::ImplicitLod).unwrap();
        assert!(solver.run(&Tensor::zeros(&[2, 2, 2])).is_err());
    }
}
