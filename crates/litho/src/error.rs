use std::error::Error;
use std::fmt;

use peb_fft::FftError;
use peb_tensor::TensorError;

/// Errors from the lithography simulation chain.
#[derive(Debug, Clone, PartialEq)]
pub enum LithoError {
    /// A tensor operation failed (almost always a shape bug).
    Tensor(TensorError),
    /// An FFT failed (empty grid extent).
    Fft(FftError),
    /// Configuration violates a physical or geometric invariant.
    Config {
        /// Description of the violated invariant.
        detail: String,
    },
    /// The requested layout could not be generated (e.g. too many contacts
    /// for the clip area under the spacing rule).
    Layout {
        /// Description of the failure.
        detail: String,
    },
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::Tensor(e) => write!(f, "tensor error: {e}"),
            LithoError::Fft(e) => write!(f, "fft error: {e}"),
            LithoError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            LithoError::Layout { detail } => write!(f, "layout generation failed: {detail}"),
        }
    }
}

impl Error for LithoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LithoError::Tensor(e) => Some(e),
            LithoError::Fft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for LithoError {
    fn from(e: TensorError) -> Self {
        LithoError::Tensor(e)
    }
}

impl From<FftError> for LithoError {
    fn from(e: FftError) -> Self {
        LithoError::Fft(e)
    }
}
