//! Rigorous lithography simulation substrate for the SDM-PEB reproduction.
//!
//! This crate stands in for the proprietary Synopsys S-Litho flow the paper
//! uses to generate ground truth. It implements the full positive-tone CAR
//! simulation chain of the paper's Fig. 1:
//!
//! ```text
//! mask ──optics──▶ 3-D aerial image ──Dill──▶ photoacid [A]₀
//!      ──PEB reaction–diffusion (Eqs. 1–4)──▶ inhibitor [I]
//!      ──Mack model (Eq. 5)──▶ development rate R
//!      ──eikonal |∇S| = 1/R──▶ resist profile ──▶ CD metrology
//! ```
//!
//! All physical quantities use nanometres and seconds; concentrations are
//! normalised to `[0, 1]`. Grids are `[D, H, W]` tensors with depth index
//! 0 at the resist *top* surface (where the Robin boundary condition of
//! Eq. 4 applies).
//!
//! # Example
//!
//! ```
//! use peb_litho::{Grid, LithoFlow, MaskConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = Grid::small(); // 32×32×8 demo grid
//! let mask = MaskConfig::demo(grid.nx).generate(7)?;
//! let flow = LithoFlow::new(grid);
//! let sim = flow.run(&mask)?;
//! assert_eq!(sim.inhibitor.shape(), &[8, 32, 32]);
//! // Exposed contact centres are deprotected: inhibitor well below 1.
//! # Ok(())
//! # }
//! ```

mod dill;
mod eikonal;
mod error;
mod export;
mod flow;
mod grid;
mod mack;
mod mask;
mod metrology;
mod optics;
mod peb;
mod process_window;
mod profile;
mod tridiag;

pub use dill::DillParams;
pub use eikonal::{solve_eikonal, solve_eikonal_fim, EikonalConfig};
pub use error::LithoError;
pub use export::resist_profile_obj;
pub use flow::{LithoFlow, Simulation};
pub use grid::Grid;
pub use mack::MackParams;
pub use mask::{ClipStyle, Contact, MaskClip, MaskConfig};
pub use metrology::{measure_contact_cds, measure_contact_profiles, ContactCd, ContactProfile};
pub use optics::OpticsParams;
pub use peb::{PebParams, PebSolver, PebState, TimeScheme};
pub use process_window::{dose_sweep, exposure_latitude, focus_sweep, ProcessPoint};
pub use profile::{developed_fraction, resist_profile};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LithoError>;
