//! Critical-dimension (CD) metrology on developed resist profiles.
//!
//! Measures printed contact-hole widths in x and y at a chosen depth
//! layer, with sub-pixel interpolation of the development-front crossing.
//! The paper's CD error (Eq. 14) compares per-contact CDs of a predicted
//! profile against the rigorous one.

use serde::{Deserialize, Serialize};

use peb_tensor::Tensor;

use crate::{Contact, Grid, LithoError, Result};

/// Measured dimensions of one printed contact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContactCd {
    /// Printed width along x in nanometres (0 when the hole failed to
    /// open at this layer).
    pub cd_x_nm: f32,
    /// Printed width along y in nanometres.
    pub cd_y_nm: f32,
    /// Whether the hole opened (front reached the contact centre).
    pub open: bool,
    /// Nearest-voxel centre of the design contact `(y, x)`.
    pub centre: (usize, usize),
}

/// Measures every contact of a clip at depth layer `layer`.
///
/// `arrival` is the eikonal arrival-time field and `t_dev` the development
/// duration; a voxel is developed when `arrival ≤ t_dev`.
///
/// # Errors
///
/// Returns [`LithoError::Config`] if `arrival` does not match the grid or
/// `layer` is out of range.
pub fn measure_contact_cds(
    grid: &Grid,
    arrival: &Tensor,
    t_dev: f32,
    contacts: &[Contact],
    layer: usize,
) -> Result<Vec<ContactCd>> {
    if arrival.shape() != grid.shape3() {
        return Err(LithoError::Config {
            detail: format!(
                "arrival shape {:?} does not match grid {:?}",
                arrival.shape(),
                grid.shape3()
            ),
        });
    }
    if layer >= grid.nz {
        return Err(LithoError::Config {
            detail: format!("layer {layer} out of range for nz={}", grid.nz),
        });
    }
    let mut out = Vec::with_capacity(contacts.len());
    for c in contacts {
        let cy = (c.cy.round() as usize).min(grid.ny - 1);
        let cx = (c.cx.round() as usize).min(grid.nx - 1);
        let centre_developed = arrival.get(&[layer, cy, cx]) <= t_dev;
        if !centre_developed {
            out.push(ContactCd {
                cd_x_nm: 0.0,
                cd_y_nm: 0.0,
                open: false,
                centre: (cy, cx),
            });
            continue;
        }
        let cd_x = span_through(|x| arrival.get(&[layer, cy, x]), cx, grid.nx, t_dev) * grid.dx;
        let cd_y = span_through(|y| arrival.get(&[layer, y, cx]), cy, grid.ny, t_dev) * grid.dy;
        out.push(ContactCd {
            cd_x_nm: cd_x,
            cd_y_nm: cd_y,
            open: true,
            centre: (cy, cx),
        });
    }
    Ok(out)
}

/// Developed span (in pixels) through index `centre` along one axis, with
/// linear sub-pixel interpolation of the `t_dev` crossing on each side.
fn span_through(s: impl Fn(usize) -> f32, centre: usize, n: usize, t_dev: f32) -> f32 {
    debug_assert!(
        s(centre) <= t_dev,
        "span_through requires a developed centre"
    );
    // Walk right.
    let mut right = centre as f32;
    for i in centre..n - 1 {
        let (a, b) = (s(i), s(i + 1));
        if b > t_dev {
            right = i as f32 + frac(a, b, t_dev);
            break;
        }
        right = (i + 1) as f32;
    }
    // Walk left.
    let mut left = centre as f32;
    for i in (1..=centre).rev() {
        let (a, b) = (s(i), s(i - 1));
        if b > t_dev {
            left = i as f32 - frac(a, b, t_dev);
            break;
        }
        left = (i - 1) as f32;
    }
    right - left
}

/// Fractional distance from the developed sample `a` toward the
/// undeveloped sample `b` where the arrival time crosses `t`.
fn frac(a: f32, b: f32, t: f32) -> f32 {
    if (b - a).abs() < f32::EPSILON {
        0.5
    } else {
        ((t - a) / (b - a)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an arrival field where a `w × w` box around each contact is
    /// developed (arrival 0) and everything else is not (arrival large).
    fn synthetic_arrival(grid: &Grid, contacts: &[Contact], half_w: f32) -> Tensor {
        let mut s = Tensor::full(&grid.shape3(), 1e6);
        for c in contacts {
            for z in 0..grid.nz {
                for y in 0..grid.ny {
                    for x in 0..grid.nx {
                        if (y as f32 - c.cy).abs() <= half_w && (x as f32 - c.cx).abs() <= half_w {
                            s.set(&[z, y, x], 0.0);
                        }
                    }
                }
            }
        }
        s
    }

    fn grid() -> Grid {
        Grid::new(32, 32, 4, 4.0, 4.0, 10.0).unwrap()
    }

    #[test]
    fn measures_box_width() {
        let g = grid();
        let contacts = vec![Contact {
            cy: 16.0,
            cx: 16.0,
            w: 8.0,
            h: 8.0,
        }];
        // Developed half-width 4 px ⇒ span 8 px wide + interpolated edges.
        let s = synthetic_arrival(&g, &contacts, 4.0);
        let cds = measure_contact_cds(&g, &s, 60.0, &contacts, 0).unwrap();
        assert!(cds[0].open);
        // Voxels 12..=20 developed → span between crossings ≈ 9±1 px.
        assert!((cds[0].cd_x_nm / g.dx - 9.0).abs() <= 1.0, "{:?}", cds[0]);
        assert!((cds[0].cd_x_nm - cds[0].cd_y_nm).abs() < 1e-3);
    }

    #[test]
    fn closed_contact_reports_zero() {
        let g = grid();
        let contacts = vec![Contact {
            cy: 8.0,
            cx: 8.0,
            w: 8.0,
            h: 8.0,
        }];
        let s = Tensor::full(&g.shape3(), 1e6);
        let cds = measure_contact_cds(&g, &s, 60.0, &contacts, 0).unwrap();
        assert!(!cds[0].open);
        assert_eq!(cds[0].cd_x_nm, 0.0);
    }

    #[test]
    fn subpixel_interpolation_moves_edge() {
        let g = grid();
        let contacts = vec![Contact {
            cy: 16.0,
            cx: 16.0,
            w: 4.0,
            h: 4.0,
        }];
        // Linear ramp along x: developed near the centre, crossing between
        // samples.
        let mut s = Tensor::full(&g.shape3(), 1e6);
        for x in 0..g.nx {
            let d = (x as f32 - 16.0).abs();
            for y in 0..g.ny {
                for z in 0..g.nz {
                    s.set(&[z, y, x], d * 10.0); // crosses t=35 at d=3.5
                }
            }
        }
        let cds = measure_contact_cds(&g, &s, 35.0, &contacts, 0).unwrap();
        assert!((cds[0].cd_x_nm / g.dx - 7.0).abs() < 0.05, "{:?}", cds[0]);
    }

    #[test]
    fn rejects_bad_layer_and_shape() {
        let g = grid();
        let s = Tensor::full(&g.shape3(), 0.0);
        assert!(measure_contact_cds(&g, &s, 1.0, &[], 99).is_err());
        assert!(measure_contact_cds(&g, &Tensor::zeros(&[1, 1, 1]), 1.0, &[], 0).is_err());
    }
}

/// Vertical profile metrics of one printed contact.
///
/// Extends the paper's x/y CD metrology with the standard resist-profile
/// quantities process engineers track: the top and bottom CDs and the
/// sidewall angle implied by their difference across the resist
/// thickness. A perfectly vertical profile has ratio 1 and angle 90°.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContactProfile {
    /// CD at the top layer (nm, x direction).
    pub top_cd_nm: f32,
    /// CD at the bottom layer (nm, x direction).
    pub bottom_cd_nm: f32,
    /// `bottom / top` CD ratio (0 when the top failed to open).
    pub cd_ratio: f32,
    /// Sidewall angle in degrees from horizontal (90° = vertical wall).
    pub sidewall_angle_deg: f32,
    /// Whether the hole opened through the full resist thickness.
    pub through: bool,
}

/// Measures the vertical profile of every contact: top/bottom CDs and
/// sidewall angle.
///
/// # Errors
///
/// Returns [`LithoError::Config`] if `arrival` does not match the grid.
pub fn measure_contact_profiles(
    grid: &Grid,
    arrival: &Tensor,
    t_dev: f32,
    contacts: &[Contact],
) -> Result<Vec<ContactProfile>> {
    let top = measure_contact_cds(grid, arrival, t_dev, contacts, 0)?;
    let bottom = measure_contact_cds(grid, arrival, t_dev, contacts, grid.nz - 1)?;
    let thickness = grid.thickness_nm() - grid.dz; // between layer centres
    Ok(top
        .iter()
        .zip(&bottom)
        .map(|(t, b)| {
            let through = t.open && b.open;
            let cd_ratio = if t.cd_x_nm > 0.0 {
                b.cd_x_nm / t.cd_x_nm
            } else {
                0.0
            };
            // Wall slope from the half-difference of CDs over the height.
            let half_diff = (t.cd_x_nm - b.cd_x_nm) * 0.5;
            let sidewall_angle_deg = if through {
                (thickness / half_diff.abs().max(1e-6)).atan().to_degrees()
            } else {
                0.0
            };
            ContactProfile {
                top_cd_nm: t.cd_x_nm,
                bottom_cd_nm: b.cd_x_nm,
                cd_ratio,
                sidewall_angle_deg,
                through,
            }
        })
        .collect())
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(32, 32, 4, 4.0, 4.0, 10.0).unwrap()
    }

    /// Arrival field forming a frustum: developed half-width shrinks
    /// linearly with depth.
    fn frustum_arrival(grid: &Grid, cx: f32, cy: f32, top_half: f32, bottom_half: f32) -> Tensor {
        let mut s = Tensor::full(&grid.shape3(), 1e6);
        for z in 0..grid.nz {
            let f = z as f32 / (grid.nz - 1) as f32;
            let half = top_half + (bottom_half - top_half) * f;
            for y in 0..grid.ny {
                for x in 0..grid.nx {
                    if (y as f32 - cy).abs() <= half && (x as f32 - cx).abs() <= half {
                        s.set(&[z, y, x], 0.0);
                    }
                }
            }
        }
        s
    }

    #[test]
    fn vertical_wall_gives_ninety_degrees() {
        let g = grid();
        let contacts = vec![Contact {
            cy: 16.0,
            cx: 16.0,
            w: 8.0,
            h: 8.0,
        }];
        let s = frustum_arrival(&g, 16.0, 16.0, 4.0, 4.0);
        let p = measure_contact_profiles(&g, &s, 60.0, &contacts).unwrap();
        assert!(p[0].through);
        assert!((p[0].cd_ratio - 1.0).abs() < 0.05, "{:?}", p[0]);
        assert!(p[0].sidewall_angle_deg > 85.0, "{:?}", p[0]);
    }

    #[test]
    fn tapered_wall_has_smaller_angle_and_ratio() {
        let g = grid();
        let contacts = vec![Contact {
            cy: 16.0,
            cx: 16.0,
            w: 10.0,
            h: 10.0,
        }];
        let s = frustum_arrival(&g, 16.0, 16.0, 6.0, 2.0);
        let p = measure_contact_profiles(&g, &s, 60.0, &contacts).unwrap();
        assert!(p[0].through);
        assert!(p[0].cd_ratio < 0.7, "{:?}", p[0]);
        assert!(p[0].sidewall_angle_deg < 85.0, "{:?}", p[0]);
        assert!(p[0].sidewall_angle_deg > 30.0, "{:?}", p[0]);
    }

    #[test]
    fn closed_bottom_is_not_through() {
        let g = grid();
        let contacts = vec![Contact {
            cy: 16.0,
            cx: 16.0,
            w: 8.0,
            h: 8.0,
        }];
        // Developed at the top only.
        let mut s = Tensor::full(&g.shape3(), 1e6);
        for y in 12..20 {
            for x in 12..20 {
                s.set(&[0, y, x], 0.0);
            }
        }
        let p = measure_contact_profiles(&g, &s, 60.0, &contacts).unwrap();
        assert!(!p[0].through);
        assert_eq!(p[0].sidewall_angle_deg, 0.0);
    }
}
