//! Property-based tests for the physics substrate.

use proptest::prelude::*;

use peb_litho::{
    solve_eikonal, ClipStyle, EikonalConfig, Grid, LithoFlow, MackParams, MaskConfig, PebParams,
    PebSolver, TimeScheme,
};
use peb_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn concentrations_stay_physical(seed in 0u64..200, base0 in 0.1f32..0.6) {
        let grid = Grid::new(16, 16, 4, 8.0, 8.0, 20.0).unwrap();
        let mut params = PebParams::paper();
        params.duration = 4.0;
        params.base0 = base0;
        let solver = PebSolver::new(params, grid, TimeScheme::ImplicitLod).unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let acid0 = Tensor::rand_uniform(&grid.shape3(), 0.0, 0.9, &mut rng);
        let out = solver.run(&acid0).unwrap();
        for field in [&out.acid, &out.base, &out.inhibitor] {
            prop_assert!(field.min_value() >= -1e-5);
            prop_assert!(field.max_value() <= 1.0 + 1e-5);
        }
        // Reactions only consume: totals cannot grow (surface influx is
        // bounded by a_sat and the acid starts below it only sometimes, so
        // only check base and inhibitor which have no source).
        prop_assert!(out.base.sum() <= base0 * grid.voxels() as f32 + 1e-3);
        prop_assert!(out.inhibitor.sum() <= grid.voxels() as f32 + 1e-3);
    }

    #[test]
    fn more_acid_never_increases_inhibitor(seed in 0u64..200) {
        // Monotonicity: scaling the initial acid up can only deprotect more.
        let grid = Grid::new(8, 8, 3, 8.0, 8.0, 20.0).unwrap();
        let mut params = PebParams::paper();
        params.duration = 3.0;
        let solver = PebSolver::new(params, grid, TimeScheme::ImplicitLod).unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let acid_low = Tensor::rand_uniform(&grid.shape3(), 0.0, 0.45, &mut rng);
        let acid_high = acid_low.mul_scalar(1.8);
        let low = solver.run(&acid_low).unwrap();
        let high = solver.run(&acid_high).unwrap();
        let violations = low
            .inhibitor
            .data()
            .iter()
            .zip(high.inhibitor.data())
            .filter(|(l, h)| **h > **l + 1e-3)
            .count();
        prop_assert_eq!(violations, 0);
    }

    #[test]
    fn eikonal_arrival_scales_inversely_with_rate(scale in 1.5f32..4.0) {
        let grid = Grid::new(8, 8, 4, 4.0, 4.0, 10.0).unwrap();
        let rate1 = Tensor::full(&grid.shape3(), 2.0);
        let rate2 = rate1.mul_scalar(scale);
        let s1 = solve_eikonal(&grid, &rate1, EikonalConfig::default()).unwrap();
        let s2 = solve_eikonal(&grid, &rate2, EikonalConfig::default()).unwrap();
        let ratio = s1.get(&[3, 4, 4]) / s2.get(&[3, 4, 4]);
        prop_assert!((ratio - scale).abs() / scale < 0.02, "ratio {} vs {}", ratio, scale);
    }

    #[test]
    fn mack_rate_monotone(m1 in 0.0f32..1.0, m2 in 0.0f32..1.0) {
        let p = MackParams::paper();
        let (lo, hi) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(p.rate(lo) >= p.rate(hi));
    }

    #[test]
    fn mask_generation_never_panics_and_stays_in_bounds(
        seed in 0u64..500,
        style_idx in 0usize..3,
    ) {
        let style = [ClipStyle::RegularArray, ClipStyle::Staggered, ClipStyle::Random][style_idx];
        let mut cfg = MaskConfig::demo(64);
        cfg.style = style;
        // With fill probability < 1 some seeds legitimately place zero
        // contacts, which the generator reports as a Layout error — that
        // is valid behaviour, not a panic.
        match cfg.generate(seed) {
            Ok(clip) => {
                prop_assert!(!clip.contacts.is_empty());
                for c in &clip.contacts {
                    prop_assert!(c.cx - c.w * 0.5 >= -0.5);
                    prop_assert!(c.cx + c.w * 0.5 <= 64.5);
                    prop_assert!(c.cy - c.h * 0.5 >= -0.5);
                    prop_assert!(c.cy + c.h * 0.5 <= 64.5);
                }
            }
            Err(peb_litho::LithoError::Layout { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}

#[test]
fn end_to_end_flow_smoke() {
    // One full run on the small grid touching every stage.
    let grid = Grid::small();
    let clip = MaskConfig::demo(grid.nx).generate(99).unwrap();
    let mut flow = LithoFlow::new(grid);
    flow.peb.duration = 30.0; // shorten for test runtime
    let sim = flow.run(&clip).unwrap();
    assert_eq!(sim.arrival.shape(), &grid.shape3());
    assert!(sim.cds.len() == clip.contacts.len());
}
