//! Golden-physics test: with every reaction term zeroed, the ADI PEB
//! step is pure anisotropic diffusion, whose exact solution for a point
//! source is a separable Gaussian.
//!
//! The solver's diffusivities come from the paper's length convention
//! `L = √(2DT)`, so after the full bake duration `T` the Gaussian's
//! per-axis standard deviation is exactly the configured diffusion
//! length. Zero-flux (Neumann) boundaries are handled analytically by
//! the method of images: the free-space Gaussian is summed over mirror
//! reflections about each boundary pair.

use peb_litho::{Grid, PebParams, PebSolver, TimeScheme};
use peb_tensor::Tensor;

/// 1-D heat-kernel factor on a Neumann-bounded interval of `n` cells of
/// pitch `h`, evaluated by image charges (reflections about the walls at
/// cell faces `-h/2` and `(n-1/2)·h`).
fn neumann_gaussian(i: usize, i0: usize, n: usize, h: f32, sigma: f32) -> f64 {
    let x = i as f64 * h as f64;
    let x0 = i0 as f64 * h as f64;
    let len = n as f64 * h as f64;
    let s = sigma as f64;
    let norm = 1.0 / (s * (2.0 * std::f64::consts::PI).sqrt());
    // Images of x0 about the two walls: positions 2k·len ± x0.
    let mut acc = 0.0;
    for k in -3i64..=3 {
        for &img in &[
            2.0 * k as f64 * len + x0,
            2.0 * k as f64 * len - h as f64 - x0,
        ] {
            let d = x - img;
            acc += norm * (-d * d / (2.0 * s * s)).exp();
        }
    }
    acc
}

/// Point source through the ADI solver with all reactions off. The
/// solve is shared across the three tests in this binary.
type PointSourceRun = (Grid, PebParams, Tensor, (usize, usize, usize));

fn diffuse_point_source() -> &'static PointSourceRun {
    static RESULT: std::sync::OnceLock<PointSourceRun> = std::sync::OnceLock::new();
    RESULT.get_or_init(run_point_source)
}

fn run_point_source() -> PointSourceRun {
    // σ/h ≥ 4 on every axis keeps the discrete kernel within a few
    // percent of the continuum Gaussian; boundaries sit ≥ 2.8σ from the
    // source so the image sum converges fast.
    let grid = Grid::new(64, 64, 26, 4.0, 4.0, 2.5).unwrap();
    let params = PebParams {
        kr: 0.0,
        kc: 0.0,
        h_a: 0.0,
        h_b: 0.0,
        lateral_diff_len_a: 16.0,
        normal_diff_len_a: 12.0,
        duration: 5.0,
        dt: 0.025,
        ..PebParams::paper()
    };
    let src = (13usize, 32usize, 32usize); // (z, y, x)
    let mut acid0 = Tensor::zeros(&grid.shape3());
    acid0.set(&[src.0, src.1, src.2], 1.0);
    let solver = PebSolver::new(params, grid, TimeScheme::ImplicitLod).unwrap();
    let state = solver.run(&acid0).unwrap();
    (grid, params, state.acid, src)
}

#[test]
fn adi_point_source_matches_analytic_gaussian() {
    let (grid, params, acid, (z0, y0, x0)) = diffuse_point_source().clone();
    // After t = duration, σ_axis = L_axis by construction (L = √(2DT)).
    let (sig_xy, sig_z) = (params.lateral_diff_len_a, params.normal_diff_len_a);
    // The discrete delta carries "mass" 1 cell; concentration =
    // mass · product of per-axis kernels · cell volume.
    let vol = (grid.dx * grid.dy * grid.dz) as f64;
    let mut peak_expected = 0.0f64;
    let mut max_err = 0.0f64;
    for z in 0..grid.nz {
        let gz = neumann_gaussian(z, z0, grid.nz, grid.dz, sig_z);
        for y in 0..grid.ny {
            let gy = neumann_gaussian(y, y0, grid.ny, grid.dy, sig_xy);
            for x in 0..grid.nx {
                let gx = neumann_gaussian(x, x0, grid.nx, grid.dx, sig_xy);
                let expected = vol * gz * gy * gx;
                peak_expected = peak_expected.max(expected);
                let got = acid.get(&[z, y, x]) as f64;
                max_err = max_err.max((got - expected).abs());
            }
        }
    }
    // Backward-Euler time error ~dt/(2T) plus O(h²/σ²) spatial error.
    let rel = max_err / peak_expected;
    assert!(
        rel < 0.05,
        "max |ADI − Gaussian| = {max_err:.3e} is {:.1}% of the peak {peak_expected:.3e}",
        rel * 100.0
    );
}

#[test]
fn adi_point_source_conserves_total_acid() {
    let (_, _, acid, _) = diffuse_point_source().clone();
    // Neumann everywhere (h_a = 0 disables the Robin surface term), so
    // the implicit sweeps must conserve the discrete sum to round-off.
    let mass = acid.sum();
    assert!(
        (mass - 1.0).abs() < 1e-4,
        "total acid {mass} drifted from the initial unit mass"
    );
    assert!(acid.min_value() >= -1e-6, "negative concentration");
}

#[test]
fn adi_point_source_is_symmetric_about_the_source() {
    let (grid, _, acid, (z0, y0, x0)) = diffuse_point_source().clone();
    // The grid is symmetric about the lateral source position
    // (x0 = nx/2 up to the half-cell offset), so profiles one cell out
    // on either lateral side must match closely; x/y isotropy must hold
    // exactly by symmetry of the operator.
    for d in 1..6 {
        let xm = acid.get(&[z0, y0, x0 - d]);
        let xp = acid.get(&[z0, y0, x0 + d]);
        let ym = acid.get(&[z0, y0 - d, x0]);
        let yp = acid.get(&[z0, y0 + d, x0]);
        let scale = xm.abs().max(1e-12);
        assert!(
            (xm - ym).abs() / scale < 1e-3 && (xp - yp).abs() / scale < 1e-3,
            "x/y anisotropy at offset {d}: x({xm}, {xp}) vs y({ym}, {yp})"
        );
    }
    let _ = grid;
}
