//! The common interface every learned PEB solver implements.

use peb_nn::Parameterized;
use peb_tensor::{Tensor, Var};

/// A trainable model mapping photoacid volumes to label-space inhibitor
/// predictions (`Y = −ln(−ln([I]) / k_c)`).
///
/// Both SDM-PEB and all Table II baselines implement this trait, which is
/// what the shared [`crate::Trainer`] and the benchmark harness consume.
pub trait PebPredictor: Parameterized {
    /// Human-readable model name (as printed in Table II).
    fn name(&self) -> &'static str;

    /// Differentiable forward pass for training.
    fn forward_train(&self, acid: &Tensor) -> Var;

    /// Inference: returns the label-space prediction tensor.
    fn predict(&self, acid: &Tensor) -> Tensor {
        let _span = peb_obs::span("model.predict");
        self.forward_train(acid).value_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(Var);

    impl Parameterized for Constant {
        fn parameters(&self) -> Vec<Var> {
            vec![self.0.clone()]
        }
    }

    impl PebPredictor for Constant {
        fn name(&self) -> &'static str {
            "constant"
        }
        fn forward_train(&self, acid: &Tensor) -> Var {
            // Broadcast one scalar parameter over the volume.
            Var::constant(Tensor::zeros(acid.shape())).add(&self.0)
        }
    }

    #[test]
    fn default_predict_uses_forward() {
        let m = Constant(Var::parameter(Tensor::scalar(2.5)));
        let y = m.predict(&Tensor::zeros(&[2, 2, 2]));
        assert_eq!(y.shape(), &[2, 2, 2]);
        assert_eq!(y.data()[0], 2.5);
        assert_eq!(m.name(), "constant");
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn PebPredictor> = Box::new(Constant(Var::parameter(Tensor::scalar(0.0))));
        assert_eq!(boxed.parameters().len(), 1);
    }
}
