//! The common interface every learned PEB solver implements.

use peb_nn::Parameterized;
use peb_tensor::{Tensor, Var};

/// A trainable model mapping photoacid volumes to label-space inhibitor
/// predictions (`Y = −ln(−ln([I]) / k_c)`).
///
/// Both SDM-PEB and all Table II baselines implement this trait, which is
/// what the shared [`crate::Trainer`] and the benchmark harness consume.
pub trait PebPredictor: Parameterized {
    /// Human-readable model name (as printed in Table II).
    fn name(&self) -> &'static str;

    /// Differentiable forward pass for training.
    fn forward_train(&self, acid: &Tensor) -> Var;

    /// Inference: returns the label-space prediction tensor.
    fn predict(&self, acid: &Tensor) -> Tensor {
        let _span = peb_obs::span("model.predict");
        self.forward_train(acid).value_clone()
    }

    /// Batched inference: one engine invocation over `clips`, returning
    /// one prediction per clip in order.
    ///
    /// **Bitwise contract:** the result for clip `i` is bit-identical to
    /// `self.predict(&clips[i])` — batching (any size, any arrival
    /// order) must never change a single output bit. On this CPU
    /// backend the clips stream one at a time through the tiled/fused
    /// kernel path (which already saturates the cores via `peb-par`); a
    /// literal 5-D batch axis would re-bracket GEMM accumulation and
    /// break that contract, so the batch win here is amortised dispatch
    /// and pooled-buffer reuse across the batch, not kernel-level
    /// batching. `peb-serve` relies on this contract for its dynamic
    /// batcher (see DESIGN §12).
    fn predict_batch(&self, clips: &[Tensor]) -> Vec<Tensor> {
        let _span = peb_obs::span("model.predict_batch");
        clips.iter().map(|clip| self.predict(clip)).collect()
    }
}

/// Copies checkpointed parameter values into a model, in
/// [`Parameterized::parameters`] order.
///
/// This is the serving half of the `PEBCKPT1` round trip: a registry
/// builds the architecture once and splices successive checkpoints'
/// weights in. Values are validated *before* any write, so a mismatch
/// leaves the model untouched.
///
/// # Errors
///
/// Returns [`peb_guard::PebError::Shape`] when the tensor count or any
/// tensor's shape disagrees with the model's parameters.
pub fn restore_parameters<M: Parameterized + ?Sized>(
    model: &M,
    values: &[Tensor],
) -> peb_guard::Result<()> {
    let params = model.parameters();
    if params.len() != values.len() {
        return Err(peb_guard::PebError::shape(format!(
            "parameter count mismatch: model has {}, checkpoint holds {}",
            params.len(),
            values.len()
        )));
    }
    for (i, (p, v)) in params.iter().zip(values).enumerate() {
        if p.shape() != v.shape() {
            return Err(peb_guard::PebError::shape(format!(
                "parameter {i} shape mismatch: model {:?}, checkpoint {:?}",
                p.shape(),
                v.shape()
            )));
        }
    }
    for (p, v) in params.iter().zip(values) {
        p.set_value(v.clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(Var);

    impl Parameterized for Constant {
        fn parameters(&self) -> Vec<Var> {
            vec![self.0.clone()]
        }
    }

    impl PebPredictor for Constant {
        fn name(&self) -> &'static str {
            "constant"
        }
        fn forward_train(&self, acid: &Tensor) -> Var {
            // Broadcast one scalar parameter over the volume.
            Var::constant(Tensor::zeros(acid.shape())).add(&self.0)
        }
    }

    #[test]
    fn default_predict_uses_forward() {
        let m = Constant(Var::parameter(Tensor::scalar(2.5)));
        let y = m.predict(&Tensor::zeros(&[2, 2, 2]));
        assert_eq!(y.shape(), &[2, 2, 2]);
        assert_eq!(y.data()[0], 2.5);
        assert_eq!(m.name(), "constant");
    }

    #[test]
    fn predict_batch_matches_sequential_bitwise() {
        let m = Constant(Var::parameter(Tensor::scalar(1.25)));
        let clips: Vec<Tensor> = (0..3)
            .map(|i| Tensor::full(&[2, 2, 2], i as f32 * 0.1))
            .collect();
        let batched = m.predict_batch(&clips);
        assert_eq!(batched.len(), clips.len());
        for (clip, out) in clips.iter().zip(&batched) {
            assert_eq!(out.bit_digest(), m.predict(clip).bit_digest());
        }
    }

    #[test]
    fn restore_parameters_validates_then_writes() {
        let m = Constant(Var::parameter(Tensor::scalar(0.0)));
        // Wrong count.
        assert!(restore_parameters(&m, &[]).is_err());
        // Wrong shape leaves the model untouched.
        assert!(restore_parameters(&m, &[Tensor::zeros(&[3])]).is_err());
        assert_eq!(m.0.value().item(), 0.0);
        restore_parameters(&m, &[Tensor::scalar(7.5)]).expect("restore");
        assert_eq!(m.0.value().item(), 7.5);
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn PebPredictor> = Box::new(Constant(Var::parameter(Tensor::scalar(0.0))));
        assert_eq!(boxed.parameters().len(), 1);
    }
}
