//! Post-training quantization (PTQ) of serving checkpoints.
//!
//! Weights are quantized **per output channel** (the leading axis) with
//! symmetric absmax int8 — the same `scale = absmax/127`,
//! `q = round(x/scale)` clamped to `±127` convention as the runtime
//! int8 GEMM in `peb_simd::int8` — and stored in the `PEBCKPT1`
//! version-2 frame ([`peb_guard::QuantSlot`]). Rank ≤ 1 parameters
//! (biases, scalars) stay f32: quantizing them saves almost nothing
//! and costs disproportionate accuracy.
//!
//! Quantization is **gated, not assumed**: [`quantize_checkpoint`]
//! calibrates over a held-out clip set by comparing the model's f32
//! predictions against its dequantized-weight predictions, and refuses
//! to produce a quantized checkpoint that violates the caller's
//! accuracy budgets. The serving path restores a quantized checkpoint
//! by dequantizing once at load/swap time ([`checkpoint_params`]); the
//! runtime int8 GEMM then re-quantizes dynamically per matmul.

#![deny(clippy::unwrap_used)]

use peb_guard::{PebError, QuantSlot, QuantTensor, Result, TrainCheckpoint};
use peb_tensor::Tensor;

use crate::metrics::{rmse, ssim};
use crate::solver::{restore_parameters, PebPredictor};

/// Accuracy budgets a quantized checkpoint must meet on the held-out
/// calibration clips (f32 predictions vs dequantized-weight
/// predictions, per clip).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantBudgets {
    /// Largest tolerated per-clip RMSE between f32 and int8-weight
    /// predictions, in label space.
    pub max_rmse: f32,
    /// Smallest tolerated per-clip SSIM between the two predictions.
    pub min_ssim: f32,
}

impl Default for QuantBudgets {
    fn default() -> Self {
        // The documented "looser" int8 budget (DESIGN §13): label-space
        // values are O(1), so 0.05 RMSE ≈ 5% of the dynamic range.
        QuantBudgets {
            max_rmse: 0.05,
            min_ssim: 0.98,
        }
    }
}

/// Calibration outcome over the held-out clip set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantReport {
    /// Worst per-clip RMSE observed.
    pub rmse_max: f32,
    /// Worst (lowest) per-clip SSIM observed.
    pub ssim_min: f32,
    /// Clips calibrated over.
    pub clips: usize,
    /// Bytes of quantized weight payload (codes + scales).
    pub quant_bytes: usize,
    /// Bytes the same parameters occupy in f32.
    pub f32_bytes: usize,
}

/// Quantizes one parameter: per-output-channel absmax int8 for rank ≥ 2
/// tensors, f32 passthrough otherwise.
pub fn quantize_slot(t: &Tensor) -> QuantSlot {
    if t.rank() < 2 || t.is_empty() {
        return QuantSlot::F32(t.clone());
    }
    let ch = t.shape()[0];
    let row = t.len() / ch;
    let mut scales = Vec::with_capacity(ch);
    let mut codes = Vec::with_capacity(t.len());
    for r in t.data().chunks_exact(row) {
        let absmax = r.iter().fold(0f32, |m, &x| m.max(x.abs()));
        let s = absmax / 127.0;
        scales.push(s);
        if s > 0.0 {
            let inv = 1.0 / s;
            codes.extend(
                r.iter()
                    .map(|&x| (x * inv).round().clamp(-127.0, 127.0) as i8),
            );
        } else {
            codes.extend(std::iter::repeat_n(0i8, row));
        }
    }
    QuantSlot::I8(QuantTensor {
        shape: t.shape().to_vec(),
        scales,
        codes,
    })
}

/// Dequantizes one checkpoint slot back to f32.
///
/// # Errors
///
/// Returns [`PebError::Shape`] when an i8 slot's scale count disagrees
/// with its leading dimension or its code count with its shape.
pub fn dequantize_slot(slot: &QuantSlot) -> Result<Tensor> {
    match slot {
        QuantSlot::F32(t) => Ok(t.clone()),
        QuantSlot::I8(q) => {
            let total = q.len();
            let ch = *q.shape.first().unwrap_or(&0);
            if ch == 0 || q.scales.len() != ch || q.codes.len() != total {
                return Err(PebError::shape(format!(
                    "quant slot inconsistent: shape {:?}, {} scales, {} codes",
                    q.shape,
                    q.scales.len(),
                    q.codes.len()
                )));
            }
            let row = total / ch;
            let mut data = Vec::with_capacity(total);
            for (c, chunk) in q.codes.chunks_exact(row).enumerate() {
                let s = q.scales[c];
                data.extend(chunk.iter().map(|&v| v as f32 * s));
            }
            Ok(Tensor::from_vec(data, &q.shape)?)
        }
    }
}

/// Materialises a checkpoint's parameters for restore: plain `params`
/// from a v1 frame, dequantized weights from a v2 quantized frame.
///
/// # Errors
///
/// Returns [`PebError::Shape`] on an inconsistent quantized slot.
pub fn checkpoint_params(ckpt: &TrainCheckpoint) -> Result<Vec<Tensor>> {
    match &ckpt.quant {
        None => Ok(ckpt.params.clone()),
        Some(slots) => slots.iter().map(dequantize_slot).collect(),
    }
}

/// Produces an inference-only quantized checkpoint from a trained one,
/// calibrated over `clips` (a held-out set) against `budgets`.
///
/// The procedure (DESIGN §13):
///
/// 1. quantize every rank ≥ 2 parameter per-channel (absmax int8);
/// 2. splice the **dequantized** weights into `model` and compare its
///    predictions on every clip against the f32-weight predictions
///    (per-clip RMSE + SSIM — exactly the degradation the int8 serving
///    path will exhibit at the weight level);
/// 3. restore the model's original f32 weights (the model is left
///    untouched on every path, success or failure);
/// 4. fail — producing no checkpoint — if any clip violates `budgets`.
///
/// The returned checkpoint carries empty `params`/`opt_m`/`opt_v` (it
/// is not resumable for training) and the quantized section; restore
/// through [`checkpoint_params`].
///
/// # Errors
///
/// [`PebError::Shape`] when `ckpt`'s parameters do not match `model`;
/// [`PebError::Config`] when `clips` is empty or a budget is violated.
pub fn quantize_checkpoint<M: PebPredictor + ?Sized>(
    model: &M,
    ckpt: &TrainCheckpoint,
    clips: &[Tensor],
    budgets: QuantBudgets,
) -> Result<(TrainCheckpoint, QuantReport)> {
    let _span = peb_obs::span("quant.calibrate");
    if clips.is_empty() {
        return Err(PebError::config(
            "PTQ calibration requires at least one held-out clip",
        ));
    }
    let slots: Vec<QuantSlot> = ckpt.params.iter().map(quantize_slot).collect();
    let deq: Vec<Tensor> = slots
        .iter()
        .map(dequantize_slot)
        .collect::<Result<Vec<_>>>()?;

    // f32 reference predictions, with the checkpoint's own weights.
    restore_parameters(model, &ckpt.params)?;
    let reference: Vec<Tensor> = clips.iter().map(|c| model.predict(c)).collect();

    // Quantized-weight predictions; always restore the f32 weights
    // afterwards, even if a later step fails.
    restore_parameters(model, &deq)?;
    let quantized: Vec<Tensor> = clips.iter().map(|c| model.predict(c)).collect();
    restore_parameters(model, &ckpt.params)?;

    let mut rmse_max = 0f32;
    let mut ssim_min = 1f32;
    for (q, r) in quantized.iter().zip(&reference) {
        rmse_max = rmse_max.max(rmse(q, r));
        if q.rank() == 3 {
            ssim_min = ssim_min.min(ssim(q, r));
        }
    }
    let quant_bytes: usize = slots
        .iter()
        .map(|s| match s {
            QuantSlot::F32(t) => t.len() * 4,
            QuantSlot::I8(q) => q.codes.len() + q.scales.len() * 4,
        })
        .sum();
    let f32_bytes: usize = ckpt.params.iter().map(|t| t.len() * 4).sum();
    let report = QuantReport {
        rmse_max,
        ssim_min,
        clips: clips.len(),
        quant_bytes,
        f32_bytes,
    };
    if rmse_max > budgets.max_rmse || ssim_min < budgets.min_ssim {
        return Err(PebError::config(format!(
            "PTQ budget violated: rmse_max {rmse_max:.5} (budget {:.5}), ssim_min {ssim_min:.5} \
             (budget {:.5}) over {} clips",
            budgets.max_rmse,
            budgets.min_ssim,
            clips.len()
        )));
    }
    let mut out = ckpt.clone();
    out.params = Vec::new();
    out.opt_m = Vec::new();
    out.opt_v = Vec::new();
    out.quant = Some(slots);
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_guard::OptKind;

    #[test]
    fn slot_quantization_respects_rank_rule() {
        let w = Tensor::from_fn(&[4, 6], |i| (i as f32 - 12.0) * 0.1);
        match quantize_slot(&w) {
            QuantSlot::I8(q) => {
                assert_eq!(q.shape, vec![4, 6]);
                assert_eq!(q.scales.len(), 4);
                assert_eq!(q.codes.len(), 24);
            }
            QuantSlot::F32(_) => panic!("rank-2 weight must quantize"),
        }
        let bias = Tensor::from_fn(&[6], |i| i as f32);
        assert!(matches!(quantize_slot(&bias), QuantSlot::F32(_)));
    }

    #[test]
    fn dequantize_roundtrip_error_is_half_step() {
        let w = Tensor::from_fn(&[3, 40], |i| ((i * 29) % 83) as f32 / 41.0 - 1.0);
        let slot = quantize_slot(&w);
        let back = dequantize_slot(&slot).expect("consistent slot");
        assert_eq!(back.shape(), w.shape());
        for (ch, (row, brow)) in w
            .data()
            .chunks_exact(40)
            .zip(back.data().chunks_exact(40))
            .enumerate()
        {
            let absmax = row.iter().fold(0f32, |m, &x| m.max(x.abs()));
            let half = absmax / 127.0 * 0.5 + 1e-7;
            for (x, b) in row.iter().zip(brow) {
                assert!((x - b).abs() <= half, "ch {ch}: {x} vs {b}");
            }
        }
    }

    #[test]
    fn inconsistent_slot_is_shape_error() {
        let mut q = match quantize_slot(&Tensor::from_fn(&[2, 3], |i| i as f32)) {
            QuantSlot::I8(q) => q,
            QuantSlot::F32(_) => panic!("must quantize"),
        };
        q.scales.pop();
        assert!(dequantize_slot(&QuantSlot::I8(q)).is_err());
    }

    #[test]
    fn zero_channels_dequantize_to_zero() {
        let w = Tensor::zeros(&[2, 5]);
        let back = dequantize_slot(&quantize_slot(&w)).expect("slot");
        assert!(back.data().iter().all(|&v| v == 0.0));
    }

    fn ckpt_of(params: Vec<Tensor>) -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 1,
            seed: 7,
            opt_kind: OptKind::Adam,
            opt_t: 1,
            lr_scale: 1.0,
            rollbacks: 0,
            epoch_stats: Vec::new(),
            params,
            opt_m: Vec::new(),
            opt_v: Vec::new(),
            quant: None,
        }
    }

    #[test]
    fn checkpoint_params_dispatches_on_frame_version() {
        let plain = ckpt_of(vec![Tensor::from_fn(&[2, 2], |i| i as f32)]);
        assert_eq!(checkpoint_params(&plain).expect("v1").len(), 1);
        let mut quantized = ckpt_of(Vec::new());
        quantized.quant = Some(vec![quantize_slot(&Tensor::from_fn(&[2, 2], |i| i as f32))]);
        let back = checkpoint_params(&quantized).expect("v2");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].shape(), &[2, 2]);
    }

    // A linear probe model: y = scale ⊙ broadcast over the clip. Its
    // prediction error under weight quantization is exactly the weight
    // quantization error, which makes budget arithmetic testable.
    struct Probe(peb_tensor::Var);

    impl peb_nn::Parameterized for Probe {
        fn parameters(&self) -> Vec<peb_tensor::Var> {
            vec![self.0.clone()]
        }
    }

    impl PebPredictor for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn forward_train(&self, acid: &Tensor) -> peb_tensor::Var {
            // Mean of the weight matrix scales the whole clip.
            let m = self.0.value().data().iter().sum::<f32>() / self.0.value().len() as f32;
            peb_tensor::Var::constant(acid.mul_scalar(m))
        }
    }

    #[test]
    fn quantize_checkpoint_gates_and_restores_model() {
        let w = Tensor::from_fn(&[2, 8], |i| ((i * 13) % 17) as f32 / 17.0 - 0.5);
        let model = Probe(peb_tensor::Var::parameter(w.clone()));
        let ckpt = ckpt_of(vec![w.clone()]);
        let clips: Vec<Tensor> = (0..3)
            .map(|s| Tensor::from_fn(&[2, 6, 6], |i| ((i + s * 31) % 11) as f32 / 11.0))
            .collect();
        let (qckpt, report) =
            quantize_checkpoint(&model, &ckpt, &clips, QuantBudgets::default()).expect("gates");
        assert!(qckpt.params.is_empty());
        assert!(qckpt.quant.is_some());
        assert_eq!(report.clips, 3);
        assert!(report.rmse_max <= QuantBudgets::default().max_rmse);
        assert!(report.ssim_min >= QuantBudgets::default().min_ssim);
        assert!(report.quant_bytes < report.f32_bytes);
        // Model weights are untouched.
        for (a, b) in model.0.value().data().iter().zip(w.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The quantized frame round-trips the wire format.
        let wire = qckpt.to_bytes();
        let back = TrainCheckpoint::from_bytes(&wire).expect("wire");
        assert_eq!(back.quant, qckpt.quant);
        // An impossible budget refuses to quantize and leaves weights
        // intact.
        let impossible = QuantBudgets {
            max_rmse: 0.0,
            min_ssim: 1.1,
        };
        assert!(quantize_checkpoint(&model, &ckpt, &clips, impossible).is_err());
        for (a, b) in model.0.value().data().iter().zip(w.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // No clips → config error.
        assert!(quantize_checkpoint(&model, &ckpt, &[], QuantBudgets::default()).is_err());
    }
}
