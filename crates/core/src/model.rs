//! The assembled SDM-PEB model (paper Fig. 2).

use rand::Rng;

use peb_nn::{DwConv3d, Parameterized};
use peb_tensor::{Tensor, Var};

use crate::decoder::Decoder;
use crate::encoder::{EncoderStage, EncoderStageConfig};
use crate::fusion::FeatureFusion;
use crate::solver::PebPredictor;

/// Full-model hyper-parameters.
///
/// The paper's production configuration (strides `[8,2,2,2]`, dims
/// `[64,128,320,512]`, reductions `[64,16,4,1]`, fusion 768) targets
/// 1000×1000×80 GPU inputs; the constructors here scale the same shape to
/// CPU-size grids while preserving the architecture.
#[derive(Debug, Clone)]
pub struct SdmPebConfig {
    /// Input volume `(D, H, W)`.
    pub input_dims: (usize, usize, usize),
    /// Channels per encoder stage.
    pub stage_channels: Vec<usize>,
    /// Patch-merging kernels per stage.
    pub patch_kernels: Vec<usize>,
    /// Patch-merging strides per stage.
    pub patch_strides: Vec<usize>,
    /// Attention heads per stage.
    pub heads: Vec<usize>,
    /// Attention reduction ratios per stage (Eq. 15).
    pub reductions: Vec<usize>,
    /// FFN width multiplier.
    pub mlp_ratio: usize,
    /// SSM state dimension in every SDM unit.
    pub ssm_state: usize,
    /// Fusion channel width.
    pub fusion_dim: usize,
    /// Fusion MLP hidden width (paper: 768 at production scale).
    pub fusion_hidden: usize,
    /// Table III ablation: use only the first encoder stage.
    pub single_stage: bool,
    /// Table III ablation: bidirectional depth scans only.
    pub scan_2d: bool,
    /// Disable SDM units entirely (exploration switch).
    pub use_sdm: bool,
    /// Overlapped patch merging (Fig. 3a) vs non-overlapped (Fig. 3b).
    pub overlapped: bool,
}

impl SdmPebConfig {
    /// Experiment-scale configuration for a `(D, H, W)` grid with
    /// power-of-two `H = W ≥ 32`.
    ///
    /// The paper's stage-1 stride of 8 is relative to 1000-pixel inputs
    /// (a 125-px finest latent); scaled CPU grids use stride 4.
    pub fn for_grid(input_dims: (usize, usize, usize)) -> Self {
        let (_, h, _) = input_dims;
        let (k0, s0) = (7usize, 4usize);
        // Keep the finest-stage attention cost bounded: reduce the
        // sequence by roughly (H/8)² at stage 1.
        let r0 = ((h / s0) * (h / s0) / 64).max(1);
        // Use up to four stages, stopping while the plane still has at
        // least one pixel (small demo grids get fewer stages).
        let channels_full = [12usize, 24, 36, 48];
        let heads_full = [1usize, 2, 4, 4];
        let mut stage_channels = Vec::new();
        let mut patch_kernels = Vec::new();
        let mut patch_strides = Vec::new();
        let mut heads = Vec::new();
        let mut reductions = Vec::new();
        let mut plane = h;
        for i in 0..4 {
            let stride = if i == 0 { s0 } else { 2 };
            if plane % stride != 0 || plane / stride == 0 {
                break;
            }
            plane /= stride;
            stage_channels.push(channels_full[i]);
            patch_kernels.push(if i == 0 { k0 } else { 3 });
            patch_strides.push(stride);
            heads.push(heads_full[i]);
            reductions.push(if i == 0 {
                r0.min(plane * plane)
            } else if plane * plane % 4 == 0 {
                4
            } else {
                1
            });
        }
        SdmPebConfig {
            input_dims,
            stage_channels,
            patch_kernels,
            patch_strides,
            heads,
            reductions,
            mlp_ratio: 2,
            ssm_state: 8,
            fusion_dim: 32,
            fusion_hidden: 96,
            single_stage: false,
            scan_2d: false,
            use_sdm: true,
            overlapped: true,
        }
    }

    /// Minimal two-stage configuration for unit tests and doc examples
    /// (`H = W ≥ 16`).
    pub fn tiny(input_dims: (usize, usize, usize)) -> Self {
        SdmPebConfig {
            input_dims,
            stage_channels: vec![6, 12],
            patch_kernels: vec![3, 3],
            patch_strides: vec![2, 2],
            heads: vec![1, 2],
            reductions: vec![4, 1],
            mlp_ratio: 2,
            ssm_state: 4,
            fusion_dim: 12,
            fusion_hidden: 24,
            single_stage: false,
            scan_2d: false,
            use_sdm: true,
            overlapped: true,
        }
    }

    /// Table III "Single Layer Encoder" ablation.
    pub fn single_stage(mut self) -> Self {
        self.single_stage = true;
        self
    }

    /// Table III "2-D Scan" ablation.
    pub fn scan_2d(mut self) -> Self {
        self.scan_2d = true;
        self
    }

    /// Fig. 3(a)→(b) design-choice ablation: non-overlapped patch merging.
    pub fn non_overlapped(mut self) -> Self {
        self.overlapped = false;
        self
    }

    fn stage_count(&self) -> usize {
        if self.single_stage {
            1
        } else {
            self.stage_channels.len()
        }
    }

    fn validate(&self) {
        let n = self.stage_channels.len();
        assert!(n >= 1, "need at least one stage");
        for (name, len) in [
            ("patch_kernels", self.patch_kernels.len()),
            ("patch_strides", self.patch_strides.len()),
            ("heads", self.heads.len()),
            ("reductions", self.reductions.len()),
        ] {
            assert_eq!(len, n, "{name} must have one entry per stage");
        }
        let (_, h, w) = self.input_dims;
        let mut hh = h;
        let mut ww = w;
        for (i, &s) in self
            .patch_strides
            .iter()
            .take(self.stage_count())
            .enumerate()
        {
            assert!(
                hh % s == 0 && ww % s == 0,
                "stride {s} does not divide stage {i} input"
            );
            hh /= s;
            ww /= s;
            assert!(
                (hh * ww) % self.reductions[i] == 0,
                "reduction {} does not divide plane {}×{} at stage {i}",
                self.reductions[i],
                hh,
                ww
            );
        }
    }
}

/// The SDM-PEB network.
pub struct SdmPeb {
    stem: DwConv3d,
    stages: Vec<EncoderStage>,
    fusion: FeatureFusion,
    decoder: Decoder,
    config: SdmPebConfig,
}

impl SdmPeb {
    /// Builds the model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`SdmPebConfig`] field docs).
    pub fn new(config: SdmPebConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        let n = config.stage_count();
        let mut stages = Vec::with_capacity(n);
        for i in 0..n {
            stages.push(EncoderStage::new(
                EncoderStageConfig {
                    in_channels: if i == 0 {
                        1
                    } else {
                        config.stage_channels[i - 1]
                    },
                    out_channels: config.stage_channels[i],
                    patch_kernel: config.patch_kernels[i],
                    patch_stride: config.patch_strides[i],
                    heads: config.heads[i],
                    reduction: config.reductions[i],
                    mlp_ratio: config.mlp_ratio,
                    ssm_state: config.ssm_state,
                    scan_2d: config.scan_2d,
                    use_sdm: config.use_sdm,
                    overlapped: config.overlapped,
                },
                rng,
            ));
        }
        let fusion = FeatureFusion::new(
            &config.stage_channels[..n],
            config.fusion_dim,
            config.fusion_hidden,
            rng,
        );
        // Full-resolution skip: raw input + stem features (2 channels).
        let decoder = Decoder::new(config.fusion_dim, config.patch_strides[0], 2, rng);
        SdmPeb {
            stem: DwConv3d::new(1, 3, rng),
            stages,
            fusion,
            decoder,
            config,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &SdmPebConfig {
        &self.config
    }

    /// Differentiable forward pass: photoacid `[D, H, W]` → label-space
    /// prediction `[D, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if `acid` does not match the configured input dimensions.
    pub fn forward(&self, acid: &Tensor) -> Var {
        let (d, h, w) = self.config.input_dims;
        assert_eq!(acid.shape(), [d, h, w], "input dims mismatch");
        let input = Var::constant(acid.reshape(&[1, d, h, w]).expect("input reshape"));
        self.forward_inner(&input)
    }

    /// Differentiable forward pass from a graph node, for callers that
    /// need gradients **with respect to the input** (ILT mask
    /// optimisation): pass the photoacid as a `Var::parameter` and its
    /// `grad()` is populated by `backward()`. [`SdmPeb::forward`]
    /// wraps the input in a constant, which cannot receive gradients.
    ///
    /// # Panics
    ///
    /// Panics if `acid` does not match the configured input dimensions.
    pub fn forward_var(&self, acid: &Var) -> Var {
        let (d, h, w) = self.config.input_dims;
        assert_eq!(acid.shape(), [d, h, w], "input dims mismatch");
        let input = acid.reshape(&[1, d, h, w]);
        self.forward_inner(&input)
    }

    fn forward_inner(&self, input: &Var) -> Var {
        let _span = peb_obs::span("model.forward");
        let x = self.stem.forward(input);
        let skip = Var::concat(&[&x, input], 0);
        let mut features = Vec::with_capacity(self.stages.len());
        let mut cur = x;
        for stage in &self.stages {
            cur = stage.forward(&cur);
            features.push(cur.clone());
        }
        let fused = self.fusion.forward(&features);
        self.decoder.forward(&fused, Some(&skip))
    }
}

impl Parameterized for SdmPeb {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.stem.parameters();
        for s in &self.stages {
            p.extend(s.parameters());
        }
        p.extend(self.fusion.parameters());
        p.extend(self.decoder.parameters());
        p
    }
}

impl PebPredictor for SdmPeb {
    fn name(&self) -> &'static str {
        "SDM-PEB"
    }

    fn forward_train(&self, acid: &Tensor) -> Var {
        self.forward(acid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiny_model_end_to_end_shape() {
        let mut rng = StdRng::seed_from_u64(100);
        let model = SdmPeb::new(SdmPebConfig::tiny((4, 16, 16)), &mut rng);
        let acid = Tensor::rand_uniform(&[4, 16, 16], 0.0, 0.9, &mut rng);
        let y = model.forward(&acid);
        assert_eq!(y.shape(), vec![4, 16, 16]);
        assert!(y.value().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ablations_change_model_size() {
        let mut rng = StdRng::seed_from_u64(101);
        let full = SdmPeb::new(SdmPebConfig::tiny((4, 16, 16)), &mut rng);
        let single = SdmPeb::new(SdmPebConfig::tiny((4, 16, 16)).single_stage(), &mut rng);
        let bi = SdmPeb::new(SdmPebConfig::tiny((4, 16, 16)).scan_2d(), &mut rng);
        assert!(single.parameter_count() < full.parameter_count());
        assert!(bi.parameter_count() < full.parameter_count());
        assert_eq!(single.stages.len(), 1);
    }

    #[test]
    fn training_step_reduces_loss_on_single_sample() {
        use crate::loss::PebLoss;
        use peb_nn::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(102);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut rng);
        let target = acid.map(|a| 1.5 - a); // simple smooth mapping
        let loss_fn = PebLoss::paper();
        let params = model.parameters();
        let mut opt = Adam::new(3e-3);
        let initial = loss_fn
            .combined(&model.forward(&acid), &target)
            .value()
            .item();
        for _ in 0..8 {
            opt.zero_grad(&params);
            let loss = loss_fn.combined(&model.forward(&acid), &target);
            loss.backward();
            opt.step(&params);
        }
        let after = loss_fn
            .combined(&model.forward(&acid), &target)
            .value()
            .item();
        assert!(
            after < initial * 0.9,
            "loss did not drop: {initial} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "input dims")]
    fn rejects_wrong_input_shape() {
        let mut rng = StdRng::seed_from_u64(103);
        let model = SdmPeb::new(SdmPebConfig::tiny((4, 16, 16)), &mut rng);
        model.forward(&Tensor::zeros(&[2, 8, 8]));
    }

    #[test]
    fn config_validation_catches_bad_reduction() {
        let mut cfg = SdmPebConfig::tiny((4, 16, 16));
        cfg.reductions = vec![3, 1]; // 3 does not divide 64
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(104);
            SdmPeb::new(cfg, &mut rng)
        });
        assert!(result.is_err());
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn non_overlapped_variant_runs_and_differs() {
        let mut rng = StdRng::seed_from_u64(120);
        let acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut rng);
        let over = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let non = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)).non_overlapped(), &mut rng);
        let yo = over.forward(&acid);
        let yn = non.forward(&acid);
        assert_eq!(yo.shape(), yn.shape());
        // Overlapped kernels are strictly larger, so the embedding has
        // more weights.
        assert!(over.parameter_count() > non.parameter_count());
    }
}
