//! Transposed-convolution decoder (paper Fig. 2 right).
//!
//! Three (or more) transposed-convolution layers with LeakyReLU
//! activations between them restore the fused features to the full input
//! resolution, one depth level at a time with shared weights.
//!
//! In addition to Fig. 2's decoder, this implementation accepts an
//! optional full-resolution *skip* volume (the stem features)
//! concatenated before the final refinement layer. At the paper's scale
//! the stage-1 latent is 125×125 px and carries enough spatial detail; at
//! this reproduction's 32–128 px grids the latent alone cannot represent
//! sub-pixel contact edges, so the skip restores the full-resolution path
//! (documented as a scaled-reproduction adaptation in DESIGN.md §1).

use rand::Rng;

use peb_nn::{ConvTranspose2d, Parameterized};
use peb_tensor::Var;

/// Per-depth-level transposed-conv decoder ending in one output channel.
pub struct Decoder {
    layers: Vec<ConvTranspose2d>,
    head_mid: ConvTranspose2d,
    head: ConvTranspose2d,
    upsample_factor: usize,
    skip_channels: usize,
}

impl Decoder {
    /// Builds a decoder that upsamples by `factor` (a power of two) using
    /// stride-2 transposed convolutions, then refines the concatenation
    /// of the upsampled features and the `skip_channels`-wide
    /// full-resolution skip down to a single output channel. At least
    /// three layers total, matching the paper's "3 transpose convolution
    /// layers".
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a nonzero power of two.
    pub fn new(
        in_channels: usize,
        factor: usize,
        skip_channels: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            factor > 0 && factor & (factor - 1) == 0,
            "decoder factor {factor} must be a power of two"
        );
        let mut layers = Vec::new();
        let mut c = in_channels;
        let mut f = factor;
        while f > 1 {
            let next = (c / 2).max(4);
            layers.push(ConvTranspose2d::new(c, next, 4, 2, 1, rng));
            c = next;
            f /= 2;
        }
        while layers.len() < 2 {
            let next = (c / 2).max(4);
            layers.push(ConvTranspose2d::new(c, next, 3, 1, 1, rng));
            c = next;
        }
        // Two-layer full-resolution refinement head: the skip carries raw
        // input detail that a single linear tap cannot exploit.
        let head_mid = ConvTranspose2d::new(c + skip_channels, (c / 2).max(8), 3, 1, 1, rng);
        let head = ConvTranspose2d::new((c / 2).max(8), 1, 3, 1, 1, rng);
        Decoder {
            layers,
            head_mid,
            head,
            upsample_factor: factor,
            skip_channels,
        }
    }

    /// Total spatial upsampling factor.
    pub fn upsample_factor(&self) -> usize {
        self.upsample_factor
    }

    /// Decodes `[C, D, H', W']` into `[D, H'·factor, W'·factor]`.
    ///
    /// `skip`, when configured, must be `[skip_channels, D, H, W]` at the
    /// full output resolution.
    ///
    /// # Panics
    ///
    /// Panics if a skip was configured but not provided (or vice versa),
    /// or shapes disagree.
    pub fn forward(&self, x: &Var, skip: Option<&Var>) -> Var {
        assert_eq!(
            skip.is_some(),
            self.skip_channels > 0,
            "skip presence must match configuration"
        );
        let s = x.shape();
        let (c, d) = (s[0], s[1]);
        let mut planes = Vec::with_capacity(d);
        for k in 0..d {
            let mut plane = x.slice_axis(1, k, k + 1).reshape(&[c, s[2], s[3]]);
            for layer in &self.layers {
                plane = layer.forward(&plane).leaky_relu(0.01);
            }
            if let Some(skip) = skip {
                let ss = skip.shape();
                assert_eq!(ss[0], self.skip_channels, "skip channel mismatch");
                let sk = skip.slice_axis(1, k, k + 1).reshape(&[ss[0], ss[2], ss[3]]);
                plane = Var::concat(&[&plane, &sk], 0);
            }
            let out = self
                .head
                .forward(&self.head_mid.forward(&plane).leaky_relu(0.01));
            let ps = out.shape();
            planes.push(out.reshape(&[1, ps[1], ps[2]]));
        }
        let refs: Vec<&Var> = planes.iter().collect();
        Var::concat(&refs, 0) // [D, H, W]
    }
}

impl Parameterized for Decoder {
    fn parameters(&self) -> Vec<Var> {
        let mut p: Vec<Var> = self.layers.iter().flat_map(|l| l.parameters()).collect();
        p.extend(self.head_mid.parameters());
        p.extend(self.head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn restores_full_resolution_with_skip() {
        let mut rng = StdRng::seed_from_u64(90);
        let dec = Decoder::new(8, 4, 1, &mut rng);
        let x = Var::constant(Tensor::randn(&[8, 3, 4, 4], &mut rng));
        let skip = Var::constant(Tensor::randn(&[1, 3, 16, 16], &mut rng));
        let y = dec.forward(&x, Some(&skip));
        assert_eq!(y.shape(), vec![3, 16, 16]);
        assert!(
            dec.layers.len() + 1 >= 3,
            "paper uses three transpose convs"
        );
    }

    #[test]
    fn works_without_skip() {
        let mut rng = StdRng::seed_from_u64(91);
        let dec = Decoder::new(8, 1, 0, &mut rng);
        let x = Var::constant(Tensor::ones(&[8, 2, 4, 4]));
        assert_eq!(dec.forward(&x, None).shape(), vec![2, 4, 4]);
    }

    #[test]
    fn skip_affects_output() {
        let mut rng = StdRng::seed_from_u64(92);
        let dec = Decoder::new(4, 2, 1, &mut rng);
        let x = Var::constant(Tensor::randn(&[4, 2, 2, 2], &mut rng));
        let s1 = Var::constant(Tensor::zeros(&[1, 2, 4, 4]));
        let s2 = Var::constant(Tensor::ones(&[1, 2, 4, 4]));
        let y1 = dec.forward(&x, Some(&s1)).value_clone();
        let y2 = dec.forward(&x, Some(&s2)).value_clone();
        assert!(y1.max_abs_diff(&y2) > 1e-6);
    }

    #[test]
    fn gradients_flow_through_all_layers() {
        let mut rng = StdRng::seed_from_u64(93);
        let dec = Decoder::new(4, 2, 1, &mut rng);
        let x = Var::constant(Tensor::randn(&[4, 2, 2, 2], &mut rng));
        let skip = Var::constant(Tensor::randn(&[1, 2, 4, 4], &mut rng));
        dec.forward(&x, Some(&skip)).square().sum().backward();
        assert!(dec.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_factor() {
        let mut rng = StdRng::seed_from_u64(94);
        Decoder::new(4, 3, 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "skip presence")]
    fn rejects_missing_skip() {
        let mut rng = StdRng::seed_from_u64(95);
        let dec = Decoder::new(4, 2, 1, &mut rng);
        let x = Var::constant(Tensor::ones(&[4, 1, 2, 2]));
        dec.forward(&x, None);
    }
}
