//! Evaluation metrics (paper §II-C, Eqs. 12–14).

use peb_litho::ContactCd;
use peb_tensor::Tensor;

/// Root mean squared error `√(‖P̂ − P‖² / n)` (Eq. 12).
///
/// # Panics
///
/// Panics on shape mismatch or empty tensors.
pub fn rmse(pred: &Tensor, truth: &Tensor) -> f32 {
    assert_eq!(pred.shape(), truth.shape(), "rmse shape mismatch");
    assert!(!pred.is_empty(), "rmse of empty tensors");
    let mut acc = 0f64;
    for (a, b) in pred.data().iter().zip(truth.data()) {
        let e = (a - b) as f64;
        acc += e * e;
    }
    ((acc / pred.len() as f64) as f32).sqrt()
}

/// Normalised RMSE `‖P̂ − P‖_F / ‖P‖_F` (Eq. 13), as a fraction (multiply
/// by 100 for the paper's percentages).
///
/// # Panics
///
/// Panics on shape mismatch or an all-zero reference.
pub fn nrmse(pred: &Tensor, truth: &Tensor) -> f32 {
    assert_eq!(pred.shape(), truth.shape(), "nrmse shape mismatch");
    let mut num = 0f64;
    let mut den = 0f64;
    for (a, b) in pred.data().iter().zip(truth.data()) {
        let e = (a - b) as f64;
        num += e * e;
        den += (*b as f64) * (*b as f64);
    }
    assert!(den > 0.0, "nrmse reference norm is zero");
    (num / den).sqrt() as f32
}

/// Mean structural similarity between two `[Z, Y, X]` volumes, averaged
/// over per-z-slice SSIM maps computed with an 8×8 uniform window
/// (stride 1, interior windows only; slices smaller than the window
/// fall back to one full-slice window).
///
/// Uses the standard constants `C1 = (0.01·L)²`, `C2 = (0.03·L)²` with
/// the dynamic range `L` taken from the reference volume's value span
/// (`max − min`, floored at a tiny epsilon so constant volumes compare
/// equal → SSIM 1). Identical volumes score exactly 1; the score falls
/// toward 0 as structure decorrelates. This is the fidelity metric the
/// litho-simulation literature reports alongside RMSE, and the one the
/// precision-delta gates consume.
///
/// # Panics
///
/// Panics on shape mismatch, non-3-D input, or empty tensors.
pub fn ssim(pred: &Tensor, truth: &Tensor) -> f32 {
    assert_eq!(pred.shape(), truth.shape(), "ssim shape mismatch");
    assert_eq!(pred.rank(), 3, "ssim expects [Z, Y, X] volumes");
    assert!(!pred.is_empty(), "ssim of empty tensors");
    let (nz, ny, nx) = (pred.shape()[0], pred.shape()[1], pred.shape()[2]);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in truth.data() {
        lo = lo.min(v as f64);
        hi = hi.max(v as f64);
    }
    let range = (hi - lo).max(1e-12);
    let c1 = (0.01 * range) * (0.01 * range);
    let c2 = (0.03 * range) * (0.03 * range);
    const WIN: usize = 8;
    let (wy, wx) = (WIN.min(ny), WIN.min(nx));
    let inv_n = 1.0 / (wy * wx) as f64;
    let plane = ny * nx;
    let mut acc = 0f64;
    let mut windows = 0u64;
    for z in 0..nz {
        let p = &pred.data()[z * plane..(z + 1) * plane];
        let t = &truth.data()[z * plane..(z + 1) * plane];
        for y0 in 0..=(ny - wy) {
            for x0 in 0..=(nx - wx) {
                let (mut sp, mut st, mut spp, mut stt, mut spt) = (0f64, 0f64, 0f64, 0f64, 0f64);
                for y in y0..y0 + wy {
                    for x in x0..x0 + wx {
                        let a = p[y * nx + x] as f64;
                        let b = t[y * nx + x] as f64;
                        sp += a;
                        st += b;
                        spp += a * a;
                        stt += b * b;
                        spt += a * b;
                    }
                }
                let (mp, mt) = (sp * inv_n, st * inv_n);
                let vp = (spp * inv_n - mp * mp).max(0.0);
                let vt = (stt * inv_n - mt * mt).max(0.0);
                let cov = spt * inv_n - mp * mt;
                let s = ((2.0 * mp * mt + c1) * (2.0 * cov + c2))
                    / ((mp * mp + mt * mt + c1) * (vp + vt + c2));
                acc += s;
                windows += 1;
            }
        }
    }
    (acc / windows as f64) as f32
}

/// Per-axis CD error statistics across a set of contacts (Eq. 14).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CdErrorStats {
    /// RMS CD error in x (nm).
    pub x_nm: f32,
    /// RMS CD error in y (nm).
    pub y_nm: f32,
    /// Number of contact pairs measured.
    pub count: usize,
}

/// Computes `CD Error_d = √(mean (ĈD_d − CD_d)²)` over all contacts that
/// are open in the reference profile (Eq. 14). A predicted-closed contact
/// contributes its full reference CD as error.
pub fn cd_error_nm(pred: &[ContactCd], truth: &[ContactCd]) -> CdErrorStats {
    let mut sx = 0f64;
    let mut sy = 0f64;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        if !t.open {
            continue;
        }
        let ex = (p.cd_x_nm - t.cd_x_nm) as f64;
        let ey = (p.cd_y_nm - t.cd_y_nm) as f64;
        sx += ex * ex;
        sy += ey * ey;
        n += 1;
    }
    if n == 0 {
        return CdErrorStats::default();
    }
    CdErrorStats {
        x_nm: ((sx / n as f64) as f32).sqrt(),
        y_nm: ((sy / n as f64) as f32).sqrt(),
        count: n,
    }
}

/// Bucket labels of the paper's Fig. 7 histogram.
pub const CD_BUCKET_LABELS: [&str; 5] = ["0~1", "1~2", "2~3", "3~4", ">4"];

/// Histograms per-contact absolute CD errors into the Fig. 7 buckets
/// (0–1, 1–2, 2–3, 3–4, >4 nm), returning `(x_buckets, y_buckets)` as
/// percentages.
pub fn cd_histogram(pred: &[ContactCd], truth: &[ContactCd]) -> ([f32; 5], [f32; 5]) {
    let mut bx = [0usize; 5];
    let mut by = [0usize; 5];
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        if !t.open {
            continue;
        }
        n += 1;
        bx[bucket((p.cd_x_nm - t.cd_x_nm).abs())] += 1;
        by[bucket((p.cd_y_nm - t.cd_y_nm).abs())] += 1;
    }
    let to_pct = |b: [usize; 5]| {
        let mut out = [0f32; 5];
        if n > 0 {
            for (o, c) in out.iter_mut().zip(b) {
                *o = 100.0 * c as f32 / n as f32;
            }
        }
        out
    };
    (to_pct(bx), to_pct(by))
}

fn bucket(err_nm: f32) -> usize {
    match err_nm {
        e if e < 1.0 => 0,
        e if e < 2.0 => 1,
        e if e < 3.0 => 2,
        e if e < 4.0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cd(x: f32, y: f32, open: bool) -> ContactCd {
        ContactCd {
            cd_x_nm: x,
            cd_y_nm: y,
            open,
            centre: (0, 0),
        }
    }

    #[test]
    fn rmse_known_value() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        assert!((rmse(&a, &b) - (2.5f32).sqrt()).abs() < 1e-6);
        assert_eq!(rmse(&a, &a), 0.0);
    }

    #[test]
    fn nrmse_scale_invariance() {
        let truth = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let pred = Tensor::from_vec(vec![1.1, 2.2, 3.3], &[3]).unwrap();
        let base = nrmse(&pred, &truth);
        let scaled = nrmse(&pred.mul_scalar(10.0), &truth.mul_scalar(10.0));
        assert!((base - scaled).abs() < 1e-6);
        assert!((base - 0.1).abs() < 1e-5);
    }

    #[test]
    fn ssim_bounds_and_sensitivity() {
        let v = Tensor::from_fn(&[3, 12, 12], |i| ((i * 37) % 97) as f32 / 97.0);
        // Identity scores exactly 1.
        assert!((ssim(&v, &v) - 1.0).abs() < 1e-6);
        // Mild noise stays high but below 1; gross distortion falls
        // well below the mild score.
        let mild = v.map(|x| x + 0.01 * (x * 31.0).sin());
        let gross = v.map(|x| 1.0 - x);
        let s_mild = ssim(&mild, &v);
        let s_gross = ssim(&gross, &v);
        assert!(s_mild < 1.0 && s_mild > 0.9, "mild {s_mild}");
        assert!(s_gross < s_mild - 0.2, "gross {s_gross} vs mild {s_mild}");
        // Constant volumes (zero range) compare equal.
        let flat = Tensor::full(&[2, 4, 4], 0.5);
        assert!((ssim(&flat, &flat) - 1.0).abs() < 1e-6);
        // Slices smaller than the window still work.
        let tiny = Tensor::from_fn(&[2, 3, 5], |i| i as f32);
        assert!((ssim(&tiny, &tiny) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cd_error_rms_over_open_contacts() {
        let truth = vec![
            cd(60.0, 60.0, true),
            cd(62.0, 58.0, true),
            cd(0.0, 0.0, false),
        ];
        let pred = vec![
            cd(61.0, 60.0, true),
            cd(59.0, 58.0, true),
            cd(50.0, 50.0, true),
        ];
        let stats = cd_error_nm(&pred, &truth);
        assert_eq!(stats.count, 2);
        // x errors: 1, −3 → RMS √5; y errors: 0, 0.
        assert!((stats.x_nm - 5f32.sqrt()).abs() < 1e-5);
        assert_eq!(stats.y_nm, 0.0);
    }

    #[test]
    fn predicted_closed_counts_as_full_error() {
        let truth = vec![cd(60.0, 60.0, true)];
        let pred = vec![cd(0.0, 0.0, false)];
        let stats = cd_error_nm(&pred, &truth);
        assert_eq!(stats.x_nm, 60.0);
    }

    #[test]
    fn histogram_buckets_and_percentages() {
        let truth = vec![
            cd(60.0, 60.0, true),
            cd(60.0, 60.0, true),
            cd(60.0, 60.0, true),
            cd(60.0, 60.0, true),
        ];
        let pred = vec![
            cd(60.5, 60.0, true), // 0–1
            cd(61.5, 62.5, true), // 1–2 (x), 2–3 (y)
            cd(63.5, 60.0, true), // 3–4
            cd(70.0, 66.0, true), // >4
        ];
        let (hx, hy) = cd_histogram(&pred, &truth);
        assert_eq!(hx, [25.0, 25.0, 0.0, 25.0, 25.0]);
        assert_eq!(hy, [50.0, 0.0, 25.0, 0.0, 25.0]);
        assert!((hx.iter().sum::<f32>() - 100.0).abs() < 1e-4);
    }

    #[test]
    fn empty_truth_yields_zeroes() {
        let stats = cd_error_nm(&[], &[]);
        assert_eq!(stats.count, 0);
        let (hx, _) = cd_histogram(&[], &[]);
        assert_eq!(hx, [0.0; 5]);
    }
}
