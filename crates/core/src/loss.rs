//! The customised PEB optimisation objectives (paper §III-D).
//!
//! `L = L_MaxSE + α·L_PEB-FL + β·L_Div` (Eq. 22) with
//!
//! * `L_MaxSE` — the single maximum squared error (Eq. 16, from DeePEB);
//! * `L_PEB-FL` — the PEB focal loss `Σ |e|^γ e²` (Eq. 17), which
//!   up-weights large errors to counter the extreme value imbalance of
//!   the inhibitor distribution (Fig. 6);
//! * `L_Div` — the differential depth divergence (Eqs. 18–21): a KL
//!   divergence between softmax-normalised layer-to-layer difference maps
//!   of prediction and ground truth, aligning inter-layer variation.

use peb_tensor::{Tensor, Var};

/// How the focal term aggregates over voxels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Paper-faithful Eq. 17 (default): sum over all voxels. The sum
    /// dwarfs the single-voxel MaxSE term, which is exactly the point —
    /// it provides a dense gradient everywhere while MaxSE polices the
    /// worst voxel. Adam's per-parameter scaling absorbs the magnitude.
    Sum,
    /// Volume-independent variant: mean over voxels. Useful when
    /// comparing loss values across grid sizes, but it collapses the
    /// focal term to a small correction of MaxSE and trains poorly.
    Mean,
}

/// Combined PEB training loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PebLoss {
    /// Focal-term weight α (paper: 1.0).
    pub alpha: f32,
    /// Divergence-term weight β (paper: 0.1).
    pub beta: f32,
    /// Focusing parameter γ (paper: 1).
    pub gamma: f32,
    /// Softmax temperature τ of the difference maps (paper: 0.1).
    pub tau: f32,
    /// Aggregation of the focal term.
    pub reduction: Reduction,
    /// Include `L_MaxSE` (disabled in no-MaxSE ablations).
    pub use_max_se: bool,
    /// Include the focal term (Table III "w/o. Focal Loss" sets false).
    pub use_focal: bool,
    /// Include the divergence term (Table III "w/o. Regularization").
    pub use_divergence: bool,
}

/// The individual loss terms of one evaluation, for logging/ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossBreakdown {
    /// `L_MaxSE` value.
    pub max_se: f32,
    /// `L_PEB-FL` value (after reduction, before α).
    pub focal: f32,
    /// `L_Div` value (before β).
    pub divergence: f32,
    /// The combined weighted total.
    pub total: f32,
}

impl PebLoss {
    /// The paper's configuration: α = 1.0, β = 0.1, γ = 1, τ = 0.1.
    pub fn paper() -> Self {
        PebLoss {
            alpha: 1.0,
            beta: 0.1,
            gamma: 1.0,
            tau: 0.1,
            reduction: Reduction::Sum,
            use_max_se: true,
            use_focal: true,
            use_divergence: true,
        }
    }

    /// Table III "w/o. Focal Loss" ablation.
    pub fn without_focal(mut self) -> Self {
        self.use_focal = false;
        self
    }

    /// Table III "w/o. Regularization" ablation.
    pub fn without_divergence(mut self) -> Self {
        self.use_divergence = false;
        self
    }

    /// Eq. 16: maximum squared error over the volume.
    pub fn max_se(&self, pred: &Var, target: &Tensor) -> Var {
        pred.sub(&Var::constant(target.clone())).square().max_all()
    }

    /// Eq. 17: `Σ (or mean) |e|^γ · e²` = `|e|^(γ+2)`.
    pub fn focal(&self, pred: &Var, target: &Tensor) -> Var {
        let powered = pred
            .sub(&Var::constant(target.clone()))
            .abs_powf(self.gamma + 2.0);
        match self.reduction {
            Reduction::Sum => powered.sum(),
            Reduction::Mean => powered.mean(),
        }
    }

    /// Eqs. 18–21: KL divergence between softmax-normalised forward depth
    /// difference maps.
    ///
    /// # Panics
    ///
    /// Panics unless `pred` and `target` are `[D, H, W]` with `D ≥ 2`.
    pub fn depth_divergence(&self, pred: &Var, target: &Tensor) -> Var {
        let shape = pred.shape();
        assert_eq!(shape.len(), 3, "depth divergence expects [D, H, W]");
        assert!(shape[0] >= 2, "need at least two depth layers");
        assert_eq!(
            shape.as_slice(),
            target.shape(),
            "pred/target shape mismatch"
        );
        let (d, h, w) = (shape[0], shape[1], shape[2]);
        // ΔŶ_d = Ŷ_{d+1} − Ŷ_d, flattened to [D−1, H·W].
        let upper = pred.slice_axis(0, 1, d);
        let lower = pred.slice_axis(0, 0, d - 1);
        let diff_pred = upper.sub(&lower).reshape(&[d - 1, h * w]);
        let p = diff_pred.mul_scalar(1.0 / self.tau).softmax(1);
        // Ground-truth difference map probabilities (constant).
        let q = {
            let tv = target;
            let mut q = Tensor::zeros(&[d - 1, h * w]);
            for dz in 0..d - 1 {
                // softmax over the plane with temperature τ.
                let mut mx = f32::NEG_INFINITY;
                let mut vals = vec![0f32; h * w];
                for (i, v) in vals.iter_mut().enumerate() {
                    let (y, x) = (i / w, i % w);
                    *v = (tv.get(&[dz + 1, y, x]) - tv.get(&[dz, y, x])) / self.tau;
                    mx = mx.max(*v);
                }
                let mut z = 0f64;
                for v in &mut vals {
                    *v = (*v - mx).exp();
                    z += *v as f64;
                }
                let zi = 1.0 / z as f32;
                for (i, v) in vals.iter().enumerate() {
                    q.set(&[dz, i], v * zi);
                }
            }
            q
        };
        // KL(p ‖ q) = Σ p (ln p − ln q).
        let ln_q = Var::constant(q.map(|v| (v + 1e-12).ln()));
        p.mul(&p.ln_eps(1e-12).sub(&ln_q)).sum()
    }

    /// Eq. 22: the full combined loss as a differentiable node.
    pub fn combined(&self, pred: &Var, target: &Tensor) -> Var {
        let _span = peb_obs::span("train.loss");
        let mut total: Option<Var> = None;
        let mut add = |term: Var| {
            total = Some(match total.take() {
                Some(t) => t.add(&term),
                None => term,
            });
        };
        if self.use_max_se {
            add(self.max_se(pred, target));
        }
        if self.use_focal {
            add(self.focal(pred, target).mul_scalar(self.alpha));
        }
        if self.use_divergence {
            add(self.depth_divergence(pred, target).mul_scalar(self.beta));
        }
        total.expect("at least one loss term enabled")
    }

    /// Evaluates every term for logging (no gradients retained).
    pub fn breakdown(&self, pred: &Tensor, target: &Tensor) -> LossBreakdown {
        let p = Var::constant(pred.clone());
        let max_se = self.max_se(&p, target).value().item();
        let focal = self.focal(&p, target).value().item();
        let divergence = if pred.shape()[0] >= 2 {
            self.depth_divergence(&p, target).value().item()
        } else {
            0.0
        };
        LossBreakdown {
            max_se,
            focal,
            divergence,
            total: if self.use_max_se { max_se } else { 0.0 }
                + if self.use_focal {
                    self.alpha * focal
                } else {
                    0.0
                }
                + if self.use_divergence {
                    self.beta * divergence
                } else {
                    0.0
                },
        }
    }
}

impl Default for PebLoss {
    fn default() -> Self {
        PebLoss::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fields(seed: u64) -> (Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = Tensor::randn(&[3, 4, 4], &mut rng);
        let pred = &target + &Tensor::randn(&[3, 4, 4], &mut rng).mul_scalar(0.2);
        (pred, target)
    }

    #[test]
    fn perfect_prediction_gives_zero_loss() {
        let (_, target) = fields(70);
        let loss = PebLoss::paper();
        let b = loss.breakdown(&target, &target);
        assert!(b.max_se.abs() < 1e-6);
        assert!(b.focal.abs() < 1e-6);
        assert!(
            b.divergence.abs() < 1e-4,
            "KL(p‖p) = 0, got {}",
            b.divergence
        );
        assert!(b.total.abs() < 1e-4);
    }

    #[test]
    fn max_se_picks_worst_voxel() {
        let target = Tensor::zeros(&[2, 2, 2]);
        let mut pred = Tensor::zeros(&[2, 2, 2]);
        pred.set(&[1, 0, 1], 0.5);
        pred.set(&[0, 1, 1], -0.2);
        let loss = PebLoss::paper();
        let v = loss.max_se(&Var::constant(pred), &target).value().item();
        assert!((v - 0.25).abs() < 1e-6);
    }

    #[test]
    fn focal_upweights_large_errors_relative_to_mse() {
        // Two error patterns with the same MSE: concentrated vs spread.
        let target = Tensor::zeros(&[1, 1, 4]);
        let concentrated = Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0], &[1, 1, 4]).unwrap();
        let spread = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 1, 4]).unwrap();
        let loss = PebLoss::paper();
        let fc = loss
            .focal(&Var::constant(concentrated), &target)
            .value()
            .item();
        let fs = loss.focal(&Var::constant(spread), &target).value().item();
        // Same MSE (=1) but |2|³/4 = 2 > 1 = |1|³: focal prefers spread.
        assert!(fc > fs, "concentrated {fc} vs spread {fs}");
    }

    #[test]
    fn divergence_is_nonnegative_and_zero_iff_matching_diffs() {
        let (pred, target) = fields(71);
        let loss = PebLoss::paper();
        let v = loss
            .depth_divergence(&Var::constant(pred), &target)
            .value()
            .item();
        assert!(v > 0.0);
        // Adding a per-layer constant leaves difference softmax unchanged
        // only if constant across the plane — shifting every voxel of
        // every layer by the same amount keeps Δ maps identical.
        let shifted = target.add_scalar(0.7);
        let v2 = loss
            .depth_divergence(&Var::constant(shifted), &target)
            .value()
            .item();
        assert!(
            v2.abs() < 1e-4,
            "uniform shift should not change Δ maps: {v2}"
        );
    }

    #[test]
    fn combined_respects_ablation_flags() {
        let (pred, target) = fields(72);
        let full = PebLoss::paper();
        let no_focal = PebLoss::paper().without_focal();
        let no_div = PebLoss::paper().without_divergence();
        let b = full.breakdown(&pred, &target);
        let bf = no_focal.breakdown(&pred, &target);
        let bd = no_div.breakdown(&pred, &target);
        assert!((b.total - (b.max_se + b.focal + 0.1 * b.divergence)).abs() < 1e-5);
        assert!((bf.total - (b.max_se + 0.1 * b.divergence)).abs() < 1e-5);
        assert!((bd.total - (b.max_se + b.focal)).abs() < 1e-5);
    }

    #[test]
    fn combined_is_differentiable() {
        let (pred, target) = fields(73);
        let p = Var::parameter(pred);
        PebLoss::paper().combined(&p, &target).backward();
        let g = p.grad().unwrap();
        assert!(g.data().iter().any(|v| *v != 0.0));
        assert!(g.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn combined_gradcheck() {
        let mut rng = StdRng::seed_from_u64(74);
        let target = Tensor::randn(&[2, 3, 3], &mut rng);
        let pred0 = &target + &Tensor::randn(&[2, 3, 3], &mut rng).mul_scalar(0.3);
        let loss = PebLoss::paper();
        let r = peb_tensor::check_gradients(
            &Var::parameter(pred0),
            |v| loss.combined(v, &target),
            1e-3,
        );
        assert!(r.ok(5e-2), "{r:?}");
    }

    #[test]
    fn sum_reduction_scales_with_volume() {
        let target = Tensor::zeros(&[1, 2, 2]);
        let pred = Tensor::ones(&[1, 2, 2]);
        let mut loss = PebLoss::paper();
        loss.reduction = Reduction::Sum;
        let s = loss
            .focal(&Var::constant(pred.clone()), &target)
            .value()
            .item();
        loss.reduction = Reduction::Mean;
        let m = loss.focal(&Var::constant(pred), &target).value().item();
        assert!((s - 4.0 * m).abs() < 1e-5);
    }
}
