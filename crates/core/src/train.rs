//! Shared training loop with gradient accumulation and step decay.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use peb_nn::{Adam, Optimizer, StepDecay};
use peb_tensor::Tensor;

use crate::loss::PebLoss;
use crate::solver::PebPredictor;

/// Training hyper-parameters.
///
/// The paper trains 500 epochs with SGD-style step decay (0.03, step 100,
/// γ 0.7) and an effective batch of 8 via gradient accumulation. This
/// reproduction defaults to Adam (more robust at CPU-scale budgets) but
/// keeps the same decay *shape*: the schedule is applied as a multiplier
/// on the base learning rate.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Gradient-accumulation window (paper: 8 clips per update).
    pub accumulate: usize,
    /// Base Adam learning rate.
    pub base_lr: f32,
    /// Decay schedule applied multiplicatively to `base_lr`.
    pub schedule: StepDecay,
    /// Loss configuration (Eq. 22 terms and ablations).
    pub loss: PebLoss,
    /// Global-norm gradient clipping threshold (None disables). The
    /// summed focal loss produces occasional large-magnitude spikes at
    /// hard voxels; clipping keeps Adam's trajectory stable.
    pub clip_norm: Option<f32>,
    /// Shuffling seed.
    pub seed: u64,
}

impl TrainConfig {
    /// CPU-scale defaults mirroring the paper's schedule shape.
    pub fn quick(epochs: usize) -> Self {
        // Scale the paper's step-100 decay to the configured epoch count
        // so the LR decays the same number of times (5 over a full run).
        let step = (epochs / 5).max(1);
        TrainConfig {
            epochs,
            accumulate: 8,
            base_lr: 5e-3,
            schedule: StepDecay {
                base_lr: 1.0,
                step_size: step,
                gamma: 0.7,
            },
            loss: PebLoss::paper(),
            clip_norm: Some(10.0),
            seed: 20250705,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean combined loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final epoch's mean loss.
    pub final_loss: f32,
    /// Wall-clock training time.
    pub elapsed: Duration,
}

/// Trains any [`PebPredictor`] on `(acid, label)` pairs.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Configuration in use.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Runs the full training loop.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(&self, model: &dyn PebPredictor, data: &[(Tensor, Tensor)]) -> TrainReport {
        assert!(!data.is_empty(), "training set is empty");
        let _span = peb_obs::span("train.fit");
        let start = Instant::now();
        let params = model.parameters();
        let mut opt = Adam::new(self.config.base_lr);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            let _epoch_span = peb_obs::span("train.epoch");
            opt.set_lr(self.config.base_lr * self.config.schedule.lr_at(epoch));
            order.shuffle(&mut rng);
            let mut epoch_loss = 0f64;
            let mut pending = 0usize;
            for &i in &order {
                let (acid, label) = &data[i];
                let pred = model.forward_train(acid);
                let loss = self.config.loss.combined(&pred, label);
                let loss_value = loss.value().item();
                if !loss_value.is_finite() {
                    // A diverged micro-batch must not poison the weights:
                    // drop its gradient contribution and move on.
                    model.parameters().iter().for_each(|p| p.zero_grad());
                    pending = 0;
                    continue;
                }
                epoch_loss += loss_value as f64;
                loss.backward();
                pending += 1;
                if pending == self.config.accumulate {
                    self.clip_gradients(&params);
                    opt.step(&params);
                    opt.zero_grad(&params);
                    pending = 0;
                }
            }
            if pending > 0 {
                self.clip_gradients(&params);
                opt.step(&params);
                opt.zero_grad(&params);
            }
            epoch_losses.push((epoch_loss / data.len() as f64) as f32);
        }
        TrainReport {
            final_loss: *epoch_losses.last().expect("at least one epoch"),
            epoch_losses,
            elapsed: start.elapsed(),
        }
    }

    /// Scales all gradients down when their global L2 norm exceeds the
    /// configured threshold.
    fn clip_gradients(&self, params: &[peb_tensor::Var]) {
        let Some(max_norm) = self.config.clip_norm else {
            return;
        };
        let mut total = 0f64;
        for p in params {
            if let Some(g) = p.grad() {
                total += g
                    .data()
                    .iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>();
            }
        }
        let norm = total.sqrt() as f32;
        if norm > max_norm {
            let scale = max_norm / norm;
            for p in params {
                if let Some(g) = p.grad() {
                    p.zero_grad();
                    // Re-accumulate the scaled gradient.
                    let scaled = g.mul_scalar(scale);
                    // Var has no direct set_grad; emulate via backward of a
                    // weighted identity: cheaper to just re-store through
                    // the accumulate path.
                    p.accumulate_grad(scaled);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SdmPeb, SdmPebConfig};
    use rand::rngs::StdRng;

    #[test]
    fn training_decreases_loss_on_toy_problem() {
        let mut rng = StdRng::seed_from_u64(110);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        // Learnable task: label is a smooth function of the acid.
        let data: Vec<(Tensor, Tensor)> = (0..4)
            .map(|s| {
                let mut r = StdRng::seed_from_u64(s);
                let acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut r);
                let label = acid.map(|a| 2.0 * a - 0.5);
                (acid, label)
            })
            .collect();
        let mut cfg = TrainConfig::quick(6);
        cfg.accumulate = 2;
        let report = Trainer::new(cfg).fit(&model, &data);
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.final_loss < report.epoch_losses[0] * 0.9,
            "{:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn quick_config_schedule_decays_five_times() {
        let cfg = TrainConfig::quick(50);
        assert_eq!(cfg.schedule.step_size, 10);
        let last = cfg.schedule.lr_at(49);
        assert!((last - 0.7f32.powi(4)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_dataset() {
        let mut rng = StdRng::seed_from_u64(111);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        Trainer::new(TrainConfig::quick(1)).fit(&model, &[]);
    }
}

#[cfg(test)]
mod failure_injection_tests {
    use super::*;
    use crate::model::{SdmPeb, SdmPebConfig};
    use peb_nn::Parameterized;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nan_labels_do_not_poison_the_weights() {
        let mut rng = StdRng::seed_from_u64(300);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let good_acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut rng);
        let good_label = good_acid.map(|a| a - 0.5);
        let poisoned_label = Tensor::full(&[2, 16, 16], f32::NAN);
        let data = vec![
            (good_acid.clone(), good_label),
            (good_acid.clone(), poisoned_label),
        ];
        let mut cfg = TrainConfig::quick(3);
        cfg.accumulate = 1;
        Trainer::new(cfg).fit(&model, &data);
        // Every weight must still be finite and the model usable.
        for p in model.parameters() {
            assert!(
                p.value().data().iter().all(|v| v.is_finite()),
                "weights contaminated by the poisoned sample"
            );
        }
        let pred = model.predict(&good_acid);
        assert!(pred.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn clipping_bounds_the_gradient_norm() {
        let mut rng = StdRng::seed_from_u64(301);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut rng);
        // Huge labels force a huge focal-loss gradient.
        let label = Tensor::full(&[2, 16, 16], 100.0);
        let trainer = Trainer::new(TrainConfig::quick(1));
        let params = model.parameters();
        crate::loss::PebLoss::paper()
            .combined(&model.forward_train(&acid), &label)
            .backward();
        trainer.clip_gradients(&params);
        let mut total = 0f64;
        for p in &params {
            if let Some(g) = p.grad() {
                total += g
                    .data()
                    .iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>();
            }
        }
        let norm = total.sqrt() as f32;
        let max = trainer.config.clip_norm.unwrap();
        assert!(norm <= max * 1.01, "norm {norm} exceeds clip {max}");
    }
}
