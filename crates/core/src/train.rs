//! Shared training loop with gradient accumulation, step decay, and the
//! `peb-guard` fault-tolerance machinery: atomic epoch checkpoints,
//! bitwise-faithful resume, and a divergence sentinel that rolls back to
//! the last good state and retries with a backed-off learning rate.
//!
//! # Rollback state machine (DESIGN.md §10)
//!
//! ```text
//!           ┌────────────────────────────────────────────────┐
//!           ▼                                                │ healthy
//!   ┌──── epoch ────┐   non-finite params/loss   ┌──────── retry ───────┐
//!   │ shuffle, run  │ ─────────────────────────▶ │ restore last good    │
//!   │ batches, step │                            │ weights + optimiser, │
//!   │ optimiser     │ ◀───────────────────────── │ lr ×= backoff        │
//!   └───────┬───────┘        budget left         └──────────┬───────────┘
//!           │ healthy: snapshot + checkpoint                │ budget exhausted
//!           ▼                                               ▼
//!       next epoch                               Err(PebError::Divergence)
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use peb_guard::{chaos, Context, EpochRecord, OptKind, PebError, TrainCheckpoint};
use peb_nn::{Adam, OptimState, Optimizer, StepDecay};
use peb_tensor::Tensor;

use crate::loss::PebLoss;
use crate::solver::PebPredictor;

/// Fault-tolerance knobs for one training run.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Directory for atomic epoch checkpoints (`None` disables
    /// checkpointing; the in-memory divergence rollback still works).
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every this many completed epochs.
    pub checkpoint_every: usize,
    /// Checkpoint files retained on disk. Two is the minimum for the
    /// corrupt-latest fallback story; older files are pruned.
    pub keep_checkpoints: usize,
    /// Divergence retry budget for the whole run. Each retry restores the
    /// last good state and shrinks the learning rate by
    /// [`GuardConfig::lr_backoff`]; when exhausted the run fails with
    /// [`PebError::Divergence`].
    pub max_retries: u32,
    /// Multiplicative learning-rate backoff applied per rollback.
    pub lr_backoff: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            checkpoint_dir: None,
            checkpoint_every: 1,
            keep_checkpoints: 2,
            max_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

/// Training hyper-parameters.
///
/// The paper trains 500 epochs with SGD-style step decay (0.03, step 100,
/// γ 0.7) and an effective batch of 8 via gradient accumulation. This
/// reproduction defaults to Adam (more robust at CPU-scale budgets) but
/// keeps the same decay *shape*: the schedule is applied as a multiplier
/// on the base learning rate.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Gradient-accumulation window (paper: 8 clips per update).
    pub accumulate: usize,
    /// Base Adam learning rate.
    pub base_lr: f32,
    /// Decay schedule applied multiplicatively to `base_lr`.
    pub schedule: StepDecay,
    /// Loss configuration (Eq. 22 terms and ablations).
    pub loss: PebLoss,
    /// Global-norm gradient clipping threshold (None disables). The
    /// summed focal loss produces occasional large-magnitude spikes at
    /// hard voxels; clipping keeps Adam's trajectory stable.
    pub clip_norm: Option<f32>,
    /// Shuffling seed.
    pub seed: u64,
    /// Fault-tolerance configuration (checkpointing, rollback budget).
    pub guard: GuardConfig,
}

impl TrainConfig {
    /// CPU-scale defaults mirroring the paper's schedule shape.
    pub fn quick(epochs: usize) -> Self {
        // Scale the paper's step-100 decay to the configured epoch count
        // so the LR decays the same number of times (5 over a full run).
        let step = (epochs / 5).max(1);
        TrainConfig {
            epochs,
            accumulate: 8,
            base_lr: 5e-3,
            schedule: StepDecay {
                base_lr: 1.0,
                step_size: step,
                gamma: 0.7,
            },
            loss: PebLoss::paper(),
            clip_norm: Some(10.0),
            seed: 20250705,
            guard: GuardConfig::default(),
        }
    }
}

/// Per-epoch accounting. A skipped micro-batch (non-finite loss or
/// gradient) leaves `mean_loss` short by construction — `skipped_batches`
/// makes that visible instead of silent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean combined loss over the full dataset length (skipped batches
    /// contribute zero, so compare against `skipped_batches`).
    pub mean_loss: f32,
    /// Micro-batches dropped by the non-finite guard this epoch.
    pub skipped_batches: usize,
}

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean combined loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final epoch's mean loss.
    pub final_loss: f32,
    /// Wall-clock training time (this process only — a resumed run
    /// counts from resume).
    pub elapsed: Duration,
    /// Per-epoch accounting, including epochs restored from a checkpoint.
    pub epochs: Vec<EpochStats>,
    /// Divergence rollbacks performed over the run's whole history.
    pub rollbacks: u64,
    /// `Some(epoch)` when this run resumed from a checkpoint written
    /// after `epoch` completed epochs.
    pub resumed_from: Option<usize>,
}

/// Trains any [`PebPredictor`] on `(acid, label)` pairs.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Configuration in use.
    pub config: TrainConfig,
}

/// Last-good state for the divergence rollback (and the payload of every
/// checkpoint): cloned weights, optimiser state, and position.
struct Snapshot {
    epoch: usize,
    params: Vec<Tensor>,
    opt: OptimState,
    lr_scale: f32,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Runs the full training loop from scratch.
    ///
    /// # Errors
    ///
    /// [`PebError::Config`] for an empty dataset, [`PebError::Divergence`]
    /// when the rollback/retry budget is exhausted, [`PebError::Io`] when
    /// checkpointing is configured and fails, and
    /// [`PebError::Injected`] for chaos-harness kills.
    pub fn fit(
        &self,
        model: &dyn PebPredictor,
        data: &[(Tensor, Tensor)],
    ) -> Result<TrainReport, PebError> {
        self.run(model, data, None)
    }

    /// Resumes from the newest valid checkpoint in
    /// `guard.checkpoint_dir`, producing a training trajectory bitwise
    /// identical to an uninterrupted [`Trainer::fit`]. An empty directory
    /// falls back to a fresh run; a corrupt newest checkpoint falls back
    /// to the previous retained one.
    ///
    /// # Errors
    ///
    /// [`PebError::Config`] when no checkpoint directory is configured or
    /// the checkpoint does not match the model/config;
    /// [`PebError::Corrupt`] when checkpoints exist but none validates;
    /// plus everything [`Trainer::fit`] can return.
    pub fn resume(
        &self,
        model: &dyn PebPredictor,
        data: &[(Tensor, Tensor)],
    ) -> Result<TrainReport, PebError> {
        let dir = self.config.guard.checkpoint_dir.as_ref().ok_or_else(|| {
            PebError::config("Trainer::resume requires guard.checkpoint_dir to be set")
        })?;
        let ckpt = peb_guard::load_latest(dir).ctx("resuming training")?;
        self.run(model, data, ckpt)
    }

    /// The shared loop behind [`Trainer::fit`] and [`Trainer::resume`].
    fn run(
        &self,
        model: &dyn PebPredictor,
        data: &[(Tensor, Tensor)],
        resume: Option<TrainCheckpoint>,
    ) -> Result<TrainReport, PebError> {
        if data.is_empty() {
            return Err(PebError::config("training set is empty"));
        }
        let _span = peb_obs::span("train.fit");
        let start = Instant::now();
        let params = model.parameters();
        let mut opt = Adam::new(self.config.base_lr);
        let mut stats: Vec<EpochStats> = Vec::with_capacity(self.config.epochs);
        let mut lr_scale = 1.0f32;
        let mut rollbacks = 0u64;
        let mut start_epoch = 0usize;
        let resumed_from = resume.as_ref().map(|c| c.epoch as usize);

        if let Some(ckpt) = resume {
            self.restore_checkpoint(&ckpt, &params, &mut opt)?;
            start_epoch = ckpt.epoch as usize;
            lr_scale = ckpt.lr_scale;
            rollbacks = ckpt.rollbacks;
            stats.extend(
                ckpt.epoch_stats
                    .iter()
                    .enumerate()
                    .map(|(i, r)| EpochStats {
                        epoch: i,
                        mean_loss: r.mean_loss,
                        skipped_batches: r.skipped_batches as usize,
                    }),
            );
        }

        // The shuffle RNG is never persisted: its stream is a pure
        // function of (seed, completed epochs), so resume and rollback
        // both reconstruct it by replaying shuffles. This is what makes
        // a resumed trajectory bitwise identical to an uninterrupted one.
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for _ in 0..start_epoch {
            order.shuffle(&mut rng);
        }

        if let Some(dir) = &self.config.guard.checkpoint_dir {
            std::fs::create_dir_all(dir)
                .with_ctx(|| format!("creating checkpoint dir {}", dir.display()))?;
        }

        let mut snapshot = Snapshot {
            epoch: start_epoch,
            params: params.iter().map(|p| p.value_clone()).collect(),
            opt: opt.export_state(&params),
            lr_scale,
        };
        let mut retries_left = self.config.guard.max_retries;

        let mut epoch = start_epoch;
        while epoch < self.config.epochs {
            let _epoch_span = peb_obs::span("train.epoch");
            opt.set_lr(self.config.base_lr * self.config.schedule.lr_at(epoch) * lr_scale);
            order.shuffle(&mut rng);
            let mut spike_armed = chaos::take_nan_spike(epoch as u64);
            let mut epoch_loss = 0f64;
            let mut skipped = 0usize;
            let mut pending = 0usize;
            for &i in &order {
                let (acid, label) = &data[i];
                let pred = model.forward_train(acid);
                let loss = self.config.loss.combined(&pred, label);
                let loss_value = loss.value().item();
                if !loss_value.is_finite() {
                    // A diverged micro-batch must not poison the weights:
                    // drop its gradient contribution and move on.
                    params.iter().for_each(|p| p.zero_grad());
                    pending = 0;
                    skipped += 1;
                    peb_obs::count(peb_obs::Counter::GuardSkippedBatches, 1);
                    continue;
                }
                epoch_loss += loss_value as f64;
                loss.backward();
                pending += 1;
                if pending == self.config.accumulate {
                    if self.clip_gradients(&params) {
                        opt.step(&params);
                    } else {
                        skipped += pending;
                        peb_obs::count(peb_obs::Counter::GuardSkippedBatches, pending as u64);
                    }
                    opt.zero_grad(&params);
                    pending = 0;
                    if spike_armed {
                        // Chaos: an "undetected" numeric blow-up — poison
                        // the weights after an optimiser step so only the
                        // epoch-level sentinel can catch it.
                        spike_armed = false;
                        if let Some(p) = params.first() {
                            let shape = p.value().shape().to_vec();
                            p.set_value(Tensor::full(&shape, f32::NAN));
                        }
                    }
                }
            }
            if pending > 0 {
                if self.clip_gradients(&params) {
                    opt.step(&params);
                } else {
                    skipped += pending;
                    peb_obs::count(peb_obs::Counter::GuardSkippedBatches, pending as u64);
                }
                opt.zero_grad(&params);
            }
            let mean_loss = (epoch_loss / data.len() as f64) as f32;

            // Divergence sentinel: weights and the epoch mean must be
            // finite, or the epoch is rolled back and retried.
            let healthy = mean_loss.is_finite()
                && params
                    .iter()
                    .all(|p| p.value().data().iter().all(|v| v.is_finite()));
            if !healthy {
                if retries_left == 0 {
                    return Err(PebError::Divergence {
                        detail: format!(
                            "non-finite weights after epoch {epoch}; retry budget ({}) exhausted",
                            self.config.guard.max_retries
                        ),
                        rollbacks,
                    });
                }
                retries_left -= 1;
                rollbacks += 1;
                lr_scale *= self.config.guard.lr_backoff;
                peb_obs::count(peb_obs::Counter::GuardRollbacks, 1);
                peb_obs::count(peb_obs::Counter::GuardRetries, 1);
                eprintln!(
                    "[peb-guard] epoch {epoch} diverged; rolling back to epoch {} and retrying \
                     at lr ×{lr_scale} ({retries_left} retries left)",
                    snapshot.epoch
                );
                for (p, good) in params.iter().zip(&snapshot.params) {
                    p.set_value(good.clone());
                    p.zero_grad();
                }
                opt = Adam::new(self.config.base_lr);
                opt.restore_state(&params, &snapshot.opt);
                // Replay the RNG to the snapshot's epoch boundary so the
                // retried epoch sees the same shuffle as the failed try.
                order = (0..data.len()).collect();
                rng = StdRng::seed_from_u64(self.config.seed);
                for _ in 0..snapshot.epoch {
                    order.shuffle(&mut rng);
                }
                epoch = snapshot.epoch;
                continue;
            }

            stats.push(EpochStats {
                epoch,
                mean_loss,
                skipped_batches: skipped,
            });
            snapshot = Snapshot {
                epoch: epoch + 1,
                params: params.iter().map(|p| p.value_clone()).collect(),
                opt: opt.export_state(&params),
                lr_scale,
            };
            self.maybe_checkpoint(&snapshot, &stats, rollbacks)?;
            epoch += 1;
        }

        let epoch_losses: Vec<f32> = stats.iter().map(|s| s.mean_loss).collect();
        Ok(TrainReport {
            final_loss: epoch_losses
                .last()
                .copied()
                .ok_or_else(|| PebError::config("zero training epochs configured"))?,
            epoch_losses,
            elapsed: start.elapsed(),
            epochs: stats,
            rollbacks,
            resumed_from,
        })
    }

    /// Restores checkpointed weights and optimiser state, validating the
    /// checkpoint against the current model and config.
    fn restore_checkpoint(
        &self,
        ckpt: &TrainCheckpoint,
        params: &[peb_tensor::Var],
        opt: &mut Adam,
    ) -> Result<(), PebError> {
        if ckpt.seed != self.config.seed {
            return Err(PebError::config(format!(
                "checkpoint seed {} does not match config seed {} — resume would not \
                 reproduce the original trajectory",
                ckpt.seed, self.config.seed
            )));
        }
        if ckpt.opt_kind != OptKind::Adam {
            return Err(PebError::config(
                "checkpoint was written by a non-Adam optimiser",
            ));
        }
        if ckpt.epoch as usize > self.config.epochs {
            return Err(PebError::config(format!(
                "checkpoint is at epoch {} but the run is configured for {} epochs",
                ckpt.epoch, self.config.epochs
            )));
        }
        if ckpt.params.len() != params.len() {
            return Err(PebError::config(format!(
                "checkpoint has {} parameters, model has {}",
                ckpt.params.len(),
                params.len()
            )));
        }
        for (i, (p, t)) in params.iter().zip(&ckpt.params).enumerate() {
            if p.value().shape() != t.shape() {
                return Err(PebError::config(format!(
                    "checkpoint parameter {i} has shape {:?}, model expects {:?}",
                    t.shape(),
                    p.value().shape()
                )));
            }
        }
        for (p, t) in params.iter().zip(&ckpt.params) {
            p.set_value(t.clone());
            p.zero_grad();
        }
        opt.restore_state(
            params,
            &OptimState {
                t: ckpt.opt_t,
                m: ckpt.opt_m.clone(),
                v: ckpt.opt_v.clone(),
            },
        );
        Ok(())
    }

    /// Writes an atomic checkpoint at the configured cadence, applies any
    /// armed chaos corruption, prunes old files, and honours an armed
    /// chaos kill.
    fn maybe_checkpoint(
        &self,
        snapshot: &Snapshot,
        stats: &[EpochStats],
        rollbacks: u64,
    ) -> Result<(), PebError> {
        let Some(dir) = &self.config.guard.checkpoint_dir else {
            return Ok(());
        };
        let every = self.config.guard.checkpoint_every.max(1);
        if !snapshot.epoch.is_multiple_of(every) && snapshot.epoch != self.config.epochs {
            return Ok(());
        }
        let ckpt = TrainCheckpoint {
            epoch: snapshot.epoch as u64,
            seed: self.config.seed,
            opt_kind: OptKind::Adam,
            opt_t: snapshot.opt.t,
            lr_scale: snapshot.lr_scale,
            rollbacks,
            epoch_stats: stats
                .iter()
                .map(|s| EpochRecord {
                    mean_loss: s.mean_loss,
                    skipped_batches: s.skipped_batches as u64,
                })
                .collect(),
            params: snapshot.params.clone(),
            opt_m: snapshot.opt.m.clone(),
            opt_v: snapshot.opt.v.clone(),
            quant: None,
        };
        let path = peb_guard::checkpoint_path(dir, ckpt.epoch);
        ckpt.save(&path)
            .with_ctx(|| format!("checkpointing epoch {}", ckpt.epoch))?;
        chaos::mangle_checkpoint(&path);
        peb_guard::prune_checkpoints(dir, self.config.guard.keep_checkpoints.max(1));
        if chaos::take_kill(ckpt.epoch) {
            return Err(PebError::injected(format!(
                "chaos kill after checkpoint of epoch {}",
                ckpt.epoch
            )));
        }
        Ok(())
    }

    /// Scales all gradients down when their global L2 norm exceeds the
    /// configured threshold. Returns `false` when the norm is non-finite
    /// (the caller must drop the accumulated window instead of stepping).
    fn clip_gradients(&self, params: &[peb_tensor::Var]) -> bool {
        let mut total = 0f64;
        for p in params {
            if let Some(g) = p.grad() {
                total += g
                    .data()
                    .iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>();
            }
        }
        let norm = total.sqrt() as f32;
        if !norm.is_finite() {
            return false;
        }
        let Some(max_norm) = self.config.clip_norm else {
            return true;
        };
        if norm > max_norm {
            let scale = max_norm / norm;
            for p in params {
                if let Some(g) = p.grad() {
                    p.zero_grad();
                    // Re-accumulate the scaled gradient.
                    let scaled = g.mul_scalar(scale);
                    // Var has no direct set_grad; emulate via backward of a
                    // weighted identity: cheaper to just re-store through
                    // the accumulate path.
                    p.accumulate_grad(scaled);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SdmPeb, SdmPebConfig};
    use rand::rngs::StdRng;

    #[test]
    fn training_decreases_loss_on_toy_problem() {
        let mut rng = StdRng::seed_from_u64(110);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        // Learnable task: label is a smooth function of the acid.
        let data: Vec<(Tensor, Tensor)> = (0..4)
            .map(|s| {
                let mut r = StdRng::seed_from_u64(s);
                let acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut r);
                let label = acid.map(|a| 2.0 * a - 0.5);
                (acid, label)
            })
            .collect();
        let mut cfg = TrainConfig::quick(6);
        cfg.accumulate = 2;
        let report = Trainer::new(cfg).fit(&model, &data).expect("training");
        assert_eq!(report.epoch_losses.len(), 6);
        assert_eq!(report.epochs.len(), 6);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.resumed_from, None);
        assert!(
            report.final_loss < report.epoch_losses[0] * 0.9,
            "{:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn quick_config_schedule_decays_five_times() {
        let cfg = TrainConfig::quick(50);
        assert_eq!(cfg.schedule.step_size, 10);
        let last = cfg.schedule.lr_at(49);
        assert!((last - 0.7f32.powi(4)).abs() < 1e-5);
    }

    #[test]
    fn rejects_empty_dataset_with_typed_error() {
        let mut rng = StdRng::seed_from_u64(111);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let err = Trainer::new(TrainConfig::quick(1))
            .fit(&model, &[])
            .expect_err("empty dataset must be rejected");
        assert!(
            matches!(err.root(), PebError::Config { .. }),
            "expected Config error, got {err}"
        );
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn resume_without_checkpoint_dir_is_a_config_error() {
        let mut rng = StdRng::seed_from_u64(112);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut rng);
        let data = vec![(acid.clone(), acid)];
        let err = Trainer::new(TrainConfig::quick(1))
            .resume(&model, &data)
            .expect_err("resume without a dir must fail");
        assert!(matches!(err.root(), PebError::Config { .. }), "{err}");
    }
}

#[cfg(test)]
mod failure_injection_tests {
    use super::*;
    use crate::model::{SdmPeb, SdmPebConfig};
    use peb_nn::Parameterized;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nan_labels_do_not_poison_the_weights() {
        let mut rng = StdRng::seed_from_u64(300);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let good_acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut rng);
        let good_label = good_acid.map(|a| a - 0.5);
        let poisoned_label = Tensor::full(&[2, 16, 16], f32::NAN);
        let data = vec![
            (good_acid.clone(), good_label),
            (good_acid.clone(), poisoned_label),
        ];
        let mut cfg = TrainConfig::quick(3);
        cfg.accumulate = 1;
        let report = Trainer::new(cfg).fit(&model, &data).expect("training");
        // The poisoned sample is skipped once per epoch and surfaced in
        // the per-epoch accounting.
        assert!(report.epochs.iter().all(|e| e.skipped_batches == 1));
        // Every weight must still be finite and the model usable.
        for p in model.parameters() {
            assert!(
                p.value().data().iter().all(|v| v.is_finite()),
                "weights contaminated by the poisoned sample"
            );
        }
        let pred = model.predict(&good_acid);
        assert!(pred.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn clipping_bounds_the_gradient_norm() {
        let mut rng = StdRng::seed_from_u64(301);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let acid = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut rng);
        // Huge labels force a huge focal-loss gradient.
        let label = Tensor::full(&[2, 16, 16], 100.0);
        let trainer = Trainer::new(TrainConfig::quick(1));
        let params = model.parameters();
        crate::loss::PebLoss::paper()
            .combined(&model.forward_train(&acid), &label)
            .backward();
        assert!(trainer.clip_gradients(&params), "finite norm must pass");
        let mut total = 0f64;
        for p in &params {
            if let Some(g) = p.grad() {
                total += g
                    .data()
                    .iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>();
            }
        }
        let norm = total.sqrt() as f32;
        let max = trainer.config.clip_norm.expect("quick config clips");
        assert!(norm <= max * 1.01, "norm {norm} exceeds clip {max}");
    }
}
