//! SDM-PEB: Spatial-Depthwise Mamba for Enhanced Post-Exposure Bake
//! Simulation — the paper's primary contribution.
//!
//! Given a 3-D photoacid distribution `[A]₀` (from exposure), the model
//! predicts the post-bake inhibitor distribution `[I]` in the
//! log-transformed label space `Y = −ln(−ln([I]) / k_c)` used by DeePEB
//! and this paper. The architecture (Fig. 2):
//!
//! 1. a depthwise 3-D stem convolution;
//! 2. a hierarchical encoder of up to four stages, each built from
//!    overlapped patch merging, efficient spatial self-attention
//!    (Eq. 15), a feed-forward network and a spatial-depthwise
//!    Mamba-based attention unit (Fig. 5);
//! 3. multi-scale feature fusion (upsample + concat + MLP);
//! 4. a transposed-convolution decoder back to full resolution.
//!
//! Training minimises `L = L_MaxSE + α·L_PEB-FL + β·L_Div` (Eq. 22) with
//! the paper's α = 1.0, β = 0.1, γ = 1, τ = 0.1.
//!
//! # Example
//!
//! ```
//! use sdm_peb::{SdmPeb, SdmPebConfig, PebPredictor};
//! use peb_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = SdmPebConfig::tiny((8, 16, 16)); // D, H, W
//! let model = SdmPeb::new(cfg, &mut rng);
//! let acid = Tensor::full(&[8, 16, 16], 0.3);
//! let y = model.predict(&acid); // label-space prediction
//! assert_eq!(y.shape(), &[8, 16, 16]);
//! ```

mod decoder;
mod encoder;
mod fusion;
mod label;
mod loss;
mod metrics;
mod model;
mod plan;
pub mod quant;
mod solver;
mod train;

pub use decoder::Decoder;
pub use encoder::{EncoderStage, EncoderStageConfig};
pub use fusion::FeatureFusion;
pub use label::LabelTransform;
pub use loss::{LossBreakdown, PebLoss, Reduction};
pub use metrics::{cd_error_nm, cd_histogram, nrmse, rmse, ssim, CdErrorStats, CD_BUCKET_LABELS};
pub use model::{SdmPeb, SdmPebConfig};
pub use peb_guard::{PebError, Result};
pub use plan::{GradPlan, InferPlan};
pub use quant::{checkpoint_params, quantize_checkpoint, QuantBudgets, QuantReport};
pub use solver::{restore_parameters, PebPredictor};
pub use train::{EpochStats, GuardConfig, TrainConfig, TrainReport, Trainer};
