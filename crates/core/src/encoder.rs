//! One hierarchical encoder stage (paper Fig. 2, left-to-right blocks).
//!
//! A stage consists of depthwise overlapped patch merging (spatial
//! downsampling, depth preserved), then a transformer-style block:
//! per-depth-level efficient spatial self-attention, a feed-forward
//! network, and the spatial-depthwise Mamba unit — each pre-normalised
//! and residual.

use rand::Rng;

use peb_mamba::{SdmUnit, SdmUnitConfig};
use peb_nn::{EfficientSelfAttention, LayerNorm, Mlp, OverlappedPatchEmbed, Parameterized};
use peb_tensor::Var;

/// Configuration of one encoder stage.
#[derive(Debug, Clone)]
pub struct EncoderStageConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Output (embedding) channels.
    pub out_channels: usize,
    /// Patch-merging kernel (larger than the stride ⇒ overlapped).
    pub patch_kernel: usize,
    /// Patch-merging stride (spatial downsampling factor).
    pub patch_stride: usize,
    /// Attention heads.
    pub heads: usize,
    /// Attention sequence-reduction ratio `r` (Eq. 15); must divide the
    /// per-depth-level token count `H'·W'`.
    pub reduction: usize,
    /// FFN hidden width multiplier.
    pub mlp_ratio: usize,
    /// SSM state dimension of the SDM unit.
    pub ssm_state: usize,
    /// Use only the bidirectional depth scans (Table III "2-D Scan").
    pub scan_2d: bool,
    /// Include the SDM unit at all (architecture exploration switch).
    pub use_sdm: bool,
    /// Overlapped (kernel > stride) vs non-overlapped patch merging — the
    /// Fig. 3 comparison.
    pub overlapped: bool,
}

/// One encoder stage.
pub struct EncoderStage {
    embed: OverlappedPatchEmbed,
    norm_attn: LayerNorm,
    attn: EfficientSelfAttention,
    norm_ffn: LayerNorm,
    ffn: Mlp,
    norm_sdm: LayerNorm,
    sdm: Option<SdmUnit>,
    config: EncoderStageConfig,
}

impl EncoderStage {
    /// Builds a stage.
    pub fn new(config: EncoderStageConfig, rng: &mut impl Rng) -> Self {
        let c = config.out_channels;
        let sdm = config.use_sdm.then(|| {
            let mut cfg = SdmUnitConfig::new(c, c, config.ssm_state);
            if config.scan_2d {
                cfg = cfg.bidirectional_2d();
            }
            SdmUnit::new(cfg, rng)
        });
        let kernel = if config.overlapped {
            config.patch_kernel
        } else {
            config.patch_stride
        };
        EncoderStage {
            embed: OverlappedPatchEmbed::new(
                config.in_channels,
                c,
                kernel,
                config.patch_stride,
                rng,
            ),
            norm_attn: LayerNorm::new(c),
            attn: EfficientSelfAttention::new(c, config.heads, config.reduction, rng),
            norm_ffn: LayerNorm::new(c),
            ffn: Mlp::new(c, c * config.mlp_ratio, rng),
            norm_sdm: LayerNorm::new(c),
            sdm,
            config,
        }
    }

    /// Stage configuration.
    pub fn config(&self) -> &EncoderStageConfig {
        &self.config
    }

    /// Processes `[C_in, D, H, W]` into `[C_out, D, H', W']`.
    ///
    /// # Panics
    ///
    /// Panics on channel mismatches or when the reduction ratio does not
    /// divide the downsampled plane size.
    pub fn forward(&self, x: &Var) -> Var {
        let e = self.embed.forward(x); // [C, D, H', W']
        let es = e.shape();
        let (c, d, h, w) = (es[0], es[1], es[2], es[3]);
        let l = d * h * w;
        // Token sequence view: [L, C] with depth-major order.
        let mut seq = e.reshape(&[c, l]).permute(&[1, 0]);
        // Per-depth-level spatial self-attention with shared weights.
        let plane = h * w;
        let normed = self.norm_attn.forward(&seq);
        let mut attn_slices = Vec::with_capacity(d);
        for k in 0..d {
            let s = normed.slice_axis(0, k * plane, (k + 1) * plane);
            attn_slices.push(self.attn.forward(&s));
        }
        let refs: Vec<&Var> = attn_slices.iter().collect();
        seq = seq.add(&Var::concat(&refs, 0));
        // Feed-forward (position-wise, so the full sequence at once).
        seq = seq.add(&self.ffn.forward(&self.norm_ffn.forward(&seq)));
        // Spatial-depthwise Mamba unit over the volume.
        if let Some(sdm) = &self.sdm {
            seq = seq.add(&sdm.forward(&self.norm_sdm.forward(&seq), (d, h, w)));
        }
        // Back to volume layout.
        seq.permute(&[1, 0]).reshape(&[c, d, h, w])
    }
}

impl Parameterized for EncoderStage {
    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.embed.parameters());
        p.extend(self.norm_attn.parameters());
        p.extend(self.attn.parameters());
        p.extend(self.norm_ffn.parameters());
        p.extend(self.ffn.parameters());
        p.extend(self.norm_sdm.parameters());
        if let Some(sdm) = &self.sdm {
            p.extend(sdm.parameters());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stage_config() -> EncoderStageConfig {
        EncoderStageConfig {
            in_channels: 1,
            out_channels: 8,
            patch_kernel: 3,
            patch_stride: 2,
            heads: 2,
            reduction: 4,
            mlp_ratio: 2,
            ssm_state: 4,
            scan_2d: false,
            use_sdm: true,
            overlapped: true,
        }
    }

    #[test]
    fn stage_downsamples_space_only() {
        let mut rng = StdRng::seed_from_u64(80);
        let stage = EncoderStage::new(stage_config(), &mut rng);
        let x = Var::constant(Tensor::randn(&[1, 3, 8, 8], &mut rng));
        let y = stage.forward(&x);
        assert_eq!(y.shape(), vec![8, 3, 4, 4]);
        assert!(y.value().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn no_sdm_variant_runs_and_is_smaller() {
        let mut rng = StdRng::seed_from_u64(81);
        let mut cfg = stage_config();
        cfg.use_sdm = false;
        let without = EncoderStage::new(cfg, &mut rng);
        let with = EncoderStage::new(stage_config(), &mut rng);
        assert!(without.parameter_count() < with.parameter_count());
        let x = Var::constant(Tensor::ones(&[1, 2, 4, 4]));
        assert_eq!(without.forward(&x).shape(), vec![8, 2, 2, 2]);
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = StdRng::seed_from_u64(82);
        let stage = EncoderStage::new(stage_config(), &mut rng);
        let x = Var::constant(Tensor::randn(&[1, 2, 4, 4], &mut rng));
        stage.forward(&x).square().sum().backward();
        let missing = stage
            .parameters()
            .iter()
            .filter(|p| p.grad().is_none())
            .count();
        assert_eq!(missing, 0);
    }
}
