//! Label normalisation: the quadratic negative-logarithmic transform.
//!
//! The inhibitor concentration varies exponentially (Eq. 1), so the paper
//! (following DeePEB [15]) trains models to predict
//! `Y = −ln(−ln([I]) / k_c)` rather than `[I]` itself. This module is the
//! bijection between the two spaces.

use serde::{Deserialize, Serialize};

use peb_tensor::Tensor;

/// Forward/inverse label transform with numeric guards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabelTransform {
    /// Catalysis coefficient `k_c` from the PEB parameters (Table I: 0.9).
    pub kc: f32,
    /// Clamp applied to `[I]` before the double logarithm.
    pub eps: f32,
}

impl LabelTransform {
    /// Transform with the paper's `k_c = 0.9`.
    pub fn paper() -> Self {
        LabelTransform { kc: 0.9, eps: 1e-6 }
    }

    /// `Y = −ln(−ln(I) / k_c)` applied elementwise.
    ///
    /// `I` is clamped to `[eps, 1 − eps]` so fully protected/deprotected
    /// voxels stay finite.
    pub fn encode(&self, inhibitor: &Tensor) -> Tensor {
        let (kc, eps) = (self.kc, self.eps);
        inhibitor.map(|i| {
            let i = i.clamp(eps, 1.0 - eps);
            -((-i.ln()) / kc).ln()
        })
    }

    /// Inverse transform `I = exp(−k_c · exp(−Y))`.
    pub fn decode(&self, label: &Tensor) -> Tensor {
        // One fused sweep: −Y → exp → ×−k_c → exp.
        label.fused().neg().exp().mul_scalar(-self.kc).exp().eval()
    }
}

impl Default for LabelTransform {
    fn default() -> Self {
        LabelTransform::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_midrange() {
        let t = LabelTransform::paper();
        let i = Tensor::linspace(0.05, 0.95, 19);
        let back = t.decode(&t.encode(&i));
        assert!(back.approx_eq(&i, 1e-4), "{back}");
    }

    #[test]
    fn encode_is_monotone_increasing_in_inhibitor() {
        let t = LabelTransform::paper();
        let i = Tensor::linspace(0.01, 0.99, 50);
        let y = t.encode(&i);
        for pair in y.data().windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn extremes_stay_finite() {
        let t = LabelTransform::paper();
        let i = Tensor::from_vec(vec![0.0, 1.0, -0.1, 1.3], &[4]).unwrap();
        let y = t.encode(&i);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let back = t.decode(&y);
        assert!(back.data().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn decode_maps_reals_into_unit_interval() {
        let t = LabelTransform::paper();
        let y = Tensor::linspace(-10.0, 10.0, 41);
        let i = t.decode(&y);
        assert!(i.min_value() >= 0.0 && i.max_value() <= 1.0);
        // Monotone too.
        for pair in i.data().windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }
}
