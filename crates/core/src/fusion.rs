//! Multi-scale feature fusion (paper Fig. 2 centre).
//!
//! Each encoder stage's `[C_i, D, H_i, W_i]` feature map is linearly
//! projected to a common width, upsampled to the first stage's spatial
//! resolution, concatenated along channels and mixed by an MLP.

use rand::Rng;

use peb_nn::{Linear, Mlp, Parameterized};
use peb_tensor::Var;

/// Fuses per-stage feature volumes into one `[fusion_dim, D, H₁, W₁]`
/// volume.
pub struct FeatureFusion {
    projections: Vec<Linear>,
    mix: Mlp,
    fusion_dim: usize,
}

impl FeatureFusion {
    /// Creates the fusion head for stages with the given channel counts.
    ///
    /// # Panics
    ///
    /// Panics if `stage_channels` is empty.
    pub fn new(
        stage_channels: &[usize],
        fusion_dim: usize,
        mlp_hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            !stage_channels.is_empty(),
            "fusion needs at least one stage"
        );
        let projections = stage_channels
            .iter()
            .map(|&c| Linear::new(c, fusion_dim, true, rng))
            .collect::<Vec<_>>();
        let total = fusion_dim * stage_channels.len();
        FeatureFusion {
            projections,
            mix: Mlp::with_activation(total, mlp_hidden, fusion_dim, peb_nn::MlpAct::Gelu, rng),
            fusion_dim,
        }
    }

    /// Output channel count.
    pub fn fusion_dim(&self) -> usize {
        self.fusion_dim
    }

    /// Fuses stage outputs (finest resolution first). Every deeper stage
    /// is nearest-neighbour-upsampled to the first stage's `H₁ × W₁`.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs differs from the configured stages,
    /// or a deeper stage's resolution does not divide the first stage's.
    pub fn forward(&self, stages: &[Var]) -> Var {
        assert_eq!(
            stages.len(),
            self.projections.len(),
            "fusion input count mismatch"
        );
        let s0 = stages[0].shape();
        let (d, h1, w1) = (s0[1], s0[2], s0[3]);
        let mut volumes = Vec::with_capacity(stages.len());
        for (stage, proj) in stages.iter().zip(&self.projections) {
            let s = stage.shape();
            let (c, sd, h, w) = (s[0], s[1], s[2], s[3]);
            assert_eq!(sd, d, "depth must match across stages");
            assert!(
                h1 % h == 0 && w1 % w == 0 && h1 / h == w1 / w,
                "stage resolution {h}×{w} incompatible with {h1}×{w1}"
            );
            // Project channels: [C, D, H, W] → [L, C] → [L, F] → volume.
            let l = sd * h * w;
            let seq = stage.reshape(&[c, l]).permute(&[1, 0]);
            let projected = proj.forward(&seq); // [L, F]
            let vol = projected
                .permute(&[1, 0])
                .reshape(&[self.fusion_dim, sd, h, w]);
            let factor = h1 / h;
            volumes.push(if factor > 1 {
                vol.upsample2_nearest(factor)
            } else {
                vol
            });
        }
        let refs: Vec<&Var> = volumes.iter().collect();
        let cat = Var::concat(&refs, 0); // [F·k, D, H₁, W₁]
        let total_c = self.fusion_dim * stages.len();
        let l = d * h1 * w1;
        let seq = cat.reshape(&[total_c, l]).permute(&[1, 0]);
        let mixed = self.mix.forward(&seq); // [L, F]
        mixed
            .permute(&[1, 0])
            .reshape(&[self.fusion_dim, d, h1, w1])
    }
}

impl Parameterized for FeatureFusion {
    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        for proj in &self.projections {
            p.extend(proj.parameters());
        }
        p.extend(self.mix.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fuses_two_scales() {
        let mut rng = StdRng::seed_from_u64(85);
        let fusion = FeatureFusion::new(&[4, 8], 6, 16, &mut rng);
        let s1 = Var::constant(Tensor::randn(&[4, 2, 8, 8], &mut rng));
        let s2 = Var::constant(Tensor::randn(&[8, 2, 4, 4], &mut rng));
        let out = fusion.forward(&[s1, s2]);
        assert_eq!(out.shape(), vec![6, 2, 8, 8]);
    }

    #[test]
    fn single_stage_passthrough_shape() {
        let mut rng = StdRng::seed_from_u64(86);
        let fusion = FeatureFusion::new(&[4], 6, 8, &mut rng);
        let s1 = Var::constant(Tensor::randn(&[4, 3, 4, 4], &mut rng));
        assert_eq!(fusion.forward(&[s1]).shape(), vec![6, 3, 4, 4]);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(87);
        let fusion = FeatureFusion::new(&[2, 4], 4, 8, &mut rng);
        let s1 = Var::constant(Tensor::randn(&[2, 2, 4, 4], &mut rng));
        let s2 = Var::constant(Tensor::randn(&[4, 2, 2, 2], &mut rng));
        fusion.forward(&[s1, s2]).square().sum().backward();
        assert!(fusion.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    #[should_panic(expected = "input count")]
    fn rejects_wrong_input_count() {
        let mut rng = StdRng::seed_from_u64(88);
        let fusion = FeatureFusion::new(&[2, 4], 4, 8, &mut rng);
        let s1 = Var::constant(Tensor::ones(&[2, 1, 2, 2]));
        fusion.forward(&[s1]);
    }
}
