//! Model-aware execution plans: recorded inference and ILT-gradient
//! windows over the generic `peb-plan` record/replay driver.
//!
//! [`InferPlan`] wraps one `predict` at a fixed (shape, precision,
//! dispatch) into a replayable plan — the unit the `peb-serve` plan
//! cache stores per `(D, H, W, prec)` key. [`GradPlan`] wraps an ILT
//! surrogate-gradient window (forward from a mask parameter, backward,
//! gradient read-out, gradient zeroing) so inverse-lithography inner
//! loops replay both sweeps of the tape through a planned arena.
//!
//! Backward replay is **inference/ILT-only** by design: a training step
//! mutates parameters between iterations through the optimiser, which
//! changes nothing about the checkout stream but makes plan reuse
//! pointless to reason about against checkpointing/rollback (`peb-guard`
//! restores can land mid-plan). ILT holds parameters frozen and mutates
//! only the input mask, which is exactly the fixed-structure contract.

use peb_tensor::Tensor;

use crate::solver::PebPredictor;

/// A replayable inference plan for one model at one clip geometry.
///
/// `!Send` by construction (the arena serves the recording thread);
/// build and replay on the thread that owns inference.
pub struct InferPlan {
    plan: peb_plan::Plan,
    dims: (usize, usize, usize),
    digest: u64,
}

impl InferPlan {
    /// Records `model.predict(clip)` into a plan. Runs the prediction
    /// twice (un-recorded warmup + recorded run) and returns the plan
    /// together with the recorded prediction.
    ///
    /// # Panics
    ///
    /// Panics if `clip` does not match the model's configured input
    /// dimensions (same contract as `predict`).
    pub fn record<M: PebPredictor + ?Sized>(model: &M, clip: &Tensor) -> (InferPlan, Tensor) {
        let s = clip.shape();
        let dims = (s[0], s[1], s[2]);
        let (plan, out) = peb_plan::Plan::record(|| model.predict(clip));
        let digest = out.bit_digest();
        (InferPlan { plan, dims, digest }, out)
    }

    /// Replays `model.predict(clip)` through the plan's arena. Bitwise
    /// identical to `model.predict(clip)` — including for a *different*
    /// model of the same architecture (values are always computed
    /// eagerly; the plan only redirects intermediate storage).
    pub fn predict<M: PebPredictor + ?Sized>(
        &self,
        model: &M,
        clip: &Tensor,
    ) -> (Tensor, peb_plan::ReplayOutcome) {
        self.plan.replay(|| model.predict(clip))
    }

    /// Clip geometry this plan was recorded at.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Bit digest of the recorded prediction (staleness checks: a
    /// hot-swapped model replays fine but produces a different digest).
    pub fn recorded_digest(&self) -> u64 {
        self.digest
    }

    /// The underlying generic plan (op list, arena stats).
    pub fn plan(&self) -> &peb_plan::Plan {
        &self.plan
    }
}

impl std::fmt::Debug for InferPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferPlan")
            .field("dims", &self.dims)
            .field("plan", &self.plan)
            .finish()
    }
}

/// A replayable surrogate-gradient window for ILT inner loops.
///
/// The closure must perform one complete gradient iteration and leave
/// the autograd state exactly as it found it — the canonical shape is:
///
/// 1. forward from the mask via [`crate::SdmPeb::forward_var`] (the
///    mask is a `Var::parameter` so it can receive gradients);
/// 2. reduce to a scalar objective and `backward()`;
/// 3. clone out the mask gradient;
/// 4. **zero every gradient** (mask and model parameters) before
///    returning, so each iteration sees the same `None → Some`
///    accumulation pattern and therefore the same checkout stream.
///
/// The closure returns whatever the loop needs (typically the objective
/// value and the mask gradient).
pub struct GradPlan {
    plan: peb_plan::Plan,
}

impl GradPlan {
    /// Records one gradient iteration (run twice: warmup + recorded).
    pub fn record<R>(f: impl FnMut() -> R) -> (GradPlan, R) {
        let (plan, out) = peb_plan::Plan::record(f);
        (GradPlan { plan }, out)
    }

    /// Replays one gradient iteration through the planned arena.
    pub fn step<R>(&self, f: impl FnOnce() -> R) -> (R, peb_plan::ReplayOutcome) {
        self.plan.replay(f)
    }

    /// The underlying generic plan (op list, arena stats).
    pub fn plan(&self) -> &peb_plan::Plan {
        &self.plan
    }
}

impl std::fmt::Debug for GradPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GradPlan")
            .field("plan", &self.plan)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SdmPeb, SdmPebConfig};
    use peb_tensor::Var;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn infer_plan_replay_matches_eager_bitwise() {
        peb_pool::set_enabled(true);
        peb_plan::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(7);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let clip = Tensor::rand_uniform(&[2, 16, 16], 0.0, 0.9, &mut rng);
        let eager = model.predict(&clip);
        let (plan, recorded) = InferPlan::record(&model, &clip);
        assert_eq!(recorded.bit_digest(), eager.bit_digest());
        assert_eq!(plan.recorded_digest(), eager.bit_digest());
        for _ in 0..2 {
            let (out, outcome) = plan.predict(&model, &clip);
            assert!(outcome.complete, "{outcome:?}");
            assert!(outcome.served > 0, "arena must serve intermediates");
            assert_eq!(out.bit_digest(), eager.bit_digest());
        }
    }

    #[test]
    fn grad_plan_replays_backward_identically() {
        peb_pool::set_enabled(true);
        peb_plan::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(8);
        let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
        let mask = Var::parameter(Tensor::rand_uniform(&[2, 16, 16], 0.1, 0.8, &mut rng));
        let params = {
            use peb_nn::Parameterized;
            model.parameters()
        };
        let mut iter = || {
            let y = model.forward_var(&mask);
            let obj = y.mul(&y).mean();
            obj.backward();
            let g = mask.grad().expect("mask grad");
            mask.zero_grad();
            for p in &params {
                p.zero_grad();
            }
            let loss = obj.value().item();
            (loss, g)
        };
        let (plan, (l0, g0)) = GradPlan::record(&mut iter);
        let (r, outcome) = plan.step(iter);
        assert!(outcome.complete, "{outcome:?}");
        assert_eq!(r.0.to_bits(), l0.to_bits());
        assert_eq!(r.1.bit_digest(), g0.bit_digest());
    }
}
