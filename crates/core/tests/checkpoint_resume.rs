//! Checkpoint/resume determinism and divergence-rollback behaviour.
//!
//! The headline guarantee of `peb-guard` + `Trainer`: killing a run after
//! any epoch and resuming from its checkpoint produces a trajectory
//! bitwise identical to the uninterrupted run — at any thread count.
//! Chaos state and checkpoint directories are process-global, so every
//! test here serialises on one mutex.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use peb_guard::chaos::{self, Chaos};
use peb_guard::PebError;
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{SdmPeb, SdmPebConfig, TrainConfig, TrainReport, Trainer};

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = M.get_or_init(|| Mutex::new(())).lock();
    match guard {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

const DIMS: (usize, usize, usize) = (2, 16, 16);

fn fresh_model() -> SdmPeb {
    let mut rng = StdRng::seed_from_u64(42);
    SdmPeb::new(SdmPebConfig::tiny(DIMS), &mut rng)
}

fn toy_data() -> Vec<(Tensor, Tensor)> {
    (0..4)
        .map(|s| {
            let mut r = StdRng::seed_from_u64(1000 + s);
            let acid = Tensor::rand_uniform(&[DIMS.0, DIMS.1, DIMS.2], 0.0, 0.9, &mut r);
            let label = acid.map(|a| 1.5 * a - 0.4);
            (acid, label)
        })
        .collect()
}

fn config(epochs: usize, dir: Option<PathBuf>) -> TrainConfig {
    let mut cfg = TrainConfig::quick(epochs);
    cfg.accumulate = 2;
    cfg.guard.checkpoint_dir = dir;
    cfg
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("peb_ckpt_resume_test").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn param_bits(model: &SdmPeb) -> Vec<Vec<u32>> {
    peb_nn::Parameterized::parameters(model)
        .iter()
        .map(|p| p.value().data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn loss_bits(report: &TrainReport) -> Vec<u32> {
    report.epoch_losses.iter().map(|l| l.to_bits()).collect()
}

/// Runs training uninterrupted, then replays the same run killed after
/// every single epoch (resuming each time from the latest checkpoint),
/// and demands bitwise-identical weights and loss history at the end.
fn kill_at_every_epoch_matches_uninterrupted(threads: usize) {
    let epochs = 4;
    let data = toy_data();

    let baseline = fresh_model();
    let baseline_report = peb_par::with_thread_count(threads, || {
        Trainer::new(config(epochs, None))
            .fit(&baseline, &data)
            .expect("uninterrupted run")
    });

    let dir = temp_dir(&format!("kill-every-epoch-{threads}t"));
    let cfg = config(epochs, Some(dir.clone()));
    // Kill after each epoch's checkpoint in turn: epoch 1, 2, 3 — each
    // run dies, each subsequent run resumes exactly where it stopped.
    for kill_after in 1..epochs as u64 {
        chaos::arm(Chaos::Kill { epoch: kill_after });
        let model = fresh_model(); // "new process": fresh weights, restored from disk
        let err = peb_par::with_thread_count(threads, || {
            Trainer::new(cfg.clone())
                .resume(&model, &data)
                .expect_err("armed kill must abort the run")
        });
        assert!(
            matches!(err.root(), PebError::Injected { .. }),
            "expected injected kill, got {err}"
        );
    }
    chaos::disarm();
    let survivor = fresh_model();
    let final_report = peb_par::with_thread_count(threads, || {
        Trainer::new(cfg)
            .resume(&survivor, &data)
            .expect("final resume")
    });

    assert_eq!(
        final_report.resumed_from,
        Some(epochs - 1),
        "the last kill stopped after epoch {}",
        epochs - 1
    );
    assert_eq!(
        loss_bits(&baseline_report),
        loss_bits(&final_report),
        "loss history must be bitwise identical"
    );
    assert_eq!(
        param_bits(&baseline),
        param_bits(&survivor),
        "weights must be bitwise identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_resume_is_bitwise_identical_single_thread() {
    let _g = lock();
    kill_at_every_epoch_matches_uninterrupted(1);
}

#[test]
fn kill_resume_is_bitwise_identical_four_threads() {
    let _g = lock();
    kill_at_every_epoch_matches_uninterrupted(4);
}

#[test]
fn nan_spike_rolls_back_and_converges() {
    let _g = lock();
    let data = toy_data();
    // Reference: the same run without any fault.
    let clean = fresh_model();
    let clean_report = Trainer::new(config(3, None))
        .fit(&clean, &data)
        .expect("clean run");

    chaos::arm(Chaos::NanSpike { epoch: 1 });
    let model = fresh_model();
    let report = Trainer::new(config(3, None))
        .fit(&model, &data)
        .expect("run must recover from the spike");
    chaos::disarm();

    assert_eq!(report.rollbacks, 1, "exactly one rollback expected");
    assert_eq!(report.epochs.len(), 3);
    for p in peb_nn::Parameterized::parameters(&model) {
        assert!(
            p.value().data().iter().all(|v| v.is_finite()),
            "weights must be finite after rollback"
        );
    }
    // The retried epochs run at a backed-off LR, so the trajectory
    // differs from the clean run — but it must still train.
    assert!(
        report.final_loss.is_finite() && report.final_loss < report.epoch_losses[0],
        "loss must still decrease: {:?}",
        report.epoch_losses
    );
    assert!(clean_report.final_loss.is_finite());
}

#[test]
fn exhausted_retry_budget_is_a_divergence_error() {
    let _g = lock();
    let data = toy_data();
    let mut cfg = config(2, None);
    cfg.guard.max_retries = 0;
    chaos::arm(Chaos::NanSpike { epoch: 0 });
    let model = fresh_model();
    let err = Trainer::new(cfg)
        .fit(&model, &data)
        .expect_err("no retries: the spike must be fatal");
    chaos::disarm();
    match err.root() {
        PebError::Divergence { rollbacks, .. } => assert_eq!(*rollbacks, 0),
        other => panic!("expected Divergence, got {other}"),
    }
}

#[test]
fn resume_with_wrong_seed_is_rejected() {
    let _g = lock();
    let data = toy_data();
    let dir = temp_dir("wrong-seed");
    let cfg = config(2, Some(dir.clone()));
    let model = fresh_model();
    Trainer::new(cfg.clone())
        .fit(&model, &data)
        .expect("seed run");

    let mut other = cfg;
    other.seed += 1;
    let resumed = fresh_model();
    let err = Trainer::new(other)
        .resume(&resumed, &data)
        .expect_err("different seed cannot reproduce the trajectory");
    assert!(
        matches!(err.root(), PebError::Config { .. }),
        "expected Config error, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoints_are_pruned_to_the_keep_budget() {
    let _g = lock();
    let data = toy_data();
    let dir = temp_dir("prune");
    let mut cfg = config(5, Some(dir.clone()));
    cfg.guard.keep_checkpoints = 2;
    let model = fresh_model();
    Trainer::new(cfg).fit(&model, &data).expect("run");
    let epochs = peb_guard::list_checkpoints(&dir);
    assert_eq!(epochs, vec![5, 4], "newest two checkpoints retained");
    std::fs::remove_dir_all(&dir).ok();
}
