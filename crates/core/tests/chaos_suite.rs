//! Fault-injection scenarios, drivable from the environment.
//!
//! Run directly (`cargo test -p sdm-peb --test chaos_suite`) every
//! scenario arms its fault programmatically. With `PEB_CHAOS` set (as in
//! the CI chaos matrix: `nan-spike`, `truncate-ckpt`, `kill-resume`),
//! only the matching scenario runs and the fault arrives through the
//! real environment latch in `peb_guard::chaos` — exercising the exact
//! path an operator would use against a production run.
//!
//! Chaos state is process-global and one-shot, so scenarios serialise on
//! a mutex and re-arm explicitly where they need more than one fault.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use peb_guard::chaos::{self, Chaos};
use peb_guard::PebError;
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{TrainConfig, Trainer};

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    match M.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `Some(tag)` when `PEB_CHAOS` selects a single scenario for this
/// process; `None` when unset (every scenario arms itself).
fn env_scenario() -> Option<String> {
    std::env::var("PEB_CHAOS").ok()
}

/// True when this scenario should run: either the env selects it (the
/// fault then arrives via the env latch) or no scenario is selected (the
/// test arms `fault` itself).
fn engage(tag: &str, fault: Chaos) -> bool {
    match env_scenario() {
        Some(s) if s.split(':').next() == Some(tag) => true, // env latch armed
        Some(_) => false,                                    // another scenario's process
        None => {
            chaos::arm(fault);
            true
        }
    }
}

const DIMS: (usize, usize, usize) = (2, 16, 16);

fn fresh_model() -> sdm_peb::SdmPeb {
    let mut rng = StdRng::seed_from_u64(42);
    sdm_peb::SdmPeb::new(sdm_peb::SdmPebConfig::tiny(DIMS), &mut rng)
}

fn toy_data() -> Vec<(Tensor, Tensor)> {
    (0..4)
        .map(|s| {
            let mut r = StdRng::seed_from_u64(1000 + s);
            let acid = Tensor::rand_uniform(&[DIMS.0, DIMS.1, DIMS.2], 0.0, 0.9, &mut r);
            let label = acid.map(|a| 1.5 * a - 0.4);
            (acid, label)
        })
        .collect()
}

fn config(epochs: usize, dir: Option<PathBuf>) -> TrainConfig {
    let mut cfg = TrainConfig::quick(epochs);
    cfg.accumulate = 2;
    cfg.guard.checkpoint_dir = dir;
    cfg
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("peb_chaos_suite").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// `PEB_CHAOS=nan-spike`: a NaN poisons the weights mid-epoch; the
/// divergence sentinel must roll back, retry with a smaller LR, and the
/// run must still converge — visible in the `guard_rollbacks` counter.
#[test]
fn scenario_nan_spike() {
    let _g = lock();
    if !engage("nan-spike", Chaos::NanSpike { epoch: 1 }) {
        return;
    }
    // Counters only tick while tracing is on.
    peb_obs::set_mode(peb_obs::TraceMode::Json);
    peb_obs::reset();
    let model = fresh_model();
    let report = Trainer::new(config(3, None))
        .fit(&model, &toy_data())
        .expect("run must recover from the NaN spike");
    chaos::disarm();

    let rollback_count = peb_obs::counter_value(peb_obs::Counter::GuardRollbacks);
    let retry_count = peb_obs::counter_value(peb_obs::Counter::GuardRetries);
    peb_obs::reset();
    peb_obs::set_mode(peb_obs::TraceMode::Off);
    assert_eq!(report.rollbacks, 1);
    assert_eq!(rollback_count, 1, "rollback must be counted");
    assert_eq!(retry_count, 1);
    for p in peb_nn::Parameterized::parameters(&model) {
        assert!(p.value().data().iter().all(|v| v.is_finite()));
    }
    assert!(
        report.final_loss < report.epoch_losses[0],
        "{:?}",
        report.epoch_losses
    );
}

/// `PEB_CHAOS=truncate-ckpt`: the first checkpoint written is truncated
/// on disk. The run itself is unaffected; a later resume must detect the
/// damage via CRC, fall back past it, and degrade to a typed error only
/// when *no* checkpoint survives.
#[test]
fn scenario_truncate_ckpt() {
    let _g = lock();
    if !engage("truncate-ckpt", Chaos::TruncateCkpt { bytes: 16 }) {
        return;
    }
    let dir = temp_dir("truncate-ckpt");
    let data = toy_data();
    let cfg = config(2, Some(dir.clone()));
    let model = fresh_model();
    let report = Trainer::new(cfg.clone())
        .fit(&model, &data)
        .expect("truncation must not fail the writing run");
    chaos::disarm();

    // Both checkpoints exist on disk; epoch 1's is truncated.
    assert_eq!(peb_guard::list_checkpoints(&dir), vec![2, 1]);
    assert!(peb_guard::TrainCheckpoint::load(&peb_guard::checkpoint_path(&dir, 1)).is_err());

    // Resume: the valid epoch-2 checkpoint is newest, training is
    // already complete, history must match the original bitwise.
    let resumed = fresh_model();
    let resumed_report = Trainer::new(cfg.clone())
        .resume(&resumed, &data)
        .expect("resume from the surviving checkpoint");
    assert_eq!(resumed_report.resumed_from, Some(2));
    let bits = |r: &sdm_peb::TrainReport| -> Vec<u32> {
        r.epoch_losses.iter().map(|l| l.to_bits()).collect()
    };
    assert_eq!(bits(&report), bits(&resumed_report));

    // Corrupt the survivor too: resume must fail with a typed Corrupt
    // error, not a panic.
    let newest = peb_guard::checkpoint_path(&dir, 2);
    let mut bytes = std::fs::read(&newest).expect("read ckpt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).expect("rewrite ckpt");
    let err = Trainer::new(cfg)
        .resume(&fresh_model(), &data)
        .expect_err("all checkpoints corrupt");
    assert!(err.is_corrupt(), "expected Corrupt, got {err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `PEB_CHAOS=kill-resume`: the process dies right after the first
/// epoch's checkpoint; a fresh process resumes and must land on exactly
/// the uninterrupted trajectory.
#[test]
fn scenario_kill_resume() {
    let _g = lock();
    if !engage("kill-resume", Chaos::Kill { epoch: 1 }) {
        return;
    }
    let data = toy_data();
    let baseline = fresh_model();
    let baseline_report = Trainer::new(config(2, None))
        .fit(&baseline, &data)
        .expect("uninterrupted run");

    let dir = temp_dir("kill-resume");
    let cfg = config(2, Some(dir.clone()));
    let err = Trainer::new(cfg.clone())
        .fit(&fresh_model(), &data)
        .expect_err("armed kill must abort");
    assert!(matches!(err.root(), PebError::Injected { .. }), "{err}");
    chaos::disarm();

    let survivor = fresh_model();
    let report = Trainer::new(cfg)
        .resume(&survivor, &data)
        .expect("resume after kill");
    assert_eq!(report.resumed_from, Some(1));
    let bits = |r: &sdm_peb::TrainReport| -> Vec<u32> {
        r.epoch_losses.iter().map(|l| l.to_bits()).collect()
    };
    assert_eq!(bits(&baseline_report), bits(&report));
    for (a, b) in peb_nn::Parameterized::parameters(&baseline)
        .iter()
        .zip(peb_nn::Parameterized::parameters(&survivor))
    {
        assert_eq!(
            a.value()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.value()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "weights must be bitwise identical after kill/resume"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `PEB_CHAOS=truncate-data`: a freshly saved dataset cache is truncated;
/// the strict loader must reject it and the lenient loader must
/// quarantine the damaged tail instead of failing.
#[test]
fn scenario_truncate_data() {
    let _g = lock();
    if !engage("truncate-data", Chaos::TruncateData { bytes: 64 }) {
        return;
    }
    let mut grid = peb_litho::Grid::small();
    grid.nz = 3;
    let mut dcfg = peb_data::DatasetConfig::for_grid(grid, 2, 1);
    dcfg.seed = 11;
    let ds = peb_data::Dataset::generate(&dcfg).expect("generate");
    let dir = temp_dir("truncate-data");
    let path = dir.join("chaos-data.bin");
    peb_data::save_dataset(&ds, &path).expect("save (chaos truncates after write)");
    chaos::disarm();

    let strict = peb_data::load_dataset(&path);
    assert!(
        strict.is_err(),
        "strict load must reject the truncated file"
    );
    let (recovered, report) =
        peb_data::load_dataset_lenient(&path).expect("lenient load recovers the prefix");
    assert!(!report.clean());
    assert!(recovered.train.len() + recovered.test.len() < ds.train.len() + ds.test.len());
    std::fs::remove_dir_all(&dir).ok();
}

/// When the counters are pinned by name in CI dashboards, renames break
/// alerting silently — keep the guard counter names stable.
#[test]
fn guard_counter_names_are_stable() {
    let profile = peb_obs::snapshot();
    for name in [
        "guard_skipped_batches",
        "guard_rollbacks",
        "guard_retries",
        "guard_checkpoints",
    ] {
        assert!(
            profile.counters.iter().any(|c| c.name == name),
            "missing counter {name}"
        );
    }
}
