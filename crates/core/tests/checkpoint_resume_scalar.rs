//! Kill/resume determinism with the SIMD kernels forced off.
//!
//! `peb_simd::set_level` is process-global, so this lives in its own test
//! binary: the level is pinned to `Scalar` for the whole process and the
//! resume-equals-uninterrupted guarantee is re-checked against the plain
//! scalar kernels (the SIMD-on case is covered by `checkpoint_resume`).

use std::path::PathBuf;

use peb_guard::chaos::{self, Chaos};
use peb_guard::PebError;
use peb_simd::Level;
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{SdmPeb, SdmPebConfig, TrainConfig, Trainer};

const DIMS: (usize, usize, usize) = (2, 16, 16);

fn fresh_model() -> SdmPeb {
    let mut rng = StdRng::seed_from_u64(42);
    SdmPeb::new(SdmPebConfig::tiny(DIMS), &mut rng)
}

fn toy_data() -> Vec<(Tensor, Tensor)> {
    (0..4)
        .map(|s| {
            let mut r = StdRng::seed_from_u64(1000 + s);
            let acid = Tensor::rand_uniform(&[DIMS.0, DIMS.1, DIMS.2], 0.0, 0.9, &mut r);
            let label = acid.map(|a| 1.5 * a - 0.4);
            (acid, label)
        })
        .collect()
}

#[test]
fn kill_resume_is_bitwise_identical_with_scalar_kernels() {
    peb_simd::set_level(Level::Scalar);
    let epochs = 3;
    let data = toy_data();
    let dir: PathBuf = std::env::temp_dir().join("peb_ckpt_resume_scalar_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let baseline = fresh_model();
    let mut cfg = TrainConfig::quick(epochs);
    cfg.accumulate = 2;
    let baseline_report = Trainer::new(cfg.clone())
        .fit(&baseline, &data)
        .expect("uninterrupted run");

    cfg.guard.checkpoint_dir = Some(dir.clone());
    for kill_after in 1..epochs as u64 {
        chaos::arm(Chaos::Kill { epoch: kill_after });
        let model = fresh_model();
        let err = Trainer::new(cfg.clone())
            .resume(&model, &data)
            .expect_err("armed kill must abort the run");
        assert!(matches!(err.root(), PebError::Injected { .. }), "{err}");
    }
    chaos::disarm();
    let survivor = fresh_model();
    let report = Trainer::new(cfg)
        .resume(&survivor, &data)
        .expect("final resume");

    let bits = |r: &sdm_peb::TrainReport| -> Vec<u32> {
        r.epoch_losses.iter().map(|l| l.to_bits()).collect()
    };
    assert_eq!(bits(&baseline_report), bits(&report));
    for (a, b) in peb_nn::Parameterized::parameters(&baseline)
        .iter()
        .zip(peb_nn::Parameterized::parameters(&survivor))
    {
        let ab: Vec<u32> = a.value().data().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.value().data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "scalar-kernel weights must be bitwise identical");
    }
    std::fs::remove_dir_all(&dir).ok();
}
