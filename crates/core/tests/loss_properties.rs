//! Property-based tests for the PEB objectives and metrics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_tensor::{Tensor, Var};
use sdm_peb::{nrmse, rmse, LabelTransform, PebLoss};

fn volume(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(&[3, 4, 4], &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn loss_terms_are_nonnegative(seed in 0u64..1000, noise in 0.0f32..1.0) {
        let target = volume(seed);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let pred = target.add_t(&Tensor::randn(&[3, 4, 4], &mut rng).mul_scalar(noise)).unwrap();
        let loss = PebLoss::paper();
        let b = loss.breakdown(&pred, &target);
        prop_assert!(b.max_se >= 0.0);
        prop_assert!(b.focal >= 0.0);
        prop_assert!(b.divergence >= -1e-4, "KL slightly negative: {}", b.divergence);
        prop_assert!(b.total >= -1e-4);
    }

    #[test]
    fn focal_grows_with_error_scale(seed in 0u64..1000, scale in 1.1f32..3.0) {
        let target = volume(seed);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let err = Tensor::randn(&[3, 4, 4], &mut rng).mul_scalar(0.3);
        let loss = PebLoss::paper();
        let small = loss
            .focal(&Var::constant(target.add_t(&err).unwrap()), &target)
            .value()
            .item();
        let large = loss
            .focal(
                &Var::constant(target.add_t(&err.mul_scalar(scale)).unwrap()),
                &target,
            )
            .value()
            .item();
        // |s·e|³ = s³|e|³: strictly super-linear growth.
        prop_assert!(large > small * scale, "{large} vs {small} at scale {scale}");
    }

    #[test]
    fn max_se_bounds_mean_squared_error(seed in 0u64..1000) {
        let target = volume(seed);
        let mut rng = StdRng::seed_from_u64(seed + 3);
        let pred = target.add_t(&Tensor::randn(&[3, 4, 4], &mut rng)).unwrap();
        let loss = PebLoss::paper();
        let max_se = loss.max_se(&Var::constant(pred.clone()), &target).value().item();
        let mse = rmse(&pred, &target).powi(2);
        prop_assert!(max_se >= mse - 1e-5);
    }

    #[test]
    fn divergence_ignores_uniform_shifts(seed in 0u64..1000, shift in -3.0f32..3.0) {
        let target = volume(seed);
        let loss = PebLoss::paper();
        let v = loss
            .depth_divergence(&Var::constant(target.add_scalar(shift)), &target)
            .value()
            .item();
        prop_assert!(v.abs() < 1e-3, "uniform shift changed Δ maps: {v}");
    }

    #[test]
    fn label_transform_roundtrips_everywhere(i in 0.001f32..0.999) {
        let t = LabelTransform::paper();
        let x = Tensor::scalar(i);
        let back = t.decode(&t.encode(&x)).item();
        prop_assert!((back - i).abs() < 1e-4);
    }

    #[test]
    fn nrmse_is_a_relative_error(seed in 0u64..1000, eps in 0.01f32..0.2) {
        // pred = (1+ε)·truth gives NRMSE exactly ε.
        let truth = volume(seed).add_scalar(5.0); // keep away from zero norm
        let pred = truth.mul_scalar(1.0 + eps);
        prop_assert!((nrmse(&pred, &truth) - eps).abs() < 1e-4);
    }

    #[test]
    fn gradient_of_total_loss_is_finite(seed in 0u64..1000) {
        let target = volume(seed);
        let mut rng = StdRng::seed_from_u64(seed + 4);
        let pred = Var::parameter(
            target.add_t(&Tensor::randn(&[3, 4, 4], &mut rng).mul_scalar(0.5)).unwrap(),
        );
        PebLoss::paper().combined(&pred, &target).backward();
        let g = pred.grad().unwrap();
        prop_assert!(g.data().iter().all(|v| v.is_finite()));
    }
}
