//! Finite-difference gradient checks for the fusion block and decoder
//! head — the two model components assembled in `peb-core` rather than
//! imported from `peb-nn`/`peb-mamba` (whose own suites already gradcheck
//! their layers).
//!
//! Inputs are checked with `check_gradients`; one representative
//! parameter per block is checked by perturbing the parameter in place
//! and comparing the analytic gradient against central differences.

use peb_nn::Parameterized;
use peb_tensor::{check_gradients, numeric_gradient, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{Decoder, FeatureFusion};

/// Analytic-vs-numeric check on one parameter of a module whose forward
/// pass is captured by `f` (a pure scalar loss of the current weights).
fn param_gradcheck(param: &Var, all: &[Var], f: impl Fn() -> Var, eps: f32, tol: f32) {
    let p0 = param.value_clone();
    all.iter().for_each(|p| p.zero_grad());
    f().backward();
    let analytic = param.grad().expect("parameter got no gradient");
    let numeric = numeric_gradient(
        &p0,
        |v| {
            param.set_value(v.value_clone());
            f()
        },
        eps,
    );
    param.set_value(p0);
    let mut max_rel = 0f32;
    for (&a, &n) in analytic.data().iter().zip(numeric.data()) {
        max_rel = max_rel.max((a - n).abs() / 1f32.max(a.abs()).max(n.abs()));
    }
    assert!(
        max_rel <= tol,
        "parameter gradcheck failed: {max_rel} > {tol}"
    );
}

#[test]
fn fusion_input_gradcheck() {
    let mut rng = StdRng::seed_from_u64(301);
    let fusion = FeatureFusion::new(&[2, 4], 4, 8, &mut rng);
    let s1 = Tensor::randn(&[2, 2, 4, 4], &mut rng);
    let s2 = Var::constant(Tensor::randn(&[4, 2, 2, 2], &mut rng));
    let r = check_gradients(
        &Var::parameter(s1),
        |v| fusion.forward(&[v.clone(), s2.clone()]).square().sum(),
        1e-2,
    );
    assert!(r.ok(3e-2), "finest stage: {}", r.max_rel_err);
    // The coarser stage flows through the nearest-neighbour upsample too.
    let s1 = Var::constant(Tensor::randn(&[2, 2, 4, 4], &mut rng));
    let s2 = Tensor::randn(&[4, 2, 2, 2], &mut rng);
    let r = check_gradients(
        &Var::parameter(s2),
        |v| fusion.forward(&[s1.clone(), v.clone()]).square().sum(),
        1e-2,
    );
    assert!(r.ok(3e-2), "coarse stage: {}", r.max_rel_err);
}

#[test]
fn fusion_parameter_gradcheck() {
    let mut rng = StdRng::seed_from_u64(302);
    let fusion = FeatureFusion::new(&[2, 4], 4, 8, &mut rng);
    let s1 = Var::constant(Tensor::randn(&[2, 2, 4, 4], &mut rng));
    let s2 = Var::constant(Tensor::randn(&[4, 2, 2, 2], &mut rng));
    let params = fusion.parameters();
    // First projection weight — representative of every linear path.
    param_gradcheck(
        &params[0],
        &params,
        || fusion.forward(&[s1.clone(), s2.clone()]).square().sum(),
        1e-2,
        3e-2,
    );
}

#[test]
fn decoder_input_and_skip_gradcheck() {
    // Seed picked so no LeakyReLU pre-activation sits within ±eps of its
    // kink, where central differences straddle both slopes.
    let mut rng = StdRng::seed_from_u64(305);
    let dec = Decoder::new(4, 2, 1, &mut rng);
    let x = Tensor::randn(&[4, 2, 2, 2], &mut rng);
    let skip = Var::constant(Tensor::randn(&[1, 2, 4, 4], &mut rng));
    let r = check_gradients(
        &Var::parameter(x),
        |v| dec.forward(v, Some(&skip)).square().sum(),
        1e-2,
    );
    assert!(r.ok(3e-2), "latent input: {}", r.max_rel_err);
    let x = Var::constant(Tensor::randn(&[4, 2, 2, 2], &mut rng));
    let skip = Tensor::randn(&[1, 2, 4, 4], &mut rng);
    let r = check_gradients(
        &Var::parameter(skip),
        |v| dec.forward(&x, Some(v)).square().sum(),
        1e-2,
    );
    assert!(r.ok(3e-2), "skip input: {}", r.max_rel_err);
}

#[test]
fn decoder_parameter_gradcheck() {
    let mut rng = StdRng::seed_from_u64(304);
    let dec = Decoder::new(4, 2, 1, &mut rng);
    let x = Var::constant(Tensor::randn(&[4, 2, 2, 2], &mut rng));
    let skip = Var::constant(Tensor::randn(&[1, 2, 4, 4], &mut rng));
    let params = dec.parameters();
    // The last parameter belongs to the refinement head — the layer the
    // skip path feeds, and the one PR 2's decoder rework touched.
    let last = params.len() - 1;
    param_gradcheck(
        &params[last],
        &params,
        || dec.forward(&x, Some(&skip)).square().sum(),
        1e-2,
        3e-2,
    );
}
