//! `peb-par`: the workspace-wide parallel compute layer.
//!
//! A single long-lived pool of worker threads executes *deterministically
//! partitioned* loops for every hot path in the workspace — GEMM row
//! panels, im2col rows, ADI tridiagonal lines, selective-scan channel
//! lanes, FFT lines, and dataset generation.
//!
//! # Determinism contract
//!
//! Work is always split into **fixed chunk boundaries that depend only on
//! the problem size, never on the thread count**. Each output element is
//! written by exactly one chunk, and any cross-chunk reduction is combined
//! sequentially in ascending chunk order by the caller (see
//! [`parallel_chunks_collect`]). Consequently every parallelised kernel in
//! the workspace produces **bitwise identical** results at any
//! `PEB_THREADS` setting — `PEB_THREADS=1` is an exact sequential
//! fallback, and the determinism suite asserts 1-thread and N-thread runs
//! agree to the bit.
//!
//! # Sizing
//!
//! The effective thread count is, in priority order: the innermost
//! [`with_thread_count`] override on the calling thread, else the
//! `PEB_THREADS` environment variable, else `available_parallelism()`.
//! The pool spawns workers lazily and keeps them parked between calls, so
//! a parallel loop costs roughly one atomic fetch-add per chunk plus one
//! condvar wake per idle worker.
//!
//! Nested parallel calls (for example a parallel conv backward whose GEMM
//! is itself parallel) run sequentially inside their worker: the outer
//! loop owns the pool. This keeps the scheduler trivially deadlock-free.
//!
//! # Example
//!
//! ```
//! let mut out = vec![0u64; 1000];
//! peb_par::parallel_chunks_mut(&mut out, 64, |offset, chunk| {
//!     for (i, slot) in chunk.iter_mut().enumerate() {
//!         *slot = ((offset + i) as u64).pow(2);
//!     }
//! });
//! assert_eq!(out[999], 999 * 999);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

thread_local! {
    /// Innermost `with_thread_count` override for this thread.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside pool workers and inside caller-side chunk loops: nested
    /// parallel calls run inline.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// The `PEB_THREADS`/`available_parallelism` default, read once.
pub fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("PEB_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Whether this thread is currently executing a parallel chunk body
/// (either as a pool worker or as the caller participating in its own
/// loop). Chunk *claiming* is dynamic — an atomic fetch-add decides
/// which thread runs which chunk — so work done under this flag is not
/// attributable to a deterministic thread-local sequence. `peb-pool`'s
/// record/replay arena uses this to leave chunk-body checkouts on the
/// ordinary pool path.
pub fn in_parallel() -> bool {
    IN_PARALLEL.with(|f| f.get())
}

/// The thread count parallel loops on this thread will use right now.
pub fn current_threads() -> usize {
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(max_threads)
}

/// Runs `f` with the effective thread count forced to `n` on this thread.
///
/// Used by the determinism tests (`1` vs `N` must agree bitwise) and by
/// callers that know better than the global default. Nested overrides
/// stack; the innermost wins.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be positive");
    THREAD_OVERRIDE.with(|o| {
        let prev = o.replace(Some(n));
        // Restore on unwind as well.
        struct Guard<'a>(&'a Cell<Option<usize>>, Option<usize>);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _guard = Guard(o, prev);
        f()
    })
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    spawned: Mutex<usize>,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        })
    }

    /// Makes sure at least `n` workers exist (they are never torn down).
    fn ensure_workers(&self, n: usize) {
        let mut spawned = self.spawned.lock().expect("pool spawn lock");
        while *spawned < n {
            let shared = Arc::clone(&self.shared);
            let idx = *spawned;
            std::thread::Builder::new()
                .name(format!("peb-par-{idx}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }

    fn submit(&self, jobs: impl IntoIterator<Item = Job>) {
        let mut queue = self.shared.queue.lock().expect("pool queue lock");
        queue.extend(jobs);
        drop(queue);
        self.shared.available.notify_all();
    }
}

fn worker_loop(shared: &PoolShared) {
    IN_PARALLEL.with(|f| f.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("worker queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).expect("worker queue wait");
            }
        };
        job();
    }
}

/// State shared between the caller and its helper jobs for one parallel
/// loop. The `task` pointer borrows the caller's stack; helpers only
/// dereference it *after* claiming a chunk index below `nchunks`, and the
/// caller only returns once `completed == nchunks`, so the borrow is live
/// for every dereference. Stale helpers (woken after completion) claim an
/// out-of-range index and exit without touching `task`.
struct LoopShared {
    task: *const (dyn Fn(usize) + Sync),
    nchunks: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    done: Condvar,
}

// SAFETY: `task` is only dereferenced while the owning `run_parallel` frame
// is alive (guaranteed by the completed-count barrier) and the closure it
// points to is `Sync`.
unsafe impl Send for LoopShared {}
unsafe impl Sync for LoopShared {}

impl LoopShared {
    /// Claims and runs chunks until none remain. Returns whether any chunk
    /// panicked (the panic itself is captured, not propagated).
    fn run_chunks(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.nchunks {
                return;
            }
            // SAFETY: i < nchunks, so the caller frame (and the task
            // closure it borrows) is still alive.
            let task = unsafe { &*self.task };
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
            let done = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
            if done == self.nchunks {
                let _guard = self.lock.lock().expect("loop done lock");
                self.done.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut guard = self.lock.lock().expect("loop wait lock");
        while self.completed.load(Ordering::SeqCst) < self.nchunks {
            guard = self.done.wait(guard).expect("loop wait");
        }
    }
}

/// Runs `task(chunk_index)` for every index in `0..nchunks`, spreading
/// chunks over the pool. Falls back to a plain sequential loop when the
/// effective thread count is 1, when there is at most one chunk, or when
/// already inside a parallel loop (nested calls).
fn run_parallel(nchunks: usize, task: &(dyn Fn(usize) + Sync)) {
    let threads = current_threads();
    let nested = IN_PARALLEL.with(|f| f.get());
    if threads <= 1 || nchunks <= 1 || nested {
        for i in 0..nchunks {
            task(i);
        }
        return;
    }
    let pool = Pool::global();
    let helpers = (threads - 1).min(nchunks - 1);
    pool.ensure_workers(helpers);
    // Erase the caller-stack borrow; see LoopShared's safety notes for why
    // the completed-count barrier makes this sound.
    let task: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
    let shared = Arc::new(LoopShared {
        task,
        nchunks,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        lock: Mutex::new(()),
        done: Condvar::new(),
    });
    pool.submit((0..helpers).map(|_| {
        let shared = Arc::clone(&shared);
        Box::new(move || shared.run_chunks()) as Job
    }));
    // The caller participates too; mark it as inside a parallel region so
    // nested loops in its chunks run inline, like in the workers.
    IN_PARALLEL.with(|f| f.set(true));
    shared.run_chunks();
    IN_PARALLEL.with(|f| f.set(false));
    shared.wait();
    if shared.panicked.load(Ordering::SeqCst) {
        panic!("peb-par: a parallel chunk panicked");
    }
}

// ---------------------------------------------------------------------------
// Deterministic partitioning
// ---------------------------------------------------------------------------

/// Fixed chunk size for `total` items given a requested granularity.
///
/// Depends only on the problem size — never on the thread count — so chunk
/// boundaries (and therefore combination order) are stable across any
/// `PEB_THREADS`.
fn fixed_chunk(total: usize, chunk: usize) -> usize {
    chunk.max(1).min(total.max(1))
}

/// Minimum estimated work (items × per-item cost) below which the
/// `*_cost` loop variants skip the pool and run their chunks inline.
///
/// Dispatching helpers costs a queue lock, condvar wakes, and — on
/// oversubscribed machines — scheduler churn; for kernels doing less than
/// ~64 k scalar operations that overhead dominates the work itself (the
/// `BENCH_pool` micro workload regressed 40 % at `PEB_THREADS=4` from
/// exactly this). The cutoff only changes *where* chunks run, never how
/// the work is partitioned: the same chunks execute in ascending order on
/// the calling thread, so results stay bitwise identical.
pub const MIN_PARALLEL_WORK: u64 = 1 << 16;

/// Whether a cost-hinted loop over `total` items at `cost_per_item`
/// estimated scalar ops each stays below the parallel cutoff.
pub fn below_parallel_cutoff(total: usize, cost_per_item: u64) -> bool {
    (total as u64).saturating_mul(cost_per_item) < MIN_PARALLEL_WORK
}

/// Runs the identical chunk sequence either inline (ascending order) or
/// over the pool. Both paths visit every chunk exactly once with the same
/// boundaries.
fn run_maybe_parallel(nchunks: usize, sequential: bool, task: &(dyn Fn(usize) + Sync)) {
    if sequential {
        for i in 0..nchunks {
            task(i);
        }
    } else {
        run_parallel(nchunks, task);
    }
}

/// Number of chunks for `total` items at `chunk` granularity.
fn chunk_count(total: usize, chunk: usize) -> usize {
    total.div_ceil(fixed_chunk(total, chunk))
}

/// Runs `f(range)` over fixed `chunk`-sized slices of `0..total` in
/// parallel.
///
/// `f` must only write state disjoint per range (the caller's contract);
/// under that contract the result is bitwise identical at any thread
/// count.
pub fn parallel_chunks(total: usize, chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    chunks_impl(total, chunk, false, f)
}

/// [`parallel_chunks`] with a per-item cost hint (estimated scalar ops per
/// item): loops whose total work falls below [`MIN_PARALLEL_WORK`] run
/// their chunks inline in ascending order — same boundaries, same bits,
/// no pool overhead.
pub fn parallel_chunks_cost(
    total: usize,
    chunk: usize,
    cost_per_item: u64,
    f: impl Fn(Range<usize>) + Sync,
) {
    chunks_impl(total, chunk, below_parallel_cutoff(total, cost_per_item), f)
}

fn chunks_impl(total: usize, chunk: usize, sequential: bool, f: impl Fn(Range<usize>) + Sync) {
    if total == 0 {
        return;
    }
    let c = fixed_chunk(total, chunk);
    run_maybe_parallel(chunk_count(total, chunk), sequential, &|i| {
        let start = i * c;
        f(start..(start + c).min(total));
    });
}

/// Runs `f(index)` for every index in `0..total` in parallel, using a
/// fixed size-derived granularity (`total/64`, at least 1).
pub fn parallel_for(total: usize, f: impl Fn(usize) + Sync) {
    parallel_chunks(total, total.div_ceil(64), |range| {
        for i in range {
            f(i);
        }
    });
}

/// Runs `f(range)` over fixed chunks and returns each chunk's result **in
/// ascending chunk order**, so cross-chunk reductions combine in a fixed,
/// thread-count-independent order.
pub fn parallel_chunks_collect<T: Send>(
    total: usize,
    chunk: usize,
    f: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    chunks_collect_impl(total, chunk, false, f)
}

/// [`parallel_chunks_collect`] with a per-item cost hint; see
/// [`parallel_chunks_cost`].
pub fn parallel_chunks_collect_cost<T: Send>(
    total: usize,
    chunk: usize,
    cost_per_item: u64,
    f: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    chunks_collect_impl(total, chunk, below_parallel_cutoff(total, cost_per_item), f)
}

fn chunks_collect_impl<T: Send>(
    total: usize,
    chunk: usize,
    sequential: bool,
    f: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    if total == 0 {
        return Vec::new();
    }
    let c = fixed_chunk(total, chunk);
    let n = chunk_count(total, chunk);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    {
        let slots = UnsafeSlice::new(&mut out);
        run_maybe_parallel(n, sequential, &|i| {
            let start = i * c;
            let value = f(start..(start + c).min(total));
            // SAFETY: each chunk index writes exactly its own slot.
            unsafe { *slots.get_mut(i) = Some(value) };
        });
    }
    out.into_iter()
        .map(|v| v.expect("chunk result present"))
        .collect()
}

/// Splits `data` into fixed `chunk`-sized sub-slices and runs
/// `f(offset, sub_slice)` on each in parallel.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    chunks_mut_impl(data, chunk, false, f)
}

/// [`parallel_chunks_mut`] with a per-item cost hint; see
/// [`parallel_chunks_cost`].
pub fn parallel_chunks_mut_cost<T: Send>(
    data: &mut [T],
    chunk: usize,
    cost_per_item: u64,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let sequential = below_parallel_cutoff(data.len(), cost_per_item);
    chunks_mut_impl(data, chunk, sequential, f)
}

fn chunks_mut_impl<T: Send>(
    data: &mut [T],
    chunk: usize,
    sequential: bool,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let total = data.len();
    if total == 0 {
        return;
    }
    let c = fixed_chunk(total, chunk);
    let slice = UnsafeSlice::new(data);
    run_maybe_parallel(chunk_count(total, c), sequential, &|i| {
        let start = i * c;
        let end = (start + c).min(total);
        // SAFETY: chunk i covers exactly data[start..end]; chunks are
        // disjoint by construction.
        let sub = unsafe { slice.slice_mut(start..end) };
        f(start, sub);
    });
}

// ---------------------------------------------------------------------------
// UnsafeSlice
// ---------------------------------------------------------------------------

/// A `Sync` view over a mutable slice for kernels whose per-chunk writes
/// are disjoint but interleaved (strided lines, lane-major outputs), where
/// `chunks_mut` cannot express the partition.
///
/// All access is `unsafe`: the caller must guarantee that no index is
/// written by more than one chunk and that reads do not race writes.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(data: &'a mut [T]) -> Self {
        UnsafeSlice {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a mutable reference to element `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and must not be aliased by any concurrent
    /// read or write.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }

    /// Returns the sub-slice `range` as mutable.
    ///
    /// # Safety
    ///
    /// `range` must be in bounds and disjoint from every range accessed by
    /// other threads.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_touches_every_index_once() {
        let mut hits = vec![0u8; 1337];
        {
            let slice = UnsafeSlice::new(&mut hits);
            with_thread_count(4, || {
                parallel_for(1337, |i| unsafe { *slice.get_mut(i) += 1 });
            });
        }
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn chunks_cover_exactly_without_overlap() {
        for total in [1usize, 7, 64, 65, 1000] {
            for chunk in [1usize, 3, 64, 2048] {
                let mut cover = vec![0u32; total];
                {
                    let slice = UnsafeSlice::new(&mut cover);
                    with_thread_count(3, || {
                        parallel_chunks(total, chunk, |r| {
                            for i in r {
                                unsafe { *slice.get_mut(i) += 1 };
                            }
                        });
                    });
                }
                assert!(cover.iter().all(|&c| c == 1), "total={total} chunk={chunk}");
            }
        }
    }

    #[test]
    fn collect_returns_results_in_chunk_order() {
        let parts = with_thread_count(4, || parallel_chunks_collect(100, 9, |r| (r.start, r.end)));
        assert_eq!(parts.len(), 100usize.div_ceil(9));
        let mut expect_start = 0;
        for (s, e) in parts {
            assert_eq!(s, expect_start);
            expect_start = e;
        }
        assert_eq!(expect_start, 100);
    }

    #[test]
    fn chunks_mut_partitions_the_slice() {
        let mut data = vec![0usize; 500];
        with_thread_count(4, || {
            parallel_chunks_mut(&mut data, 37, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = offset + i;
                }
            });
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn one_thread_equals_many_threads_bitwise() {
        let work = |threads: usize| {
            with_thread_count(threads, || {
                parallel_chunks_collect(1000, 13, |r| {
                    // A reduction whose result depends on summation order:
                    // identical chunking must give identical bits.
                    let mut acc = 0f32;
                    for i in r {
                        acc += (i as f32).sqrt() * 1e-3;
                    }
                    acc
                })
                .into_iter()
                .fold(0f32, |a, b| a + b)
            })
        };
        assert_eq!(work(1).to_bits(), work(4).to_bits());
    }

    #[test]
    fn nested_parallelism_runs_inline_and_finishes() {
        let mut out = vec![0u32; 64];
        {
            let slice = UnsafeSlice::new(&mut out);
            with_thread_count(4, || {
                parallel_chunks(64, 8, |r| {
                    // Nested call: must run inline without deadlocking.
                    parallel_for(4, |_| {});
                    for i in r {
                        unsafe { *slice.get_mut(i) = i as u32 };
                    }
                });
            });
        }
        assert_eq!(out[63], 63);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            with_thread_count(4, || {
                parallel_for(100, |i| {
                    if i == 57 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn with_thread_count_restores_on_exit() {
        let outer = current_threads();
        with_thread_count(7, || {
            assert_eq!(current_threads(), 7);
            with_thread_count(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 7);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn zero_total_is_a_no_op() {
        parallel_chunks(0, 8, |_| panic!("must not run"));
        parallel_chunks_mut(&mut [] as &mut [u8], 8, |_, _| panic!("must not run"));
        assert!(parallel_chunks_collect(0, 8, |_| 1).is_empty());
    }

    #[test]
    fn cost_cutoff_keeps_chunk_boundaries_and_coverage() {
        // Below the cutoff (sequential) and far above it (parallel), the
        // chunk boundaries handed to the closure must be identical.
        for cost in [1u64, u64::MAX / 2] {
            let total = 100usize;
            let seen = Mutex::new(Vec::new());
            with_thread_count(3, || {
                parallel_chunks_cost(total, 32, cost, |r| {
                    seen.lock().unwrap().push((r.start, r.end));
                });
            });
            let mut got = seen.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(
                got,
                vec![(0, 32), (32, 64), (64, 96), (96, 100)],
                "cost={cost}"
            );
        }
    }

    #[test]
    fn cost_cutoff_runs_small_loops_on_the_calling_thread() {
        let caller = std::thread::current().id();
        with_thread_count(4, || {
            parallel_chunks_cost(64, 8, 1, |_| {
                assert_eq!(std::thread::current().id(), caller);
            });
            parallel_chunks_mut_cost(&mut [0u8; 64], 8, 1, |_, _| {
                assert_eq!(std::thread::current().id(), caller);
            });
            parallel_chunks_collect_cost(64, 8, 1, |_| {
                assert_eq!(std::thread::current().id(), caller);
            });
        });
    }

    #[test]
    fn cost_variants_match_plain_variants_exactly() {
        let total = 513usize;
        for cost in [1u64, 1 << 20] {
            let mut plain = vec![0f32; total];
            let mut hinted = vec![0f32; total];
            with_thread_count(4, || {
                parallel_chunks_mut(&mut plain, 64, |off, sub| {
                    for (i, v) in sub.iter_mut().enumerate() {
                        *v = ((off + i) as f32).sqrt();
                    }
                });
                parallel_chunks_mut_cost(&mut hinted, 64, cost, |off, sub| {
                    for (i, v) in sub.iter_mut().enumerate() {
                        *v = ((off + i) as f32).sqrt();
                    }
                });
            });
            assert_eq!(plain, hinted, "cost={cost}");
            let a = parallel_chunks_collect(total, 100, |r| r.len());
            let b = parallel_chunks_collect_cost(total, 100, cost, |r| r.len());
            assert_eq!(a, b, "cost={cost}");
        }
    }
}
