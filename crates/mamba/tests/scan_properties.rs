//! Property-based tests for the selective scan and scan orderings.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_mamba::{selective_scan, selective_scan_chunked, ScanDirection, ScanOrder};
use peb_tensor::{Tensor, Var};

struct Fixed {
    delta: Var,
    a: Var,
    b: Var,
    c: Var,
    d: Var,
}

fn fixed(l: usize, ch: usize, n: usize, seed: u64) -> Fixed {
    let mut rng = StdRng::seed_from_u64(seed);
    Fixed {
        delta: Var::constant(Tensor::rand_uniform(&[l, ch], 0.05, 0.5, &mut rng)),
        a: Var::constant(Tensor::rand_uniform(&[ch, n], -1.5, -0.2, &mut rng)),
        b: Var::constant(Tensor::randn(&[l, n], &mut rng)),
        c: Var::constant(Tensor::randn(&[l, n], &mut rng)),
        d: Var::constant(Tensor::randn(&[ch], &mut rng)),
    }
}

fn run(u: &Tensor, f: &Fixed) -> Tensor {
    selective_scan(&Var::constant(u.clone()), &f.delta, &f.a, &f.b, &f.c, &f.d).value_clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scan_is_linear_in_the_drive_for_fixed_parameters(
        seed in 0u64..500,
        alpha in -2.0f32..2.0,
    ) {
        // With Δ, B, C, D fixed (not input-derived), the recurrence is a
        // linear map of u.
        let (l, ch, n) = (7, 2, 3);
        let f = fixed(l, ch, n, seed);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let u1 = Tensor::randn(&[l, ch], &mut rng);
        let u2 = Tensor::randn(&[l, ch], &mut rng);
        let lhs = run(&u1.mul_scalar(alpha).add_t(&u2).unwrap(), &f);
        let rhs = run(&u1, &f).mul_scalar(alpha).add_t(&run(&u2, &f)).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn scan_is_causal(seed in 0u64..500, t_perturb in 0usize..7) {
        // Changing the input at time t must not affect outputs before t.
        let (l, ch, n) = (7, 2, 2);
        let f = fixed(l, ch, n, seed);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let u = Tensor::randn(&[l, ch], &mut rng);
        let mut up = u.clone();
        up.set(&[t_perturb, 0], up.get(&[t_perturb, 0]) + 3.0);
        let y = run(&u, &f);
        let yp = run(&up, &f);
        for t in 0..t_perturb {
            for c in 0..ch {
                prop_assert_eq!(y.get(&[t, c]), yp.get(&[t, c]), "leak at t={}", t);
            }
        }
    }

    #[test]
    fn chunked_scan_agrees_for_random_chunk_sizes(
        seed in 0u64..500,
        chunk in 1usize..16,
    ) {
        let (l, ch, n) = (11, 2, 2);
        let f = fixed(l, ch, n, seed);
        let mut rng = StdRng::seed_from_u64(seed + 3);
        let u = Var::constant(Tensor::randn(&[l, ch], &mut rng));
        let seq = selective_scan(&u, &f.delta, &f.a, &f.b, &f.c, &f.d).value_clone();
        let chk = selective_scan_chunked(&u, &f.delta, &f.a, &f.b, &f.c, &f.d, chunk)
            .value_clone();
        prop_assert!(seq.max_abs_diff(&chk) < 1e-5);
    }

    #[test]
    fn scan_orders_are_bijective(d in 1usize..4, h in 1usize..5, w in 1usize..5) {
        for dir in ScanDirection::ALL {
            let order = ScanOrder::new(dir, (d, h, w));
            prop_assert_eq!(order.len(), d * h * w);
            let mut seen = vec![false; order.len()];
            for &i in &order.indices {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            for (t, &src) in order.indices.iter().enumerate() {
                prop_assert_eq!(order.inverse[src], t);
            }
        }
    }

    #[test]
    fn state_is_bounded_for_bounded_inputs(seed in 0u64..500) {
        // Negative A and bounded Δ give a contraction: outputs cannot
        // exceed the geometric-series bound.
        let (l, ch, n) = (64, 2, 2);
        let f = fixed(l, ch, n, seed);
        let u = Tensor::ones(&[l, ch]);
        let y = run(&u, &f);
        prop_assert!(y.data().iter().all(|v| v.is_finite() && v.abs() < 1e3));
    }
}
