//! One input-selective SSM block (per scan direction).

use rand::Rng;

use peb_nn::{Linear, Parameterized};
use peb_tensor::{Tensor, Var};

use crate::scan::selective_scan;

/// HiPPO-inspired initialisation of `A_log`: `A[c, n] = −(n + 1)` so each
/// state dimension starts with a distinct decay rate (the diagonal
/// approximation of the HiPPO matrix used by S4/Mamba).
pub fn hippo_a_log_init(channels: usize, state: usize) -> Tensor {
    Tensor::from_fn(&[channels, state], |i| {
        let n = i % state;
        ((n + 1) as f32).ln()
    })
}

/// A single-direction selective state-space block (Eqs. 6–11).
///
/// Holds the input-dependent projections `B, C = Linear_N(x)`,
/// `Δ = softplus(Broadcast(Linear_1(x)) + bias)` and the learned state
/// matrix `A = −exp(A_log)` plus skip weight `D`.
#[derive(Debug)]
pub struct SsmBlock {
    b_proj: Linear,
    c_proj: Linear,
    dt_proj: Linear,
    dt_bias: Var, // [C]
    a_log: Var,   // [C, N]
    d_skip: Var,  // [C]
    channels: usize,
    state: usize,
}

impl SsmBlock {
    /// Creates a block for sequences of `channels` features with an
    /// `state`-dimensional hidden state.
    pub fn new(channels: usize, state: usize, rng: &mut impl Rng) -> Self {
        SsmBlock {
            b_proj: Linear::new(channels, state, true, rng),
            c_proj: Linear::new(channels, state, true, rng),
            dt_proj: Linear::new(channels, 1, true, rng),
            // softplus(-0.5) ≈ 0.47: moderate default step size.
            dt_bias: Var::parameter(Tensor::full(&[channels], -0.5)),
            a_log: Var::parameter(hippo_a_log_init(channels, state)),
            d_skip: Var::parameter(Tensor::ones(&[channels])),
            channels,
            state,
        }
    }

    /// Hidden-state dimension `N`.
    pub fn state_dim(&self) -> usize {
        self.state
    }

    /// Applies the selective scan to an `[L, C]` sequence.
    ///
    /// # Panics
    ///
    /// Panics on a channel mismatch.
    pub fn forward(&self, x: &Var) -> Var {
        let s = x.shape();
        assert_eq!(s[1], self.channels, "SsmBlock channel mismatch");
        // Eq. 10: input-dependent projections.
        let b = self.b_proj.forward(x); // [L, N]
        let c = self.c_proj.forward(x); // [L, N]
                                        // Eq. 11: Δ = softplus(Broadcast_C(Linear_1(x)) + bias).
        let delta = self
            .dt_proj
            .forward(x) // [L, 1]
            .add(&self.dt_bias) // broadcast to [L, C]
            .softplus();
        // Eq. 7 discretisation happens inside the fused scan.
        let a = self.a_log.exp().mul_scalar(-1.0); // [C, N], negative
        selective_scan(x, &delta, &a, &b, &c, &self.d_skip)
    }
}

impl Parameterized for SsmBlock {
    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.b_proj.parameters());
        p.extend(self.c_proj.parameters());
        p.extend(self.dt_proj.parameters());
        p.push(self.dt_bias.clone());
        p.push(self.a_log.clone());
        p.push(self.d_skip.clone());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hippo_init_distinct_decays() {
        let a = hippo_a_log_init(2, 4);
        // Row pattern ln(1), ln(2), ln(3), ln(4).
        assert_eq!(a.get(&[0, 0]), 0.0);
        assert!((a.get(&[1, 3]) - 4f32.ln()).abs() < 1e-6);
        // Resulting A = -exp(a_log) is strictly negative and distinct.
        let decays: Vec<f32> = (0..4).map(|n| -a.get(&[0, n]).exp()).collect();
        for wpair in decays.windows(2) {
            assert!(wpair[1] < wpair[0]);
        }
    }

    #[test]
    fn forward_shape_and_finite() {
        let mut rng = StdRng::seed_from_u64(50);
        let ssm = SsmBlock::new(4, 8, &mut rng);
        let x = Var::constant(Tensor::randn(&[32, 4], &mut rng));
        let y = ssm.forward(&x);
        assert_eq!(y.shape(), vec![32, 4]);
        assert!(y.value().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn end_to_end_gradients_flow_to_all_parameters() {
        let mut rng = StdRng::seed_from_u64(51);
        let ssm = SsmBlock::new(3, 4, &mut rng);
        let x = Var::constant(Tensor::randn(&[6, 3], &mut rng));
        ssm.forward(&x).square().sum().backward();
        for (i, p) in ssm.parameters().iter().enumerate() {
            let g = p.grad().unwrap_or_else(|| panic!("param {i} missing grad"));
            assert!(
                g.data().iter().any(|v| *v != 0.0),
                "param {i} gradient identically zero"
            );
        }
    }

    #[test]
    fn whole_block_gradcheck() {
        let mut rng = StdRng::seed_from_u64(52);
        let ssm = SsmBlock::new(2, 3, &mut rng);
        let x0 = Tensor::randn(&[5, 2], &mut rng);
        // Finite differences need the full-precision forward: bf16
        // storage noise (~2^-8 relative) swamps an h=1e-2 stencil.
        let r = peb_simd::with_prec(peb_simd::Prec::F32, || {
            peb_tensor::check_gradients(
                &Var::parameter(x0),
                |v| ssm.forward(v).square().sum(),
                1e-2,
            )
        });
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    fn selectivity_input_dependent_dynamics() {
        // Scaling the input changes Δ, so the output is NOT homogeneous of
        // degree 1 — unlike a time-invariant linear SSM.
        let mut rng = StdRng::seed_from_u64(53);
        let ssm = SsmBlock::new(2, 3, &mut rng);
        let x = Tensor::randn(&[8, 2], &mut rng);
        let y1 = ssm.forward(&Var::constant(x.clone())).value_clone();
        let y2 = ssm.forward(&Var::constant(x.mul_scalar(2.0))).value_clone();
        assert!(y2.max_abs_diff(&y1.mul_scalar(2.0)) > 1e-4);
    }
}

/// A linear time-invariant (LTI) S4-style block: the same recurrence with
/// *constant* learned `B`, `C`, `Δ` instead of input-dependent projections
/// (Eqs. 6–9 without the Eq. 10–11 selectivity).
///
/// This is the "structured state space model" ancestor of Mamba and the
/// natural ablation for the question *does selectivity matter for PEB?* —
/// exercised by the `bench_scan` Criterion group and the comparison test
/// below.
#[derive(Debug)]
pub struct LtiSsmBlock {
    b_const: Var, // [N]
    c_const: Var, // [N]
    dt_log: Var,  // [C] (Δ = softplus)
    a_log: Var,   // [C, N]
    d_skip: Var,  // [C]
    channels: usize,
    state: usize,
}

impl LtiSsmBlock {
    /// Creates an LTI block with HiPPO-style decays.
    pub fn new(channels: usize, state: usize, rng: &mut impl Rng) -> Self {
        LtiSsmBlock {
            b_const: Var::parameter(crate::lecun_vec(state, rng)),
            c_const: Var::parameter(crate::lecun_vec(state, rng)),
            dt_log: Var::parameter(Tensor::full(&[channels], -0.5)),
            a_log: Var::parameter(hippo_a_log_init(channels, state)),
            d_skip: Var::parameter(Tensor::ones(&[channels])),
            channels,
            state,
        }
    }

    /// Applies the LTI recurrence to an `[L, C]` sequence.
    ///
    /// # Panics
    ///
    /// Panics on a channel mismatch.
    pub fn forward(&self, x: &Var) -> Var {
        let s = x.shape();
        assert_eq!(s[1], self.channels, "LtiSsmBlock channel mismatch");
        let l = s[0];
        // Broadcast the constant parameters to the per-token shapes the
        // scan kernel expects.
        let ones_l = Var::constant(Tensor::ones(&[l, 1]));
        let b = ones_l.mul(&self.b_const.reshape(&[1, self.state]));
        let c = ones_l.mul(&self.c_const.reshape(&[1, self.state]));
        let delta = Var::constant(Tensor::ones(&[l, self.channels]))
            .mul(&self.dt_log.reshape(&[1, self.channels]))
            .softplus();
        let a = self.a_log.exp().mul_scalar(-1.0);
        crate::selective_scan(x, &delta, &a, &b, &c, &self.d_skip)
    }
}

impl Parameterized for LtiSsmBlock {
    fn parameters(&self) -> Vec<Var> {
        vec![
            self.b_const.clone(),
            self.c_const.clone(),
            self.dt_log.clone(),
            self.a_log.clone(),
            self.d_skip.clone(),
        ]
    }
}

#[cfg(test)]
mod lti_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lti_block_is_linear_in_its_input() {
        let mut rng = StdRng::seed_from_u64(150);
        let block = LtiSsmBlock::new(2, 4, &mut rng);
        let x1 = Tensor::randn(&[6, 2], &mut rng);
        let x2 = Tensor::randn(&[6, 2], &mut rng);
        let f = |t: &Tensor| block.forward(&Var::constant(t.clone())).value_clone();
        let lhs = f(&x1.add_t(&x2).unwrap());
        let rhs = f(&x1).add_t(&f(&x2)).unwrap();
        // Linear up to the D·x skip (also linear) — exact.
        assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn selective_block_is_not_linear() {
        let mut rng = StdRng::seed_from_u64(151);
        let block = SsmBlock::new(2, 4, &mut rng);
        let x1 = Tensor::randn(&[6, 2], &mut rng);
        let x2 = Tensor::randn(&[6, 2], &mut rng);
        let f = |t: &Tensor| block.forward(&Var::constant(t.clone())).value_clone();
        let lhs = f(&x1.add_t(&x2).unwrap());
        let rhs = f(&x1).add_t(&f(&x2)).unwrap();
        assert!(lhs.max_abs_diff(&rhs) > 1e-4, "selectivity lost");
    }

    #[test]
    fn lti_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(152);
        let block = LtiSsmBlock::new(2, 3, &mut rng);
        let x = Var::constant(Tensor::randn(&[5, 2], &mut rng));
        block.forward(&x).square().sum().backward();
        assert!(block.parameters().iter().all(|p| p.grad().is_some()));
    }
}
