//! Structured state-space models (Mamba-style selective scan) and the
//! spatial-depthwise Mamba attention unit (SDM unit) of SDM-PEB.
//!
//! The paper's core architectural contribution is a three-direction
//! selective scan over 3-D feature volumes (Fig. 5): a *spatial* scan
//! (depth-major per spatial position), a *depth-forward* scan (whole
//! shallow levels first) and a *depth-backward* scan. Each direction runs
//! an input-dependent SSM (Eqs. 6–11) whose recurrence
//!
//! ```text
//! h_t = exp(Δ_t ⊙ A) ⊙ h_{t−1} + Δ_t · B_t · x_t,    y_t = C_t · h_t + D ⊙ x_t
//! ```
//!
//! is implemented here as a fused autograd operation with a hand-derived
//! backward pass ([`selective_scan`]), validated against finite
//! differences in the test suite.
//!
//! # Example
//!
//! ```
//! use peb_mamba::{SdmUnit, SdmUnitConfig, ScanDirection};
//! use peb_tensor::{Tensor, Var};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = SdmUnitConfig::new(8, 16, 4);
//! let unit = SdmUnit::new(cfg, &mut rng);
//! // A [C=8, D=2, H=4, W=4] feature volume as a [L=32, C=8] sequence.
//! let x = Var::constant(Tensor::ones(&[32, 8]));
//! let y = unit.forward(&x, (2, 4, 4));
//! assert_eq!(y.shape(), vec![32, 8]);
//! ```

mod conv1d;
mod directions;
mod scan;
mod sdm_unit;
mod ssm;

pub use conv1d::CausalDwConv1d;
pub use directions::{gather_rows, ScanDirection, ScanOrder};
pub use scan::{selective_scan, selective_scan_chunked};
pub use sdm_unit::{SdmUnit, SdmUnitConfig};
pub use ssm::{hippo_a_log_init, LtiSsmBlock, SsmBlock};

/// LeCun-uniform 1-D parameter vector (shared init helper).
pub(crate) fn lecun_vec(n: usize, rng: &mut impl rand::Rng) -> peb_tensor::Tensor {
    peb_nn::lecun_uniform(&[n], n, rng)
}
