//! The selective-scan recurrence as a fused autograd operation.

use peb_tensor::{Tensor, Var};

/// Runs the selective SSM recurrence over a sequence.
///
/// Shapes: `u` and `delta` are `[L, C]`; `a` is `[C, N]` (the continuous
/// state matrix, negative for stability); `b` and `c` are `[L, N]`
/// (input-dependent projections, Eq. 10); `d` is `[C]` (skip weight).
/// Returns `y` of shape `[L, C]` where
///
/// ```text
/// h_t = exp(delta_t ⊗ a) ⊙ h_{t−1} + (delta_t ⊙ u_t) ⊗ b_t
/// y_t[c] = Σ_n c_t[n] · h_t[c, n] + d[c] · u_t[c]
/// ```
///
/// This is the ZOH discretisation of Eq. 7 specialised to diagonal `A`
/// with the simplified `B̄ = Δ·B` Euler rule used by Mamba.
///
/// The backward pass recomputes nothing: the forward stores the full
/// state trajectory (`L·C·N` floats) and runs the adjoint recurrence in
/// reverse, producing exact gradients for all six operands.
///
/// # Panics
///
/// Panics on inconsistent operand shapes.
pub fn selective_scan(u: &Var, delta: &Var, a: &Var, b: &Var, c: &Var, d: &Var) -> Var {
    let (l, ch) = {
        let s = u.shape();
        assert_eq!(s.len(), 2, "u must be [L, C]");
        (s[0], s[1])
    };
    let n = {
        let s = a.shape();
        assert_eq!(s, vec![ch, s[1]], "a must be [C, N]");
        s[1]
    };
    assert_eq!(delta.shape(), vec![l, ch], "delta must match u");
    assert_eq!(b.shape(), vec![l, n], "b must be [L, N]");
    assert_eq!(c.shape(), vec![l, n], "c must be [L, N]");
    assert_eq!(d.shape(), vec![ch], "d must be [C]");
    peb_obs::optrace::note("scan", || format!("l={l} c={ch} n={n}"));

    let (y, h_traj) = scan_forward(
        &u.value(),
        &delta.value(),
        &a.value(),
        &b.value(),
        &c.value(),
        &d.value(),
        l,
        ch,
        n,
    );
    let (uc, dc, ac, bc, cc, ddc) = (
        u.clone(),
        delta.clone(),
        a.clone(),
        b.clone(),
        c.clone(),
        d.clone(),
    );
    Var::from_op(
        y,
        vec![
            u.clone(),
            delta.clone(),
            a.clone(),
            b.clone(),
            c.clone(),
            d.clone(),
        ],
        move |g| {
            let grads = scan_backward(
                g,
                &uc.value(),
                &dc.value(),
                &ac.value(),
                &bc.value(),
                &cc.value(),
                &ddc.value(),
                &h_traj,
                l,
                ch,
                n,
            );
            grads.into_iter().map(Some).collect()
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn scan_forward(
    u: &Tensor,
    delta: &Tensor,
    a: &Tensor,
    b: &Tensor,
    c: &Tensor,
    d: &Tensor,
    l: usize,
    ch: usize,
    n: usize,
) -> (Tensor, peb_pool::PoolBuf<f32>) {
    let _span = peb_obs::span("scan.fwd");
    peb_obs::count(peb_obs::Counter::ScanLanes, ch as u64);
    let (ud, dd, ad, bd, cd, skip) = (
        u.data(),
        delta.data(),
        a.data(),
        b.data(),
        c.data(),
        d.data(),
    );
    // The trajectory is the big (L·C·N) scratch of the scan; pooled so
    // repeated forward/backward passes reuse one buffer. It is handed to
    // the backward closure and recycles when the graph node drops.
    let mut h_traj = peb_pool::PoolBuf::<f32>::zeroed(l * ch * n);
    let mut y = Tensor::zeros(&[l, ch]);
    {
        // Channel lanes are independent: the t-recurrence runs
        // sequentially per lane while lanes fan out over the pool. Every
        // y/h_traj position belongs to exactly one lane, so the result is
        // thread-count independent. Chunks align to 8-lane groups so each
        // worker feeds full groups to the vectorized `peb-simd` kernel;
        // the ragged tail (ch % 8 lanes, last chunk only) keeps the
        // scalar recurrence.
        let yslots = peb_par::UnsafeSlice::new(y.data_mut());
        let hslots = peb_par::UnsafeSlice::new(&mut h_traj);
        let lane_cost = 12 * (l as u64) * (n as u64);
        let group_chunk = ch.div_ceil(8).next_multiple_of(8);
        // Precision latched on the submitting thread and captured below;
        // bf16 stores the running state and packed `a` half-width (the
        // ragged tail keeps the f32 scalar recurrence). Int8 is a
        // GEMM-only format — the scan has no quantized variant, so it
        // runs f32 under Int8.
        let bf16 = peb_simd::prec() == peb_simd::Prec::Bf16;
        peb_par::parallel_chunks_cost(ch, group_chunk, lane_cost, |lanes| {
            let mut h = peb_pool::PoolBuf::<f32>::zeroed(n * 8);
            let mut apack = peb_pool::PoolBuf::<f32>::cleared(n * 8);
            let mut h16 = peb_pool::PoolBuf::<u16>::zeroed(if bf16 { n * 8 } else { 0 });
            let mut apack16 = peb_pool::PoolBuf::<u16>::cleared(if bf16 { n * 8 } else { 0 });
            let mut ci0 = lanes.start;
            while ci0 + 8 <= lanes.end {
                // SAFETY: the group owns y columns ci0..ci0+8 and their
                // h_traj rows; groups are disjoint (chunks are 8-aligned).
                if bf16 {
                    peb_simd::scan::pack_a_lanes8_bf16(ad, n, ci0, &mut apack16);
                    h16.fill(0);
                    unsafe {
                        peb_simd::scan::scan_forward_lanes8_bf16(
                            ud,
                            dd,
                            &apack16,
                            bd,
                            cd,
                            &skip[ci0..],
                            &mut h16,
                            &yslots,
                            Some(&hslots),
                            l,
                            ch,
                            n,
                            ci0,
                        );
                    }
                    ci0 += 8;
                    continue;
                }
                peb_simd::scan::pack_a_lanes8(ad, n, ci0, &mut apack);
                h.fill(0.0);
                unsafe {
                    peb_simd::scan::scan_forward_lanes8(
                        ud,
                        dd,
                        &apack,
                        bd,
                        cd,
                        &skip[ci0..],
                        &mut h,
                        &yslots,
                        Some(&hslots),
                        l,
                        ch,
                        n,
                        ci0,
                    );
                }
                ci0 += 8;
            }
            for ci in ci0..lanes.end {
                let h = &mut h[..n];
                h.fill(0.0);
                for t in 0..l {
                    let dt = dd[t * ch + ci];
                    let ut = ud[t * ch + ci];
                    let dtu = dt * ut;
                    let mut acc = 0f32;
                    for (ni, hv) in h.iter_mut().enumerate() {
                        let e = (dt * ad[ci * n + ni]).exp();
                        *hv = e * *hv + dtu * bd[t * n + ni];
                        acc += cd[t * n + ni] * *hv;
                    }
                    // SAFETY: lane `ci` owns y[t·ch+ci] and the
                    // h_traj[(t·ch+ci)·n..] block for every t.
                    unsafe { *yslots.get_mut(t * ch + ci) = acc + skip[ci] * ut };
                    unsafe { hslots.slice_mut((t * ch + ci) * n..(t * ch + ci + 1) * n) }
                        .copy_from_slice(h);
                }
            }
        });
    }
    (y, h_traj)
}

#[allow(clippy::too_many_arguments)]
fn scan_backward(
    g: &Tensor,
    u: &Tensor,
    delta: &Tensor,
    a: &Tensor,
    b: &Tensor,
    c: &Tensor,
    d: &Tensor,
    h_traj: &[f32],
    l: usize,
    ch: usize,
    n: usize,
) -> Vec<Tensor> {
    let _span = peb_obs::span("scan.bwd");
    peb_obs::count(peb_obs::Counter::ScanLanes, ch as u64);
    let (gd, ud, dd, ad, bd, cd, skip) = (
        g.data(),
        u.data(),
        delta.data(),
        a.data(),
        b.data(),
        c.data(),
        d.data(),
    );
    let mut du = Tensor::zeros(&[l, ch]);
    let mut ddelta = Tensor::zeros(&[l, ch]);
    let mut da = Tensor::zeros(&[ch, n]);
    let mut db = Tensor::zeros(&[l, n]);
    let mut dc = Tensor::zeros(&[l, n]);
    let mut dskip = Tensor::zeros(&[ch]);
    // du/ddelta/da/dskip are per-channel disjoint, so lanes write them
    // directly. db and dc reduce *across* channels: each fixed chunk of
    // lanes produces a partial, and the partials are summed in ascending
    // chunk order below — chunk boundaries depend only on `ch`, so the
    // reduction order (and bits) are identical at any thread count.
    let partials = {
        let duslots = peb_par::UnsafeSlice::new(du.data_mut());
        let ddslots = peb_par::UnsafeSlice::new(ddelta.data_mut());
        let daslots = peb_par::UnsafeSlice::new(da.data_mut());
        let dsslots = peb_par::UnsafeSlice::new(dskip.data_mut());
        peb_par::parallel_chunks_collect(ch, ch.div_ceil(8), |lanes| {
            let mut dbp = peb_pool::PoolBuf::<f32>::zeroed(l * n);
            let mut dcp = peb_pool::PoolBuf::<f32>::zeroed(l * n);
            // dh carried backward through the recurrence, per state.
            let mut dh = peb_pool::PoolBuf::<f32>::zeroed(n);
            for ci in lanes {
                dh.fill(0.0);
                for t in (0..l).rev() {
                    let gy = gd[t * ch + ci];
                    let dt = dd[t * ch + ci];
                    let ut = ud[t * ch + ci];
                    // SAFETY: lane `ci` owns dskip[ci], da row ci, and the
                    // strided du/ddelta positions `t·ch + ci`.
                    unsafe { *dsslots.get_mut(ci) += gy * ut };
                    let mut du_acc = gy * skip[ci];
                    let mut ddt_acc = 0f32;
                    for (ni, dhv) in dh.iter_mut().enumerate() {
                        let h_t = h_traj[(t * ch + ci) * n + ni];
                        // y contribution.
                        dcp[t * n + ni] += gy * h_t;
                        // Total gradient flowing into h_t: from y plus
                        // from h_{t+1} (already accumulated in dh).
                        let dht = gy * cd[t * n + ni] + *dhv;
                        // h_t = e·h_{t−1} + dt·u·b.
                        let av = ad[ci * n + ni];
                        let e = (dt * av).exp();
                        let h_prev = if t == 0 {
                            0.0
                        } else {
                            h_traj[((t - 1) * ch + ci) * n + ni]
                        };
                        // Through the decay factor e = exp(dt·a).
                        let de = dht * h_prev;
                        ddt_acc += de * av * e;
                        unsafe { *daslots.get_mut(ci * n + ni) += de * dt * e };
                        // Through the drive term dt·u·b.
                        let bv = bd[t * n + ni];
                        ddt_acc += dht * bv * ut;
                        du_acc += dht * dt * bv;
                        dbp[t * n + ni] += dht * dt * ut;
                        // Carry to h_{t−1}.
                        *dhv = dht * e;
                    }
                    unsafe { *duslots.get_mut(t * ch + ci) += du_acc };
                    unsafe { *ddslots.get_mut(t * ch + ci) += ddt_acc };
                }
            }
            (dbp, dcp)
        })
    };
    let (dbd, dcd) = (db.data_mut(), dc.data_mut());
    for (dbp, dcp) in partials {
        // Exact lane adds in the same ascending-chunk order as the scalar
        // loop — bitwise identical at any dispatch level.
        peb_simd::elementwise::vadd_assign(dbd, &dbp);
        peb_simd::elementwise::vadd_assign(dcd, &dcp);
    }
    vec![du, ddelta, da, db, dc, dskip]
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::numeric_gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Operands {
        u: Tensor,
        delta: Tensor,
        a: Tensor,
        b: Tensor,
        c: Tensor,
        d: Tensor,
    }

    fn operands(l: usize, ch: usize, n: usize, seed: u64) -> Operands {
        let mut rng = StdRng::seed_from_u64(seed);
        Operands {
            u: Tensor::randn(&[l, ch], &mut rng),
            delta: Tensor::rand_uniform(&[l, ch], 0.05, 0.5, &mut rng),
            a: Tensor::rand_uniform(&[ch, n], -1.5, -0.2, &mut rng),
            b: Tensor::randn(&[l, n], &mut rng),
            c: Tensor::randn(&[l, n], &mut rng),
            d: Tensor::randn(&[ch], &mut rng),
        }
    }

    fn run(o: &Operands) -> Var {
        selective_scan(
            &Var::constant(o.u.clone()),
            &Var::constant(o.delta.clone()),
            &Var::constant(o.a.clone()),
            &Var::constant(o.b.clone()),
            &Var::constant(o.c.clone()),
            &Var::constant(o.d.clone()),
        )
    }

    #[test]
    fn matches_naive_recurrence() {
        let o = operands(5, 2, 3, 31);
        let y = run(&o).value_clone();
        // Naive reference.
        let (l, ch, n) = (5usize, 2usize, 3usize);
        let mut h = vec![0f32; ch * n];
        for t in 0..l {
            for ci in 0..ch {
                let dt = o.delta.get(&[t, ci]);
                let ut = o.u.get(&[t, ci]);
                let mut acc = 0f32;
                for ni in 0..n {
                    let e = (dt * o.a.get(&[ci, ni])).exp();
                    h[ci * n + ni] = e * h[ci * n + ni] + dt * ut * o.b.get(&[t, ni]);
                    acc += o.c.get(&[t, ni]) * h[ci * n + ni];
                }
                let expect = acc + o.d.data()[ci] * ut;
                assert!(
                    (y.get(&[t, ci]) - expect).abs() < 1e-5,
                    "t={t} c={ci}: {} vs {expect}",
                    y.get(&[t, ci])
                );
            }
        }
    }

    #[test]
    fn bf16_prec_tracks_f32_within_budget() {
        // 16 channels → two full 8-lane groups hit the bf16 kernel.
        let o = operands(24, 16, 6, 37);
        // Force the baseline to f32 so the budget holds even when the
        // whole suite runs under PEB_PREC=bf16.
        let want = peb_simd::with_prec(peb_simd::Prec::F32, || run(&o).value_clone());
        let got = peb_simd::with_prec(peb_simd::Prec::Bf16, || run(&o).value_clone());
        let scale = want.data().iter().fold(0f32, |m, v| m.max(v.abs()));
        for (w, g) in want.data().iter().zip(got.data()) {
            assert!((w - g).abs() <= scale * 0.02, "{w} vs {g}");
        }
        // Int8 is GEMM-only: the scan must silently stay f32 (bitwise).
        let int8 = peb_simd::with_prec(peb_simd::Prec::Int8, || run(&o).value_clone());
        for (w, g) in want.data().iter().zip(int8.data()) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn zero_delta_passes_skip_only() {
        let mut o = operands(4, 2, 2, 32);
        o.delta = Tensor::zeros(&[4, 2]);
        let y = run(&o).value_clone();
        // With Δ = 0 the state never moves from 0, so y = D ⊙ u.
        for t in 0..4 {
            for ci in 0..2 {
                let expect = o.d.data()[ci] * o.u.get(&[t, ci]);
                assert!((y.get(&[t, ci]) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn decays_remember_less_with_more_negative_a() {
        // An impulse at t=0 read out at t=T decays as exp(T·Δ·a).
        let l = 8;
        let mut o = operands(l, 1, 1, 33);
        o.u = Tensor::zeros(&[l, 1]);
        o.u.set(&[0, 0], 1.0);
        o.delta = Tensor::full(&[l, 1], 0.5);
        o.b = Tensor::ones(&[l, 1]);
        o.c = Tensor::ones(&[l, 1]);
        o.d = Tensor::zeros(&[1]);
        o.a = Tensor::from_vec(vec![-0.5], &[1, 1]).unwrap();
        let slow = run(&o).value_clone().get(&[l - 1, 0]);
        o.a = Tensor::from_vec(vec![-3.0], &[1, 1]).unwrap();
        let fast = run(&o).value_clone().get(&[l - 1, 0]);
        assert!(slow > fast, "slow {slow} fast {fast}");
        assert!(fast > 0.0);
    }

    /// Gradient check against finite differences for every operand.
    #[test]
    fn gradcheck_all_operands() {
        let o = operands(4, 2, 2, 34);
        let weights = {
            let mut rng = StdRng::seed_from_u64(99);
            Tensor::randn(&[4, 2], &mut rng)
        };
        // Build loss as weighted sum to get a non-trivial output seed.
        let loss_of =
            |u: &Tensor, delta: &Tensor, a: &Tensor, b: &Tensor, c: &Tensor, d: &Tensor| {
                selective_scan(
                    &Var::constant(u.clone()),
                    &Var::constant(delta.clone()),
                    &Var::constant(a.clone()),
                    &Var::constant(b.clone()),
                    &Var::constant(c.clone()),
                    &Var::constant(d.clone()),
                )
            };
        // Analytic gradients.
        let (u, delta, a, b, c, d) = (
            Var::parameter(o.u.clone()),
            Var::parameter(o.delta.clone()),
            Var::parameter(o.a.clone()),
            Var::parameter(o.b.clone()),
            Var::parameter(o.c.clone()),
            Var::parameter(o.d.clone()),
        );
        selective_scan(&u, &delta, &a, &b, &c, &d)
            .weighted_sum(&weights)
            .backward();
        let checks: Vec<(&str, Tensor, Tensor)> = vec![
            (
                "u",
                u.grad().unwrap(),
                numeric_gradient(
                    &o.u,
                    |v| {
                        loss_of(&v.value_clone(), &o.delta, &o.a, &o.b, &o.c, &o.d)
                            .weighted_sum(&weights)
                    },
                    1e-2,
                ),
            ),
            (
                "delta",
                delta.grad().unwrap(),
                numeric_gradient(
                    &o.delta,
                    |v| {
                        loss_of(&o.u, &v.value_clone(), &o.a, &o.b, &o.c, &o.d)
                            .weighted_sum(&weights)
                    },
                    1e-3,
                ),
            ),
            (
                "a",
                a.grad().unwrap(),
                numeric_gradient(
                    &o.a,
                    |v| {
                        loss_of(&o.u, &o.delta, &v.value_clone(), &o.b, &o.c, &o.d)
                            .weighted_sum(&weights)
                    },
                    1e-2,
                ),
            ),
            (
                "b",
                b.grad().unwrap(),
                numeric_gradient(
                    &o.b,
                    |v| {
                        loss_of(&o.u, &o.delta, &o.a, &v.value_clone(), &o.c, &o.d)
                            .weighted_sum(&weights)
                    },
                    1e-2,
                ),
            ),
            (
                "c",
                c.grad().unwrap(),
                numeric_gradient(
                    &o.c,
                    |v| {
                        loss_of(&o.u, &o.delta, &o.a, &o.b, &v.value_clone(), &o.d)
                            .weighted_sum(&weights)
                    },
                    1e-2,
                ),
            ),
            (
                "d",
                d.grad().unwrap(),
                numeric_gradient(
                    &o.d,
                    |v| {
                        loss_of(&o.u, &o.delta, &o.a, &o.b, &o.c, &v.value_clone())
                            .weighted_sum(&weights)
                    },
                    1e-2,
                ),
            ),
        ];
        for (name, analytic, numeric) in checks {
            let mut max_rel = 0f32;
            for (av, nv) in analytic.data().iter().zip(numeric.data()) {
                max_rel = max_rel.max((av - nv).abs() / 1f32.max(av.abs()).max(nv.abs()));
            }
            assert!(max_rel < 3e-2, "{name}: rel err {max_rel}");
        }
    }

    #[test]
    fn long_sequence_stays_finite() {
        let o = operands(512, 4, 4, 35);
        let y = run(&o).value_clone();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}

/// Chunked evaluation of the same selective-scan recurrence.
///
/// Processes the sequence in fixed-size chunks, carrying only the final
/// state of each chunk across the boundary — the structure used by
/// hardware-aware Mamba kernels to bound working-set size (each chunk's
/// trajectory fits in fast memory). On this CPU implementation it is a
/// *fidelity* reference, not a speedup: the test suite asserts it agrees
/// with [`selective_scan`] to round-off, and the Criterion benches
/// compare their costs.
///
/// # Panics
///
/// Panics on inconsistent operand shapes or `chunk == 0`.
pub fn selective_scan_chunked(
    u: &Var,
    delta: &Var,
    a: &Var,
    b: &Var,
    c: &Var,
    d: &Var,
    chunk: usize,
) -> Var {
    assert!(chunk > 0, "chunk size must be positive");
    let (l, ch) = {
        let s = u.shape();
        assert_eq!(s.len(), 2, "u must be [L, C]");
        (s[0], s[1])
    };
    let _span = peb_obs::span("scan.chunked_fwd");
    peb_obs::count(peb_obs::Counter::ScanLanes, ch as u64);
    let n = a.shape()[1];
    let out = {
        let (ud, dd, ad, bd, cd, skip) = (
            u.value_clone(),
            delta.value_clone(),
            a.value_clone(),
            b.value_clone(),
            c.value_clone(),
            d.value_clone(),
        );
        let mut y = Tensor::zeros(&[l, ch]);
        // Channel lanes fan out as in `scan_forward`; the time-chunk loop
        // (the memory-bounding structure) runs per lane. With no stored
        // trajectory the chunk boundaries change no operation, so full
        // 8-lane groups run the vectorized kernel over the whole range —
        // value-identical to the chunk-structured loop, which the ragged
        // tail lanes keep.
        let yslots = peb_par::UnsafeSlice::new(y.data_mut());
        let lane_cost = 12 * (l as u64) * (n as u64);
        let group_chunk = ch.div_ceil(8).next_multiple_of(8);
        // Same precision capture as `scan_forward`: latched here on the
        // submitting thread, bf16 halves the per-group hot state.
        let bf16 = peb_simd::prec() == peb_simd::Prec::Bf16;
        peb_par::parallel_chunks_cost(ch, group_chunk, lane_cost, |lanes| {
            let mut h = peb_pool::PoolBuf::<f32>::zeroed(n * 8);
            let mut apack = peb_pool::PoolBuf::<f32>::cleared(n * 8);
            let mut h16 = peb_pool::PoolBuf::<u16>::zeroed(if bf16 { n * 8 } else { 0 });
            let mut apack16 = peb_pool::PoolBuf::<u16>::cleared(if bf16 { n * 8 } else { 0 });
            let mut ci0 = lanes.start;
            while ci0 + 8 <= lanes.end {
                // SAFETY: the group owns y columns ci0..ci0+8; groups are
                // disjoint (chunks are 8-aligned).
                if bf16 {
                    peb_simd::scan::pack_a_lanes8_bf16(ad.data(), n, ci0, &mut apack16);
                    h16.fill(0);
                    unsafe {
                        peb_simd::scan::scan_forward_lanes8_bf16(
                            ud.data(),
                            dd.data(),
                            &apack16,
                            bd.data(),
                            cd.data(),
                            &skip.data()[ci0..],
                            &mut h16,
                            &yslots,
                            None,
                            l,
                            ch,
                            n,
                            ci0,
                        );
                    }
                    ci0 += 8;
                    continue;
                }
                peb_simd::scan::pack_a_lanes8(ad.data(), n, ci0, &mut apack);
                h.fill(0.0);
                unsafe {
                    peb_simd::scan::scan_forward_lanes8(
                        ud.data(),
                        dd.data(),
                        &apack,
                        bd.data(),
                        cd.data(),
                        &skip.data()[ci0..],
                        &mut h,
                        &yslots,
                        None,
                        l,
                        ch,
                        n,
                        ci0,
                    );
                }
                ci0 += 8;
            }
            for ci in ci0..lanes.end {
                let h = &mut h[..n];
                h.fill(0.0);
                let mut t0 = 0usize;
                while t0 < l {
                    let t1 = (t0 + chunk).min(l);
                    // Within-chunk recurrence starting from the carried
                    // state.
                    for t in t0..t1 {
                        let dt = dd.data()[t * ch + ci];
                        let ut = ud.data()[t * ch + ci];
                        let mut acc = 0f32;
                        for (ni, hv) in h.iter_mut().enumerate() {
                            let e = (dt * ad.data()[ci * n + ni]).exp();
                            *hv = e * *hv + dt * ut * bd.data()[t * n + ni];
                            acc += cd.data()[t * n + ni] * *hv;
                        }
                        // SAFETY: lane `ci` owns y[t·ch+ci] for every t.
                        unsafe { *yslots.get_mut(t * ch + ci) = acc + skip.data()[ci] * ut };
                    }
                    t0 = t1;
                }
            }
        });
        y
    };
    // The chunked forward is value-identical to the sequential scan, so
    // reuse its exact backward by re-running the fused op's gradient path.
    let (uc, dc, ac, bc, cc, ddc) = (
        u.clone(),
        delta.clone(),
        a.clone(),
        b.clone(),
        c.clone(),
        d.clone(),
    );
    Var::from_op(
        out,
        vec![
            u.clone(),
            delta.clone(),
            a.clone(),
            b.clone(),
            c.clone(),
            d.clone(),
        ],
        move |g| {
            let lv = uc.shape()[0];
            let chv = uc.shape()[1];
            let nv = ac.shape()[1];
            let (_, h_traj) = scan_forward(
                &uc.value(),
                &dc.value(),
                &ac.value(),
                &bc.value(),
                &cc.value(),
                &ddc.value(),
                lv,
                chv,
                nv,
            );
            scan_backward(
                g,
                &uc.value(),
                &dc.value(),
                &ac.value(),
                &bc.value(),
                &cc.value(),
                &ddc.value(),
                &h_traj,
                lv,
                chv,
                nv,
            )
            .into_iter()
            .map(Some)
            .collect()
        },
    )
}

#[cfg(test)]
mod chunked_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn operands(l: usize, ch: usize, n: usize, seed: u64) -> Vec<Var> {
        let mut rng = StdRng::seed_from_u64(seed);
        vec![
            Var::parameter(Tensor::randn(&[l, ch], &mut rng)),
            Var::constant(Tensor::rand_uniform(&[l, ch], 0.05, 0.5, &mut rng)),
            Var::constant(Tensor::rand_uniform(&[ch, n], -1.5, -0.2, &mut rng)),
            Var::constant(Tensor::randn(&[l, n], &mut rng)),
            Var::constant(Tensor::randn(&[l, n], &mut rng)),
            Var::constant(Tensor::randn(&[ch], &mut rng)),
        ]
    }

    #[test]
    fn chunked_matches_sequential_for_all_chunk_sizes() {
        let o = operands(13, 2, 3, 81);
        let reference = selective_scan(&o[0], &o[1], &o[2], &o[3], &o[4], &o[5]).value_clone();
        for chunk in [1usize, 2, 4, 5, 13, 64] {
            let y = selective_scan_chunked(&o[0], &o[1], &o[2], &o[3], &o[4], &o[5], chunk)
                .value_clone();
            assert!(
                y.approx_eq(&reference, 1e-5),
                "chunk {chunk} diverges: {:?}",
                y.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn chunked_gradient_matches_sequential() {
        let o = operands(9, 2, 2, 82);
        selective_scan(&o[0], &o[1], &o[2], &o[3], &o[4], &o[5])
            .square()
            .sum()
            .backward();
        let g_seq = o[0].grad().unwrap();
        o[0].zero_grad();
        selective_scan_chunked(&o[0], &o[1], &o[2], &o[3], &o[4], &o[5], 4)
            .square()
            .sum()
            .backward();
        let g_chunk = o[0].grad().unwrap();
        assert!(g_seq.approx_eq(&g_chunk, 1e-4));
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn rejects_zero_chunk() {
        let o = operands(4, 1, 1, 83);
        selective_scan_chunked(&o[0], &o[1], &o[2], &o[3], &o[4], &o[5], 0);
    }
}
