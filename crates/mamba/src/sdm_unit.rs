//! The spatial-depthwise Mamba-based attention unit (paper Fig. 5a).
//!
//! Pipeline per Fig. 5(a): the normalised sequence is linearly projected
//! into a content path `x` and a gate path `z`; each scan direction runs
//! `Conv1d → SiLU → selective SSM` over its own token ordering; the
//! direction outputs are gated by `SiLU(z)` and summed; a final linear
//! projection and a kernel-3 depthwise 3-D convolution refine the result.

use rand::Rng;

use peb_nn::{DwConv3d, LayerNorm, Linear, Parameterized};
use peb_tensor::Var;

use crate::conv1d::CausalDwConv1d;
use crate::directions::{gather_rows, ScanDirection, ScanOrder};
use crate::ssm::SsmBlock;

/// SDM unit hyper-parameters.
#[derive(Debug, Clone)]
pub struct SdmUnitConfig {
    /// Token feature dimension `C_i` of the host encoder stage.
    pub dim: usize,
    /// Hidden dimension `C_h` of the content/gate paths.
    pub hidden: usize,
    /// SSM state dimension `N`.
    pub state: usize,
    /// Depthwise causal Conv1d kernel along each scan.
    pub conv_kernel: usize,
    /// Active scan directions (all three for the full model; forward +
    /// backward for the 2-D-scan ablation of Table III).
    pub directions: Vec<ScanDirection>,
    /// Whether to apply the final depthwise 3-D convolution.
    pub dw_refine: bool,
}

impl SdmUnitConfig {
    /// Full three-direction configuration.
    pub fn new(dim: usize, hidden: usize, state: usize) -> Self {
        SdmUnitConfig {
            dim,
            hidden,
            state,
            conv_kernel: 3,
            directions: ScanDirection::ALL.to_vec(),
            dw_refine: true,
        }
    }

    /// The Table III "2-D Scan" ablation (depth-forward/backward only).
    pub fn bidirectional_2d(mut self) -> Self {
        self.directions = ScanDirection::BIDIRECTIONAL_2D.to_vec();
        self
    }
}

struct Branch {
    direction: ScanDirection,
    conv: CausalDwConv1d,
    ssm: SsmBlock,
}

/// The spatial-depthwise Mamba attention unit.
pub struct SdmUnit {
    in_proj_x: Linear,
    in_proj_z: Linear,
    branches: Vec<Branch>,
    /// Normalises the summed, gated branch outputs before projection —
    /// the selective scan accumulates state over long sequences, and
    /// without this the unit's output variance grows with both sequence
    /// length and direction count.
    combine_norm: LayerNorm,
    out_proj: Linear,
    dw: Option<DwConv3d>,
    config: SdmUnitConfig,
}

impl SdmUnit {
    /// Creates a unit from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if no scan direction is configured.
    pub fn new(config: SdmUnitConfig, rng: &mut impl Rng) -> Self {
        assert!(
            !config.directions.is_empty(),
            "SdmUnit needs at least one scan direction"
        );
        let branches = config
            .directions
            .iter()
            .map(|&direction| Branch {
                direction,
                conv: CausalDwConv1d::new(config.hidden, config.conv_kernel, rng),
                ssm: SsmBlock::new(config.hidden, config.state, rng),
            })
            .collect();
        SdmUnit {
            in_proj_x: Linear::new(config.dim, config.hidden, true, rng),
            in_proj_z: Linear::new(config.dim, config.hidden, true, rng),
            branches,
            combine_norm: LayerNorm::new(config.hidden),
            out_proj: Linear::new(config.hidden, config.dim, true, rng),
            dw: config.dw_refine.then(|| DwConv3d::new(config.dim, 3, rng)),
            config,
        }
    }

    /// Configured hyper-parameters.
    pub fn config(&self) -> &SdmUnitConfig {
        &self.config
    }

    /// Applies the unit to an `[L, C]` sequence whose tokens are the
    /// depth-major flattening of a `(D, H, W)` volume.
    ///
    /// # Panics
    ///
    /// Panics if `L ≠ D·H·W` or `C` differs from the configured dimension.
    pub fn forward(&self, x: &Var, dims: (usize, usize, usize)) -> Var {
        let s = x.shape();
        let (d, h, w) = dims;
        assert_eq!(s[0], d * h * w, "token count must equal D·H·W");
        assert_eq!(s[1], self.config.dim, "SdmUnit dim mismatch");
        let xs = self.in_proj_x.forward(x);
        let gate = self.in_proj_z.forward(x).silu();
        let mut acc: Option<Var> = None;
        for branch in &self.branches {
            let order = ScanOrder::new(branch.direction, dims);
            let reordered = gather_rows(&xs, &order.indices);
            let driven = branch.conv.forward(&reordered).silu();
            let scanned = branch.ssm.forward(&driven);
            let canonical = gather_rows(&scanned, &order.inverse);
            let gated = canonical.mul(&gate);
            acc = Some(match acc {
                Some(prev) => prev.add(&gated),
                None => gated,
            });
        }
        let combined = self
            .combine_norm
            .forward(&acc.expect("at least one direction"));
        let projected = self.out_proj.forward(&combined);
        match &self.dw {
            Some(dw) => {
                // [L, C] → [C, D, H, W] → DW-Conv3d → back.
                let vol = projected
                    .permute(&[1, 0])
                    .reshape(&[self.config.dim, d, h, w]);
                let refined = dw.forward(&vol);
                refined
                    .reshape(&[self.config.dim, d * h * w])
                    .permute(&[1, 0])
            }
            None => projected,
        }
    }
}

impl Parameterized for SdmUnit {
    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.in_proj_x.parameters());
        p.extend(self.in_proj_z.parameters());
        for b in &self.branches {
            p.extend(b.conv.parameters());
            p.extend(b.ssm.parameters());
        }
        p.extend(self.combine_norm.parameters());
        p.extend(self.out_proj.parameters());
        if let Some(dw) = &self.dw {
            p.extend(dw.parameters());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit(dirs: usize, seed: u64) -> SdmUnit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = SdmUnitConfig::new(4, 8, 4);
        if dirs == 2 {
            cfg = cfg.bidirectional_2d();
        }
        SdmUnit::new(cfg, &mut rng)
    }

    #[test]
    fn forward_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(60);
        let u = unit(3, 60);
        let x = Var::constant(Tensor::randn(&[2 * 3 * 4, 4], &mut rng));
        let y = u.forward(&x, (2, 3, 4));
        assert_eq!(y.shape(), vec![24, 4]);
        assert!(y.value().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ablated_unit_has_fewer_parameters() {
        let full = unit(3, 61);
        let bi = unit(2, 61);
        assert!(full.parameter_count() > bi.parameter_count());
        assert_eq!(full.branches.len(), 3);
        assert_eq!(bi.branches.len(), 2);
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut rng = StdRng::seed_from_u64(62);
        let u = unit(3, 62);
        let x = Var::constant(Tensor::randn(&[8, 4], &mut rng));
        u.forward(&x, (2, 2, 2)).square().sum().backward();
        for (i, p) in u.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing gradient");
        }
    }

    #[test]
    fn whole_unit_gradcheck() {
        // Seed picked for a numerically well-conditioned finite-difference
        // point; the scan recurrence makes some inits too stiff for h=1e-2.
        let mut rng = StdRng::seed_from_u64(65);
        let mut cfg = SdmUnitConfig::new(2, 4, 2);
        cfg.dw_refine = false; // keep the finite-difference cost low
        let u = SdmUnit::new(cfg, &mut rng);
        let x0 = Tensor::randn(&[8, 2], &mut rng);
        // Finite differences need the full-precision forward: bf16
        // storage noise (~2^-8 relative) swamps an h=1e-2 stencil.
        let r = peb_simd::with_prec(peb_simd::Prec::F32, || {
            peb_tensor::check_gradients(
                &Var::parameter(x0),
                |v| u.forward(v, (2, 2, 2)).square().sum(),
                1e-2,
            )
        });
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    fn spatial_scan_sees_depth_structure_2d_scan_order_differs() {
        // The same input through the full unit vs the 2-D-scan unit (same
        // seed so shared components initialise identically in count) must
        // differ: the spatial branch contributes.
        let mut rng = StdRng::seed_from_u64(64);
        let x = Tensor::randn(&[12, 4], &mut rng);
        let full = unit(3, 99);
        let y_full = full.forward(&Var::constant(x.clone()), (3, 2, 2));
        let bi = unit(2, 99);
        let y_bi = bi.forward(&Var::constant(x), (3, 2, 2));
        assert!(y_full.value().max_abs_diff(&y_bi.value()) > 1e-5);
    }

    #[test]
    #[should_panic(expected = "token count")]
    fn rejects_dim_mismatch() {
        let u = unit(3, 65);
        let x = Var::constant(Tensor::ones(&[10, 4]));
        u.forward(&x, (2, 2, 2)); // 10 ≠ 8
    }
}
