//! Causal depthwise 1-D convolution over token sequences.
//!
//! Mamba applies a short causal convolution along the scan direction
//! before the SSM; causality matters because each scan direction defines
//! its own notion of "past".

use rand::Rng;

use peb_nn::{kaiming_uniform, Parameterized};
use peb_tensor::{Tensor, Var};

/// Depthwise causal convolution on `[L, C]` sequences: output token `t`
/// sees tokens `t−k+1 ..= t` of its own channel.
#[derive(Debug, Clone)]
pub struct CausalDwConv1d {
    weight: Var, // [C, k]
    bias: Var,   // [C]
    channels: usize,
    kernel: usize,
}

impl CausalDwConv1d {
    /// Creates a layer.
    pub fn new(channels: usize, kernel: usize, rng: &mut impl Rng) -> Self {
        CausalDwConv1d {
            weight: Var::parameter(kaiming_uniform(&[channels, kernel], kernel, rng)),
            bias: Var::parameter(Tensor::zeros(&[channels])),
            channels,
            kernel,
        }
    }

    /// Applies the convolution, preserving the `[L, C]` shape.
    ///
    /// # Panics
    ///
    /// Panics if the channel count mismatches.
    pub fn forward(&self, x: &Var) -> Var {
        let s = x.shape();
        assert_eq!(s.len(), 2, "CausalDwConv1d expects [L, C]");
        assert_eq!(s[1], self.channels, "channel mismatch");
        let (l, c) = (s[0], s[1]);
        let k = self.kernel;
        let out = {
            let xv = x.value();
            let wv = self.weight.value();
            let bv = self.bias.value();
            let mut out = Tensor::zeros(&[l, c]);
            let od = out.data_mut();
            for t in 0..l {
                for ci in 0..c {
                    let mut acc = bv.data()[ci];
                    for ki in 0..k {
                        // Kernel tap ki reads token t − (k − 1 − ki).
                        let off = k - 1 - ki;
                        if t >= off {
                            acc += wv.data()[ci * k + ki] * xv.data()[(t - off) * c + ci];
                        }
                    }
                    od[t * c + ci] = acc;
                }
            }
            out
        };
        let xc = x.clone();
        let wc = self.weight.clone();
        Var::from_op(
            out,
            vec![x.clone(), self.weight.clone(), self.bias.clone()],
            move |g| {
                let xv = xc.value();
                let wv = wc.value();
                let mut dx = Tensor::zeros(&[l, c]);
                let mut dw = Tensor::zeros(&[c, k]);
                let mut db = Tensor::zeros(&[c]);
                {
                    let gd = g.data();
                    let dxd = dx.data_mut();
                    let dwd = dw.data_mut();
                    let dbd = db.data_mut();
                    for t in 0..l {
                        for ci in 0..c {
                            let gv = gd[t * c + ci];
                            if gv == 0.0 {
                                continue;
                            }
                            dbd[ci] += gv;
                            for ki in 0..k {
                                let off = k - 1 - ki;
                                if t >= off {
                                    dxd[(t - off) * c + ci] += gv * wv.data()[ci * k + ki];
                                    dwd[ci * k + ki] += gv * xv.data()[(t - off) * c + ci];
                                }
                            }
                        }
                    }
                }
                vec![Some(dx), Some(dw), Some(db)]
            },
        )
    }
}

impl Parameterized for CausalDwConv1d {
    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_tensor::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_is_noop() {
        let mut rng = StdRng::seed_from_u64(40);
        let conv = CausalDwConv1d::new(2, 3, &mut rng);
        // Weight [.., .., 1] selects the current token.
        conv.weight
            .set_value(Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0], &[2, 3]).unwrap());
        let x = Tensor::randn(&[5, 2], &mut rng);
        let y = conv.forward(&Var::constant(x.clone())).value_clone();
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn is_causal() {
        let mut rng = StdRng::seed_from_u64(41);
        let conv = CausalDwConv1d::new(1, 4, &mut rng);
        let mut a = Tensor::randn(&[6, 1], &mut rng);
        let ya = conv.forward(&Var::constant(a.clone())).value_clone();
        // Perturb the last token: outputs before it must not change.
        a.data_mut()[5] += 10.0;
        let yb = conv.forward(&Var::constant(a)).value_clone();
        for t in 0..5 {
            assert_eq!(ya.get(&[t, 0]), yb.get(&[t, 0]), "leak at t={t}");
        }
        assert_ne!(ya.get(&[5, 0]), yb.get(&[5, 0]));
    }

    #[test]
    fn gradcheck() {
        let mut rng = StdRng::seed_from_u64(42);
        let conv = CausalDwConv1d::new(2, 3, &mut rng);
        let x0 = Tensor::randn(&[4, 2], &mut rng);
        let r = check_gradients(
            &Var::parameter(x0),
            |v| conv.forward(v).square().sum(),
            1e-2,
        );
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    fn weight_gradient_flows() {
        let mut rng = StdRng::seed_from_u64(43);
        let conv = CausalDwConv1d::new(2, 3, &mut rng);
        let x = Var::constant(Tensor::randn(&[4, 2], &mut rng));
        conv.forward(&x).square().sum().backward();
        assert!(conv.weight.grad().is_some());
        assert!(conv.bias.grad().is_some());
    }
}
