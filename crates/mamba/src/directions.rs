//! The three PEB scan orderings of Fig. 5(b).
//!
//! A `[C, D, H, W]` volume flattened depth-major gives the canonical token
//! order `t = (d·H + h)·W + w`. The three scans re-order those tokens:
//!
//! * **Depth-forward** — canonical order: the entire shallow level is
//!   processed before deeper levels.
//! * **Depth-backward** — the exact reverse.
//! * **Spatial** — depth-innermost order `t = (h·W + w)·D + d`: for each
//!   spatial position, all depth levels are visited consecutively, so the
//!   SSM state mixes information *along z* at a fixed (x, y).

use peb_tensor::{Tensor, Var};

/// One of the three selective-scan directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanDirection {
    /// Depth-innermost traversal (per-position z scans).
    Spatial,
    /// Shallow-to-deep level-major traversal.
    DepthForward,
    /// Deep-to-shallow level-major traversal.
    DepthBackward,
}

impl ScanDirection {
    /// All three directions in the paper's order.
    pub const ALL: [ScanDirection; 3] = [
        ScanDirection::Spatial,
        ScanDirection::DepthForward,
        ScanDirection::DepthBackward,
    ];

    /// The 2-D ablation of Table III: depth-forward and depth-backward
    /// only (adapted from Vision Mamba's bidirectional scan).
    pub const BIDIRECTIONAL_2D: [ScanDirection; 2] =
        [ScanDirection::DepthForward, ScanDirection::DepthBackward];
}

/// A precomputed token permutation and its inverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOrder {
    /// `indices[t]` is the canonical token placed at scan position `t`.
    pub indices: Vec<usize>,
    /// `inverse[i]` is the scan position of canonical token `i`.
    pub inverse: Vec<usize>,
}

impl ScanOrder {
    /// Builds the ordering for a direction on a `(D, H, W)` volume.
    pub fn new(direction: ScanDirection, dims: (usize, usize, usize)) -> Self {
        let (d, h, w) = dims;
        let len = d * h * w;
        let mut indices = Vec::with_capacity(len);
        match direction {
            ScanDirection::DepthForward => indices.extend(0..len),
            ScanDirection::DepthBackward => indices.extend((0..len).rev()),
            ScanDirection::Spatial => {
                for hy in 0..h {
                    for wx in 0..w {
                        for dz in 0..d {
                            indices.push((dz * h + hy) * w + wx);
                        }
                    }
                }
            }
        }
        let mut inverse = vec![0usize; len];
        for (t, &src) in indices.iter().enumerate() {
            inverse[src] = t;
        }
        ScanOrder { indices, inverse }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Differentiable row gather: `y[t, :] = x[idx[t], :]` for an `[L, C]`
/// sequence. The backward pass scatters gradients back (exact adjoint;
/// duplicate indices accumulate).
///
/// # Panics
///
/// Panics if `x` is not rank-2 or an index is out of range.
pub fn gather_rows(x: &Var, idx: &[usize]) -> Var {
    let s = x.shape();
    assert_eq!(s.len(), 2, "gather_rows expects [L, C]");
    let (l, c) = (s[0], s[1]);
    let out = {
        let xv = x.value();
        let mut out = Tensor::zeros(&[idx.len(), c]);
        let od = out.data_mut();
        for (t, &src) in idx.iter().enumerate() {
            assert!(src < l, "gather index {src} out of range {l}");
            od[t * c..(t + 1) * c].copy_from_slice(&xv.data()[src * c..(src + 1) * c]);
        }
        out
    };
    let idx = idx.to_vec();
    Var::from_op(out, vec![x.clone()], move |g| {
        let mut dx = Tensor::zeros(&[l, c]);
        let dxd = dx.data_mut();
        let gd = g.data();
        for (t, &src) in idx.iter().enumerate() {
            for ci in 0..c {
                dxd[src * c + ci] += gd[t * c + ci];
            }
        }
        vec![Some(dx)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_are_permutations() {
        for dir in ScanDirection::ALL {
            let order = ScanOrder::new(dir, (3, 4, 5));
            let mut seen = [false; 60];
            for &i in &order.indices {
                assert!(!seen[i], "{dir:?} repeats {i}");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
            // Inverse really inverts.
            for (t, &src) in order.indices.iter().enumerate() {
                assert_eq!(order.inverse[src], t);
            }
        }
    }

    #[test]
    fn depth_forward_is_identity() {
        let order = ScanOrder::new(ScanDirection::DepthForward, (2, 2, 2));
        assert_eq!(order.indices, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn depth_backward_reverses() {
        let order = ScanOrder::new(ScanDirection::DepthBackward, (2, 2, 2));
        assert_eq!(order.indices, (0..8).rev().collect::<Vec<_>>());
    }

    #[test]
    fn spatial_groups_depth_contiguously() {
        let (d, h, w) = (3, 2, 2);
        let order = ScanOrder::new(ScanDirection::Spatial, (d, h, w));
        // First d tokens are the full depth column at (h=0, w=0).
        for dz in 0..d {
            assert_eq!(order.indices[dz], dz * h * w);
        }
        // Next d tokens are the column at (h=0, w=1).
        for dz in 0..d {
            assert_eq!(order.indices[d + dz], dz * h * w + 1);
        }
    }

    #[test]
    fn gather_roundtrip_and_gradient() {
        let x =
            Var::parameter(Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 2]).unwrap());
        let order = ScanOrder::new(ScanDirection::DepthBackward, (4, 1, 1));
        let y = gather_rows(&x, &order.indices);
        assert_eq!(y.value().data()[0..2], [6.0, 7.0]);
        // Gather then inverse-gather restores the sequence.
        let back = gather_rows(&y, &order.inverse);
        assert!(back.value().approx_eq(&x.value(), 0.0));
        // Gradient of sum of first gathered row hits source row 3.
        x.zero_grad();
        y.slice_axis(0, 0, 1).sum().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
    }
}
