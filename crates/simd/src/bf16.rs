//! bf16 storage: round-to-nearest-even `f32 → bf16` narrowing, exact
//! `bf16 → f32` widening, and the 8-lane widen-load/narrow-store
//! backends the reduced-precision kernels are generic over.
//!
//! bf16 is the upper 16 bits of an IEEE-754 `f32` (1 sign, 8 exponent,
//! 7 mantissa bits), stored here as a plain `u16`. Widening is exact —
//! shift the bits back up — so a bf16 operand participates in f32
//! arithmetic with **zero** additional error beyond the one narrowing
//! rounding. Narrowing uses round-to-nearest-even on the discarded 16
//! mantissa bits, the convention used by every bf16 hardware
//! implementation; NaNs are quieted (the payload may change, NaN-ness
//! never does) and infinities/zeros pass through exactly.
//!
//! # Backend classes
//!
//! [`ScalarBf16x8`] and [`AvxBf16x8`] perform *identical* widening
//! (both are the exact bit shift) and identical RNE narrowing, so —
//! unlike the f32 kernels' scalar/FMA split — the conversion layer
//! itself never contributes a cross-backend difference. Any bf16-mode
//! divergence between dispatch levels comes from the f32 arithmetic on
//! the widened values (FMA fusion, polynomial `exp`), bounded by the
//! same ULP budgets as the f32 kernels.

use crate::Simd8;

/// Narrows an `f32` to bf16 with round-to-nearest-even.
#[inline(always)]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Quiet NaN with the sign preserved; never round a NaN into Inf.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // RNE on the low 16 bits: add 0x7FFF plus the LSB of the kept part.
    let lsb = (bits >> 16) & 1;
    ((bits.wrapping_add(0x7FFF + lsb)) >> 16) as u16
}

/// Widens a bf16 to `f32` (exact).
#[inline(always)]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Narrows a slice, appending to `dst` (cleared first).
pub fn narrow_slice(src: &[f32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.reserve(src.len());
    dst.extend(src.iter().map(|&x| f32_to_bf16(x)));
}

/// Widens a slice, appending to `dst` (cleared first).
pub fn widen_slice(src: &[u16], dst: &mut Vec<f32>) {
    dst.clear();
    dst.reserve(src.len());
    dst.extend(src.iter().map(|&b| bf16_to_f32(b)));
}

/// Eight bf16 lanes bridging storage (`u16`) and arithmetic
/// ([`Simd8`]): widen eight stored values into an f32 vector, narrow an
/// f32 vector back. Implemented by [`ScalarBf16x8`] (portable) and —
/// on x86_64 — [`AvxBf16x8`] (AVX2 `cvtepu16/slli` widen, vectorised
/// RNE narrow). Kernels written against this trait keep all arithmetic
/// in the associated [`Simd8`] type, so "bf16 mode" changes only what
/// memory holds.
pub trait Bf16x8: Copy {
    /// The f32 vector type arithmetic runs in.
    type F: Simd8;
    /// Widens `src[0..8]` into f32 lanes (exact).
    fn widen_load(src: &[u16]) -> Self::F;
    /// Narrows lanes into `dst[0..8]` with round-to-nearest-even.
    fn narrow_store(v: Self::F, dst: &mut [u16]);
}

/// Portable bf16 backend over [`crate::ScalarX8`].
#[derive(Debug, Clone, Copy)]
pub struct ScalarBf16x8;

impl Bf16x8 for ScalarBf16x8 {
    type F = crate::ScalarX8;
    #[inline(always)]
    fn widen_load(src: &[u16]) -> Self::F {
        Simd8::from_array(std::array::from_fn(|i| bf16_to_f32(src[i])))
    }
    #[inline(always)]
    fn narrow_store(v: Self::F, dst: &mut [u16]) {
        let a = v.to_array();
        for (d, x) in dst[..8].iter_mut().zip(a) {
            *d = f32_to_bf16(x);
        }
    }
}

/// AVX2 bf16 backend over [`crate::AvxX8`].
///
/// # Soundness
///
/// Same contract as [`crate::AvxX8`]: only reached through
/// `#[target_feature(enable = "avx2,fma")]` wrappers after runtime
/// detection.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct AvxBf16x8;

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{AvxBf16x8, Bf16x8};
    use crate::AvxX8;
    use std::arch::x86_64::*;

    impl Bf16x8 for AvxBf16x8 {
        type F = AvxX8;

        #[inline(always)]
        fn widen_load(src: &[u16]) -> AvxX8 {
            debug_assert!(src.len() >= 8);
            unsafe {
                let half = _mm_loadu_si128(src.as_ptr() as *const __m128i);
                let wide = _mm256_cvtepu16_epi32(half);
                AvxX8::from_raw(_mm256_castsi256_ps(_mm256_slli_epi32(wide, 16)))
            }
        }

        #[inline(always)]
        fn narrow_store(v: AvxX8, dst: &mut [u16]) {
            debug_assert!(dst.len() >= 8);
            unsafe {
                let bits = _mm256_castps_si256(v.raw());
                // RNE: bias = 0x7FFF + LSB of the kept half.
                let lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(1));
                let biased =
                    _mm256_add_epi32(bits, _mm256_add_epi32(lsb, _mm256_set1_epi32(0x7FFF)));
                let rounded = _mm256_srli_epi32(biased, 16);
                // NaN lanes bypass the biased add (it could carry into
                // Inf): quiet the truncated NaN instead.
                let nan = _mm256_castps_si256(_mm256_cmp_ps(v.raw(), v.raw(), _CMP_UNORD_Q));
                let quiet = _mm256_or_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(0x0040));
                let out32 = _mm256_blendv_epi8(rounded, quiet, nan);
                // Pack the 8 low u16s of the 32-bit lanes into 128 bits.
                // packus saturates on values above u16::MAX, so mask to
                // the low halves first (they are already ≤ 0xFFFF after
                // the shift, but the NaN-quiet path keeps this explicit).
                let masked = _mm256_and_si256(out32, _mm256_set1_epi32(0xFFFF));
                let packed = _mm256_packus_epi32(masked, masked);
                let packed = _mm256_permute4x64_epi64(packed, 0b00_00_10_00);
                _mm_storeu_si128(
                    dst.as_mut_ptr() as *mut __m128i,
                    _mm256_castsi256_si128(packed),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_is_exact_and_narrow_roundtrips_bf16_values() {
        for bits in [0u16, 0x3F80, 0xBF80, 0x7F80, 0xFF80, 0x0001, 0x4049] {
            let f = bf16_to_f32(bits);
            assert_eq!(f32_to_bf16(f), bits, "roundtrip of {bits:#06x}");
        }
        assert_eq!(bf16_to_f32(0x3F80), 1.0);
        assert_eq!(bf16_to_f32(0xC000), -2.0);
        assert_eq!(bf16_to_f32(0x7F80), f32::INFINITY);
    }

    #[test]
    fn narrow_is_round_to_nearest_even() {
        // 1.0 + half an ulp of bf16: ties to even (stay at 1.0).
        let tie = f32::from_bits(0x3F80_8000);
        assert_eq!(f32_to_bf16(tie), 0x3F80);
        // Just above the tie rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(f32_to_bf16(above), 0x3F81);
        // Odd-kept tie rounds up to even.
        let odd_tie = f32::from_bits(0x3F81_8000);
        assert_eq!(f32_to_bf16(odd_tie), 0x3F82);
        // Just below the tie rounds down.
        let below = f32::from_bits(0x3F80_7FFF);
        assert_eq!(f32_to_bf16(below), 0x3F80);
    }

    #[test]
    fn narrow_relative_error_is_bounded() {
        // One rounding: |x̂ − x| ≤ 2⁻⁸·|x| for normal values.
        for i in 0..10_000u32 {
            let x = (i as f32 * 0.37 + 0.001) * if i % 2 == 0 { 1.0 } else { -1.0 };
            let back = bf16_to_f32(f32_to_bf16(x));
            assert!((back - x).abs() <= x.abs() * (1.0 / 256.0), "{x} → {back}");
        }
    }

    #[test]
    fn nan_and_inf_handling() {
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(
            bf16_to_f32(f32_to_bf16(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        // Values that would overflow bf16's (same) exponent range stay
        // finite-or-inf exactly as f32 would round them: f32::MAX rounds
        // up to bf16 infinity under RNE.
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::MAX)), f32::INFINITY);
    }

    #[test]
    fn scalar_lane_backend_matches_scalar_functions() {
        let xs: [f32; 8] = [
            1.0,
            -2.5,
            std::f32::consts::PI,
            1e-8,
            -1e8,
            0.0,
            -0.0,
            255.4,
        ];
        let mut stored = [0u16; 8];
        let v = <ScalarBf16x8 as Bf16x8>::F::from_array(xs);
        ScalarBf16x8::narrow_store(v, &mut stored);
        for (x, s) in xs.iter().zip(stored) {
            assert_eq!(s, f32_to_bf16(*x));
        }
        let widened = ScalarBf16x8::widen_load(&stored).to_array();
        for (w, s) in widened.iter().zip(stored) {
            assert_eq!(w.to_bits(), bf16_to_f32(s).to_bits());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_backend_matches_scalar_backend_bitwise() {
        if !crate::detected() {
            return;
        }
        #[target_feature(enable = "avx2,fma")]
        unsafe fn roundtrip(xs: &[f32; 8]) -> ([u16; 8], [f32; 8]) {
            let v = <AvxBf16x8 as Bf16x8>::F::from_array(*xs);
            let mut stored = [0u16; 8];
            AvxBf16x8::narrow_store(v, &mut stored);
            let widened = AvxBf16x8::widen_load(&stored).to_array();
            (stored, widened)
        }
        let cases: [[f32; 8]; 3] = [
            [
                1.0,
                -2.5,
                std::f32::consts::PI,
                1e-8,
                -1e8,
                0.0,
                -0.0,
                255.4,
            ],
            [
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::MAX,
                f32::MIN_POSITIVE,
                -65504.0,
                0.1,
                -0.1,
            ],
            [
                f32::from_bits(0x3F80_8000),
                f32::from_bits(0x3F80_8001),
                f32::from_bits(0x3F81_8000),
                f32::from_bits(0x3F80_7FFF),
                2.0,
                -3.0,
                1e-40,
                -1e-40,
            ],
        ];
        for xs in &cases {
            // SAFETY: guarded by detected().
            let (stored, widened) = unsafe { roundtrip(xs) };
            for (i, x) in xs.iter().enumerate() {
                let want = f32_to_bf16(*x);
                if x.is_nan() {
                    assert!(bf16_to_f32(stored[i]).is_nan(), "lane {i}");
                    assert!(widened[i].is_nan(), "lane {i}");
                } else {
                    assert_eq!(stored[i], want, "lane {i} of {x}");
                    assert_eq!(
                        widened[i].to_bits(),
                        bf16_to_f32(want).to_bits(),
                        "lane {i}"
                    );
                }
            }
        }
    }
}
