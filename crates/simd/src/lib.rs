//! `peb-simd`: runtime-dispatched SIMD microkernels for the workspace hot
//! paths.
//!
//! Every kernel in this crate exists twice behind one entry point: an
//! AVX2+FMA path built on 8-lane `f32` vectors (`std::arch` intrinsics)
//! and a portable scalar path that processes the same 8-lane groups with
//! plain `f32` arithmetic. The path is chosen **once per process** by
//! [`level`]:
//!
//! * `PEB_SIMD=off` (or `0` / `scalar`) forces the scalar path — the
//!   escape hatch mirroring `PEB_POOL` / `PEB_THREADS`;
//! * otherwise AVX2+FMA is used when `is_x86_feature_detected!` reports
//!   both features, and the scalar path everywhere else (including
//!   non-x86_64 targets).
//!
//! # Determinism contract
//!
//! For a **fixed dispatch level** every kernel is a pure function of its
//! inputs: results are bitwise identical across runs, across
//! `PEB_THREADS` settings, and across how callers group work into 8-lane
//! batches. Two classes of kernel relate to the scalar reference
//! differently:
//!
//! * **Bit-exact kernels** (tridiagonal line solves, the explicit
//!   diffusion stencil, elementwise add/sub/mul/div, SGD/Adam updates)
//!   use only IEEE-exact lane operations (`+ − × ÷ √`) in exactly the
//!   per-element expression order of the scalar code, so the SIMD path
//!   reproduces the scalar path **to the bit**.
//! * **Tolerance kernels** (GEMM, which fuses multiply–add, and the
//!   selective-scan recurrence, which uses the polynomial [`Simd8::exp`]
//!   instead of libm) differ from scalar by bounded ULPs; the property
//!   suite in `tests/` pins those bounds.
//!
//! The `simd_dispatch` counter in `peb-obs` ticks once per kernel call
//! that takes the vector path.

use std::sync::atomic::{AtomicU8, Ordering};

pub mod bf16;
pub mod elementwise;
pub mod fused;
pub mod gemm;
pub mod int8;
pub mod optim;
pub mod scan;
pub mod stencil;
pub mod thomas;

// ---------------------------------------------------------------------------
// Dispatch level
// ---------------------------------------------------------------------------

/// Instruction-set level a kernel dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Level {
    /// Portable scalar arithmetic (also the `PEB_SIMD=off` escape hatch).
    Scalar = 0,
    /// 8-lane AVX2 vectors with fused multiply–add.
    Avx2Fma = 1,
}

impl Level {
    /// Stable name used in benchmark JSON and logs.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2Fma => "avx2+fma",
        }
    }
}

const LEVEL_UNINIT: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// Whether this CPU supports the AVX2+FMA path (independent of
/// `PEB_SIMD`).
pub fn detected() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The best level this hardware supports.
pub fn best_level() -> Level {
    if detected() {
        Level::Avx2Fma
    } else {
        Level::Scalar
    }
}

#[cold]
fn init_level() -> Level {
    let l = match std::env::var("PEB_SIMD").as_deref() {
        Ok("off") | Ok("0") | Ok("scalar") => Level::Scalar,
        _ => best_level(),
    };
    LEVEL.store(l as u8, Ordering::Relaxed);
    l
}

/// Current dispatch level, latched from `PEB_SIMD` + CPU detection on
/// first call.
#[inline]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Scalar,
        1 => Level::Avx2Fma,
        _ => init_level(),
    }
}

/// Whether kernels currently take the vector path.
#[inline]
pub fn simd_active() -> bool {
    level() == Level::Avx2Fma
}

/// Overrides the latched dispatch level, bypassing `PEB_SIMD`. Used by
/// benchmark binaries and the determinism suite for A/B runs; callers
/// that toggle this in tests must serialise themselves (the level is
/// process-global).
///
/// # Panics
///
/// Panics when asked for [`Level::Avx2Fma`] on hardware without AVX2+FMA.
pub fn set_level(l: Level) {
    assert!(
        l != Level::Avx2Fma || detected(),
        "peb-simd: AVX2+FMA requested but not supported by this CPU"
    );
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Ticks the `simd_dispatch` counter; called by every kernel entry that
/// takes the vector path.
#[inline]
pub(crate) fn note_dispatch() {
    peb_obs::count(peb_obs::Counter::SimdDispatch, 1);
}

// ---------------------------------------------------------------------------
// Compute precision
// ---------------------------------------------------------------------------

/// Storage precision the reduced-precision kernels run at.
///
/// Precision governs how *operands are stored and streamed* — every
/// kernel accumulates in `f32` regardless (`i32` for the int8 GEMM,
/// dequantised to `f32` on the way out). [`Prec::F32`] is the default
/// and leaves every kernel on its pre-existing code path, so the
/// `PEB_PREC` latch is a strict no-op unless explicitly engaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Prec {
    /// Full f32 storage — the default; bitwise identical to the
    /// pre-latch behaviour.
    F32 = 0,
    /// bf16 storage (round-to-nearest-even), f32 accumulation.
    Bf16 = 1,
    /// Dynamic int8 storage at the GEMM seam (per-row activations,
    /// per-column weights), i32 accumulation. Inference only: selected
    /// per request by `peb-serve`, never via `PEB_PREC`.
    Int8 = 2,
}

impl Prec {
    /// Stable name used in benchmark JSON, `/stats` and logs.
    pub fn name(self) -> &'static str {
        match self {
            Prec::F32 => "f32",
            Prec::Bf16 => "bf16",
            Prec::Int8 => "int8",
        }
    }

    /// Parses a precision name (`f32`/`bf16`/`int8`), case-sensitive.
    pub fn parse(s: &str) -> Option<Prec> {
        match s {
            "f32" => Some(Prec::F32),
            "bf16" => Some(Prec::Bf16),
            "int8" => Some(Prec::Int8),
            _ => None,
        }
    }
}

const PREC_UNINIT: u8 = u8::MAX;
static PREC: AtomicU8 = AtomicU8::new(PREC_UNINIT);

std::thread_local! {
    /// Per-thread precision override (see [`with_prec`]). `PREC_UNINIT`
    /// means "no override — fall through to the global latch".
    static PREC_TLS: std::cell::Cell<u8> = const { std::cell::Cell::new(PREC_UNINIT) };
}

#[cold]
fn init_prec() -> Prec {
    // The env latch accepts f32|bf16 only: int8 is an inference-time,
    // per-request precision (dynamic quantisation has no training
    // story), reachable through `set_prec`/`with_prec` instead.
    let p = match std::env::var("PEB_PREC").as_deref() {
        Ok("bf16") => Prec::Bf16,
        _ => Prec::F32,
    };
    PREC.store(p as u8, Ordering::Relaxed);
    p
}

fn decode_prec(v: u8) -> Option<Prec> {
    match v {
        0 => Some(Prec::F32),
        1 => Some(Prec::Bf16),
        2 => Some(Prec::Int8),
        _ => None,
    }
}

/// Current compute precision: the calling thread's [`with_prec`]
/// override if one is active, otherwise the process-global latch
/// (`PEB_PREC`, read once).
///
/// Kernels and drivers read this **on the caller's thread before
/// fanning work out** to the `peb-par` pool and capture the value into
/// their closures, so a scoped override on the submitting thread
/// governs the whole parallel region.
#[inline]
pub fn prec() -> Prec {
    let tls = PREC_TLS.with(std::cell::Cell::get);
    if let Some(p) = decode_prec(tls) {
        return p;
    }
    match decode_prec(PREC.load(Ordering::Relaxed)) {
        Some(p) => p,
        None => init_prec(),
    }
}

/// Overrides the process-global precision latch, bypassing `PEB_PREC`.
/// Used by benchmark binaries for A/B runs; callers that toggle this in
/// tests must serialise themselves (the latch is process-global) —
/// prefer [`with_prec`], which is thread-scoped.
pub fn set_prec(p: Prec) {
    PREC.store(p as u8, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's precision pinned to `p`,
/// restoring the previous override on exit (also on panic-free early
/// return; the guard restores on unwind too).
///
/// The override is visible to any kernel *dispatched from this thread*,
/// including work it fans out to the `peb-par` pool — drivers capture
/// `prec()` before going parallel. Other threads are unaffected, so
/// concurrent engines (or tests) can run different precisions safely.
pub fn with_prec<R>(p: Prec, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            PREC_TLS.with(|c| c.set(self.0));
        }
    }
    let prev = PREC_TLS.with(std::cell::Cell::get);
    let _guard = Restore(prev);
    PREC_TLS.with(|c| c.set(p as u8));
    f()
}

/// Ticks the `prec_dispatch` counter; called by every kernel entry that
/// takes a reduced-precision (bf16/int8) path.
#[inline]
pub(crate) fn note_prec_dispatch() {
    peb_obs::count(peb_obs::Counter::PrecDispatch, 1);
}

// ---------------------------------------------------------------------------
// ULP helper (shared by the property tests and benches)
// ---------------------------------------------------------------------------

/// Distance between two finite floats in units in the last place.
///
/// Maps each float onto the monotonic integer line (sign-magnitude →
/// two's-complement) and returns the absolute difference, saturating at
/// `u32::MAX` for NaN operands.
pub fn ulp_diff(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        // Fold negative floats below zero on the integer line.
        if bits < 0 {
            (i32::MIN as i64) - (bits as i64)
        } else {
            bits as i64
        }
    }
    (key(a) - key(b)).unsigned_abs().min(u32::MAX as u64) as u32
}

// ---------------------------------------------------------------------------
// The 8-lane abstraction
// ---------------------------------------------------------------------------

/// Eight `f32` lanes with the operations the workspace kernels need.
///
/// Implemented by [`ScalarX8`] (portable, libm `exp`, unfused
/// `mul_add`) and — on x86_64 — [`AvxX8`] (AVX2 vectors, fused
/// `mul_add`, polynomial `exp`). Generic kernels written against this
/// trait are instantiated once per backend; the AVX instantiation is
/// only ever reached through `#[target_feature(enable = "avx2,fma")]`
/// wrappers after runtime detection.
pub trait Simd8: Copy {
    /// All lanes set to `v`.
    fn splat(v: f32) -> Self;
    /// All lanes zero.
    #[inline(always)]
    fn zero() -> Self {
        Self::splat(0.0)
    }
    /// Loads lanes from `src[0..8]`.
    fn load(src: &[f32]) -> Self;
    /// Stores lanes into `dst[0..8]`.
    fn store(self, dst: &mut [f32]);
    /// Lanewise `self + rhs`.
    fn add(self, rhs: Self) -> Self;
    /// Lanewise `self − rhs`.
    fn sub(self, rhs: Self) -> Self;
    /// Lanewise `self × rhs`.
    fn mul(self, rhs: Self) -> Self;
    /// Lanewise `self ÷ rhs`.
    fn div(self, rhs: Self) -> Self;
    /// Lanewise IEEE square root.
    fn sqrt(self) -> Self;
    /// Lanewise `self × m + a`; fused on the AVX backend, two rounded
    /// operations on the scalar backend.
    fn mul_add(self, m: Self, a: Self) -> Self;
    /// Lanewise natural exponential. Scalar backend: libm; AVX backend:
    /// Cephes-style polynomial, within a few ULP of libm.
    fn exp(self) -> Self;
    /// Lanewise `if self >= 0 { if_nonneg } else { if_neg }`.
    fn select_nonneg(self, if_nonneg: Self, if_neg: Self) -> Self;
    /// Lanes as an array (lane order 0..8 = memory order).
    fn to_array(self) -> [f32; 8];
    /// Builds lanes from an array.
    fn from_array(a: [f32; 8]) -> Self;
}

/// Portable scalar backend: 8 plain `f32` lanes.
#[derive(Debug, Clone, Copy)]
pub struct ScalarX8([f32; 8]);

impl Simd8 for ScalarX8 {
    #[inline(always)]
    fn splat(v: f32) -> Self {
        ScalarX8([v; 8])
    }
    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        let mut a = [0f32; 8];
        a.copy_from_slice(&src[..8]);
        ScalarX8(a)
    }
    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        dst[..8].copy_from_slice(&self.0);
    }
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        ScalarX8(std::array::from_fn(|i| self.0[i] + rhs.0[i]))
    }
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        ScalarX8(std::array::from_fn(|i| self.0[i] - rhs.0[i]))
    }
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        ScalarX8(std::array::from_fn(|i| self.0[i] * rhs.0[i]))
    }
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        ScalarX8(std::array::from_fn(|i| self.0[i] / rhs.0[i]))
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        ScalarX8(std::array::from_fn(|i| self.0[i].sqrt()))
    }
    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        // Deliberately unfused: the scalar backend reproduces plain
        // `x*m + a` f32 arithmetic bit for bit.
        ScalarX8(std::array::from_fn(|i| self.0[i] * m.0[i] + a.0[i]))
    }
    #[inline(always)]
    fn exp(self) -> Self {
        ScalarX8(std::array::from_fn(|i| self.0[i].exp()))
    }
    #[inline(always)]
    fn select_nonneg(self, if_nonneg: Self, if_neg: Self) -> Self {
        ScalarX8(std::array::from_fn(|i| {
            if self.0[i] >= 0.0 {
                if_nonneg.0[i]
            } else {
                if_neg.0[i]
            }
        }))
    }
    #[inline(always)]
    fn to_array(self) -> [f32; 8] {
        self.0
    }
    #[inline(always)]
    fn from_array(a: [f32; 8]) -> Self {
        ScalarX8(a)
    }
}

/// AVX2+FMA backend.
///
/// # Soundness
///
/// Constructing and operating on `AvxX8` executes AVX instructions, so
/// every use must be dominated by a successful [`detected`] check. All
/// in-crate uses sit behind `#[target_feature(enable = "avx2,fma")]`
/// dispatch wrappers that are only entered when [`simd_active`] (or an
/// explicit caller-side `detected()` check) holds.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub struct AvxX8(std::arch::x86_64::__m256);

#[cfg(target_arch = "x86_64")]
impl AvxX8 {
    /// The raw vector register, for sibling modules (bf16/int8) that
    /// need intrinsics outside the [`Simd8`] surface.
    #[inline(always)]
    pub(crate) fn raw(self) -> std::arch::x86_64::__m256 {
        self.0
    }

    /// Wraps a raw vector register (same soundness contract as the
    /// type: only under `avx2,fma` target features).
    #[inline(always)]
    pub(crate) fn from_raw(v: std::arch::x86_64::__m256) -> Self {
        AvxX8(v)
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{AvxX8, Simd8};
    use std::arch::x86_64::*;

    impl Simd8 for AvxX8 {
        #[inline(always)]
        fn splat(v: f32) -> Self {
            AvxX8(unsafe { _mm256_set1_ps(v) })
        }
        #[inline(always)]
        fn load(src: &[f32]) -> Self {
            debug_assert!(src.len() >= 8);
            AvxX8(unsafe { _mm256_loadu_ps(src.as_ptr()) })
        }
        #[inline(always)]
        fn store(self, dst: &mut [f32]) {
            debug_assert!(dst.len() >= 8);
            unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), self.0) }
        }
        #[inline(always)]
        fn add(self, rhs: Self) -> Self {
            AvxX8(unsafe { _mm256_add_ps(self.0, rhs.0) })
        }
        #[inline(always)]
        fn sub(self, rhs: Self) -> Self {
            AvxX8(unsafe { _mm256_sub_ps(self.0, rhs.0) })
        }
        #[inline(always)]
        fn mul(self, rhs: Self) -> Self {
            AvxX8(unsafe { _mm256_mul_ps(self.0, rhs.0) })
        }
        #[inline(always)]
        fn div(self, rhs: Self) -> Self {
            AvxX8(unsafe { _mm256_div_ps(self.0, rhs.0) })
        }
        #[inline(always)]
        fn sqrt(self) -> Self {
            AvxX8(unsafe { _mm256_sqrt_ps(self.0) })
        }
        #[inline(always)]
        fn mul_add(self, m: Self, a: Self) -> Self {
            AvxX8(unsafe { _mm256_fmadd_ps(self.0, m.0, a.0) })
        }
        #[inline(always)]
        fn exp(self) -> Self {
            exp256(self)
        }
        #[inline(always)]
        fn select_nonneg(self, if_nonneg: Self, if_neg: Self) -> Self {
            // blendv picks the second operand where the mask sign bit is
            // set, i.e. where `self < 0`.
            AvxX8(unsafe { _mm256_blendv_ps(if_nonneg.0, if_neg.0, self.0) })
        }
        #[inline(always)]
        fn to_array(self) -> [f32; 8] {
            let mut a = [0f32; 8];
            unsafe { _mm256_storeu_ps(a.as_mut_ptr(), self.0) };
            a
        }
        #[inline(always)]
        fn from_array(a: [f32; 8]) -> Self {
            AvxX8(unsafe { _mm256_loadu_ps(a.as_ptr()) })
        }
    }

    /// Cephes-style `exp` on 8 lanes (cf. `avx_mathfun`): range-reduce by
    /// `ln 2` with a two-constant Cody–Waite split, degree-5 polynomial,
    /// exponent reconstruction through the IEEE bit pattern. Within a few
    /// ULP of libm over the finite range; inputs are clamped to
    /// `±88.376`, so overflow saturates and underflow flushes to 0.
    #[inline(always)]
    fn exp256(x: AvxX8) -> AvxX8 {
        const EXP_HI: f32 = 88.376_26;
        const EXP_LO: f32 = -88.376_26;
        const LOG2EF: f32 = std::f32::consts::LOG2_E;
        const C1: f32 = 0.693_359_4; // ln2 high part
        const C2: f32 = -2.121_944_4e-4; // ln2 low part
        const P0: f32 = 1.987_569_1e-4;
        const P1: f32 = 1.398_199_9e-3;
        const P2: f32 = 8.333_452e-3;
        const P3: f32 = 4.166_579_6e-2;
        const P4: f32 = 1.666_666_5e-1;
        const P5: f32 = 5.000_000_3e-1;
        unsafe {
            let x = _mm256_min_ps(x.0, _mm256_set1_ps(EXP_HI));
            let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
            // n = round-to-floor(x / ln2 + 1/2)
            let fx = _mm256_fmadd_ps(x, _mm256_set1_ps(LOG2EF), _mm256_set1_ps(0.5));
            let fx = _mm256_floor_ps(fx);
            // r = x − n·ln2, split into high/low parts for accuracy.
            let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(C1), x);
            let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(C2), x);
            // Polynomial for exp(r) on r ∈ [−ln2/2, ln2/2].
            let z = _mm256_mul_ps(x, x);
            let mut y = _mm256_set1_ps(P0);
            y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P1));
            y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P2));
            y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P3));
            y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P4));
            y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P5));
            y = _mm256_fmadd_ps(y, z, x);
            y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
            // 2^n through the exponent field.
            let n = _mm256_cvttps_epi32(fx);
            let n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
            let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(n, 23));
            AvxX8(_mm256_mul_ps(y, pow2n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_latches_and_overrides() {
        let initial = level();
        assert_eq!(level(), initial, "level must latch");
        set_level(Level::Scalar);
        assert_eq!(level(), Level::Scalar);
        set_level(best_level());
        assert_eq!(level(), best_level());
    }

    #[test]
    fn ulp_diff_basics() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(-0.0, 0.0), 0);
        assert!(ulp_diff(1.0, -1.0) > 1_000_000);
        assert_eq!(ulp_diff(f32::NAN, 1.0), u32::MAX);
    }

    #[test]
    fn scalar_lane_ops_match_plain_f32() {
        let a = ScalarX8::from_array([1.0, -2.0, 0.5, 3.0, -0.25, 8.0, 1e-3, -7.5]);
        let b = ScalarX8::splat(3.0);
        let sum = a.add(b).to_array();
        let prod = a.mul(b).to_array();
        let fma = a.mul_add(b, b).to_array();
        for (i, x) in a.to_array().iter().enumerate() {
            assert_eq!(sum[i].to_bits(), (x + 3.0).to_bits());
            assert_eq!(prod[i].to_bits(), (x * 3.0).to_bits());
            assert_eq!(fma[i].to_bits(), (x * 3.0 + 3.0).to_bits());
        }
        let sel = a.select_nonneg(ScalarX8::splat(1.0), ScalarX8::splat(-1.0));
        assert_eq!(sel.to_array(), [1.0, -1.0, 1.0, 1.0, -1.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn prec_parse_and_names_roundtrip() {
        for p in [Prec::F32, Prec::Bf16, Prec::Int8] {
            assert_eq!(Prec::parse(p.name()), Some(p));
        }
        assert_eq!(Prec::parse("f16"), None);
        assert_eq!(Prec::parse(""), None);
    }

    #[test]
    fn with_prec_overrides_then_restores() {
        // The thread-local override wins inside the closure, nests, and
        // restores on exit (including the no-override outer state).
        let outer = prec();
        with_prec(Prec::Bf16, || {
            assert_eq!(prec(), Prec::Bf16);
            with_prec(Prec::Int8, || assert_eq!(prec(), Prec::Int8));
            assert_eq!(prec(), Prec::Bf16);
        });
        assert_eq!(prec(), outer);
    }

    #[test]
    fn with_prec_is_thread_local() {
        with_prec(Prec::Bf16, || {
            // A fresh thread sees the global latch, not this override.
            let seen = std::thread::spawn(prec).join().expect("join");
            assert_ne!(seen, Prec::Int8);
            assert_eq!(prec(), Prec::Bf16);
        });
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_exp_tracks_libm_within_ulps() {
        if !detected() {
            return;
        }
        #[target_feature(enable = "avx2,fma")]
        unsafe fn run(xs: &[f32; 8]) -> [f32; 8] {
            AvxX8::from_array(*xs).exp().to_array()
        }
        let xs = [-30.0f32, -3.25, -0.5, 0.0, 1e-4, 0.5, 3.25, 30.0];
        // SAFETY: guarded by detected().
        let got = unsafe { run(&xs) };
        for (x, g) in xs.iter().zip(got) {
            let want = x.exp();
            assert!(
                ulp_diff(g, want) <= 16,
                "exp({x}): {g} vs libm {want} ({} ulp)",
                ulp_diff(g, want)
            );
        }
    }
}
