//! Vectorized elementwise and reduction kernels.
//!
//! The binary ops, scalar ops, `vsqrt`, `vaxpy`, and `vadd_assign` use
//! only IEEE-exact lane operations in the scalar expression order, so
//! their SIMD results are **bitwise identical** to the scalar path.
//! `vexp` and `vsigmoid` use the polynomial [`Simd8::exp`] on the SIMD
//! path and are tolerance-class (a few ULP from libm). `vsum_f64` changes
//! the accumulation bracketing on the SIMD path (eight f64 partial sums)
//! and is likewise tolerance-class; each path is deterministic.

use crate::{simd_active, ScalarX8, Simd8};

/// Generates the dispatched / forced-scalar / forced-SIMD entry trio for
/// a kernel whose generic body is `$generic`.
macro_rules! dispatched {
    ($(#[$doc:meta])* $name:ident, $scalar:ident, $simd:ident, $generic:ident,
     ($($arg:ident : $ty:ty),*)) => {
        $(#[$doc])*
        pub fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if simd_active() {
                crate::note_dispatch();
                // SAFETY: `simd_active()` implies AVX2+FMA were detected.
                unsafe { avx::$name($($arg),*) };
                return;
            }
            $generic::<ScalarX8>($($arg),*)
        }
        /// Forced scalar-backend variant of the same kernel.
        pub fn $scalar($($arg: $ty),*) {
            $generic::<ScalarX8>($($arg),*)
        }
        /// Forced SIMD-backend variant; returns `false` (no-op) without
        /// AVX2+FMA.
        pub fn $simd($($arg: $ty),*) -> bool {
            #[cfg(target_arch = "x86_64")]
            if crate::detected() {
                // SAFETY: guarded by `detected()`.
                unsafe { avx::$name($($arg),*) };
                return true;
            }
            let _ = ($(&$arg),*);
            false
        }
    };
}

/// `#[target_feature]` instantiations of the generic bodies.
#[cfg(target_arch = "x86_64")]
mod avx {
    use super::*;
    use crate::AvxX8;

    macro_rules! avx_wrap {
        ($name:ident, $generic:ident, ($($arg:ident : $ty:ty),*)) => {
            #[target_feature(enable = "avx2,fma")]
            pub unsafe fn $name($($arg: $ty),*) {
                $generic::<AvxX8>($($arg),*)
            }
        };
    }

    avx_wrap!(vadd, binop_add_generic, (a: &[f32], b: &[f32], out: &mut [f32]));
    avx_wrap!(vsub, binop_sub_generic, (a: &[f32], b: &[f32], out: &mut [f32]));
    avx_wrap!(vmul, binop_mul_generic, (a: &[f32], b: &[f32], out: &mut [f32]));
    avx_wrap!(vdiv, binop_div_generic, (a: &[f32], b: &[f32], out: &mut [f32]));
    avx_wrap!(vadd_scalar, add_scalar_generic, (x: &[f32], s: f32, out: &mut [f32]));
    avx_wrap!(vmul_scalar, mul_scalar_generic, (x: &[f32], s: f32, out: &mut [f32]));
    avx_wrap!(vsqrt, sqrt_generic, (x: &[f32], out: &mut [f32]));
    avx_wrap!(vexp, exp_generic, (x: &[f32], out: &mut [f32]));
    avx_wrap!(vsigmoid, sigmoid_generic, (x: &[f32], out: &mut [f32]));
    avx_wrap!(vaxpy, axpy_generic, (y: &mut [f32], alpha: f32, x: &[f32]));
    avx_wrap!(vadd_assign, add_assign_generic, (y: &mut [f32], x: &[f32]));
}

macro_rules! binop_generic {
    ($generic:ident, $method:ident, $op:tt) => {
        #[inline(always)]
        fn $generic<V: Simd8>(a: &[f32], b: &[f32], out: &mut [f32]) {
            assert!(a.len() == b.len() && a.len() == out.len());
            let n8 = a.len() - a.len() % 8;
            let mut i = 0;
            while i < n8 {
                V::load(&a[i..]).$method(V::load(&b[i..])).store(&mut out[i..]);
                i += 8;
            }
            // Tail: the lane op is IEEE-exact, so plain f32 matches both
            // backends bit for bit.
            for j in i..a.len() {
                out[j] = a[j] $op b[j];
            }
        }
    };
}

binop_generic!(binop_add_generic, add, +);
binop_generic!(binop_sub_generic, sub, -);
binop_generic!(binop_mul_generic, mul, *);
binop_generic!(binop_div_generic, div, /);

#[inline(always)]
fn add_scalar_generic<V: Simd8>(x: &[f32], s: f32, out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    let sv = V::splat(s);
    let n8 = x.len() - x.len() % 8;
    let mut i = 0;
    while i < n8 {
        V::load(&x[i..]).add(sv).store(&mut out[i..]);
        i += 8;
    }
    for j in i..x.len() {
        out[j] = x[j] + s;
    }
}

#[inline(always)]
fn mul_scalar_generic<V: Simd8>(x: &[f32], s: f32, out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    let sv = V::splat(s);
    let n8 = x.len() - x.len() % 8;
    let mut i = 0;
    while i < n8 {
        V::load(&x[i..]).mul(sv).store(&mut out[i..]);
        i += 8;
    }
    for j in i..x.len() {
        out[j] = x[j] * s;
    }
}

#[inline(always)]
fn sqrt_generic<V: Simd8>(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    let n8 = x.len() - x.len() % 8;
    let mut i = 0;
    while i < n8 {
        V::load(&x[i..]).sqrt().store(&mut out[i..]);
        i += 8;
    }
    for j in i..x.len() {
        out[j] = x[j].sqrt();
    }
}

#[inline(always)]
fn exp_generic<V: Simd8>(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    let n8 = x.len() - x.len() % 8;
    let mut i = 0;
    while i < n8 {
        V::load(&x[i..]).exp().store(&mut out[i..]);
        i += 8;
    }
    if i < x.len() {
        // Run the tail through the same lane math as the body so every
        // element sees one exp implementation per backend.
        let mut pad = [0f32; 8];
        pad[..x.len() - i].copy_from_slice(&x[i..]);
        let r = V::from_array(pad).exp().to_array();
        out[i..].copy_from_slice(&r[..x.len() - i]);
    }
}

#[inline(always)]
fn sigmoid_generic<V: Simd8>(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    let one = V::splat(1.0);
    // Stable two-branch sigmoid, branch resolved lanewise:
    //   x ≥ 0: 1 / (1 + exp(−x));   x < 0: e / (1 + e) with e = exp(x).
    // Both branches share e = exp(−|x|) and one division.
    let sig = |xv: V| {
        let e = xv.select_nonneg(V::zero().sub(xv), xv).exp();
        let num = xv.select_nonneg(one, e);
        num.div(one.add(e))
    };
    let n8 = x.len() - x.len() % 8;
    let mut i = 0;
    while i < n8 {
        sig(V::load(&x[i..])).store(&mut out[i..]);
        i += 8;
    }
    if i < x.len() {
        let mut pad = [0f32; 8];
        pad[..x.len() - i].copy_from_slice(&x[i..]);
        let r = sig(V::from_array(pad)).to_array();
        out[i..].copy_from_slice(&r[..x.len() - i]);
    }
}

#[inline(always)]
fn axpy_generic<V: Simd8>(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len());
    let av = V::splat(alpha);
    let n8 = y.len() - y.len() % 8;
    let mut i = 0;
    while i < n8 {
        // Unfused x·α then add, matching `*y += x * alpha` bitwise.
        let ys = &mut y[i..i + 8];
        V::load(ys).add(V::load(&x[i..]).mul(av)).store(ys);
        i += 8;
    }
    for j in i..y.len() {
        y[j] += x[j] * alpha;
    }
}

#[inline(always)]
fn add_assign_generic<V: Simd8>(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len());
    let n8 = y.len() - y.len() % 8;
    let mut i = 0;
    while i < n8 {
        let ys = &mut y[i..i + 8];
        V::load(ys).add(V::load(&x[i..])).store(ys);
        i += 8;
    }
    for j in i..y.len() {
        y[j] += x[j];
    }
}

dispatched!(
    /// `out = a + b` elementwise (bit-exact across backends).
    vadd, vadd_scalar_backend, vadd_simd_backend, binop_add_generic,
    (a: &[f32], b: &[f32], out: &mut [f32])
);
dispatched!(
    /// `out = a − b` elementwise (bit-exact across backends).
    vsub, vsub_scalar_backend, vsub_simd_backend, binop_sub_generic,
    (a: &[f32], b: &[f32], out: &mut [f32])
);
dispatched!(
    /// `out = a × b` elementwise (bit-exact across backends).
    vmul, vmul_scalar_backend, vmul_simd_backend, binop_mul_generic,
    (a: &[f32], b: &[f32], out: &mut [f32])
);
dispatched!(
    /// `out = a ÷ b` elementwise (bit-exact across backends).
    vdiv, vdiv_scalar_backend, vdiv_simd_backend, binop_div_generic,
    (a: &[f32], b: &[f32], out: &mut [f32])
);
dispatched!(
    /// `out = x + s` (bit-exact across backends).
    vadd_scalar, vadd_scalar_scalar_backend, vadd_scalar_simd_backend, add_scalar_generic,
    (x: &[f32], s: f32, out: &mut [f32])
);
dispatched!(
    /// `out = x × s` (bit-exact across backends).
    vmul_scalar, vmul_scalar_scalar_backend, vmul_scalar_simd_backend, mul_scalar_generic,
    (x: &[f32], s: f32, out: &mut [f32])
);
dispatched!(
    /// `out = √x` elementwise (bit-exact across backends).
    vsqrt, vsqrt_scalar_backend, vsqrt_simd_backend, sqrt_generic,
    (x: &[f32], out: &mut [f32])
);
dispatched!(
    /// `out = exp(x)` elementwise (tolerance-class on the SIMD path).
    vexp, vexp_scalar_backend, vexp_simd_backend, exp_generic,
    (x: &[f32], out: &mut [f32])
);
dispatched!(
    /// Numerically stable logistic sigmoid (tolerance-class on SIMD).
    vsigmoid, vsigmoid_scalar_backend, vsigmoid_simd_backend, sigmoid_generic,
    (x: &[f32], out: &mut [f32])
);
dispatched!(
    /// `y += α·x` (unfused; bit-exact across backends).
    vaxpy, vaxpy_scalar_backend, vaxpy_simd_backend, axpy_generic,
    (y: &mut [f32], alpha: f32, x: &[f32])
);
dispatched!(
    /// `y += x` elementwise (bit-exact across backends).
    vadd_assign, vadd_assign_scalar_backend, vadd_assign_simd_backend, add_assign_generic,
    (y: &mut [f32], x: &[f32])
);

/// `Σ x[i]` accumulated in `f64`.
///
/// The scalar path sums sequentially (matching the pre-SIMD reduction
/// bit for bit); the SIMD path keeps eight f64 partial sums folded in a
/// fixed lane order — deterministic, but bracketed differently, so the
/// two paths agree only to rounding.
pub fn vsum_f64(x: &[f32]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected.
        return unsafe { sum_f64_avx(x) };
    }
    sum_f64_scalar(x)
}

/// Forced sequential-accumulation sum (the scalar reference).
pub fn sum_f64_scalar(x: &[f32]) -> f64 {
    let mut acc = 0f64;
    for &v in x {
        acc += v as f64;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn sum_f64_avx(x: &[f32]) -> f64 {
    use std::arch::x86_64::*;
    let mut acc_lo = _mm256_setzero_pd();
    let mut acc_hi = _mm256_setzero_pd();
    let n8 = x.len() - x.len() % 8;
    let mut i = 0;
    while i < n8 {
        let v = _mm256_loadu_ps(x.as_ptr().add(i));
        acc_lo = _mm256_add_pd(acc_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
        acc_hi = _mm256_add_pd(acc_hi, _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(v)));
        i += 8;
    }
    // Fold the eight partials in fixed lane order, then the tail.
    let mut lanes = [0f64; 8];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc_lo);
    _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc_hi);
    let mut acc = lanes.iter().sum::<f64>();
    for &v in &x[i..] {
        acc += v as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp_diff;

    fn pseudo(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x as f32 / u32::MAX as f32) * 8.0 - 4.0
            })
            .collect()
    }

    #[test]
    fn exact_kernels_match_bitwise_across_backends() {
        for len in [0usize, 1, 7, 8, 9, 64, 101] {
            let a = pseudo(len, 1);
            let b: Vec<f32> = pseudo(len, 2).iter().map(|v| v + 5.0).collect();
            let mut s = vec![0f32; len];
            let mut v = vec![0f32; len];
            type K = (
                &'static str,
                fn(&[f32], &[f32], &mut [f32]),
                fn(&[f32], &[f32], &mut [f32]) -> bool,
            );
            let kernels: [K; 4] = [
                ("add", vadd_scalar_backend, vadd_simd_backend),
                ("sub", vsub_scalar_backend, vsub_simd_backend),
                ("mul", vmul_scalar_backend, vmul_simd_backend),
                ("div", vdiv_scalar_backend, vdiv_simd_backend),
            ];
            for (name, scalar, simd) in kernels {
                scalar(&a, &b, &mut s);
                if simd(&a, &b, &mut v) {
                    for (x, y) in s.iter().zip(&v) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{name} len {len}");
                    }
                }
            }
        }
    }

    #[test]
    fn axpy_matches_plain_loop_bitwise() {
        let x = pseudo(37, 3);
        let mut want = pseudo(37, 4);
        let mut got = want.clone();
        for (y, xv) in want.iter_mut().zip(&x) {
            *y += *xv * 0.37;
        }
        if !vaxpy_simd_backend(&mut got, 0.37, &x) {
            vaxpy_scalar_backend(&mut got, 0.37, &x);
        }
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn exp_and_sigmoid_within_ulps_of_scalar() {
        let x = pseudo(100, 5);
        let mut s = vec![0f32; 100];
        let mut v = vec![0f32; 100];
        vexp_scalar_backend(&x, &mut s);
        if vexp_simd_backend(&x, &mut v) {
            for (a, b) in s.iter().zip(&v) {
                assert!(ulp_diff(*a, *b) <= 16, "exp {a} vs {b}");
            }
        }
        vsigmoid_scalar_backend(&x, &mut s);
        if vsigmoid_simd_backend(&x, &mut v) {
            for (a, b) in s.iter().zip(&v) {
                assert!(ulp_diff(*a, *b) <= 16, "sigmoid {a} vs {b}");
            }
        }
    }

    #[test]
    fn sigmoid_scalar_backend_matches_reference_formula() {
        let xs = [-100.0f32, -3.5, -0.0, 0.0, 1e-6, 2.5, 100.0];
        let mut out = vec![0f32; xs.len()];
        vsigmoid_scalar_backend(&xs, &mut out);
        for (x, got) in xs.iter().zip(&out) {
            let want = if *x >= 0.0 {
                1.0 / (1.0 + (-x).exp())
            } else {
                let e = x.exp();
                e / (1.0 + e)
            };
            assert_eq!(want.to_bits(), got.to_bits(), "x = {x}");
        }
    }

    #[test]
    fn sum_paths_agree_to_rounding() {
        let x = pseudo(1003, 6);
        let seq = sum_f64_scalar(&x);
        let got = vsum_f64(&x);
        assert!((seq - got).abs() <= 1e-6 * seq.abs().max(1.0));
    }
}
