//! Vectorized in-place optimiser update loops.
//!
//! All four kernels use only IEEE-exact lane operations (`+ − × ÷ √`) in
//! exactly the per-element expression order of the scalar loops in
//! `peb-nn`'s `Sgd`/`Adam`, so the SIMD path is **bitwise identical** to
//! the scalar path — training trajectories do not depend on `PEB_SIMD`.

use crate::{simd_active, ScalarX8, Simd8};

/// SGD momentum accumulation: `v = v·μ + g`.
pub fn sgd_momentum(vel: &mut [f32], grad: &[f32], momentum: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected.
        unsafe { sgd_momentum_avx2(vel, grad, momentum) };
        return;
    }
    sgd_momentum_generic::<ScalarX8>(vel, grad, momentum)
}

/// Parameter descent: `p = p − v·lr` (shared by SGD with and without
/// momentum, where `v` is the velocity or the raw gradient).
pub fn sgd_apply(param: &mut [f32], vel: &[f32], lr: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: as above.
        unsafe { sgd_apply_avx2(param, vel, lr) };
        return;
    }
    sgd_apply_generic::<ScalarX8>(param, vel, lr)
}

/// Adam moment update: `m = m·β₁ + g·(1−β₁)`, `v = v·β₂ + g²·(1−β₂)`.
pub fn adam_moments(m: &mut [f32], v: &mut [f32], grad: &[f32], beta1: f32, beta2: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: as above.
        unsafe { adam_moments_avx2(m, v, grad, beta1, beta2) };
        return;
    }
    adam_moments_generic::<ScalarX8>(m, v, grad, beta1, beta2)
}

/// Adam parameter update with bias correction:
/// `p −= lr · (m·inv_bc1) / (√(v·inv_bc2) + ε)`.
pub fn adam_apply(
    param: &mut [f32],
    m: &[f32],
    v: &[f32],
    inv_bc1: f32,
    inv_bc2: f32,
    eps: f32,
    lr: f32,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: as above.
        unsafe { adam_apply_avx2(param, m, v, inv_bc1, inv_bc2, eps, lr) };
        return;
    }
    adam_apply_generic::<ScalarX8>(param, m, v, inv_bc1, inv_bc2, eps, lr)
}

#[cfg(target_arch = "x86_64")]
mod avx_wrappers {
    use super::*;
    use crate::AvxX8;

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sgd_momentum_avx2(vel: &mut [f32], grad: &[f32], momentum: f32) {
        sgd_momentum_generic::<AvxX8>(vel, grad, momentum)
    }
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sgd_apply_avx2(param: &mut [f32], vel: &[f32], lr: f32) {
        sgd_apply_generic::<AvxX8>(param, vel, lr)
    }
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn adam_moments_avx2(
        m: &mut [f32],
        v: &mut [f32],
        grad: &[f32],
        beta1: f32,
        beta2: f32,
    ) {
        adam_moments_generic::<AvxX8>(m, v, grad, beta1, beta2)
    }
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn adam_apply_avx2(
        param: &mut [f32],
        m: &[f32],
        v: &[f32],
        inv_bc1: f32,
        inv_bc2: f32,
        eps: f32,
        lr: f32,
    ) {
        adam_apply_generic::<AvxX8>(param, m, v, inv_bc1, inv_bc2, eps, lr)
    }
}
#[cfg(target_arch = "x86_64")]
use avx_wrappers::*;

#[inline(always)]
fn sgd_momentum_generic<V: Simd8>(vel: &mut [f32], grad: &[f32], momentum: f32) {
    assert_eq!(vel.len(), grad.len());
    let mv = V::splat(momentum);
    let n8 = vel.len() - vel.len() % 8;
    let mut i = 0;
    while i < n8 {
        let vs = &mut vel[i..i + 8];
        // v·μ then + g, unfused: matches `*vi * momentum + *gi` bitwise.
        V::load(vs).mul(mv).add(V::load(&grad[i..])).store(vs);
        i += 8;
    }
    for j in i..vel.len() {
        vel[j] = vel[j] * momentum + grad[j];
    }
}

#[inline(always)]
fn sgd_apply_generic<V: Simd8>(param: &mut [f32], vel: &[f32], lr: f32) {
    assert_eq!(param.len(), vel.len());
    let lrv = V::splat(lr);
    let n8 = param.len() - param.len() % 8;
    let mut i = 0;
    while i < n8 {
        let ps = &mut param[i..i + 8];
        V::load(ps).sub(V::load(&vel[i..]).mul(lrv)).store(ps);
        i += 8;
    }
    for j in i..param.len() {
        param[j] -= vel[j] * lr;
    }
}

#[inline(always)]
fn adam_moments_generic<V: Simd8>(
    m: &mut [f32],
    v: &mut [f32],
    grad: &[f32],
    beta1: f32,
    beta2: f32,
) {
    assert!(m.len() == grad.len() && v.len() == grad.len());
    let (b1, b2) = (V::splat(beta1), V::splat(beta2));
    let (omb1, omb2) = (V::splat(1.0 - beta1), V::splat(1.0 - beta2));
    let n8 = grad.len() - grad.len() % 8;
    let mut i = 0;
    while i < n8 {
        let g = V::load(&grad[i..]);
        let ms = &mut m[i..i + 8];
        V::load(ms).mul(b1).add(g.mul(omb1)).store(ms);
        let vs = &mut v[i..i + 8];
        V::load(vs).mul(b2).add(g.mul(g).mul(omb2)).store(vs);
        i += 8;
    }
    for j in i..grad.len() {
        let g = grad[j];
        m[j] = m[j] * beta1 + g * (1.0 - beta1);
        v[j] = v[j] * beta2 + (g * g) * (1.0 - beta2);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn adam_apply_generic<V: Simd8>(
    param: &mut [f32],
    m: &[f32],
    v: &[f32],
    inv_bc1: f32,
    inv_bc2: f32,
    eps: f32,
    lr: f32,
) {
    assert!(param.len() == m.len() && param.len() == v.len());
    let (ib1, ib2) = (V::splat(inv_bc1), V::splat(inv_bc2));
    let (ev, lrv) = (V::splat(eps), V::splat(lr));
    let n8 = param.len() - param.len() % 8;
    let mut i = 0;
    while i < n8 {
        let mhat = V::load(&m[i..]).mul(ib1);
        let vhat = V::load(&v[i..]).mul(ib2);
        let update = mhat.div(vhat.sqrt().add(ev));
        let ps = &mut param[i..i + 8];
        V::load(ps).sub(update.mul(lrv)).store(ps);
        i += 8;
    }
    for j in i..param.len() {
        let mhat = m[j] * inv_bc1;
        let vhat = v[j] * inv_bc2;
        let update = mhat / (vhat.sqrt() + eps);
        param[j] -= update * lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn adam_step_matches_scalar_loop_bitwise() {
        let len = 61;
        let grad = pseudo(len, 1);
        let mut m = pseudo(len, 2);
        let mut v: Vec<f32> = pseudo(len, 3).iter().map(|x| x.abs()).collect();
        let mut p = pseudo(len, 4);
        let (mut mr, mut vr, mut pr) = (m.clone(), v.clone(), p.clone());
        let (b1, b2, ib1, ib2, eps, lr) = (0.9f32, 0.999f32, 1.01f32, 1.2f32, 1e-8f32, 0.03f32);
        // Reference: the exact scalar loops from peb-nn.
        for j in 0..len {
            let g = grad[j];
            mr[j] = mr[j] * b1 + g * (1.0 - b1);
            vr[j] = vr[j] * b2 + (g * g) * (1.0 - b2);
            let mhat = mr[j] * ib1;
            let vhat = vr[j] * ib2;
            pr[j] -= mhat / (vhat.sqrt() + eps) * lr;
        }
        adam_moments(&mut m, &mut v, &grad, b1, b2);
        adam_apply(&mut p, &m, &v, ib1, ib2, eps, lr);
        for j in 0..len {
            assert_eq!(mr[j].to_bits(), m[j].to_bits(), "m[{j}]");
            assert_eq!(vr[j].to_bits(), v[j].to_bits(), "v[{j}]");
            assert_eq!(pr[j].to_bits(), p[j].to_bits(), "p[{j}]");
        }
    }

    #[test]
    fn sgd_step_matches_scalar_loop_bitwise() {
        let len = 37;
        let grad = pseudo(len, 5);
        let mut vel = pseudo(len, 6);
        let mut p = pseudo(len, 7);
        let (mut vr, mut pr) = (vel.clone(), p.clone());
        for j in 0..len {
            vr[j] = vr[j] * 0.9 + grad[j];
            pr[j] -= vr[j] * 0.05;
        }
        sgd_momentum(&mut vel, &grad, 0.9);
        sgd_apply(&mut p, &vel, 0.05);
        for j in 0..len {
            assert_eq!(vr[j].to_bits(), vel[j].to_bits());
            assert_eq!(pr[j].to_bits(), p[j].to_bits());
        }
    }
}
