//! int8 post-training-quantized GEMM for the inference path.
//!
//! `out += a[m×k] · b[k×n]` where `b` (weights) is quantized **once**
//! per-column (output channel) by absmax and `a` (activations) is
//! quantized dynamically per-row at call time. Products accumulate in
//! exact `i32` arithmetic and are dequantized by `s_a[row] · s_w[col]`
//! at the end, so — unlike the f32/bf16 tolerance classes — the scalar
//! and AVX2 kernels here are **bitwise identical**: integer addition is
//! associative and the final float multiply happens in one fixed order.
//!
//! # Quantization convention
//!
//! `scale = absmax / 127`, `q = round(x / scale)` clamped to `±127`
//! (−128 is never produced, keeping the range symmetric so `q·scale`
//! is odd-symmetric in `x`). All-zero rows/columns get `scale = 0` and
//! all-zero codes, dequantizing exactly to zero.
//!
//! # Packing layout
//!
//! `b` is packed into `NR`-wide (8-column, zero-padded) panels with the
//! `k` dimension in **pairs**: 16 consecutive bytes hold
//! `[b(k,j0), b(k+1,j0), b(k,j1), b(k+1,j1), … b(k+1,j7)]`. A
//! `_mm256_cvtepi8_epi16` of those 16 bytes followed by
//! `_mm256_madd_epi16` against a broadcast `(a_k, a_{k+1})` pair yields
//! eight i32 lanes each holding two MACs. The scalar kernel consumes
//! the same layout so there is exactly one storage format. `i16×i16`
//! products are ≤ `127² = 16129`; a pair sums to ≤ `32258`, so i32
//! accumulation is exact for any `k` below ~66 000 — far above every
//! shape in this workspace (debug-asserted at pack time).

use crate::gemm::NR;
use crate::simd_active;

/// Largest `k` for which the paired i32 accumulation provably cannot
/// wrap: `k/2` pair-terms of magnitude ≤ 2·127² must stay below 2³¹.
pub const MAX_K_EXACT: usize = (i32::MAX as usize) / (2 * 127 * 127) * 2;

/// Per-column (output-channel) absmax-quantized weight matrix, packed
/// for the paired-`k` kernel.
#[derive(Debug, Clone)]
pub struct QuantB {
    /// Rows of the original `b` (the GEMM reduction depth).
    pub k: usize,
    /// Columns of the original `b` (output channels).
    pub n: usize,
    /// One dequantization scale per column: `scales[j] = absmax_j / 127`.
    pub scales: Vec<f32>,
    /// Packed codes: `n.div_ceil(NR)` panels × `k.div_ceil(2)` pairs ×
    /// 16 bytes, zero-padded on both edges.
    data: Vec<i8>,
}

impl QuantB {
    /// Bytes held by the packed codes + scales (footprint reporting).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Raw packed codes (serialization).
    pub fn codes(&self) -> &[i8] {
        &self.data
    }

    /// Rebuilds from previously serialized parts.
    ///
    /// `codes` must be exactly the packed layout produced by
    /// [`quantize_b`] for the same `(k, n)`.
    pub fn from_parts(k: usize, n: usize, scales: Vec<f32>, codes: Vec<i8>) -> Option<QuantB> {
        if scales.len() != n || codes.len() != packed_len(k, n) {
            return None;
        }
        Some(QuantB {
            k,
            n,
            scales,
            data: codes,
        })
    }
}

fn packed_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k.div_ceil(2) * 2 * NR
}

/// Quantizes one value against a scale (symmetric, ties away handled by
/// `round`, clamped to ±127).
#[inline(always)]
fn quantize_one(x: f32, inv_scale: f32) -> i8 {
    // `round` then clamp: absmax maps to ±127 exactly, nothing escapes.
    (x * inv_scale).round().clamp(-127.0, 127.0) as i8
}

/// Per-column absmax quantization of `b[k×n]` into the packed layout.
pub fn quantize_b(b: &[f32], k: usize, n: usize) -> QuantB {
    debug_assert_eq!(b.len(), k * n);
    debug_assert!(k <= MAX_K_EXACT, "k={k} overflows exact i32 accumulation");
    let mut scales = vec![0f32; n];
    for j in 0..n {
        let mut absmax = 0f32;
        for i in 0..k {
            absmax = absmax.max(b[i * n + j].abs());
        }
        scales[j] = absmax / 127.0;
    }
    let inv: Vec<f32> = scales
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    let pairs = k.div_ceil(2);
    let mut data = vec![0i8; packed_len(k, n)];
    for (pj, panel) in data.chunks_exact_mut(pairs * 2 * NR).enumerate() {
        let j0 = pj * NR;
        for (pk, pair) in panel.chunks_exact_mut(2 * NR).enumerate() {
            let kk = pk * 2;
            for jj in 0..NR {
                let j = j0 + jj;
                if j >= n {
                    break; // zero padding already in place
                }
                pair[jj * 2] = quantize_one(b[kk * n + j], inv[j]);
                if kk + 1 < k {
                    pair[jj * 2 + 1] = quantize_one(b[(kk + 1) * n + j], inv[j]);
                }
            }
        }
    }
    QuantB { k, n, scales, data }
}

/// Dynamic per-row absmax quantization of activations `a[m×k]`.
///
/// Returns the codes (row-major, same shape) and one scale per row.
pub fn quantize_rows(a: &[f32], m: usize, k: usize) -> (Vec<i8>, Vec<f32>) {
    debug_assert_eq!(a.len(), m * k);
    let mut codes = vec![0i8; m * k];
    let mut scales = vec![0f32; m];
    for (i, row) in a.chunks_exact(k).enumerate() {
        let absmax = row.iter().fold(0f32, |acc, &x| acc.max(x.abs()));
        let s = absmax / 127.0;
        scales[i] = s;
        if s > 0.0 {
            let inv = 1.0 / s;
            for (c, &x) in codes[i * k..(i + 1) * k].iter_mut().zip(row) {
                *c = quantize_one(x, inv);
            }
        }
    }
    (codes, scales)
}

/// Dispatched int8 GEMM against a pre-quantized `b`: quantizes the
/// activation rows dynamically, accumulates in i32, dequantizes into
/// `out` (`out += …`, caller pre-zeroes or pre-accumulates).
pub fn gemm_i8(a: &[f32], qb: &QuantB, out: &mut [f32], m: usize) {
    debug_assert_eq!(a.len(), m * qb.k);
    debug_assert_eq!(out.len(), m * qb.n);
    crate::note_prec_dispatch();
    let (codes, row_scales) = quantize_rows(a, m, qb.k);
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected.
        unsafe { kernel_avx2(&codes, &row_scales, qb, out, m) };
        return;
    }
    kernel_scalar(&codes, &row_scales, qb, out, m);
}

/// Forced scalar int8 GEMM (differential tests, `PEB_SIMD=off` A/B).
pub fn gemm_i8_scalar(a: &[f32], qb: &QuantB, out: &mut [f32], m: usize) {
    let (codes, row_scales) = quantize_rows(a, m, qb.k);
    kernel_scalar(&codes, &row_scales, qb, out, m);
}

/// Forced SIMD int8 GEMM; returns `false` (leaving `out` untouched)
/// when the CPU lacks AVX2+FMA.
pub fn gemm_i8_simd(a: &[f32], qb: &QuantB, out: &mut [f32], m: usize) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        let (codes, row_scales) = quantize_rows(a, m, qb.k);
        // SAFETY: guarded by `detected()`.
        unsafe { kernel_avx2(&codes, &row_scales, qb, out, m) };
        return true;
    }
    let _ = (a, qb, out, m);
    false
}

/// Convenience: quantize `b` on the spot and multiply (tests, one-shot
/// callers). Hot paths should hold a [`QuantB`] and call [`gemm_i8`].
pub fn gemm_dyn_i8(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let qb = quantize_b(b, k, n);
    gemm_i8(a, &qb, out, m);
}

/// Scalar kernel over the packed layout: exact i32 accumulation, one
/// dequantizing multiply per output element.
fn kernel_scalar(codes: &[i8], row_scales: &[f32], qb: &QuantB, out: &mut [f32], m: usize) {
    let (k, n) = (qb.k, qb.n);
    let pairs = k.div_ceil(2);
    for i in 0..m {
        let arow = &codes[i * k..(i + 1) * k];
        let sa = row_scales[i];
        for (pj, panel) in qb.data.chunks_exact(pairs * 2 * NR).enumerate() {
            let j0 = pj * NR;
            let width = NR.min(n - j0);
            let mut acc = [0i32; NR];
            for (pk, pair) in panel.chunks_exact(2 * NR).enumerate() {
                let kk = pk * 2;
                let a0 = arow[kk] as i32;
                let a1 = if kk + 1 < k { arow[kk + 1] as i32 } else { 0 };
                for (jj, accv) in acc.iter_mut().enumerate() {
                    *accv += a0 * pair[jj * 2] as i32 + a1 * pair[jj * 2 + 1] as i32;
                }
            }
            for jj in 0..width {
                out[i * n + j0 + jj] += acc[jj] as f32 * (sa * qb.scales[j0 + jj]);
            }
        }
    }
}

/// AVX2 kernel: `cvtepi8_epi16` widens one 16-byte pair group to eight
/// `(b_k, b_{k+1})` i16 pairs; `madd_epi16` against the broadcast
/// activation pair performs two MACs per i32 lane. Accumulation and
/// dequantization order match [`kernel_scalar`] exactly, so outputs are
/// bitwise identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_avx2(codes: &[i8], row_scales: &[f32], qb: &QuantB, out: &mut [f32], m: usize) {
    use std::arch::x86_64::*;
    let (k, n) = (qb.k, qb.n);
    let pairs = k.div_ceil(2);
    for i in 0..m {
        let arow = &codes[i * k..(i + 1) * k];
        let sa = row_scales[i];
        for (pj, panel) in qb.data.chunks_exact(pairs * 2 * NR).enumerate() {
            let j0 = pj * NR;
            let width = NR.min(n - j0);
            let mut acc = _mm256_setzero_si256();
            for (pk, pair) in panel.chunks_exact(2 * NR).enumerate() {
                let kk = pk * 2;
                let a0 = arow[kk] as i16 as u16 as u32;
                let a1 = if kk + 1 < k {
                    arow[kk + 1] as i16 as u16 as u32
                } else {
                    0
                };
                let avec = _mm256_set1_epi32((a0 | (a1 << 16)) as i32);
                let bvec = _mm256_cvtepi8_epi16(_mm_loadu_si128(pair.as_ptr() as *const __m128i));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(bvec, avec));
            }
            let mut lanes = [0i32; NR];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            for (jj, &accv) in lanes.iter().enumerate().take(width) {
                out[i * n + j0 + jj] += accv as f32 * (sa * qb.scales[j0 + jj]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    fn reference_i8(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        // Independent model of the quantized product: plain (unpacked)
        // codes, i64 accumulation, same dequant order.
        let qb = quantize_b(b, k, n);
        let (codes, sa) = quantize_rows(a, m, k);
        let mut qb_plain = vec![0i32; k * n];
        for j in 0..n {
            let inv = if qb.scales[j] > 0.0 {
                1.0 / qb.scales[j]
            } else {
                0.0
            };
            for i in 0..k {
                qb_plain[i * n + j] = quantize_one(b[i * n + j], inv) as i32;
            }
        }
        let mut out = vec![0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc: i64 = 0;
                for kk in 0..k {
                    acc += codes[i * k + kk] as i64 * qb_plain[kk * n + j] as i64;
                }
                out[i * n + j] = acc as f32 * (sa[i] * qb.scales[j]);
            }
        }
        out
    }

    #[test]
    fn quantize_codes_stay_within_half_step() {
        let b = pseudo(37 * 11, 3);
        let qb = quantize_b(&b, 37, 11);
        let (codes, sa) = quantize_rows(&b, 37, 11);
        for (i, row) in b.chunks_exact(11).enumerate() {
            for (&x, &c) in row.iter().zip(&codes[i * 11..(i + 1) * 11]) {
                if sa[i] > 0.0 {
                    assert!((c as f32 * sa[i] - x).abs() <= sa[i] * 0.5 + 1e-7);
                }
            }
        }
        assert_eq!(qb.scales.len(), 11);
        assert!(qb.scales.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn zero_rows_and_columns_dequantize_to_zero() {
        let (m, k, n) = (3, 5, 4);
        let mut a = pseudo(m * k, 5);
        for v in &mut a[k..2 * k] {
            *v = 0.0; // middle activation row all-zero
        }
        let mut b = pseudo(k * n, 6);
        for row in b.chunks_exact_mut(n) {
            row[2] = 0.0; // column 2 all-zero
        }
        let mut out = vec![0f32; m * n];
        gemm_dyn_i8(&a, &b, &mut out, m, k, n);
        for j in 0..n {
            assert_eq!(out[n + j], 0.0, "zero row, col {j}");
        }
        for i in 0..m {
            assert_eq!(out[i * n + 2], 0.0, "row {i}, zero col");
        }
    }

    #[test]
    fn scalar_matches_independent_reference_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (9, 33, 17), (8, 256, 8), (7, 513, 9)] {
            let a = pseudo(m * k, 7);
            let b = pseudo(k * n, 8);
            let want = reference_i8(&a, &b, m, k, n);
            let qb = quantize_b(&b, k, n);
            let mut got = vec![0f32; m * n];
            gemm_i8_scalar(&a, &qb, &mut got, m);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn avx2_matches_scalar_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (9, 33, 17), (8, 256, 8), (7, 513, 9)] {
            let a = pseudo(m * k, 9);
            let b = pseudo(k * n, 10);
            let qb = quantize_b(&b, k, n);
            let mut simd = vec![0f32; m * n];
            if !gemm_i8_simd(&a, &qb, &mut simd, m) {
                return;
            }
            let mut scalar = vec![0f32; m * n];
            gemm_i8_scalar(&a, &qb, &mut scalar, m);
            for (s, g) in scalar.iter().zip(&simd) {
                assert_eq!(s.to_bits(), g.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn int8_tracks_f32_within_relative_budget() {
        // Two symmetric quantizations: per-element error against the
        // exact product is bounded by
        // `s_a/2·Σ|b| + s_w/2·Σ|a| + k·s_a·s_w/4`; with absmax scales
        // this lands near 1% of the |a||b| mass for smooth inputs. Gate
        // at 2.5% of the mass plus a small absolute floor.
        for &(m, k, n) in &[(4, 64, 8), (9, 300, 17), (16, 128, 32)] {
            let a = pseudo(m * k, 11);
            let b = pseudo(k * n, 12);
            let mut exact = vec![0f32; m * n];
            crate::gemm::gemm_scalar(&a, &b, &mut exact, m, k, n);
            let mut mass = vec![0f32; m * n];
            for i in 0..m {
                for kk in 0..k {
                    for j in 0..n {
                        mass[i * n + j] += (a[i * k + kk] * b[kk * n + j]).abs();
                    }
                }
            }
            let mut q = vec![0f32; m * n];
            gemm_dyn_i8(&a, &b, &mut q, m, k, n);
            for ((w, g), mm) in exact.iter().zip(&q).zip(&mass) {
                assert!(
                    (w - g).abs() <= mm * 0.025 + 1e-4,
                    "({m},{k},{n}): {w} vs {g} (mass {mm})"
                );
            }
        }
    }

    #[test]
    fn accumulates_into_out() {
        let (m, k, n) = (2, 8, 3);
        let a = pseudo(m * k, 13);
        let b = pseudo(k * n, 14);
        let mut once = vec![0f32; m * n];
        gemm_dyn_i8(&a, &b, &mut once, m, k, n);
        let mut twice = once.clone();
        gemm_dyn_i8(&a, &b, &mut twice, m, k, n);
        for (o, t) in once.iter().zip(&twice) {
            assert!((t - 2.0 * o).abs() <= 1e-5);
        }
    }

    #[test]
    fn quantb_roundtrips_through_parts() {
        let (k, n) = (33, 12);
        let b = pseudo(k * n, 15);
        let qb = quantize_b(&b, k, n);
        let rebuilt =
            QuantB::from_parts(k, n, qb.scales.clone(), qb.codes().to_vec()).expect("parts");
        let a = pseudo(5 * k, 16);
        let mut w = vec![0f32; 5 * n];
        gemm_i8_scalar(&a, &qb, &mut w, 5);
        let mut g = vec![0f32; 5 * n];
        gemm_i8_scalar(&a, &rebuilt, &mut g, 5);
        assert_eq!(w, g);
        assert!(QuantB::from_parts(k, n, vec![0.0; n - 1], qb.codes().to_vec()).is_none());
        // k+1 shares the same pair count (33 and 34 both pack to 17
        // pairs), so step two to actually change the packed length.
        assert!(QuantB::from_parts(k + 2, n, qb.scales.clone(), qb.codes().to_vec()).is_none());
        assert!(qb.storage_bytes() >= qb.codes().len());
    }
}
