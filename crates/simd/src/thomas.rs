//! Shared-factorization Thomas solves for batches of tridiagonal lines.
//!
//! Every line of an ADI axis sweep shares one constant-coefficient
//! matrix, so the elimination pivots (`beta`) and modified super-diagonal
//! (`gamma`) can be factored **once** per axis and reused by every line.
//! [`factor_tridiagonal`] produces exactly the values the in-line
//! elimination of `peb-litho`'s `solve_tridiagonal` computes, and
//! [`solve_factored`] replays the per-line operations in the identical
//! order — so factored solves are bitwise identical to the original
//! solver.
//!
//! [`solve_factored_lines8`] runs eight interleaved lines at once (lines
//! that are adjacent in the innermost tensor dimension, so element `k` of
//! the group is eight contiguous floats). Each lane performs exactly the
//! scalar operation sequence with IEEE-exact ops (`+ − × ÷`), so the
//! SIMD path is **bitwise identical** to the scalar path.

use peb_par::UnsafeSlice;

use crate::{simd_active, ScalarX8, Simd8};

/// Factors the constant-coefficient tridiagonal matrix `(a, b, c)` into
/// pivots `beta` and modified super-diagonal `gamma`
/// (`gamma[i] = c[i−1]/beta[i−1]`), matching the in-line elimination of
/// the classic Thomas solve bit for bit. `gamma[0]` is unused (0).
pub fn factor_tridiagonal(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    beta: &mut Vec<f32>,
    gamma: &mut Vec<f32>,
) {
    let n = b.len();
    debug_assert!(a.len() == n && c.len() == n);
    beta.clear();
    gamma.clear();
    if n == 0 {
        return;
    }
    let mut bp = b[0];
    debug_assert!(bp != 0.0, "zero pivot at row 0");
    beta.push(bp);
    gamma.push(0.0);
    for i in 1..n {
        let g = c[i - 1] / bp;
        bp = b[i] - a[i] * g;
        debug_assert!(bp != 0.0, "zero pivot at row {i}");
        gamma.push(g);
        beta.push(bp);
    }
}

/// Solves one line in place against a precomputed factorization;
/// bitwise identical to `solve_tridiagonal` on the same system.
pub fn solve_factored(a: &[f32], beta: &[f32], gamma: &[f32], d: &mut [f32]) {
    let n = d.len();
    debug_assert!(a.len() == n && beta.len() == n && gamma.len() == n);
    if n == 0 {
        return;
    }
    d[0] /= beta[0];
    for i in 1..n {
        d[i] = (d[i] - a[i] * d[i - 1]) / beta[i];
    }
    for i in (0..n - 1).rev() {
        d[i] -= gamma[i + 1] * d[i + 1];
    }
}

/// Solves eight interleaved lines in place against one shared
/// factorization.
///
/// Element `k` of the group lives at `slots[base + k·stride .. +8]` (the
/// eight lines are adjacent in the innermost dimension). `bump_first` /
/// `bump_last` are added to the first/last right-hand-side element before
/// elimination (the Robin-boundary source term), matching the scalar
/// sweep's unconditional `line[0] += bump` adds.
///
/// # Safety
///
/// The caller must own every position `base + k·stride + j` (`k < n`,
/// `j < 8`) of `slots` exclusively — the standard `UnsafeSlice`
/// disjoint-writes contract of the line-parallel ADI sweep.
#[allow(clippy::too_many_arguments)]
pub unsafe fn solve_factored_lines8(
    a: &[f32],
    beta: &[f32],
    gamma: &[f32],
    slots: &UnsafeSlice<f32>,
    base: usize,
    stride: usize,
    n: usize,
    bump_first: f32,
    bump_last: f32,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA; aliasing is the
        // caller's contract.
        unsafe {
            solve8_avx2(
                a, beta, gamma, slots, base, stride, n, bump_first, bump_last,
            )
        };
        return;
    }
    // SAFETY: forwarded caller contract.
    unsafe {
        solve8_generic::<ScalarX8>(
            a, beta, gamma, slots, base, stride, n, bump_first, bump_last,
        )
    }
}

/// Forced scalar-backend variant of [`solve_factored_lines8`].
///
/// # Safety
///
/// Same contract as [`solve_factored_lines8`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn solve_factored_lines8_scalar(
    a: &[f32],
    beta: &[f32],
    gamma: &[f32],
    slots: &UnsafeSlice<f32>,
    base: usize,
    stride: usize,
    n: usize,
    bump_first: f32,
    bump_last: f32,
) {
    // SAFETY: forwarded caller contract.
    unsafe {
        solve8_generic::<ScalarX8>(
            a, beta, gamma, slots, base, stride, n, bump_first, bump_last,
        )
    }
}

/// Forced SIMD-backend variant of [`solve_factored_lines8`]; returns
/// `false` (no-op) without AVX2+FMA.
///
/// # Safety
///
/// Same contract as [`solve_factored_lines8`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn solve_factored_lines8_simd(
    a: &[f32],
    beta: &[f32],
    gamma: &[f32],
    slots: &UnsafeSlice<f32>,
    base: usize,
    stride: usize,
    n: usize,
    bump_first: f32,
    bump_last: f32,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        // SAFETY: guarded by `detected()`; aliasing is the caller's.
        unsafe {
            solve8_avx2(
                a, beta, gamma, slots, base, stride, n, bump_first, bump_last,
            )
        };
        return true;
    }
    let _ = (
        a, beta, gamma, slots, base, stride, n, bump_first, bump_last,
    );
    false
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn solve8_avx2(
    a: &[f32],
    beta: &[f32],
    gamma: &[f32],
    slots: &UnsafeSlice<f32>,
    base: usize,
    stride: usize,
    n: usize,
    bump_first: f32,
    bump_last: f32,
) {
    // SAFETY: forwarded caller contract.
    unsafe {
        solve8_generic::<crate::AvxX8>(
            a, beta, gamma, slots, base, stride, n, bump_first, bump_last,
        )
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn solve8_generic<V: Simd8>(
    a: &[f32],
    beta: &[f32],
    gamma: &[f32],
    slots: &UnsafeSlice<f32>,
    base: usize,
    stride: usize,
    n: usize,
    bump_first: f32,
    bump_last: f32,
) {
    debug_assert!(n >= 2, "degenerate lines are handled by the caller");
    // SAFETY (all row accesses): caller owns the group's strided
    // positions exclusively; each borrow is transient and sequential.
    let row = |k: usize| unsafe { slots.slice_mut(base + k * stride..base + k * stride + 8) };
    // Forward elimination. Matches the scalar order: bump, d0 /= beta0,
    // then d[k] = (d[k] − a[k]·d[k−1]) / beta[k].
    let r0 = row(0);
    let mut prev = V::load(r0).add(V::splat(bump_first)).div(V::splat(beta[0]));
    prev.store(r0);
    for k in 1..n {
        let rk = row(k);
        let mut dk = V::load(rk);
        if k == n - 1 {
            dk = dk.add(V::splat(bump_last));
        }
        prev = dk.sub(V::splat(a[k]).mul(prev)).div(V::splat(beta[k]));
        prev.store(rk);
    }
    // Back substitution: d[k] -= gamma[k+1]·d[k+1].
    let mut next = prev;
    for k in (0..n - 1).rev() {
        let rk = row(k);
        let dk = V::load(rk).sub(V::splat(gamma[k + 1]).mul(next));
        dk.store(rk);
        next = dk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic in-line Thomas solve (the peb-litho reference).
    fn solve_reference(a: &[f32], b: &[f32], c: &[f32], d: &mut [f32]) {
        let n = d.len();
        let mut scratch = vec![0f32; n];
        let mut beta = b[0];
        d[0] /= beta;
        for i in 1..n {
            scratch[i] = c[i - 1] / beta;
            beta = b[i] - a[i] * scratch[i];
            d[i] = (d[i] - a[i] * d[i - 1]) / beta;
        }
        for i in (0..n - 1).rev() {
            d[i] -= scratch[i + 1] * d[i + 1];
        }
    }

    fn diffusion_system(n: usize, r: f32) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let a = vec![-r; n];
        let c = vec![-r; n];
        let mut b = vec![1.0 + 2.0 * r; n];
        b[0] = 1.0 + r;
        b[n - 1] = 1.0 + r;
        (a, b, c)
    }

    #[test]
    fn factored_solve_matches_inline_elimination_bitwise() {
        for n in [2usize, 3, 7, 33] {
            let (a, b, c) = diffusion_system(n, 0.37);
            let mut d: Vec<f32> = (0..n).map(|i| (i as f32 * 0.77).sin()).collect();
            let mut want = d.clone();
            solve_reference(&a, &b, &c, &mut want);
            let (mut beta, mut gamma) = (Vec::new(), Vec::new());
            factor_tridiagonal(&a, &b, &c, &mut beta, &mut gamma);
            solve_factored(&a, &beta, &gamma, &mut d);
            for (w, g) in want.iter().zip(&d) {
                assert_eq!(w.to_bits(), g.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn interleaved_lines_match_scalar_lines_bitwise() {
        let n = 17;
        let stride = 8; // 8 lines, unit inner spacing
        let (a, b, c) = diffusion_system(n, 0.21);
        let (mut beta, mut gamma) = (Vec::new(), Vec::new());
        factor_tridiagonal(&a, &b, &c, &mut beta, &mut gamma);
        let mut field: Vec<f32> = (0..n * 8).map(|i| (i as f32 * 0.31).cos()).collect();
        let (bump_first, bump_last) = (0.05f32, 0.0f32);
        // Per-line reference with the same bump handling.
        let mut want = vec![0f32; n * 8];
        for j in 0..8 {
            let mut line: Vec<f32> = (0..n).map(|k| field[k * stride + j]).collect();
            line[0] += bump_first;
            line[n - 1] += bump_last;
            solve_factored(&a, &beta, &gamma, &mut line);
            for (k, v) in line.iter().enumerate() {
                want[k * stride + j] = *v;
            }
        }
        {
            let slots = UnsafeSlice::new(&mut field);
            // SAFETY: single-threaded test, one group owning everything.
            let used_simd = unsafe {
                solve_factored_lines8_simd(
                    &a, &beta, &gamma, &slots, 0, stride, n, bump_first, bump_last,
                )
            };
            if !used_simd {
                unsafe {
                    solve_factored_lines8_scalar(
                        &a, &beta, &gamma, &slots, 0, stride, n, bump_first, bump_last,
                    )
                };
            }
        }
        for (w, g) in want.iter().zip(&field) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }
}
