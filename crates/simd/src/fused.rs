//! Fused elementwise chains: k stages applied per 8-lane block in one
//! memory sweep.
//!
//! A [`Stage`] list describes `acc = stage_k(… stage_1(x) …)` where each
//! stage is one of the elementwise kernels from
//! [`crate::elementwise`]. [`vchain`] streams the input once, applying
//! every stage while the block is still in registers, instead of writing
//! k−1 intermediate tensors back through memory.
//!
//! # Determinism contract
//!
//! Every stage is a per-element pure function using **exactly the lane
//! math of the corresponding unfused kernel** at the same dispatch
//! level: the exact stages (`+ − × ÷ √`, scalar affine, negate-via-sign)
//! are IEEE operations in the scalar expression order, and `Exp` /
//! `Sigmoid` use the identical [`Simd8::exp`]-based formulation as
//! `vexp` / `vsigmoid`, including the padded-lane tail. Because an
//! element's value never depends on its neighbours, applying k stages to
//! one block before moving on is the same arithmetic, in the same
//! order, as k full-tensor sweeps — fused output is **bitwise
//! identical** to the unfused chain per dispatch level. Dead tail lanes
//! may compute garbage (e.g. `÷0`); they are never stored.

use crate::{simd_active, ScalarX8, Simd8};

/// One stage of a fused elementwise chain, applied to the running value.
///
/// Binary stages borrow the second operand, which must have the same
/// length as the chain input.
#[derive(Clone, Copy, Debug)]
pub enum Stage<'a> {
    /// `acc + b`
    AddT(&'a [f32]),
    /// `acc − b`
    SubT(&'a [f32]),
    /// `b − acc`
    RsubT(&'a [f32]),
    /// `acc × b`
    MulT(&'a [f32]),
    /// `acc ÷ b`
    DivT(&'a [f32]),
    /// `acc + s`
    AddScalar(f32),
    /// `acc × s`
    MulScalar(f32),
    /// `s − acc`
    SubFromScalar(f32),
    /// `√acc`
    Sqrt,
    /// `exp(acc)` — same backend exp as `vexp` (tolerance-class on SIMD).
    Exp,
    /// Stable logistic sigmoid — same formulation as `vsigmoid`.
    Sigmoid,
    /// `−acc` (implemented as `acc × −1`, IEEE-exact sign flip).
    Neg,
}

impl Stage<'_> {
    /// Stable stage descriptor, used by the op-trace capture in
    /// `peb-plan` recordings to describe a fused chain.
    pub fn name(&self) -> &'static str {
        match *self {
            Stage::AddT(_) => "add_t",
            Stage::SubT(_) => "sub_t",
            Stage::RsubT(_) => "rsub_t",
            Stage::MulT(_) => "mul_t",
            Stage::DivT(_) => "div_t",
            Stage::AddScalar(_) => "add_scalar",
            Stage::MulScalar(_) => "mul_scalar",
            Stage::SubFromScalar(_) => "sub_from_scalar",
            Stage::Sqrt => "sqrt",
            Stage::Exp => "exp",
            Stage::Sigmoid => "sigmoid",
            Stage::Neg => "neg",
        }
    }

    /// The borrowed operand, if this is a binary stage.
    fn operand(&self) -> Option<&[f32]> {
        match *self {
            Stage::AddT(b) | Stage::SubT(b) | Stage::RsubT(b) | Stage::MulT(b) | Stage::DivT(b) => {
                Some(b)
            }
            _ => None,
        }
    }
}

/// Applies every stage to one 8-lane block. `load` fetches a binary
/// operand's block (full loads in the body, padded loads in the tail).
#[inline(always)]
fn apply_block<V: Simd8>(mut v: V, stages: &[Stage<'_>], load: impl Fn(&[f32]) -> V) -> V {
    let one = V::splat(1.0);
    for st in stages {
        v = match *st {
            Stage::AddT(b) => v.add(load(b)),
            Stage::SubT(b) => v.sub(load(b)),
            Stage::RsubT(b) => load(b).sub(v),
            Stage::MulT(b) => v.mul(load(b)),
            Stage::DivT(b) => v.div(load(b)),
            Stage::AddScalar(s) => v.add(V::splat(s)),
            Stage::MulScalar(s) => v.mul(V::splat(s)),
            Stage::SubFromScalar(s) => V::splat(s).sub(v),
            Stage::Sqrt => v.sqrt(),
            Stage::Exp => v.exp(),
            Stage::Sigmoid => {
                // Identical lane math to `vsigmoid`:
                //   x ≥ 0: 1 / (1 + exp(−x));   x < 0: e / (1 + e).
                let e = v.select_nonneg(V::zero().sub(v), v).exp();
                let num = v.select_nonneg(one, e);
                num.div(one.add(e))
            }
            Stage::Neg => v.mul(V::splat(-1.0)),
        };
    }
    v
}

#[inline(always)]
fn chain_generic<V: Simd8>(x: &[f32], stages: &[Stage<'_>], out: &mut [f32]) {
    let n = x.len();
    assert_eq!(n, out.len(), "fused chain: output length mismatch");
    for st in stages {
        if let Some(b) = st.operand() {
            assert_eq!(b.len(), n, "fused chain: operand length mismatch");
        }
    }
    let n8 = n - n % 8;
    let mut i = 0;
    while i < n8 {
        apply_block(V::load(&x[i..]), stages, |b: &[f32]| V::load(&b[i..])).store(&mut out[i..]);
        i += 8;
    }
    if i < n {
        // Padded-lane tail, matching the unfused `vexp`/`vsigmoid` tail
        // convention so every element sees one exp implementation per
        // backend. Exact stages are lanewise plain-f32 either way.
        let tail = n - i;
        let pad = |src: &[f32]| {
            let mut p = [0f32; 8];
            p[..tail].copy_from_slice(&src[i..]);
            V::from_array(p)
        };
        let r = apply_block(pad(x), stages, |b: &[f32]| pad(b)).to_array();
        out[i..].copy_from_slice(&r[..tail]);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::*;
    use crate::AvxX8;

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn vchain(x: &[f32], stages: &[Stage<'_>], out: &mut [f32]) {
        chain_generic::<AvxX8>(x, stages, out)
    }
}

/// Applies a fused elementwise chain: `out[i] = stages(x[i])`, streaming
/// the input in one sweep at the latched dispatch level.
pub fn vchain(x: &[f32], stages: &[Stage<'_>], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected.
        unsafe { avx::vchain(x, stages, out) };
        return;
    }
    chain_generic::<ScalarX8>(x, stages, out)
}

/// Forced scalar-backend variant of [`vchain`].
pub fn vchain_scalar_backend(x: &[f32], stages: &[Stage<'_>], out: &mut [f32]) {
    chain_generic::<ScalarX8>(x, stages, out)
}

/// Forced SIMD-backend variant; returns `false` (no-op) without AVX2+FMA.
pub fn vchain_simd_backend(x: &[f32], stages: &[Stage<'_>], out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        // SAFETY: guarded by `detected()`.
        unsafe { avx::vchain(x, stages, out) };
        return true;
    }
    let _ = (x, stages, out);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementwise;

    fn pseudo(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x as f32 / u32::MAX as f32) * 8.0 - 4.0
            })
            .collect()
    }

    /// Reference: run the same stages as separate unfused kernel sweeps.
    fn unfused(x: &[f32], stages: &[Stage<'_>], simd: bool) -> Vec<f32> {
        let mut cur = x.to_vec();
        let mut nxt = vec![0f32; x.len()];
        for st in stages {
            let ran = match *st {
                Stage::AddT(b) => run2(
                    simd,
                    elementwise::vadd_scalar_backend,
                    elementwise::vadd_simd_backend,
                    &cur,
                    b,
                    &mut nxt,
                ),
                Stage::SubT(b) => run2(
                    simd,
                    elementwise::vsub_scalar_backend,
                    elementwise::vsub_simd_backend,
                    &cur,
                    b,
                    &mut nxt,
                ),
                Stage::RsubT(b) => run2(
                    simd,
                    elementwise::vsub_scalar_backend,
                    elementwise::vsub_simd_backend,
                    b,
                    &cur,
                    &mut nxt,
                ),
                Stage::MulT(b) => run2(
                    simd,
                    elementwise::vmul_scalar_backend,
                    elementwise::vmul_simd_backend,
                    &cur,
                    b,
                    &mut nxt,
                ),
                Stage::DivT(b) => run2(
                    simd,
                    elementwise::vdiv_scalar_backend,
                    elementwise::vdiv_simd_backend,
                    &cur,
                    b,
                    &mut nxt,
                ),
                Stage::AddScalar(s) => {
                    for (o, &v) in nxt.iter_mut().zip(cur.iter()) {
                        *o = v + s;
                    }
                    true
                }
                Stage::MulScalar(s) => {
                    for (o, &v) in nxt.iter_mut().zip(cur.iter()) {
                        *o = v * s;
                    }
                    true
                }
                Stage::SubFromScalar(s) => {
                    for (o, &v) in nxt.iter_mut().zip(cur.iter()) {
                        *o = s - v;
                    }
                    true
                }
                Stage::Neg => {
                    for (o, &v) in nxt.iter_mut().zip(cur.iter()) {
                        *o = -v;
                    }
                    true
                }
                Stage::Sqrt => {
                    for (o, &v) in nxt.iter_mut().zip(cur.iter()) {
                        *o = v.sqrt();
                    }
                    true
                }
                Stage::Exp => run1(
                    simd,
                    elementwise::vexp_scalar_backend,
                    elementwise::vexp_simd_backend,
                    &cur,
                    &mut nxt,
                ),
                Stage::Sigmoid => run1(
                    simd,
                    elementwise::vsigmoid_scalar_backend,
                    elementwise::vsigmoid_simd_backend,
                    &cur,
                    &mut nxt,
                ),
            };
            assert!(ran);
            std::mem::swap(&mut cur, &mut nxt);
        }
        cur
    }

    fn run2(
        simd: bool,
        s: fn(&[f32], &[f32], &mut [f32]),
        v: fn(&[f32], &[f32], &mut [f32]) -> bool,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) -> bool {
        if simd {
            v(a, b, out)
        } else {
            s(a, b, out);
            true
        }
    }

    fn run1(
        simd: bool,
        s: fn(&[f32], &mut [f32]),
        v: fn(&[f32], &mut [f32]) -> bool,
        a: &[f32],
        out: &mut [f32],
    ) -> bool {
        if simd {
            v(a, out)
        } else {
            s(a, out);
            true
        }
    }

    #[test]
    fn fused_matches_unfused_bitwise_both_backends() {
        for len in [0usize, 1, 7, 8, 9, 64, 101] {
            let x = pseudo(len, 1);
            let b: Vec<f32> = pseudo(len, 2).iter().map(|v| v.abs() + 0.5).collect();
            let c = pseudo(len, 3);
            let chains: Vec<Vec<Stage<'_>>> = vec![
                vec![Stage::AddT(&b), Stage::MulT(&c), Stage::Sigmoid],
                vec![Stage::MulScalar(0.37), Stage::AddScalar(-1.25), Stage::Exp],
                vec![Stage::SubT(&c), Stage::DivT(&b), Stage::Neg],
                vec![Stage::RsubT(&c), Stage::SubFromScalar(2.0)],
                vec![Stage::MulT(&b), Stage::Sqrt],
            ];
            for stages in &chains {
                let mut got = vec![0f32; len];
                vchain_scalar_backend(&x, stages, &mut got);
                let want = unfused(&x, stages, false);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "scalar len {len}");
                }
                if vchain_simd_backend(&x, stages, &mut got) {
                    let want = unfused(&x, stages, true);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.to_bits(), w.to_bits(), "simd len {len}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_chain_copies_input() {
        let x = pseudo(13, 9);
        let mut out = vec![0f32; 13];
        vchain(&x, &[], &mut out);
        assert_eq!(x, out);
    }
}
